// bdsmaj command-line synthesis tool.
//
//   bdsmaj_cli [options] <input.blif | @benchmark-name>
//
//   --flow bdsmaj|bdspga|abc|dc   synthesis flow (default bdsmaj)
//   --out FILE                    write the optimized network as BLIF
//   --map-out FILE                write the mapped netlist as BLIF
//   --no-maj                      shorthand for --flow bdspga
//   --no-reorder                  skip per-supernode sifting
//   --k-local F / --k-global F    majority selection sizing factors
//   --iterations N                balancing iteration limit
//   --jobs N                      supernode worker threads (0 = all cores);
//                                 output is identical at any setting
//   --quick                       reduced widths for @benchmarks
//   --verify                      equivalence-check outputs (default on)
//   --quiet                       only print the summary line
//
// `@name` uses a built-in generator from the paper's suite, e.g.
// `bdsmaj_cli @C6288` or `bdsmaj_cli "@Div 18 bit"`.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "benchgen/suite.hpp"
#include "flows/flows.hpp"
#include "network/blif.hpp"
#include "network/simulate.hpp"

namespace {

using namespace bdsmaj;

struct Options {
    std::string flow = "bdsmaj";
    std::string input;
    std::optional<std::string> out;
    std::optional<std::string> map_out;
    bool reorder = true;
    bool quick = false;
    bool verify = true;
    bool quiet = false;
    int jobs = 1;
    decomp::MajDecompParams maj;
};

int usage() {
    std::fprintf(stderr,
                 "usage: bdsmaj_cli [--flow bdsmaj|bdspga|abc|dc] [--out f.blif]\n"
                 "                  [--map-out f.blif] [--no-maj] [--no-reorder]\n"
                 "                  [--k-local F] [--k-global F] [--iterations N]\n"
                 "                  [--jobs N] [--quick] [--no-verify] [--quiet]\n"
                 "                  <input.blif | @benchmark>\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--flow") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.flow = v;
        } else if (arg == "--out") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.out = v;
        } else if (arg == "--map-out") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.map_out = v;
        } else if (arg == "--no-maj") {
            opt.flow = "bdspga";
        } else if (arg == "--no-reorder") {
            opt.reorder = false;
        } else if (arg == "--k-local") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.maj.k_local = std::atof(v);
        } else if (arg == "--k-global") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.maj.k_global = std::atof(v);
        } else if (arg == "--iterations") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.maj.max_iterations = std::atoi(v);
        } else if (arg == "--jobs") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.jobs = std::atoi(v);
        } else if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--no-verify") {
            opt.verify = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage();
        } else {
            opt.input = arg;
        }
    }
    if (opt.input.empty()) return usage();

    net::Network input;
    try {
        if (opt.input[0] == '@') {
            input = benchgen::benchmark_by_name(opt.input.substr(1), opt.quick);
        } else {
            input = net::read_blif_file(opt.input);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error reading input: %s\n", e.what());
        return 1;
    }

    flows::SynthesisResult result;
    if (opt.flow == "abc") {
        result = flows::flow_abc(input);
    } else if (opt.flow == "dc") {
        result = flows::flow_dc(input);
    } else if (opt.flow == "bdsmaj" || opt.flow == "bdspga") {
        decomp::DecompFlowParams params;
        params.engine.use_majority = opt.flow == "bdsmaj";
        params.engine.maj = opt.maj;
        params.reorder = opt.reorder;
        params.jobs = opt.jobs;
        decomp::DecompFlowResult d = decomp::decompose_network(input, params);
        result.flow_name = opt.flow == "bdsmaj" ? "BDS-MAJ" : "BDS-PGA";
        result.engine_stats = d.engine_stats;
        result.optimized = std::move(d.network);
        result.optimized_stats = result.optimized.stats();
        result.optimize_seconds = d.seconds;
        result.mapped = mapping::map_network(result.optimized, flows::default_library());
    } else {
        std::fprintf(stderr, "unknown flow %s\n", opt.flow.c_str());
        return usage();
    }

    bool equivalent = true;
    if (opt.verify) {
        const auto eq1 = net::check_equivalent(input, result.optimized);
        const auto eq2 = net::check_equivalent(input, result.mapped.netlist);
        equivalent = eq1.equivalent && eq2.equivalent;
        if (!equivalent) {
            std::fprintf(stderr, "VERIFICATION FAILED: %s %s\n", eq1.reason.c_str(),
                         eq2.reason.c_str());
        }
    }

    if (!opt.quiet) {
        const net::NetworkStats s = result.optimized_stats;
        std::printf("flow %s on %s\n", result.flow_name.c_str(),
                    input.model_name().c_str());
        std::printf("  decomposed: AND=%d OR=%d XOR=%d XNOR=%d MAJ=%d total=%d\n",
                    s.and_nodes, s.or_nodes, s.xor_nodes, s.xnor_nodes, s.maj_nodes,
                    s.total());
    }
    std::printf("%s: area=%.2fum2 gates=%d delay=%.3fns opt_time=%.3fs%s\n",
                input.model_name().c_str(), result.mapped.area_um2,
                result.mapped.gate_count, result.mapped.delay_ns,
                result.optimize_seconds,
                opt.verify ? (equivalent ? " [verified]" : " [MISMATCH]") : "");

    if (opt.out) net::write_blif_file(result.optimized, *opt.out);
    if (opt.map_out) net::write_blif_file(result.mapped.netlist, *opt.map_out);
    return equivalent ? 0 : 1;
}
