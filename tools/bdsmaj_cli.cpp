// bdsmaj command-line synthesis tool.
//
//   bdsmaj_cli [options] <input.blif | @benchmark-name>
//
//   --flow bdsmaj|bdspga|abc|dc   synthesis flow (default bdsmaj)
//   --preset NAME                 decomposition strategy preset for the
//                                 BDS flows ("paper" default; see
//                                 --list-presets); works in --batch too
//   --list-presets                print the preset catalog and exit
//   --out FILE                    write the optimized network as BLIF
//   --map-out FILE                write the mapped netlist as BLIF
//   --no-maj                      shorthand for --flow bdspga
//   --no-reorder                  skip per-supernode sifting
//   --sift-symmetry               force symmetry-aware block sifting on
//   --no-sift-symmetry            force it off (default: the preset decides)
//   --sift-max-growth F           abort a sift direction past F x best size
//   --sift-converge               repeat sift passes until <1% gain
//   --sift-max-vars N             sift at most N variables per pass
//   --k-local F / --k-global F    majority selection sizing factors
//   --iterations N                balancing iteration limit
//   --jobs N                      per-run worker budget (0 = all cores);
//                                 output is identical at any setting
//   --cone-cache-mb N             memory budget of the process-wide cone
//                                 result cache (default 64); repeated cones
//                                 replay cached tapes instead of being
//                                 re-decomposed — results are identical
//   --no-cone-cache               disable cone memoization entirely
//   --exact-cache FILE            warm-start the exact-synthesis NPN cache
//                                 from FILE at startup (tolerant: a missing
//                                 or corrupt file loads nothing) and save
//                                 the materialized classes back on exit
//   --exact-max-support N         widest cone served exactly (<= 4 uses the
//                                 enumerated classes, 5-6 the SAT backend)
//   --exact-sat-budget N          conflict budget per SAT-synthesized class
//   --exact-sat-steps N           longest SAT chain tried per class
//   --help / -h                   the full option reference on stdout
//   --quick                       reduced widths for @benchmarks
//   --verify                      equivalence-check outputs (default on)
//   --oracle auto|bdd|sat|sim     equivalence engine for --verify
//                                 (default auto: simulation refutes, then
//                                 a BDD proof on tiny input counts and the
//                                 SAT miter sweep everywhere else; sim
//                                 alone is not an exact sign-off)
//   --quiet                       only print the summary line (suppresses
//                                 the per-strategy engine step counts)
//   --deadline-ms MS              hard deadline: a single run stops at the
//                                 next checkpoint (exit status 4); a batch
//                                 job is shed/stopped and reported, not
//                                 failed
//   --soft-budget-ms MS           soft budget: past it, remaining
//                                 supernodes degrade down the ladder and
//                                 the run still completes, verified
//   --degrade-ladder A,B          comma-separated degrade preset ladder
//                                 (default paper,shannon)
//
// Batch service mode (multiple inputs through flows::SynthesisService on
// the shared process pool):
//   --batch                       treat every positional arg as an input;
//                                 submit each as one async service job and
//                                 print results in submission order (also
//                                 implied by giving more than one input).
//                                 --flow additionally accepts "all" here
//                                 (all four Table II flows per input) and
//                                 --preset is carried per job; the engine
//                                 tuning flags above are rejected — the
//                                 service runs the default engine
//   --pool N                      shared-pool thread count (otherwise the
//                                 BDSMAJ_JOBS env var / all cores)
//   --max-jobs N                  jobs admitted concurrently (default:
//                                 pool size); --jobs is each job's budget
//
// `@name` uses a built-in generator from the paper's suite, e.g.
// `bdsmaj_cli @C6288` or `bdsmaj_cli "@Div 18 bit"`, and batch mode mixes
// them freely with BLIF files: `bdsmaj_cli --batch @C1355 @C6288 my.blif`.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "decomp/cone_cache.hpp"
#include "decomp/exact.hpp"
#include "decomp/strategy.hpp"
#include "flows/flows.hpp"
#include "flows/service.hpp"
#include "network/blif.hpp"
#include "network/cec.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace bdsmaj;

struct Options {
    std::string flow = "bdsmaj";
    std::string preset = "paper";
    std::vector<std::string> inputs;
    std::optional<std::string> out;
    std::optional<std::string> map_out;
    bool reorder = true;
    bool quick = false;
    bool verify = true;
    net::EquivEngine oracle = net::EquivEngine::kAuto;
    bool quiet = false;
    bool batch = false;
    /// True when an engine tuning flag (--no-reorder, --k-local,
    /// --k-global, --iterations) was given; the batch service path does
    /// not carry these, so it must reject rather than silently drop them.
    bool tuned = false;
    int jobs = 1;
    int pool = 0;
    int max_jobs = 0;
    bool cone_cache = true;
    int cone_cache_mb = -1;  ///< -1 = keep the library default (64 MiB)
    std::optional<std::string> exact_cache_path;
    /// Exact-cone effort (FlowOptions semantics: -1 = engine default).
    int exact_max_support = -1;
    long long exact_sat_budget = -1;
    int exact_sat_max_steps = -1;
    /// Symmetry-aware sifting tri-state (-1 = preset decides, 0/1 forced).
    int sift_symmetry = -1;
    /// Deadline / graceful-degradation knobs (<= 0 / empty = off).
    double deadline_ms = 0.0;
    double soft_budget_ms = 0.0;
    std::vector<std::string> degrade_ladder;
    decomp::MajDecompParams maj;
    /// Per-supernode BDD manager tuning (reordering budget). Carried by
    /// the service too, so batch mode supports these flags.
    bdd::ManagerParams manager;
};

/// The full option reference, printed by --help (stdout, exit 0). This
/// text is the source of truth for docs/cli.md: tools/gen_cli_docs.sh
/// regenerates the doc from it and tools/ci.sh fails on drift.
void print_help(std::FILE* to) {
    std::fprintf(to,
        "bdsmaj_cli - BDS-MAJ command-line synthesis tool\n"
        "\n"
        "usage: bdsmaj_cli [options] <input.blif | @benchmark> [more inputs in batch mode]\n"
        "\n"
        "flow selection:\n"
        "  --flow bdsmaj|bdspga|abc|dc  synthesis flow (default bdsmaj); batch\n"
        "                               mode additionally accepts \"all\"\n"
        "  --preset NAME                decomposition strategy preset for the BDS\n"
        "                               flows (default paper; see --list-presets);\n"
        "                               works in --batch too\n"
        "  --list-presets               print the preset catalog and exit\n"
        "  --no-maj                     shorthand for --flow bdspga\n"
        "\n"
        "output:\n"
        "  --out FILE                   write the optimized network as BLIF\n"
        "  --map-out FILE               write the mapped netlist as BLIF\n"
        "  --quiet                      only print the summary line\n"
        "\n"
        "engine tuning:\n"
        "  --no-reorder                 skip per-supernode sifting\n"
        "  --sift-symmetry              force symmetry-aware sifting on: detect\n"
        "                               symmetric variable groups and move them as\n"
        "                               blocks (default: the preset decides - on\n"
        "                               for symmetry/exact-aggressive/best-cost,\n"
        "                               off for the pinned paper baselines)\n"
        "  --no-sift-symmetry           force symmetry-aware sifting off\n"
        "  --sift-max-growth F          abort a sift direction past F x best size\n"
        "  --sift-converge              repeat sift passes until <1%% gain\n"
        "  --sift-max-vars N            sift at most N variables per pass\n"
        "  --k-local F / --k-global F   majority selection sizing factors\n"
        "  --iterations N               balancing iteration limit\n"
        "\n"
        "exact synthesis (the exact-* presets):\n"
        "  --exact-max-support N        widest cone served exactly: <= 4 uses the\n"
        "                               enumerated NPN classes, 5-6 engage the\n"
        "                               on-demand SAT backend (default 6)\n"
        "  --exact-sat-budget N         CDCL conflict budget per SAT-synthesized\n"
        "                               cone class (default 10000; 0 disables the\n"
        "                               SAT backend, exhaustion falls back to the\n"
        "                               heuristic ladder)\n"
        "  --exact-sat-steps N          longest SAT chain tried per class (default 8)\n"
        "  --exact-cache FILE           warm-start the exact-synthesis cache from\n"
        "                               FILE at startup (tolerant: a missing or\n"
        "                               corrupt file loads nothing) and save the\n"
        "                               materialized classes back on exit\n"
        "\n"
        "parallelism and caching:\n"
        "  --jobs N                     per-run worker budget (0 = all cores);\n"
        "                               output is identical at any setting\n"
        "  --cone-cache-mb N            memory budget of the process-wide cone\n"
        "                               result cache (default 64); repeated cones\n"
        "                               replay cached tapes - results are identical\n"
        "  --no-cone-cache              disable cone memoization entirely\n"
        "\n"
        "verification:\n"
        "  --no-verify                  skip the equivalence sign-off (default on)\n"
        "  --oracle auto|bdd|sat|sim    equivalence engine for the sign-off\n"
        "                               (default auto; sim alone is sampled, not\n"
        "                               an exact sign-off)\n"
        "\n"
        "deadlines and graceful degradation (BDS flows):\n"
        "  --deadline-ms MS             hard deadline, measured from the start of\n"
        "                               the run (batch: from submission, so queue\n"
        "                               wait counts). A single run stops at the\n"
        "                               next checkpoint and exits with status 4;\n"
        "                               a batch job is shed at dispatch or stopped\n"
        "                               in flight and reports \"deadline exceeded\"\n"
        "                               (a shed job is not a batch failure)\n"
        "  --soft-budget-ms MS          soft budget: once it expires, remaining\n"
        "                               supernodes are decomposed with cheaper\n"
        "                               settings down the degrade ladder instead\n"
        "                               of failing - the run completes and the\n"
        "                               result stays equivalent (the summary\n"
        "                               counts the degraded supernodes)\n"
        "  --degrade-ladder A,B         comma-separated preset ladder to fall\n"
        "                               down when degrading (default\n"
        "                               paper,shannon; a terminal plain-shannon\n"
        "                               stage is appended if missing)\n"
        "\n"
        "batch service mode (multiple inputs through the shared process pool):\n"
        "  --batch                      treat every positional arg as an input and\n"
        "                               submit each as one async service job (also\n"
        "                               implied by giving more than one input);\n"
        "                               results print in submission order\n"
        "  --pool N                     shared-pool thread count (otherwise the\n"
        "                               BDSMAJ_JOBS env var / all cores)\n"
        "  --max-jobs N                 jobs admitted concurrently (default: pool\n"
        "                               size); --jobs is each job's budget\n"
        "\n"
        "inputs:\n"
        "  @name                        built-in generator from the paper's suite,\n"
        "                               e.g. @C6288 or \"@Div 18 bit\"; --quick uses\n"
        "                               reduced widths; batch mode mixes @names and\n"
        "                               BLIF files freely\n");
}

int usage() {
    print_help(stderr);
    return 2;
}

int list_presets() {
    std::printf("decomposition strategy presets (--preset NAME):\n");
    for (const decomp::PresetInfo& p : decomp::preset_catalog()) {
        std::printf("  %-18s %s\n", p.name.c_str(), p.description.c_str());
    }
    return 0;
}

net::Network load_input(const std::string& name, bool quick) {
    if (!name.empty() && name[0] == '@') {
        return benchgen::benchmark_by_name(name.substr(1), quick);
    }
    return net::read_blif_file(name);
}

void print_result(const net::Network& input, const flows::SynthesisResult& result,
                  double seconds, bool verify, bool equivalent, bool quiet) {
    if (!quiet) {
        const net::NetworkStats s = result.optimized_stats;
        std::printf("flow %s on %s\n", result.flow_name.c_str(),
                    input.model_name().c_str());
        std::printf("  decomposed: AND=%d OR=%d XOR=%d XNOR=%d MAJ=%d total=%d\n",
                    s.and_nodes, s.or_nodes, s.xor_nodes, s.xnor_nodes, s.maj_nodes,
                    s.total());
        // Per-strategy engine step counts (BDS flows only; ABC/DC have no
        // engine activity).
        const decomp::EngineStats& e = result.engine_stats;
        if (e.total_steps() + e.literal_leaves > 0) {
            std::printf("  engine steps: sym=%d exact=%d maj=%d simple=%d gen-xor=%d "
                        "shannon=%d (total %d, literals %d)\n",
                        e.steps_for(decomp::StrategyKind::kSymmetric),
                        e.steps_for(decomp::StrategyKind::kExactSmallCone),
                        e.steps_for(decomp::StrategyKind::kMajority),
                        e.steps_for(decomp::StrategyKind::kSimpleDominator),
                        e.steps_for(decomp::StrategyKind::kGeneralizedXor),
                        e.steps_for(decomp::StrategyKind::kShannonMux),
                        e.total_steps(), e.literal_leaves);
            if (e.npn_cache_hits + e.npn_cache_misses > 0) {
                std::printf("  npn cache: hits=%lld misses=%lld\n", e.npn_cache_hits,
                            e.npn_cache_misses);
            }
            if (e.exact_wide_steps + e.exact_sat_synthesized +
                    e.exact_sat_fallbacks + e.exact_sat_cache_hits > 0) {
                std::printf("  exact sat: wide-cones=%d synthesized=%lld "
                            "cache-hits=%lld fallbacks=%lld conflicts=%lld\n",
                            e.exact_wide_steps, e.exact_sat_synthesized,
                            e.exact_sat_cache_hits, e.exact_sat_fallbacks,
                            e.exact_sat_conflicts);
            }
            // Reordering effort across the supernode managers.
            if (e.sift_swaps + e.sift_fast_swaps + e.sift_lb_aborts > 0) {
                std::printf("  reorder: swaps=%lld fast-swaps=%lld lb-aborts=%lld "
                            "peak-bdd-nodes=%lld\n",
                            e.sift_swaps, e.sift_fast_swaps, e.sift_lb_aborts,
                            e.peak_bdd_nodes);
            }
            if (e.sift_sym_groups + e.sift_block_swaps + e.symmetric_steps +
                    e.sym_cone_total > 0) {
                std::printf("  symmetry: sift-groups=%lld block-swaps=%lld "
                            "cones-found=%lld cones-served=%d\n",
                            e.sift_sym_groups, e.sift_block_swaps,
                            e.sym_cone_total, e.symmetric_steps);
            }
            if (e.cone_cache_hits + e.cone_cache_misses > 0) {
                std::printf("  cone cache: hits=%lld misses=%lld evictions=%lld "
                            "bytes=%lld\n",
                            e.cone_cache_hits, e.cone_cache_misses,
                            e.cone_cache_evictions, e.cone_cache_bytes);
            }
            // Graceful-degradation accounting: cones cheapened by an
            // expired soft budget or retried after a resource-guard trip.
            if (e.degraded_supernodes + e.resource_exhausted_cones > 0) {
                std::printf("  resilience: degraded-supernodes=%lld "
                            "guard-trips=%lld\n",
                            e.degraded_supernodes, e.resource_exhausted_cones);
            }
        }
    }
    std::printf("%s: area=%.2fum2 gates=%d delay=%.3fns opt_time=%.3fs%s\n",
                input.model_name().c_str(), result.mapped.area_um2,
                result.mapped.gate_count, result.mapped.delay_ns, seconds,
                verify ? (equivalent ? " [verified]" : " [MISMATCH]") : "");
}

/// Process-wide memoization summary (cone tape cache + exact NPN cache),
/// shared by the single and batch paths.
void print_cache_summary() {
    const decomp::ConeCacheStats cone = decomp::ConeCache::instance().stats();
    const decomp::ExactCacheStats exact = decomp::ExactSynthesisCache::instance().stats();
    std::printf("caches: cone hits=%lld misses=%lld evictions=%lld entries=%lld "
                "bytes=%lld | exact hits=%llu misses=%llu classes=%d "
                "wide-classes=%d\n",
                cone.hits, cone.misses, cone.evictions, cone.entries, cone.bytes,
                static_cast<unsigned long long>(exact.hits),
                static_cast<unsigned long long>(exact.misses), exact.classes_cached,
                exact.wide_classes_cached);
}

/// --exact-cache startup warm-load; tolerant of a missing/corrupt file.
void load_exact_cache(const Options& opt) {
    if (!opt.exact_cache_path) return;
    const int n = decomp::ExactSynthesisCache::instance().load_from_file(*opt.exact_cache_path);
    if (!opt.quiet && n > 0) {
        std::printf("exact cache: loaded %d classes from %s\n", n,
                    opt.exact_cache_path->c_str());
    }
}

/// --exact-cache exit save (atomic rename; best-effort).
void save_exact_cache(const Options& opt) {
    if (!opt.exact_cache_path) return;
    const int n = decomp::ExactSynthesisCache::instance().save_to_file(*opt.exact_cache_path);
    if (n < 0) {
        std::fprintf(stderr, "warning: could not save exact cache to %s\n",
                     opt.exact_cache_path->c_str());
    } else if (!opt.quiet) {
        std::printf("exact cache: saved %d classes to %s\n", n,
                    opt.exact_cache_path->c_str());
    }
}

bool verify_result(const net::Network& input, const flows::SynthesisResult& result,
                   net::EquivEngine oracle) {
    net::CecParams cec;
    cec.engine = oracle;
    for (const net::Network* stage : {&result.optimized, &result.mapped.netlist}) {
        const auto eq = net::check_equivalent(input, *stage, cec);
        if (!eq.equivalent) {
            std::fprintf(stderr, "VERIFICATION FAILED (engine %s): %s\n",
                         net::equiv_engine_name(eq.engine), eq.reason.c_str());
            return false;
        }
        if (!eq.exact) {
            // Only the sim engine leaves a sampled verdict; make the
            // weaker guarantee impossible to miss.
            std::fprintf(stderr, "note: --oracle sim agreement is sampled, "
                                 "not an exact sign-off\n");
        }
    }
    return true;
}

/// Batch service mode: every input becomes one async job on the shared
/// scheduler; results print in submission order regardless of completion
/// order, so the output is stable.
int run_batch(const Options& opt) {
    if (opt.out || opt.map_out) {
        std::fprintf(stderr, "--out/--map-out are per-input; not available in "
                             "batch mode\n");
        return 2;
    }
    if (opt.tuned) {
        std::fprintf(stderr,
                     "--no-reorder/--k-local/--k-global/--iterations are not "
                     "supported in batch mode (the service runs the default "
                     "engine configuration); run inputs individually to tune\n");
        return 2;
    }
    if (opt.pool > 0) runtime::configure_global_pool(opt.pool);

    std::vector<net::Network> inputs;
    inputs.reserve(opt.inputs.size());
    for (const std::string& name : opt.inputs) {
        try {
            inputs.push_back(load_input(name, opt.quick));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error reading %s: %s\n", name.c_str(), e.what());
            return 1;
        }
    }

    flows::ServiceParams sp;
    sp.max_concurrent_jobs = opt.max_jobs;
    flows::SynthesisService service(sp);
    flows::SynthesisJobParams jp;
    jp.jobs = opt.jobs;
    jp.flow = opt.flow;
    jp.preset = opt.preset;
    jp.manager = opt.manager;
    jp.sift_symmetry = opt.sift_symmetry;
    jp.exact_max_support = opt.exact_max_support;
    jp.exact_sat_budget = opt.exact_sat_budget;
    jp.exact_sat_max_steps = opt.exact_sat_max_steps;
    jp.cone_cache = opt.cone_cache;
    // Verification runs inside the job (service-side): a failed sign-off
    // fails that job's future instead of handing out a wrong network.
    jp.verify = opt.verify;
    jp.oracle = opt.oracle;
    jp.deadline_ms = opt.deadline_ms;
    jp.soft_budget_ms = opt.soft_budget_ms;
    jp.degrade_ladder = opt.degrade_ladder;

    std::vector<flows::SynthesisService::Submission> submissions;
    submissions.reserve(inputs.size());
    for (const net::Network& input : inputs) {
        submissions.push_back(service.submit(input, jp));  // keep the original
    }

    bool all_ok = true;
    for (std::size_t i = 0; i < submissions.size(); ++i) {
        try {
            const flows::FlowResult r = submissions[i].result.get();
            if (r.status == flows::JobStatus::kDeadlineExceeded) {
                // Deliberate shedding, not a failure: the batch's exit
                // status is unaffected (the summary line counts them).
                std::printf("%s: deadline exceeded%s\n",
                            inputs[i].model_name().c_str(),
                            r.start_order == flows::FlowResult::kNoStartOrder
                                ? " (shed before start)"
                                : " (stopped in flight)");
                continue;
            }
            if (r.status == flows::JobStatus::kCancelled) {
                std::printf("%s: cancelled\n", inputs[i].model_name().c_str());
                continue;
            }
            // One entry for a named flow, four for --flow all. The job
            // already signed off each result; surface its verdict.
            for (const flows::SynthesisResult& sr : r.results.at(0)) {
                const bool equivalent =
                    !opt.verify ||
                    (sr.equivalence.has_value() && sr.equivalence->equivalent);
                all_ok = all_ok && equivalent;
                print_result(inputs[i], sr, r.seconds, opt.verify, equivalent,
                             opt.quiet);
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "job %s failed: %s\n", opt.inputs[i].c_str(),
                         e.what());
            all_ok = false;
        }
    }
    const flows::ServiceStats st = service.stats();
    std::printf("service: %d completed, %d failed, %ld networks, "
                "%ld mapped gates, pool=%d threads\n",
                st.completed, st.failed, st.networks_synthesized, st.mapped_gates,
                runtime::global_pool_threads());
    if (st.deadline_exceeded + st.degraded_supernodes > 0) {
        std::printf("resilience: %d deadline-exceeded, %lld degraded "
                    "supernodes\n",
                    st.deadline_exceeded, st.degraded_supernodes);
    }
    print_cache_summary();
    return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            print_help(stdout);
            return 0;
        } else if (arg == "--flow") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.flow = v;
        } else if (arg == "--preset") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.preset = v;
        } else if (arg == "--list-presets") {
            return list_presets();
        } else if (arg == "--out") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.out = v;
        } else if (arg == "--map-out") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.map_out = v;
        } else if (arg == "--no-maj") {
            opt.flow = "bdspga";
        } else if (arg == "--no-reorder") {
            opt.reorder = false;
            opt.tuned = true;
        } else if (arg == "--sift-symmetry") {
            opt.sift_symmetry = 1;
        } else if (arg == "--no-sift-symmetry") {
            opt.sift_symmetry = 0;
        } else if (arg == "--sift-max-growth") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.manager.sift_max_growth = std::atof(v);
        } else if (arg == "--sift-converge") {
            opt.manager.sift_converge = true;
        } else if (arg == "--sift-max-vars") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.manager.sift_max_vars = std::atoi(v);
        } else if (arg == "--k-local") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.maj.k_local = std::atof(v);
            opt.tuned = true;
        } else if (arg == "--k-global") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.maj.k_global = std::atof(v);
            opt.tuned = true;
        } else if (arg == "--iterations") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.maj.max_iterations = std::atoi(v);
            opt.tuned = true;
        } else if (arg == "--jobs") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.jobs = std::atoi(v);
        } else if (arg == "--pool") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.pool = std::atoi(v);
        } else if (arg == "--max-jobs") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.max_jobs = std::atoi(v);
        } else if (arg == "--cone-cache-mb") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.cone_cache_mb = std::atoi(v);
        } else if (arg == "--no-cone-cache") {
            opt.cone_cache = false;
        } else if (arg == "--exact-cache") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.exact_cache_path = v;
        } else if (arg == "--exact-max-support") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.exact_max_support = std::atoi(v);
        } else if (arg == "--exact-sat-budget") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.exact_sat_budget = std::atoll(v);
        } else if (arg == "--exact-sat-steps") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.exact_sat_max_steps = std::atoi(v);
        } else if (arg == "--deadline-ms") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.deadline_ms = std::atof(v);
        } else if (arg == "--soft-budget-ms") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.soft_budget_ms = std::atof(v);
        } else if (arg == "--degrade-ladder") {
            const char* v = next();
            if (v == nullptr) return usage();
            opt.degrade_ladder.clear();
            std::string rung;
            for (const char* p = v;; ++p) {
                if (*p == ',' || *p == '\0') {
                    if (!rung.empty()) opt.degrade_ladder.push_back(rung);
                    rung.clear();
                    if (*p == '\0') break;
                } else {
                    rung.push_back(*p);
                }
            }
        } else if (arg == "--batch") {
            opt.batch = true;
        } else if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--no-verify") {
            opt.verify = false;
        } else if (arg == "--oracle") {
            const char* v = next();
            if (v == nullptr) return usage();
            try {
                opt.oracle = net::parse_equiv_engine(v);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "%s\n", e.what());
                return usage();
            }
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage();
        } else {
            opt.inputs.push_back(arg);
        }
    }
    if (opt.inputs.empty()) return usage();
    if (!decomp::is_known_preset(opt.preset)) {
        std::fprintf(stderr, "unknown preset \"%s\"; --list-presets shows the "
                             "catalog\n", opt.preset.c_str());
        return 2;
    }
    if (opt.preset != "paper" && (opt.flow == "abc" || opt.flow == "dc")) {
        std::fprintf(stderr, "--preset only applies to the BDS flows "
                             "(bdsmaj/bdspga/all)\n");
        return 2;
    }
    for (const std::string& rung : opt.degrade_ladder) {
        if (!decomp::is_known_preset(rung)) {
            std::fprintf(stderr, "unknown preset \"%s\" in --degrade-ladder; "
                                 "--list-presets shows the catalog\n",
                         rung.c_str());
            return 2;
        }
    }
    if ((opt.deadline_ms > 0 || opt.soft_budget_ms > 0 ||
         !opt.degrade_ladder.empty()) &&
        (opt.flow == "abc" || opt.flow == "dc")) {
        std::fprintf(stderr, "--deadline-ms/--soft-budget-ms/--degrade-ladder "
                             "only apply to the BDS flows (bdsmaj/bdspga/all)\n");
        return 2;
    }
    if (opt.cone_cache_mb >= 0) {
        decomp::ConeCache::instance().set_budget_bytes(
            static_cast<std::size_t>(opt.cone_cache_mb) << 20);
    }
    load_exact_cache(opt);
    if (opt.batch || opt.inputs.size() > 1) {
        const int rc = run_batch(opt);
        save_exact_cache(opt);
        return rc;
    }

    if (opt.pool > 0) runtime::configure_global_pool(opt.pool);
    net::Network input;
    try {
        input = load_input(opt.inputs[0], opt.quick);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error reading input: %s\n", e.what());
        return 1;
    }

    flows::SynthesisResult result;
    if (opt.flow == "abc") {
        result = flows::flow_abc(input);
    } else if (opt.flow == "dc") {
        result = flows::flow_dc(input);
    } else if (opt.flow == "bdsmaj" || opt.flow == "bdspga") {
        decomp::DecompFlowParams params;
        params.engine.use_majority = opt.flow == "bdsmaj";
        params.engine.maj = opt.maj;
        params.engine.preset = opt.preset;
        if (opt.exact_max_support >= 0) {
            params.engine.exact_max_support = opt.exact_max_support;
        }
        if (opt.exact_sat_budget >= 0) {
            params.engine.exact_sat_budget = opt.exact_sat_budget;
        }
        if (opt.exact_sat_max_steps >= 0) {
            params.engine.exact_sat_max_steps = opt.exact_sat_max_steps;
        }
        params.manager = opt.manager;
        params.sift_symmetry = opt.sift_symmetry;
        params.reorder = opt.reorder;
        params.cone_cache = opt.cone_cache;
        params.jobs = opt.jobs;
        const auto t0 = std::chrono::steady_clock::now();
        if (opt.deadline_ms > 0) {
            params.deadline = t0 + std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(opt.deadline_ms));
        }
        if (opt.soft_budget_ms > 0) {
            params.soft_budget = t0 + std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(opt.soft_budget_ms));
        }
        params.degrade_ladder = opt.degrade_ladder;
        decomp::DecompFlowResult d;
        try {
            d = decomp::decompose_network(input, params);
        } catch (const decomp::DeadlineExceeded&) {
            std::fprintf(stderr, "%s: deadline exceeded (--deadline-ms %g); "
                                 "no result produced\n",
                         input.model_name().c_str(), opt.deadline_ms);
            return 4;
        }
        result.flow_name = flows::decorated_flow_name(
            opt.flow == "bdsmaj" ? "BDS-MAJ" : "BDS-PGA", opt.preset);
        result.engine_stats = d.engine_stats;
        result.optimized = std::move(d.network);
        result.optimized_stats = result.optimized.stats();
        result.optimize_seconds = d.seconds;
        result.mapped = mapping::map_network(result.optimized, flows::default_library());
    } else {
        std::fprintf(stderr, "unknown flow %s\n", opt.flow.c_str());
        return usage();
    }

    bool equivalent = true;
    if (opt.verify) equivalent = verify_result(input, result, opt.oracle);
    print_result(input, result, result.optimize_seconds, opt.verify, equivalent,
                 opt.quiet);
    if (!opt.quiet) print_cache_summary();

    if (opt.out) net::write_blif_file(result.optimized, *opt.out);
    if (opt.map_out) net::write_blif_file(result.mapped.netlist, *opt.map_out);
    save_exact_cache(opt);
    return equivalent ? 0 : 1;
}
