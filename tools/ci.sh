#!/usr/bin/env bash
# CI entry point: tier-1 verify (build + ctest) plus the bench harness in
# smoke configuration, failing on a >20% wall-time regression (or >20%
# ops/sec drop) against the smoke_reference block of the committed
# BENCH_core.json — and on any output-fingerprint drift, which would mean
# the synthesis results themselves changed. The smoke run also pushes the
# suite through the parallel pipeline at jobs = 1/2/4 and fails if the
# jobs=4 fingerprints differ from jobs=1 (thread-count determinism), and
# runs the equivalence-oracle shootout, failing on any verdict drift or a
# >tolerance SAT wall-time regression. The cone-memoization sweep fails if
# a cached run's bytes drift from the cache-off run, if the C6288 hit rate
# drops below its floor, or if the cold path regresses past the tolerance.
# The exact-SAT suite fails on any verdict/gate-count/conflict drift and
# on a fallback-rate increase. The symmetry section fails if block
# sifting stops halving the swap count on the symmetric-heavy circuits,
# finds no groups there, or changes post-sift sizes; the `paper` preset
# fingerprint stays byte-identical with the feature compiled in (it is
# off on the pinned path). Documentation is gated too: docs/cli.md
# must byte-match what tools/gen_cli_docs.sh regenerates from the fresh
# binary, and every advertised preset must appear in README.md.
#
# The chaos stage rebuilds the core with the deterministic fault-injection
# hooks compiled in (-DBDSMAJ_FAULT_INJECT=ON) under AddressSanitizer and
# runs the `chaos` ctest label: injected faults at the worker/cache/SAT/
# allocator sites must surface as clean job failures — never memory errors,
# stranded futures, or corrupted caches. The resilience bench section is
# gated on exact invariants: deadline shedding sheds every expired job,
# budget-degraded jobs still complete verified, resource-guard trips stay
# contained per cone, and arming the degradation machinery without
# triggering it changes no output byte.
#
#   tools/ci.sh                        # full gate
#   BDSMAJ_CI_SKIP_BENCH=1 ...         # skip the bench gate
#   BDSMAJ_CI_SKIP_CHAOS=1 ...         # skip the fault-injection stage
#   BDSMAJ_CI_TOLERANCE=35 ...         # widen the regression tolerance (%)
#   BDSMAJ_CI_BENCH_MODE=fingerprint   # skip wall-time/rate comparisons,
#                                      # enforce only output fingerprints —
#                                      # for shared/heterogeneous runners
#                                      # where absolute times measured on
#                                      # the authoring machine are
#                                      # meaningless
#   BDSMAJ_CI_JOBS=4 ...               # build/test parallelism (default:
#                                      # nproc); matrix runners set this
#   BDSMAJ_CI_BUILD_TYPE=Debug ...     # CMAKE_BUILD_TYPE (default Release)
#   BDSMAJ_CI_CMAKE_ARGS="..." ...     # extra configure args, word-split
#                                      # (compiler/launcher/sanitizer picks)
set -euo pipefail

cd "$(dirname "$0")/.."
REPO="$PWD"
TOLERANCE="${BDSMAJ_CI_TOLERANCE:-20}"
BENCH_MODE="${BDSMAJ_CI_BENCH_MODE:-full}"
JOBS="${BDSMAJ_CI_JOBS:-$(nproc)}"
BUILD_TYPE="${BDSMAJ_CI_BUILD_TYPE:-Release}"
read -r -a EXTRA_CMAKE_ARGS <<< "${BDSMAJ_CI_CMAKE_ARGS:-}"

echo "==> tier-1: configure + build (${BUILD_TYPE}, -j${JOBS})"
cmake -B build -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      ${EXTRA_CMAKE_ARGS[@]+"${EXTRA_CMAKE_ARGS[@]}"} >/dev/null
cmake --build build -j"$JOBS"

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j"$JOBS")

echo "==> docs: CLI reference drift check"
# docs/cli.md is generated from the binary's own --help/--list-presets
# output; regenerate it against the fresh build and fail on any byte
# difference — a flag added (or reworded) without re-running
# tools/gen_cli_docs.sh is documentation drift.
tools/gen_cli_docs.sh build/bdsmaj_cli /tmp/bdsmaj_cli_docs_check.md >/dev/null
if ! diff -u docs/cli.md /tmp/bdsmaj_cli_docs_check.md; then
    echo "DOC DRIFT: docs/cli.md does not match the built CLI's --help/"
    echo "--list-presets output. Run tools/gen_cli_docs.sh and commit."
    exit 1
fi

echo "==> docs: README preset coverage check"
# Every preset the binary advertises must at least be named in the
# README's preset table; a new preset that skips the README is drift too.
./build/bdsmaj_cli --list-presets | awk 'NR > 1 { print $1 }' | while read -r preset; do
    if ! grep -q -- "$preset" README.md; then
        echo "DOC DRIFT: preset \"$preset\" is missing from README.md"
        exit 1
    fi
done

if [[ "${BDSMAJ_CI_SKIP_CHAOS:-0}" != "0" ]]; then
    echo "==> chaos stage skipped (BDSMAJ_CI_SKIP_CHAOS)"
else
    echo "==> chaos: fault-injection suite (BDSMAJ_FAULT_INJECT + ASan)"
    # Separate build tree: the fault hooks are compiled into the core
    # library, and the deterministic tier-1 binaries must never carry
    # them. Only the chaos binary is built; `ctest -L chaos` selects its
    # tests (they GTEST_SKIP themselves if the hooks are absent, so a
    # passing run here proves the hooks actually fired).
    cmake -B build-chaos -S . -DCMAKE_BUILD_TYPE=Release \
          -DBDSMAJ_FAULT_INJECT=ON -DBDSMAJ_SANITIZE=address \
          -DBDSMAJ_BUILD_BENCH=OFF -DBDSMAJ_BUILD_EXAMPLES=OFF \
          ${EXTRA_CMAKE_ARGS[@]+"${EXTRA_CMAKE_ARGS[@]}"} >/dev/null
    cmake --build build-chaos -j"$JOBS" --target bdsmaj_chaos_tests
    (cd build-chaos && ctest -L chaos --output-on-failure -j"$JOBS")
fi

if [[ "${BDSMAJ_CI_SKIP_BENCH:-0}" != "0" ]]; then
    echo "==> bench gate skipped (BDSMAJ_CI_SKIP_BENCH)"
    exit 0
fi

echo "==> bench: smoke run"
BDSMAJ_BENCH_SMOKE=1 ./build/bench_core /tmp/bdsmaj_bench_smoke.json

echo "==> bench: compare against committed BENCH_core.json (tolerance ${TOLERANCE}%, mode ${BENCH_MODE})"
python3 - "$REPO/BENCH_core.json" /tmp/bdsmaj_bench_smoke.json "$TOLERANCE" "$BENCH_MODE" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
if "smoke_reference" not in doc:
    sys.exit("BENCH_core.json has no smoke_reference block — it was probably "
             "overwritten by a raw bench_core run; restore the curated file "
             "(see docs/performance.md)")
committed = doc["smoke_reference"]
fresh = json.load(open(sys.argv[2]))
tol = float(sys.argv[3]) / 100.0
compare_times = sys.argv[4] != "fingerprint"
failures = []

# Sub-tenth-of-a-second references are scheduler-jitter territory: a
# regression must exceed the tolerance AND an absolute floor to count.
ABS_FLOOR_S = 0.05

def check_time(name, ref, now):
    if now > ref * (1.0 + tol) and now - ref > ABS_FLOOR_S:
        failures.append(f"{name}: {now:.3f}s vs committed {ref:.3f}s (> +{tol:.0%})")

def check_rate(name, ref, now):
    if now < ref * (1.0 - tol):
        failures.append(f"{name}: {now:.0f}/s vs committed {ref:.0f}/s (< -{tol:.0%})")

if compare_times:
    check_time("table2_synthesis", committed["table2_synthesis"]["seconds"],
               fresh["table2_synthesis"]["seconds"])
    check_time("ablation_mdom", committed["ablation_mdom"]["seconds"],
               fresh["ablation_mdom"]["seconds"])
    for op in ("ite", "and", "xor", "maj"):
        check_rate(f"ops.{op}", committed["ops_per_sec"][op], fresh["ops_per_sec"][op])
    check_rate("sift", committed["sift_nodes_per_sec"], fresh["sift_nodes_per_sec"])

for section in ("table2_synthesis", "ablation_mdom"):
    if committed[section]["fingerprint"] != fresh[section]["fingerprint"]:
        failures.append(f"{section}: output fingerprint drifted — synthesis "
                        f"results changed:\n  committed {committed[section]['fingerprint']}"
                        f"\n  fresh     {fresh[section]['fingerprint']}")

# Reordering: the interaction/lower-bound machinery must not move the
# final variable orders (post-sift node counts are the fingerprint), and
# the avoided-swap fraction on the MCNC sweep is a contract of the
# optimization, not just telemetry.
reorder = fresh.get("reorder")
if reorder is None:
    failures.append("reorder: section missing from fresh bench run")
else:
    committed_reorder = committed.get("reorder")
    if committed_reorder is None:
        failures.append("reorder: section missing from committed "
                        "smoke_reference — regenerate BENCH_core.json")
    elif committed_reorder["post_sift_nodes"] != reorder["post_sift_nodes"]:
        failures.append("reorder: post-sift node-count fingerprint drifted — "
                        "sifting now produces different variable orders:\n"
                        f"  committed {committed_reorder['post_sift_nodes']}\n"
                        f"  fresh     {reorder['post_sift_nodes']}")
    if reorder["mcnc_skipped_or_pruned_fraction"] <= 0.5:
        failures.append("reorder: <50% of attempted swaps skipped or pruned "
                        f"on the MCNC sweep "
                        f"({reorder['mcnc_skipped_or_pruned_fraction']:.1%})")
    if "dalu_dynamic_sift" not in reorder:
        failures.append("reorder: dalu dynamic-sifting entry missing — the "
                        "re-admitted circuit dropped out of the sweep")

# Symmetry-aware reordering: on the symmetric-heavy generator circuits
# the with-symmetry sift must cut the swap count at least in half (in
# practice one total group covers every variable and the count drops to
# zero — sifting a single unit has nowhere to go), it must actually find
# a group on every circuit, and both modes must land on the same
# post-sift node count: symmetry changes how the order is searched, never
# the size it reaches on totally symmetric functions. The `paper`
# byte-identity gate below is the other half of the contract — symmetry
# stays off on the pinned path.
symmetry = fresh.get("symmetry")
if symmetry is None:
    failures.append("symmetry: section missing from fresh bench run")
else:
    for c in symmetry["circuits"]:
        if c["symmetry_swaps"] * 2 > c["plain_swaps"]:
            failures.append(f"symmetry: {c['name']} swap reduction below the "
                            f"50% floor ({c['plain_swaps']} -> "
                            f"{c['symmetry_swaps']})")
        if c["groups"] < 1:
            failures.append(f"symmetry: {c['name']} — no symmetry group "
                            "detected on a totally symmetric circuit")
        if c["post_sift_nodes_plain"] != c["post_sift_nodes_symmetry"]:
            failures.append(f"symmetry: {c['name']} post-sift node counts "
                            f"diverge between modes "
                            f"({c['post_sift_nodes_plain']} vs "
                            f"{c['post_sift_nodes_symmetry']})")

# Thread-count determinism: the parallel pipeline must produce identical
# outputs at jobs = 1/2/4. The harness compares the per-level fingerprints
# itself; any mismatch (in particular jobs=4 vs jobs=1) fails the gate.
scaling = fresh.get("thread_scaling")
if scaling is None:
    failures.append("thread_scaling: section missing from fresh bench run")
elif not scaling["fingerprints_identical"]:
    failures.append("thread_scaling: output fingerprints drift across job "
                    f"counts:\n  levels {scaling['levels']}")

# Strategy presets: the `paper` preset is contractually byte-identical to
# the published ladder — its decomposed/mapped gate counts and engine-step
# fingerprint must match the committed reference exactly (npn cache
# telemetry is process-history dependent and deliberately outside the
# fingerprint). Every preset must pass the equivalence oracle, and
# `exact-aggressive` must strictly beat `paper` on mapped gates.
presets = fresh.get("preset_sweep")
if presets is None:
    failures.append("preset_sweep: section missing from fresh bench run")
else:
    fresh_by_name = {e["preset"]: e for e in presets["entries"]}
    committed_presets = committed.get("preset_sweep")
    if committed_presets is None:
        failures.append("preset_sweep: section missing from committed "
                        "smoke_reference — regenerate BENCH_core.json")
    else:
        for e in committed_presets["entries"]:
            got = fresh_by_name.get(e["preset"])
            if got is None:
                failures.append(f"preset_sweep: preset {e['preset']} missing "
                                "from fresh run")
            elif e["preset"] == "paper" and got["fingerprint"] != e["fingerprint"]:
                failures.append("preset_sweep: `paper` fingerprint drifted — the "
                                "default pipeline no longer matches the published "
                                f"ladder:\n  committed {e['fingerprint']}"
                                f"\n  fresh     {got['fingerprint']}")
    for e in presets["entries"]:
        if e["equivalent"] != presets["circuits"]:
            failures.append(f"preset_sweep: preset {e['preset']} failed the "
                            f"equivalence oracle ({e['equivalent']}/"
                            f"{presets['circuits']})")
    paper = fresh_by_name.get("paper")
    exact = fresh_by_name.get("exact-aggressive")
    if paper and exact and not (exact["fingerprint"]["mapped_gates"]
                                < paper["fingerprint"]["mapped_gates"]):
        failures.append("preset_sweep: exact-aggressive no longer strictly "
                        f"reduces mapped gates ({exact['fingerprint']['mapped_gates']}"
                        f" vs paper {paper['fingerprint']['mapped_gates']})")

# Async service determinism: concurrent SynthesisService jobs must produce
# the same aggregate fingerprint as the serial table2 sweep, and every
# submitted job must complete.
service = fresh.get("service_throughput")
if service is None:
    failures.append("service_throughput: section missing from fresh bench run")
elif not service["matches_serial"]:
    failures.append("service_throughput: concurrent service results drifted "
                    f"from the serial run: {service['fingerprint']} "
                    f"({service['completed']}/{service['jobs']} completed)")
# Cone memoization: the cache must be invisible in the results (every
# cached run byte-identical to the cache-off run, including across service
# jobs), must actually hit on the self-similar C6288 workload, and must
# not tax the cold path beyond the shared tolerance.
cone = fresh.get("cone_cache")
if cone is None:
    failures.append("cone_cache: section missing from fresh bench run")
else:
    for c in cone["circuits"]:
        if not c["matches_cache_off"]:
            failures.append(f"cone_cache: {c['name']} cached output drifted "
                            "from the cache-off bytes")
    if not cone["service_identical"]:
        failures.append("cone_cache: warm second service job returned "
                        "different bytes than the cold first job")
    c6288 = next((c for c in cone["circuits"] if c["name"] == "C6288"), None)
    if c6288 is None:
        failures.append("cone_cache: C6288 missing from the sweep")
    elif c6288["hit_rate"] < 0.6:
        failures.append("cone_cache: C6288 cold hit rate fell below the 60% "
                        f"floor ({c6288['hit_rate']:.1%}) — canonicalization "
                        "stopped unifying the multiplier's repeated cones")
    if compare_times:
        for c in cone["circuits"]:
            check_time(f"cone_cache.{c['name']}.cold_vs_off",
                       c["off_seconds"], c["cold_seconds"])

# Resilience: every invariant is exact (no timing), so the fresh section
# gates directly without a committed reference. Shedding must be precise
# — every expired job shed, none run; budget-degraded jobs must complete
# AND verify (degradation trades quality, never correctness); the
# resource guard must trip per cone and still yield an equivalent
# network; and arming the degradation machinery without triggering it
# must leave the output byte-identical to a default run.
res = fresh.get("resilience")
if res is None:
    failures.append("resilience: section missing from fresh bench run")
else:
    if res["shed"]["deadline_exceeded"] != res["shed"]["jobs"]:
        failures.append("resilience: expired-deadline shedding not exact "
                        f"({res['shed']['deadline_exceeded']}/"
                        f"{res['shed']['jobs']} jobs shed)")
    deg = res["degraded"]
    if deg["completed"] != deg["jobs"] or deg["verified"] != deg["jobs"]:
        failures.append("resilience: budget-degraded jobs did not all "
                        f"complete verified ({deg['completed']} completed, "
                        f"{deg['verified']} verified of {deg['jobs']})")
    if deg["degraded_supernodes"] <= 0:
        failures.append("resilience: expired soft budget degraded no "
                        "supernodes — the ladder never engaged")
    if res["guard"]["resource_exhausted_cones"] <= 0:
        failures.append("resilience: the max_live_nodes ceiling never "
                        "tripped — the resource guard is dead")
    if not res["guard"]["equivalent"]:
        failures.append("resilience: guard-degraded network lost "
                        "equivalence")
    if not res["armed_but_idle_identical"]:
        failures.append("resilience: armed-but-untriggered degradation "
                        "changed the output bytes")

if fresh["table2_synthesis"]["verified"] != fresh["table2_synthesis"]["circuits"]:
    failures.append("table2_synthesis: equivalence verification failed")
if fresh["ablation_mdom"]["equivalent"] != fresh["ablation_mdom"]["runs"]:
    failures.append("ablation_mdom: equivalence verification failed "
                    f"({fresh['ablation_mdom']['equivalent']}/{fresh['ablation_mdom']['runs']})")

# Exact SAT synthesis: every verdict, gate count, and conflict total in
# the suite is a pure function of (tt, n, params) — any drift means the
# encoding, the search order, or the solver changed behavior. The
# fallback rate (kUnknown verdicts at the default budget) must not rise:
# that is the fraction of cones the strategy pipeline would lose to the
# heuristic ladder.
exact_sat = fresh.get("exact_sat")
if exact_sat is None:
    failures.append("exact_sat: section missing from fresh bench run")
else:
    committed_es = committed.get("exact_sat")
    if committed_es is None:
        failures.append("exact_sat: section missing from committed "
                        "smoke_reference — regenerate BENCH_core.json")
    else:
        committed_fp = {e["name"]: e["fingerprint"]
                        for e in committed_es["entries"]}
        for e in exact_sat["entries"]:
            ref = committed_fp.get(e["name"])
            if ref is None:
                failures.append(f"exact_sat: function {e['name']} missing "
                                "from committed smoke_reference — regenerate "
                                "BENCH_core.json")
            elif e["fingerprint"] != ref:
                failures.append(f"exact_sat: result drifted on {e['name']}:\n"
                                f"  committed {ref}\n"
                                f"  fresh     {e['fingerprint']}")
        if exact_sat["fallback_rate"] > committed_es["fallback_rate"] + 1e-9:
            failures.append("exact_sat: fallback rate rose to "
                            f"{exact_sat['fallback_rate']:.1%} (committed "
                            f"{committed_es['fallback_rate']:.1%}) — more "
                            "cones now exhaust the budget and fall back")

# Equivalence-oracle shootout: every circuit must keep an exact `proved`
# verdict (drift means the sign-off got weaker or wrong), and the SAT
# engine's aggregate wall time is regression-gated like the other
# sections — the whole point of the oracle is that exact sign-off stays
# cheap where the BDD is intractable.
oracle = fresh.get("oracle")
if oracle is None:
    failures.append("oracle: section missing from fresh bench run")
else:
    for c in oracle["circuits"]:
        if not (c["fingerprint"]["equivalent"] and c["fingerprint"]["exact"]):
            failures.append(f"oracle: {c['name']} lost its exact proof: "
                            f"{c['fingerprint']}")
    committed_oracle = committed.get("oracle")
    if committed_oracle is None:
        failures.append("oracle: section missing from committed "
                        "smoke_reference — regenerate BENCH_core.json")
    else:
        committed_fp = {c["name"]: c["fingerprint"]
                        for c in committed_oracle["circuits"]}
        for c in oracle["circuits"]:
            ref = committed_fp.get(c["name"])
            if ref is None:
                failures.append(f"oracle: circuit {c['name']} missing from "
                                "committed smoke_reference — regenerate "
                                "BENCH_core.json")
            elif c["fingerprint"] != ref:
                failures.append(f"oracle: verdict drifted on {c['name']}:\n"
                                f"  committed {ref}\n"
                                f"  fresh     {c['fingerprint']}")
        if compare_times:
            check_time("oracle.sat_total",
                       committed_oracle["sat_total_seconds"],
                       oracle["sat_total_seconds"])

if failures:
    print("BENCH REGRESSION GATE FAILED:")
    for f in failures:
        print("  -", f)
    sys.exit(1)
print("bench gate OK")
EOF

echo "==> ci.sh: all gates passed"
