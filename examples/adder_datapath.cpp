// Datapath scenario: synthesize a 16-bit carry-lookahead adder with all
// four Table II flows and compare area / gate count / delay, showing why
// majority decomposition matters on carry-dominated arithmetic.

#include <cstdio>

#include "benchgen/arith.hpp"
#include "flows/flows.hpp"
#include "network/simulate.hpp"

int main() {
    using namespace bdsmaj;
    const net::Network input = benchgen::make_cla_adder(16);
    std::printf("circuit: 16-bit carry-lookahead adder (%d logic nodes)\n\n",
                input.stats().total());
    std::printf("%-8s | %9s %6s %8s | %4s %4s %5s | %s\n", "flow", "area um2",
                "cells", "delay ns", "MAJ", "XOR*", "INV", "equivalent");
    std::printf("%s\n", std::string(72, '-').c_str());
    for (const flows::SynthesisResult& r : flows::run_all_flows(input)) {
        const net::NetworkStats s = r.mapped.netlist.stats();
        const net::EquivalenceResult eq =
            net::check_equivalent(input, r.mapped.netlist);
        std::printf("%-8s | %9.2f %6d %8.3f | %4d %4d %5d | %s\n",
                    r.flow_name.c_str(), r.mapped.area_um2, r.mapped.gate_count,
                    r.mapped.delay_ns, s.maj_nodes, s.xor_nodes + s.xnor_nodes,
                    s.not_nodes, eq.equivalent ? "yes" : "NO");
    }
    std::printf("\nXOR* counts both XOR2 and XNOR2 cells.\n");
    std::printf("The BDS-MAJ row keeps the carry chain as MAJ3 cells; the\n"
                "majority-blind flows re-express it in NAND/NOR logic.\n");
    return 0;
}
