// The paper's running example (Fig. 1, SIII): build F = ab + bc + ac,
// inspect its BDD and m-dominator, and watch Algorithm 1 reduce the
// decomposition to Maj(a, b, c). Writes fig1.dot for rendering.

#include <cstdio>
#include <fstream>

#include "decomp/dominators.hpp"
#include "decomp/maj_decomp.hpp"

int main() {
    using namespace bdsmaj;
    bdd::Manager mgr(3);
    const bdd::Bdd a = mgr.var_bdd(0), b = mgr.var_bdd(1), c = mgr.var_bdd(2);
    const bdd::Bdd f = (a & b) | (b & c) | (a & c);

    std::printf("F = ab + bc + ac over (a=x0, b=x1, c=x2)\n");
    std::printf("BDD: %zu internal nodes (canonical, complement edges)\n",
                mgr.dag_size(f));

    const bdd::Bdd roots[] = {f};
    const std::string names[] = {std::string("F")};
    std::ofstream("fig1.dot") << mgr.to_dot(roots, names);
    std::printf("DOT written to fig1.dot (render: dot -Tpng fig1.dot -o fig1.png)\n\n");

    decomp::DominatorAnalysis analysis(mgr, f);
    for (const decomp::NodeDomInfo& info : analysis.nodes()) {
        std::printf("node %u (level %u, var x%d): then-in=%u else-in=%u/%u%s%s%s%s\n",
                    info.node, info.level,
                    mgr.edge_top_var(bdd::make_edge(info.node, false)),
                    info.then_fanin, info.else_fanin_reg, info.else_fanin_comp,
                    info.is_root ? " [root]" : "",
                    info.is_one_dominator ? " [1-dom]" : "",
                    info.is_zero_dominator ? " [0-dom]" : "",
                    info.is_x_dominator ? " [x-dom]" : "");
    }

    const auto mdoms = analysis.m_dominators(8);
    std::printf("\nnon-trivial m-dominators: %zu\n", mdoms.size());
    if (mdoms.empty()) return 1;

    const bdd::Bdd fa = mgr.node_function(mdoms.front());
    decomp::MajDecomposition d = decomp::construct_majority(mgr, f, fa);
    std::printf("(β) Fb = ITE(Fa^F, F, F|Fa), Fc = ITE(Fa^F, F, F|!Fa)\n");
    std::printf("    sizes: |Fa|=%zu |Fb|=%zu |Fc|=%zu\n", d.size_fa(mgr),
                d.size_fb(mgr), d.size_fc(mgr));
    while (decomp::balance_majority_once(mgr, f, d)) {
        std::printf("(γ) balancing sweep -> |Fa|=%zu |Fb|=%zu |Fc|=%zu\n",
                    d.size_fa(mgr), d.size_fb(mgr), d.size_fc(mgr));
    }
    std::printf("result: F == Maj(Fa, Fb, Fc) with three literal functions: %s\n",
                (mgr.maj(d.fa, d.fb, d.fc) == f && d.total_size(mgr) == 3) ? "yes"
                                                                           : "no");
    return 0;
}
