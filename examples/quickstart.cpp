// Quickstart: read a BLIF, optimize with BDS-MAJ, map to the CMOS 22nm
// library, verify, and print the result.
//
//   ./quickstart [file.blif]
//
// Without an argument a small built-in full-adder + comparator circuit is
// used.

#include <cstdio>
#include <string>

#include "flows/flows.hpp"
#include "network/blif.hpp"
#include "network/simulate.hpp"

namespace {

constexpr const char* kDemoBlif = R"(
.model demo
.inputs a0 a1 b0 b1 cin
.outputs s0 s1 cout eq
.names a0 b0 cin s0
100 1
010 1
001 1
111 1
.names a0 b0 cin c1
11- 1
1-1 1
-11 1
.names a1 b1 c1 s1
100 1
010 1
001 1
111 1
.names a1 b1 c1 cout
11- 1
1-1 1
-11 1
.names a0 b0 e0
00 1
11 1
.names a1 b1 e1
00 1
11 1
.names e0 e1 eq
11 1
.end
)";

}  // namespace

int main(int argc, char** argv) {
    using namespace bdsmaj;

    // 1. Load a network.
    const net::Network input = argc > 1 ? net::read_blif_file(argv[1])
                                        : net::parse_blif(kDemoBlif);
    const net::NetworkStats in_stats = input.stats();
    std::printf("input  '%s': %d PIs, %d POs, %d logic nodes\n",
                input.model_name().c_str(), in_stats.inputs, in_stats.outputs,
                in_stats.total());

    // 2. Run the BDS-MAJ synthesis flow (decompose + map).
    const flows::SynthesisResult result = flows::flow_bdsmaj(input);
    const net::NetworkStats s = result.optimized_stats;
    std::printf("decomposed: AND=%d OR=%d XOR=%d XNOR=%d MAJ=%d  (total %d)\n",
                s.and_nodes, s.or_nodes, s.xor_nodes, s.xnor_nodes, s.maj_nodes,
                s.total());
    std::printf("mapped    : %d cells, %.2f um^2, %.3f ns critical path\n",
                result.mapped.gate_count, result.mapped.area_um2,
                result.mapped.delay_ns);

    // 3. Verify: the mapped netlist must be functionally identical.
    const net::EquivalenceResult eq =
        net::check_equivalent(input, result.mapped.netlist);
    std::printf("equivalence check: %s\n", eq.equivalent ? "PASS" : eq.reason.c_str());

    // 4. Write the optimized network back as BLIF.
    const std::string out_path = "quickstart_out.blif";
    net::write_blif_file(result.optimized, out_path);
    std::printf("optimized network written to %s\n", out_path.c_str());
    return eq.equivalent ? 0 : 1;
}
