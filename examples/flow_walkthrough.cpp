// Walk through the BDS-MAJ pipeline of Fig. 3 phase by phase on one
// circuit, printing what each stage sees and produces:
//   network partitioning -> local BDDs (+ sifting) -> decomposition with
//   majority support -> shared factoring -> cleanup -> mapping.

#include <algorithm>
#include <cstdio>

#include "benchgen/arith.hpp"
#include "decomp/flow.hpp"
#include "decomp/partition.hpp"
#include "flows/flows.hpp"
#include "network/simulate.hpp"

int main() {
    using namespace bdsmaj;
    const net::Network input = benchgen::make_mac(8);
    std::printf("=== input: %s ===\n", input.model_name().c_str());
    const net::NetworkStats in_stats = input.stats();
    std::printf("PIs=%d POs=%d nodes=%d depth=%d\n\n", in_stats.inputs,
                in_stats.outputs, in_stats.total(), input.logic_depth());

    std::printf("=== phase 1: network partitioning (partial collapse) ===\n");
    const auto supernodes = decomp::partition_network(input, {});
    std::size_t max_leaves = 0, max_cone = 0;
    for (const auto& sn : supernodes) {
        max_leaves = std::max(max_leaves, sn.leaves.size());
        max_cone = std::max(max_cone, sn.cone.size());
    }
    std::printf("%zu supernodes; widest support %zu leaves; largest cone %zu gates\n\n",
                supernodes.size(), max_leaves, max_cone);

    std::printf("=== phases 2-4: local BDDs, reordering, decomposition ===\n");
    const decomp::DecompFlowResult d = decomp::run_bdsmaj(input);
    const decomp::EngineStats& es = d.engine_stats;
    std::printf("decomposition steps: AND=%d OR=%d XOR=%d MAJ=%d MUX(Shannon)=%d\n",
                es.and_steps, es.or_steps, es.xor_steps, es.maj_steps, es.mux_steps);
    std::printf("majority decompositions evaluated=%d, rejected by the global "
                "k=1.6 gate=%d\n",
                es.maj_attempts, es.maj_rejected);
    const net::NetworkStats s = d.network.stats();
    std::printf("factored network: AND=%d OR=%d XOR=%d XNOR=%d MAJ=%d (total %d) "
                "in %.3fs\n\n",
                s.and_nodes, s.or_nodes, s.xor_nodes, s.xnor_nodes, s.maj_nodes,
                s.total(), d.seconds);

    std::printf("=== phase 5: technology mapping (CMOS 22nm) ===\n");
    const mapping::MappedResult mapped =
        mapping::map_network(d.network, flows::default_library());
    const net::NetworkStats ms = mapped.netlist.stats();
    std::printf("cells: NAND/NOR=%d XOR2/XNOR2=%d MAJ3=%d INV=%d\n",
                ms.and_nodes + ms.or_nodes, ms.xor_nodes + ms.xnor_nodes,
                ms.maj_nodes, ms.not_nodes);
    std::printf("area %.2f um^2, %d cells, critical path %.3f ns\n\n",
                mapped.area_um2, mapped.gate_count, mapped.delay_ns);

    std::printf("=== sign-off ===\n");
    const auto eq1 = net::check_equivalent(input, d.network);
    const auto eq2 = net::check_equivalent(input, mapped.netlist);
    std::printf("decomposed network equivalent: %s\n", eq1.equivalent ? "yes" : "NO");
    std::printf("mapped netlist equivalent    : %s\n", eq2.equivalent ? "yes" : "NO");
    return eq1.equivalent && eq2.equivalent ? 0 : 1;
}
