// Library-sensitivity scenario: the value of majority decomposition
// depends on how cheap the MAJ3 cell is. This example remaps the same
// BDS-MAJ-decomposed divider under libraries with different MAJ3 costs
// (e.g. an MTJ/spintronic-style library where majority is the native gate
// vs. a CMOS library where it is expensive), using the public CellLibrary
// API.

#include <cstdio>

#include "benchgen/arith.hpp"
#include "decomp/flow.hpp"
#include "mapping/mapper.hpp"
#include "network/simulate.hpp"

namespace {

bdsmaj::mapping::CellLibrary scaled_library(double maj_area_factor,
                                            double maj_delay_factor) {
    using bdsmaj::mapping::Cell;
    using bdsmaj::net::GateKind;
    bdsmaj::mapping::CellLibrary lib = bdsmaj::mapping::CellLibrary::cmos22nm();
    bdsmaj::mapping::CellLibrary out;
    for (Cell cell : lib.cells()) {
        if (cell.kind == GateKind::kMaj) {
            cell.area_um2 *= maj_area_factor;
            cell.intrinsic_ns *= maj_delay_factor;
        }
        out.add_cell(cell);
    }
    return out;
}

}  // namespace

int main() {
    using namespace bdsmaj;
    const net::Network input = benchgen::make_restoring_divider(8);
    const decomp::DecompFlowResult d = decomp::run_bdsmaj(input);
    std::printf("8-bit divider decomposed once with BDS-MAJ: %d nodes, %d MAJ\n\n",
                d.network.stats().total(), d.network.stats().maj_nodes);

    std::printf("%-28s | %9s %6s %8s\n", "library", "area um2", "cells", "delay ns");
    std::printf("%s\n", std::string(58, '-').c_str());
    const struct {
        const char* name;
        double area_factor, delay_factor;
    } variants[] = {
        {"CMOS 22nm (paper)", 1.0, 1.0},
        {"cheap MAJ (emerging tech)", 0.4, 0.6},
        {"expensive MAJ (2x)", 2.0, 1.5},
    };
    for (const auto& v : variants) {
        const mapping::CellLibrary lib = scaled_library(v.area_factor, v.delay_factor);
        const mapping::MappedResult r = mapping::map_network(d.network, lib);
        const bool ok = net::check_equivalent(input, r.netlist).equivalent;
        std::printf("%-28s | %9.2f %6d %8.3f%s\n", v.name, r.area_um2, r.gate_count,
                    r.delay_ns, ok ? "" : "  (NOT EQUIVALENT!)");
    }
    std::printf("\nThe decomposition is technology independent; only the mapped\n"
                "cost moves. With a native-majority technology the BDS-MAJ\n"
                "advantage widens — the MIG line of work this paper seeded.\n");
    return 0;
}
