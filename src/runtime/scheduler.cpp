#include "runtime/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <vector>

namespace bdsmaj::runtime {

namespace {

std::mutex g_pool_mutex;
ThreadPool* g_pool = nullptr;  // created once, intentionally never deleted
int g_pool_request = 0;        // configure_global_pool ask; 0 = default

}  // namespace

int default_global_pool_threads() noexcept {
    if (const char* env = std::getenv("BDSMAJ_JOBS")) {
        const int v = std::atoi(env);
        if (v > 0) return v;
    }
    return effective_jobs(0);
}

ThreadPool& global_pool() {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_pool == nullptr) {
        const int threads =
            g_pool_request > 0 ? g_pool_request : default_global_pool_threads();
        // Never destroyed: the workers live for the process, which removes
        // every static-destruction-order question for late submitters. The
        // pointer stays reachable, so leak checkers are quiet.
        g_pool = new ThreadPool(threads);
    }
    return *g_pool;
}

bool configure_global_pool(int threads) {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_pool != nullptr) return false;
    g_pool_request = std::max(threads, 0);
    return true;
}

int global_pool_threads() { return global_pool().size(); }

// ---------------------------------------------------------------------------
// HelperSet
// ---------------------------------------------------------------------------

// The state outlives the HelperSet via shared_ptr: a helper task the pool
// schedules *after* join() revoked it still locks the mutex and reads its
// slot, so the state must stay valid until the last task ran (or was
// discarded with the pool). Everything the caller owns — in particular the
// body — is only touched by helpers that claimed kStarted, and join()
// cannot return while any helper is in that state.
struct HelperSet::State {
    std::mutex mutex;
    std::condition_variable done_cv;
    enum : std::uint8_t { kQueued = 0, kStarted, kDone, kRevoked };
    std::vector<std::uint8_t> slot;
    const std::function<void(int)>* body = nullptr;
};

HelperSet::HelperSet(int count, const std::function<void(int)>& body)
    : state_(std::make_shared<State>()) {
    state_->slot.assign(static_cast<std::size_t>(std::max(count, 0)), State::kQueued);
    state_->body = &body;
    ThreadPool& pool = global_pool();
    for (std::size_t s = 0; s < state_->slot.size(); ++s) {
        pool.submit([st = state_, s] {
            {
                std::lock_guard<std::mutex> lock(st->mutex);
                if (st->slot[s] == State::kRevoked) return;
                st->slot[s] = State::kStarted;
            }
            (*st->body)(static_cast<int>(s) + 1);
            std::lock_guard<std::mutex> lock(st->mutex);
            st->slot[s] = State::kDone;
            st->done_cv.notify_all();
        });
    }
}

void HelperSet::join() {
    std::unique_lock<std::mutex> lock(state_->mutex);
    for (std::uint8_t& s : state_->slot) {
        if (s == State::kQueued) s = State::kRevoked;
    }
    state_->done_cv.wait(lock, [this] {
        for (const std::uint8_t s : state_->slot) {
            if (s == State::kStarted) return false;
        }
        return true;
    });
}

HelperSet::~HelperSet() { join(); }

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

int parallel_for_worker_count(std::size_t n, int jobs) {
    if (jobs <= 1 || n <= 1) return 1;
    const std::size_t budget =
        std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
    // More runners than pool threads + the caller can never execute
    // concurrently; capping keeps per-worker scratch allocations honest.
    const std::size_t cap = static_cast<std::size_t>(global_pool().size()) + 1;
    return static_cast<int>(std::min(budget, cap));
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t, int)>& body) {
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) body(i, 0);
        return;
    }
    const int workers = parallel_for_worker_count(n, jobs);
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    // A body exception must not unwind through a pool thread (that would
    // std::terminate); capture the first one and rethrow to the caller
    // after the loop completes.
    const std::function<void(int)> runner = [&](int slot) {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) break;
            try {
                body(i, slot);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        }
    };
    HelperSet helpers(workers - 1, runner);
    runner(0);
    helpers.join();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bdsmaj::runtime
