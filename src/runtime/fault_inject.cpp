#include "runtime/fault_inject.hpp"

#include <thread>

namespace bdsmaj::runtime {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Deterministic uniform draw in [0, 1) for (seed, site, hit).
double fault_draw(std::uint64_t seed, FaultSite site, std::uint64_t hit) {
    const std::uint64_t mixed = splitmix64(
        splitmix64(seed ^ (static_cast<std::uint64_t>(site) + 1) * 0x9e3779b97f4a7c15ull) ^
        hit);
    return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace

const char* fault_site_name(FaultSite site) noexcept {
    switch (site) {
        case FaultSite::kWorkerTaskEntry: return "worker-task-entry";
        case FaultSite::kConeCacheInsert: return "cone-cache-insert";
        case FaultSite::kExactCacheIo: return "exact-cache-io";
        case FaultSite::kSatSolve: return "sat-solve";
        case FaultSite::kManagerAlloc: return "manager-alloc";
    }
    return "unknown-site";
}

InjectedFault::InjectedFault(FaultSite site, std::uint64_t hit)
    : std::runtime_error("injected fault at site " + std::string(fault_site_name(site)) +
                         " (hit " + std::to_string(hit) + ")"),
      site_(site) {}

FaultInjector& FaultInjector::instance() {
    static FaultInjector injector;
    return injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
    plan_ = plan;
    // The release store publishes plan_ to any thread that observes
    // armed_ == true with an acquire load in check().
    armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

void FaultInjector::check(FaultSite site) {
    if (!armed_.load(std::memory_order_acquire)) return;
    const int idx = static_cast<int>(site);
    if ((plan_.site_mask & (1u << idx)) == 0) return;
    const std::uint64_t hit = hits_[idx].fetch_add(1, std::memory_order_relaxed);
    if (hit < plan_.skip_first) return;
    const double draw = fault_draw(plan_.seed, site, hit);
    if (draw < plan_.throw_rate) {
        injected_[idx].fetch_add(1, std::memory_order_relaxed);
        throw InjectedFault(site, hit);
    }
    if (draw < plan_.throw_rate + plan_.delay_rate) {
        delayed_[idx].fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(plan_.delay);
    }
}

std::uint64_t FaultInjector::hits(FaultSite site) const noexcept {
    return hits_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultSite site) const noexcept {
    return injected_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::delayed(FaultSite site) const noexcept {
    return delayed_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

void FaultInjector::reset_counters() noexcept {
    for (int i = 0; i < kFaultSiteCount; ++i) {
        hits_[i].store(0, std::memory_order_relaxed);
        injected_[i].store(0, std::memory_order_relaxed);
        delayed_[i].store(0, std::memory_order_relaxed);
    }
}

bool fault_injection_compiled() noexcept {
#if defined(BDSMAJ_FAULT_INJECT)
    return true;
#else
    return false;
#endif
}

}  // namespace bdsmaj::runtime
