#pragma once
// Work-stealing thread pool for the parallel synthesis pipeline.
//
// Each worker owns a deque: it pops its own tasks LIFO (cache-warm, and a
// worker that spawns subtasks drains them depth-first) and steals FIFO
// from the front of a sibling's deque when its own runs dry (the stolen
// task is the oldest, i.e. likely the largest remaining unit). Submission
// round-robins across workers, so a batch of supernode tasks starts out
// evenly spread and stealing only has to correct skew.
//
// Determinism note: the pool schedules non-deterministically — callers
// that need reproducible output must make tasks independent and merge
// results in a fixed order (the flow layer's tape replay does exactly
// that). Nothing in this file depends on timing for correctness.
//
// This header is the pool *primitive* only. The process-wide shared pool
// (`runtime::global_pool()`) and the data-parallel primitives built on it
// (`parallel_for`, `HelperSet`) live in runtime/scheduler.hpp.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bdsmaj::runtime {

/// Resolve a jobs request: n >= 1 is taken as-is; n <= 0 means "all
/// hardware threads" (at least 1).
[[nodiscard]] int effective_jobs(int requested) noexcept;

/// What the destructor does with tasks that are submitted but not yet
/// started. Running tasks always finish either way — a task is never
/// interrupted mid-execution.
enum class ShutdownPolicy {
    /// Workers drain every queued task before exiting (default). Matches
    /// wait_idle-then-destroy semantics even when the caller forgot the
    /// wait_idle.
    kDrain,
    /// Queued-but-unstarted tasks are discarded; workers exit as soon as
    /// their current task finishes. For service-style owners that cancel
    /// pending work on shutdown instead of paying for it.
    kAbandon,
};

class ThreadPool {
public:
    /// Spawns `threads` workers (clamped to at least 1).
    explicit ThreadPool(int threads, ShutdownPolicy policy = ShutdownPolicy::kDrain);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Change the destructor's drain-vs-abandon policy. Safe to call any
    /// time before destruction begins.
    void set_shutdown_policy(ShutdownPolicy policy);

    [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

    /// Enqueue a task. Safe from any thread, including pool workers
    /// (a worker pushes to its own deque).
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished. Tasks submitted
    /// while waiting are waited for too.
    void wait_idle();

    /// Index of the calling pool worker in [0, size()), or -1 when called
    /// from a thread that is not a worker of any pool.
    [[nodiscard]] static int worker_index() noexcept;

private:
    struct Worker {
        std::deque<std::function<void()>> queue;
        std::mutex mutex;
    };

    void worker_loop(int index);
    bool try_pop(int index, std::function<void()>& task);
    bool try_steal(int thief, std::function<void()>& task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::mutex sleep_mutex_;
    std::condition_variable work_cv_;   // workers sleep here when starved
    std::condition_variable idle_cv_;   // wait_idle sleeps here
    std::size_t pending_ = 0;           // submitted but not yet finished
    std::size_t queued_ = 0;            // submitted but not yet started
    std::size_t next_worker_ = 0;       // round-robin submission cursor
    bool stopping_ = false;
    ShutdownPolicy shutdown_policy_ = ShutdownPolicy::kDrain;
};

}  // namespace bdsmaj::runtime
