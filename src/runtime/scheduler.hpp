#pragma once
// Process-wide scheduler: one shared work-stealing pool for the whole
// process, plus the data-parallel primitives the synthesis layers build on.
//
// Before this layer existed, every decompose_network / run_suite call spun
// up (and tore down) a private ThreadPool — exactly wrong for a serving
// context where many synthesis jobs arrive concurrently. Now all
// parallelism in the process funnels through global_pool():
//
//   * global_pool() is created lazily on first use, sized from (in
//     priority order) configure_global_pool(), the BDSMAJ_JOBS environment
//     variable, then std::thread::hardware_concurrency(). It is
//     intentionally never destroyed: its workers live for the process, so
//     there is no static-destruction-order hazard with late submitters,
//     and the pointer stays reachable (no leak report).
//
//   * parallel_for(n, jobs, body) fans a loop out over the shared pool
//     with a *caller-participating runner model*: the calling thread is
//     runner slot 0 and pulls indices from a shared counter; up to
//     jobs - 1 helper runners are submitted to the pool and do the same.
//     Because the caller always drains the counter itself if the pool is
//     busy, a parallel_for issued from inside a pool task (re-entrant
//     submit) can never deadlock, no matter how saturated the pool is —
//     the per-call `jobs` budget is an upper bound on concurrency, never a
//     requirement. Helpers that the pool has not started by the time the
//     loop finishes are revoked, so a call never waits on queue backlog it
//     does not need.
//
//   * HelperSet is the revocable-helper building block parallel_for uses,
//     exposed for pipelines that need a custom loop (the flow layer's
//     pipelined tape replay drives it directly).
//
// Determinism is unaffected by any of this: callers that need reproducible
// output keep tasks independent and merge results in a fixed order, as
// before.

#include <cstddef>
#include <functional>
#include <memory>

#include "runtime/thread_pool.hpp"

namespace bdsmaj::runtime {

/// Pool size global_pool() will use unless configure_global_pool() asked
/// for something else: the BDSMAJ_JOBS environment variable if it parses
/// to a positive integer, otherwise all hardware threads (at least 1).
[[nodiscard]] int default_global_pool_threads() noexcept;

/// The process-wide shared pool. Created on first use; never destroyed.
[[nodiscard]] ThreadPool& global_pool();

/// Request a specific thread count for the global pool. Takes effect only
/// if the pool has not been created yet; returns false (and changes
/// nothing) once it exists. `threads` <= 0 restores the default sizing.
bool configure_global_pool(int threads);

/// Thread count of the global pool (forces creation).
[[nodiscard]] int global_pool_threads();

/// A set of revocable helper tasks on the global pool. Each helper the
/// pool actually starts calls `body(slot)` exactly once with a distinct
/// slot in [1, count]; by convention the constructing thread acts as slot
/// 0 and does the same work inline. join() revokes every helper that has
/// not started yet (it will never run) and blocks until the started ones
/// return. `body` must not throw and must stay valid until join() returns;
/// the destructor joins if the caller did not.
class HelperSet {
public:
    HelperSet(int count, const std::function<void(int)>& body);
    ~HelperSet();
    HelperSet(const HelperSet&) = delete;
    HelperSet& operator=(const HelperSet&) = delete;

    void join();

private:
    struct State;
    std::shared_ptr<State> state_;
};

/// Number of runner slots parallel_for will use for (n, jobs): the per-
/// call budget min(jobs, n) additionally capped at one more than the
/// global pool's thread count (the caller is a runner too). Callers
/// sizing per-worker scratch must use this, not re-derive the clamp.
/// Returns 1 for the inline path.
[[nodiscard]] int parallel_for_worker_count(std::size_t n, int jobs);

/// Run `body(i, worker)` for every i in [0, n) across parallel_for_
/// worker_count(n, jobs) runner slots on the shared pool; `worker` is a
/// stable slot index below that count, for per-worker scratch. jobs <= 1
/// (after any effective_jobs resolution the caller did) or n <= 1 runs
/// inline on the calling thread with worker 0. In the parallel path an
/// exception thrown by `body` is captured and rethrown on the calling
/// thread after every index has been attempted (first one wins); it never
/// unwinds through a pool worker. Safe to call from inside a pool task:
/// the caller participates, so progress does not depend on free workers.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t, int)>& body);

}  // namespace bdsmaj::runtime
