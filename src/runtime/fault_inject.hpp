#pragma once
// Deterministic fault injection for chaos testing the synthesis service.
//
// A handful of named sites on the serving path call fault_point(site); in
// normal builds that compiles to an empty inline function, so the layer is
// provably zero-cost. Configuring CMake with -DBDSMAJ_FAULT_INJECT=ON
// compiles the hooks in: an armed FaultInjector then throws InjectedFault
// or sleeps on a schedule that is a pure function of (plan seed, site,
// per-site hit index) — rerunning the same workload with the same plan
// reproduces the same faults at the same points, which is what lets the
// chaos suite assert exact failure semantics instead of "it crashed
// somewhere".
//
// Sites deliberately sit on both sides of every containment boundary the
// service claims to have: a worker task entry (the job-level catch-all), a
// cone-cache insert (shared-state mutation), exact-cache disk IO (torn
// files), a SAT solve (deep inside a strategy), and BDD manager node
// allocation (the same throw path as ManagerParams::max_live_nodes).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace bdsmaj::runtime {

enum class FaultSite : int {
    kWorkerTaskEntry = 0,  ///< SynthesisService::execute, inside the try
    kConeCacheInsert,      ///< decomp::ConeCache::insert
    kExactCacheIo,         ///< exact-cache disk load/save (incl. the rename)
    kSatSolve,             ///< sat::Solver::solve entry
    kManagerAlloc,         ///< bdd::Manager::make_node fresh allocation
};
inline constexpr int kFaultSiteCount = 5;

/// Stable human-readable site name; appears in InjectedFault::what() so a
/// failed future names where the fault was planted.
[[nodiscard]] const char* fault_site_name(FaultSite site) noexcept;

/// Thrown by an armed injector. Deliberately NOT derived from the
/// recoverable bdd::ResourceExhausted: the degrade ladder must not absorb
/// an injected fault, it has to surface as a kFailed job whose error names
/// the site (that asymmetry is itself under test).
class InjectedFault : public std::runtime_error {
public:
    InjectedFault(FaultSite site, std::uint64_t hit);
    [[nodiscard]] FaultSite site() const noexcept { return site_; }

private:
    FaultSite site_;
};

/// An injection schedule. Rates are per-hit probabilities in [0, 1],
/// evaluated against a hash of (seed, site, hit index) — deterministic and
/// independent per hit, so seed sweeps explore distinct schedules.
struct FaultPlan {
    std::uint64_t seed = 1;
    /// Probability that a hit throws InjectedFault.
    double throw_rate = 0.0;
    /// Probability that a (non-throwing) hit sleeps for `delay` instead —
    /// jitter to shake out ordering assumptions without failing anything.
    double delay_rate = 0.0;
    std::chrono::microseconds delay{200};
    /// Bit i enables FaultSite(i); default = every site.
    std::uint32_t site_mask = 0xffffffffu;
    /// Never fault the first N hits of each site (lets a workload get past
    /// setup before the chaos starts).
    std::uint64_t skip_first = 0;
};

/// Process-wide injector. arm()/disarm() must not race instrumented code:
/// the chaos tests arm before submitting work and disarm after wait_idle,
/// which is the supported discipline.
class FaultInjector {
public:
    static FaultInjector& instance();

    void arm(const FaultPlan& plan);
    void disarm();
    [[nodiscard]] bool armed() const noexcept {
        return armed_.load(std::memory_order_acquire);
    }

    /// The instrumented sites call this (via fault_point). Throws
    /// InjectedFault or sleeps according to the armed plan; no-op when
    /// disarmed.
    void check(FaultSite site);

    /// Telemetry since the last reset_counters(): instrumented passes,
    /// faults thrown, delays served, per site.
    [[nodiscard]] std::uint64_t hits(FaultSite site) const noexcept;
    [[nodiscard]] std::uint64_t injected(FaultSite site) const noexcept;
    [[nodiscard]] std::uint64_t delayed(FaultSite site) const noexcept;
    void reset_counters() noexcept;

private:
    FaultInjector() = default;

    std::atomic<bool> armed_{false};
    FaultPlan plan_{};
    std::atomic<std::uint64_t> hits_[kFaultSiteCount] = {};
    std::atomic<std::uint64_t> injected_[kFaultSiteCount] = {};
    std::atomic<std::uint64_t> delayed_[kFaultSiteCount] = {};
};

/// True when the fault hooks are compiled in (BDSMAJ_FAULT_INJECT). Chaos
/// tests GTEST_SKIP on false so the normal tier-1 run stays green without
/// silently passing vacuous assertions.
[[nodiscard]] bool fault_injection_compiled() noexcept;

#if defined(BDSMAJ_FAULT_INJECT)
inline void fault_point(FaultSite site) { FaultInjector::instance().check(site); }
#else
inline void fault_point(FaultSite) noexcept {}
#endif

}  // namespace bdsmaj::runtime
