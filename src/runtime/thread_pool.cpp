#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace bdsmaj::runtime {

namespace {

// Set while a pool worker runs its loop; a thread serves at most one pool
// at a time, but nested parallelism makes a worker of pool A the caller
// of pool B — so "am I a worker of *this* pool" needs the pool identity,
// not just an index.
thread_local int tl_worker_index = -1;
thread_local const void* tl_worker_pool = nullptr;

}  // namespace

int effective_jobs(int requested) noexcept {
    if (requested >= 1) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
    const int n = std::max(threads, 1);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        // A worker of THIS pool submitting from inside a task keeps the
        // child local so its own LIFO pop drains it depth-first; a worker
        // of some other pool (nested parallelism) is an outside submitter
        // and round-robins like everyone else.
        const int self = tl_worker_pool == this ? tl_worker_index : -1;
        target = self >= 0 && static_cast<std::size_t>(self) < workers_.size()
                     ? static_cast<std::size_t>(self)
                     : next_worker_++ % workers_.size();
        ++pending_;
        ++queued_;
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

bool ThreadPool::try_pop(int index, std::function<void()>& task) {
    Worker& w = *workers_[static_cast<std::size_t>(index)];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.queue.empty()) return false;
    task = std::move(w.queue.back());  // own work: LIFO
    w.queue.pop_back();
    return true;
}

bool ThreadPool::try_steal(int thief, std::function<void()>& task) {
    const std::size_t n = workers_.size();
    for (std::size_t off = 1; off < n; ++off) {
        Worker& victim = *workers_[(static_cast<std::size_t>(thief) + off) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.queue.empty()) continue;
        task = std::move(victim.queue.front());  // stolen work: FIFO
        victim.queue.pop_front();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(int index) {
    tl_worker_index = index;
    tl_worker_pool = this;
    std::function<void()> task;
    for (;;) {
        if (try_pop(index, task) || try_steal(index, task)) {
            {
                std::lock_guard<std::mutex> lock(sleep_mutex_);
                --queued_;
            }
            task();
            task = nullptr;
            std::lock_guard<std::mutex> lock(sleep_mutex_);
            if (--pending_ == 0) idle_cv_.notify_all();
            continue;
        }
        // Nothing to pop or steal. Wait on queued_ rather than a bare
        // notification: a submit that lands between the failed scan and
        // this lock keeps the predicate true, so the wakeup cannot be
        // missed. Shutdown drains the deques before workers exit.
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
        if (stopping_ && queued_ == 0) break;
    }
    tl_worker_index = -1;
    tl_worker_pool = nullptr;
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

int ThreadPool::worker_index() noexcept { return tl_worker_index; }

int parallel_for_worker_count(std::size_t n, int jobs) noexcept {
    if (jobs <= 1 || n <= 1) return 1;
    return static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), n));
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t, int)>& body) {
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) body(i, 0);
        return;
    }
    // A body exception must not unwind through a pool thread (that would
    // std::terminate); capture the first one and rethrow to the caller.
    std::mutex error_mutex;
    std::exception_ptr first_error;
    ThreadPool pool(parallel_for_worker_count(n, jobs));
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&body, &error_mutex, &first_error, i] {
            try {
                body(i, ThreadPool::worker_index());
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        });
    }
    pool.wait_idle();
    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bdsmaj::runtime
