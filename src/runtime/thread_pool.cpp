#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace bdsmaj::runtime {

namespace {

// Set while a pool worker runs its loop; a thread serves at most one pool
// at a time, but nested parallelism makes a worker of pool A the caller
// of pool B — so "am I a worker of *this* pool" needs the pool identity,
// not just an index.
thread_local int tl_worker_index = -1;
thread_local const void* tl_worker_pool = nullptr;

}  // namespace

int effective_jobs(int requested) noexcept {
    if (requested >= 1) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads, ShutdownPolicy policy)
    : shutdown_policy_(policy) {
    const int n = std::max(threads, 1);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

void ThreadPool::set_shutdown_policy(ShutdownPolicy policy) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    shutdown_policy_ = policy;
}

ThreadPool::~ThreadPool() {
    ShutdownPolicy policy;
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stopping_ = true;
        policy = shutdown_policy_;
    }
    if (policy == ShutdownPolicy::kAbandon) {
        // Discard every queued-but-unstarted task. Pops are serialized by
        // the per-worker mutex, so a task is either executed by a worker
        // or discarded here — never both — and the count removed is
        // exactly what pending_/queued_ still owe for those tasks.
        std::size_t discarded = 0;
        for (const std::unique_ptr<Worker>& w : workers_) {
            std::deque<std::function<void()>> dropped;
            {
                std::lock_guard<std::mutex> lock(w->mutex);
                dropped.swap(w->queue);
            }
            discarded += dropped.size();
            // dropped destroys its tasks outside the worker mutex.
        }
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        pending_ -= discarded;
        queued_ -= discarded;
        if (pending_ == 0) idle_cv_.notify_all();
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        // A worker of THIS pool submitting from inside a task keeps the
        // child local so its own LIFO pop drains it depth-first; a worker
        // of some other pool (nested parallelism) is an outside submitter
        // and round-robins like everyone else.
        const int self = tl_worker_pool == this ? tl_worker_index : -1;
        target = self >= 0 && static_cast<std::size_t>(self) < workers_.size()
                     ? static_cast<std::size_t>(self)
                     : next_worker_++ % workers_.size();
        ++pending_;
        ++queued_;
    }
    // queued_/pending_ are published before the push on purpose: workers
    // decrement them after a successful pop, so the increments must come
    // first or the counters would transiently underflow (and wait_idle
    // could return with a task in flight). The cost is a small window in
    // which an idle worker can wake, find the deque still empty, and
    // re-check — bounded by this push landing.
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

bool ThreadPool::try_pop(int index, std::function<void()>& task) {
    Worker& w = *workers_[static_cast<std::size_t>(index)];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.queue.empty()) return false;
    task = std::move(w.queue.back());  // own work: LIFO
    w.queue.pop_back();
    return true;
}

bool ThreadPool::try_steal(int thief, std::function<void()>& task) {
    const std::size_t n = workers_.size();
    for (std::size_t off = 1; off < n; ++off) {
        Worker& victim = *workers_[(static_cast<std::size_t>(thief) + off) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.queue.empty()) continue;
        task = std::move(victim.queue.front());  // stolen work: FIFO
        victim.queue.pop_front();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(int index) {
    tl_worker_index = index;
    tl_worker_pool = this;
    std::function<void()> task;
    for (;;) {
        if (try_pop(index, task) || try_steal(index, task)) {
            {
                std::lock_guard<std::mutex> lock(sleep_mutex_);
                --queued_;
            }
            task();
            task = nullptr;
            std::lock_guard<std::mutex> lock(sleep_mutex_);
            if (--pending_ == 0) idle_cv_.notify_all();
            continue;
        }
        // Nothing to pop or steal. Wait on queued_ rather than a bare
        // notification: a submit that lands between the failed scan and
        // this lock keeps the predicate true, so the wakeup cannot be
        // missed. Shutdown drains the deques before workers exit.
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
        if (stopping_ && queued_ == 0) break;
    }
    tl_worker_index = -1;
    tl_worker_pool = nullptr;
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

int ThreadPool::worker_index() noexcept { return tl_worker_index; }

}  // namespace bdsmaj::runtime
