#pragma once
// Tseitin encoding of net::Network logic into CNF. Every gate kind the
// network representation supports — including arbitrary SOP covers — gets
// a standard constant-size (per cube) clause set; NOT and BUF cost nothing
// (they map to the fanin literal with adjusted polarity). One encoder can
// encode several networks into the same solver with shared primary-input
// variables, which is exactly how the equivalence checker builds miters.

#include <vector>

#include "network/network.hpp"
#include "sat/solver.hpp"

namespace bdsmaj::sat {

class TseitinEncoder {
public:
    explicit TseitinEncoder(Solver& solver) : solver_(solver) {}

    /// Literal that is constant true/false (one shared unit-forced
    /// variable, created on first use).
    [[nodiscard]] Lit constant(bool value);

    /// Fresh unconstrained variable as a literal.
    [[nodiscard]] Lit fresh() { return Lit::make(solver_.new_var()); }

    // Structural gates over already-encoded fanin literals. Each returns
    // the output literal; AND/OR/XOR introduce one variable, NAND/NOR/XNOR
    // reuse it complemented.
    [[nodiscard]] Lit encode_and(Lit a, Lit b);
    [[nodiscard]] Lit encode_or(Lit a, Lit b) { return ~encode_and(~a, ~b); }
    [[nodiscard]] Lit encode_xor(Lit a, Lit b);
    [[nodiscard]] Lit encode_maj(Lit a, Lit b, Lit c);
    [[nodiscard]] Lit encode_mux(Lit sel, Lit then_lit, Lit else_lit);
    [[nodiscard]] Lit encode_sop(const net::Sop& sop, const std::vector<Lit>& fanins);

    /// Encode every node of `network` reachable from its outputs.
    /// `pi_lits[i]` is the literal standing for primary input i (so two
    /// networks encoded with the same pi_lits share their input space);
    /// pass an empty vector to create fresh input variables in place.
    /// Returns one literal per output port; `node_lits`, when non-null, is
    /// filled with the literal of every reachable node (kUndefLit for
    /// unreachable ones) for miter construction over internal points.
    [[nodiscard]] std::vector<Lit> encode(const net::Network& network,
                                          std::vector<Lit>& pi_lits,
                                          std::vector<Lit>* node_lits = nullptr);

    [[nodiscard]] Solver& solver() noexcept { return solver_; }

private:
    Solver& solver_;
    Lit const_true_ = kUndefLit;
};

}  // namespace bdsmaj::sat
