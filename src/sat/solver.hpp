#pragma once
// Compact CDCL SAT solver: the exact-decision substrate behind the
// combinational equivalence oracle (network/cec.hpp) and, next, SAT-based
// exact synthesis of 5-6 variable cones (ROADMAP item 1).
//
// MiniSat-family architecture, trimmed to what the synthesis stack needs:
//   * two-literal watching with blocker caching,
//   * first-UIP conflict analysis with basic recursive-free clause
//     minimization,
//   * VSIDS branching (exponential decay, heap order) with phase saving,
//   * Luby restarts and activity-driven learned-clause reduction,
//   * incremental solving under assumptions: clauses may be added between
//     solve() calls and stay learned across them, which is what lets the
//     equivalence checker discharge hundreds of candidate-node miters
//     against one shared CNF,
//   * conflict budgets, so callers can bound speculative queries and fall
//     back (the answer is kUnknown, never a wrong verdict).
//
// Clauses live in one flat arena (ClauseRef = offset); a clause header
// carries size/learnt/dead flags and learned-clause activity. The solver
// never frees arena space mid-run — per-query solvers are short-lived and
// reduce_db() only detaches — so refs stay stable across learning.

#include <cstdint>
#include <vector>

namespace bdsmaj::sat {

using Var = std::int32_t;

/// Literal: variable with polarity, MiniSat encoding (2*var + negated).
/// Invalid literals compare equal to kUndefLit.
struct Lit {
    std::int32_t x = -2;

    [[nodiscard]] static Lit make(Var v, bool negated = false) {
        return Lit{(v << 1) | static_cast<std::int32_t>(negated)};
    }
    [[nodiscard]] Var var() const noexcept { return x >> 1; }
    [[nodiscard]] bool negated() const noexcept { return (x & 1) != 0; }
    [[nodiscard]] Lit operator~() const noexcept { return Lit{x ^ 1}; }
    /// XOR with a polarity flag: `lit ^ true` complements.
    [[nodiscard]] Lit operator^(bool b) const noexcept {
        return Lit{x ^ static_cast<std::int32_t>(b)};
    }
    bool operator==(const Lit&) const = default;
};

inline constexpr Lit kUndefLit{-2};

/// Tri-state assignment value.
enum class Value : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

[[nodiscard]] inline Value operator^(Value v, bool b) {
    return v == Value::kUndef
               ? Value::kUndef
               : static_cast<Value>(static_cast<std::uint8_t>(v) ^
                                    static_cast<std::uint8_t>(b));
}

enum class SolveResult { kSat, kUnsat, kUnknown };

struct SolverStats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned_clauses = 0;
    std::uint64_t learned_literals = 0;
    std::uint64_t minimized_literals = 0;  ///< removed by clause minimization
    std::uint64_t db_reductions = 0;
};

class Solver {
public:
    Solver();

    // ---- Problem construction ---------------------------------------------
    [[nodiscard]] Var new_var();
    [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(assign_.size()); }

    /// Add a clause (empty = immediate contradiction). Literals are
    /// deduplicated; tautologies are dropped; level-0 false literals are
    /// removed. Returns false when the formula became unsatisfiable at
    /// level 0 (the solver stays usable only for reporting kUnsat).
    bool add_clause(std::vector<Lit> lits);
    bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
    bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
    bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

    // ---- Solving -----------------------------------------------------------
    /// Solve under `assumptions` (each forced true for this call only).
    /// `conflict_limit` <= 0 means unbounded; hitting the budget yields
    /// kUnknown with the solver reset to level 0 and reusable.
    [[nodiscard]] SolveResult solve(const std::vector<Lit>& assumptions = {},
                                    std::int64_t conflict_limit = 0);

    /// Model access after kSat: the value a variable/literal took.
    [[nodiscard]] Value model_value(Var v) const { return model_[static_cast<std::size_t>(v)]; }
    [[nodiscard]] bool model_true(Lit p) const {
        return (model_[static_cast<std::size_t>(p.var())] ^ p.negated()) == Value::kTrue;
    }

    /// After kUnsat under assumptions: the subset of assumptions the proof
    /// used (negated — the standard "final conflict" clause). Empty when
    /// the formula is unsatisfiable regardless of assumptions.
    [[nodiscard]] const std::vector<Lit>& conflict_core() const noexcept { return conflict_; }

    /// Current level-0 value of a variable (kUndef if unfixed): what the
    /// encoder uses to constant-fold against already-proven units.
    [[nodiscard]] Value fixed_value(Var v) const;

    [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }
    [[nodiscard]] bool okay() const noexcept { return ok_; }

private:
    using ClauseRef = std::uint32_t;
    static constexpr ClauseRef kNoClause = ~ClauseRef{0};

    // Arena clause layout: [header][activity (learnt only)][lits...].
    // Header: size << 2 | learnt << 1 | dead.
    struct Watcher {
        ClauseRef cref = kNoClause;
        Lit blocker = kUndefLit;
    };

    [[nodiscard]] std::uint32_t clause_size(ClauseRef c) const { return arena_[c] >> 2; }
    [[nodiscard]] bool clause_learnt(ClauseRef c) const { return (arena_[c] & 2) != 0; }
    [[nodiscard]] bool clause_dead(ClauseRef c) const { return (arena_[c] & 1) != 0; }
    [[nodiscard]] Lit* clause_lits(ClauseRef c) {
        return reinterpret_cast<Lit*>(&arena_[c + 1 + ((arena_[c] & 2) ? 1 : 0)]);
    }
    [[nodiscard]] float& clause_activity(ClauseRef c) {
        return reinterpret_cast<float&>(arena_[c + 1]);
    }

    [[nodiscard]] Value value(Lit p) const {
        return assign_[static_cast<std::size_t>(p.var())] ^ p.negated();
    }
    [[nodiscard]] int decision_level() const noexcept { return static_cast<int>(trail_lim_.size()); }

    ClauseRef alloc_clause(const std::vector<Lit>& lits, bool learnt);
    void attach_clause(ClauseRef c);
    void detach_clause(ClauseRef c);
    void unchecked_enqueue(Lit p, ClauseRef reason);
    ClauseRef propagate();
    void analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel);
    void analyze_final(Lit p);
    void cancel_until(int level);
    [[nodiscard]] Lit pick_branch_lit();
    SolveResult search(std::int64_t conflict_budget);
    void reduce_db();

    // VSIDS heap.
    void var_bump(Var v);
    void var_decay() { var_inc_ *= (1.0 / 0.95); }
    void heap_insert(Var v);
    [[nodiscard]] Var heap_pop();
    void heap_sift_up(int i);
    void heap_sift_down(int i);
    [[nodiscard]] bool heap_less(Var a, Var b) const {
        return activity_[static_cast<std::size_t>(a)] > activity_[static_cast<std::size_t>(b)];
    }

    void clause_bump(ClauseRef c);

    bool ok_ = true;
    std::vector<std::uint32_t> arena_;
    std::vector<ClauseRef> clauses_;  ///< problem clauses
    std::vector<ClauseRef> learnts_;
    std::vector<std::vector<Watcher>> watches_;  ///< indexed by Lit.x

    std::vector<Value> assign_;       ///< per var
    std::vector<Value> model_;        ///< snapshot at kSat
    std::vector<ClauseRef> reason_;   ///< per var
    std::vector<std::int32_t> level_; ///< per var
    std::vector<Lit> trail_;
    std::vector<std::int32_t> trail_lim_;
    std::size_t qhead_ = 0;

    std::vector<double> activity_;
    double var_inc_ = 1.0;
    std::vector<Var> heap_;
    std::vector<std::int32_t> heap_pos_;  ///< -1 = not in heap
    std::vector<std::uint8_t> polarity_;  ///< saved phase (1 = last true)

    double cla_inc_ = 1.0;
    double max_learnts_ = 0;

    std::vector<Lit> assumptions_;
    std::vector<Lit> conflict_;
    std::vector<std::uint8_t> seen_;
    std::vector<Lit> analyze_clear_;  ///< pre-minimization learnt set

    SolverStats stats_;
};

}  // namespace bdsmaj::sat
