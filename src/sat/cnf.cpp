#include "sat/cnf.hpp"

#include <stdexcept>

namespace bdsmaj::sat {

Lit TseitinEncoder::constant(bool value) {
    if (const_true_ == kUndefLit) {
        const_true_ = Lit::make(solver_.new_var());
        (void)solver_.add_clause(const_true_);
    }
    return value ? const_true_ : ~const_true_;
}

Lit TseitinEncoder::encode_and(Lit a, Lit b) {
    const Lit y = fresh();
    (void)solver_.add_clause(~y, a);
    (void)solver_.add_clause(~y, b);
    (void)solver_.add_clause(y, ~a, ~b);
    return y;
}

Lit TseitinEncoder::encode_xor(Lit a, Lit b) {
    const Lit y = fresh();
    (void)solver_.add_clause(~y, a, b);
    (void)solver_.add_clause(~y, ~a, ~b);
    (void)solver_.add_clause(y, ~a, b);
    (void)solver_.add_clause(y, a, ~b);
    return y;
}

Lit TseitinEncoder::encode_maj(Lit a, Lit b, Lit c) {
    const Lit y = fresh();
    (void)solver_.add_clause(y, ~a, ~b);
    (void)solver_.add_clause(y, ~a, ~c);
    (void)solver_.add_clause(y, ~b, ~c);
    (void)solver_.add_clause(~y, a, b);
    (void)solver_.add_clause(~y, a, c);
    (void)solver_.add_clause(~y, b, c);
    return y;
}

Lit TseitinEncoder::encode_mux(Lit sel, Lit then_lit, Lit else_lit) {
    const Lit y = fresh();
    (void)solver_.add_clause(~y, ~sel, then_lit);
    (void)solver_.add_clause(y, ~sel, ~then_lit);
    (void)solver_.add_clause(~y, sel, else_lit);
    (void)solver_.add_clause(y, sel, ~else_lit);
    // Redundant but propagation-strengthening: then == else forces y.
    (void)solver_.add_clause(~y, then_lit, else_lit);
    (void)solver_.add_clause(y, ~then_lit, ~else_lit);
    return y;
}

Lit TseitinEncoder::encode_sop(const net::Sop& sop, const std::vector<Lit>& fanins) {
    if (sop.is_const1()) return constant(true);
    if (sop.is_const0()) return constant(false);

    // One literal per cube: single-literal cubes pass through, larger ones
    // get an AND variable t with t <-> conjunction.
    std::vector<Lit> cube_lits;
    cube_lits.reserve(sop.cubes().size());
    for (const net::Cube& cube : sop.cubes()) {
        std::vector<Lit> term;
        for (std::size_t i = 0; i < cube.lits.size(); ++i) {
            if (cube.lits[i] == net::Lit::kDash) continue;
            term.push_back(fanins[i] ^ (cube.lits[i] == net::Lit::kNeg));
        }
        if (term.empty()) return constant(true);  // all-dash cube
        if (term.size() == 1) {
            cube_lits.push_back(term[0]);
            continue;
        }
        const Lit t = fresh();
        std::vector<Lit> reverse{t};
        for (const Lit l : term) {
            (void)solver_.add_clause(~t, l);
            reverse.push_back(~l);
        }
        (void)solver_.add_clause(std::move(reverse));
        cube_lits.push_back(t);
    }
    if (cube_lits.size() == 1) return cube_lits[0];
    // y <-> OR of the cube literals.
    const Lit y = fresh();
    std::vector<Lit> forward{~y};
    for (const Lit t : cube_lits) {
        (void)solver_.add_clause(y, ~t);
        forward.push_back(t);
    }
    (void)solver_.add_clause(std::move(forward));
    return y;
}

std::vector<Lit> TseitinEncoder::encode(const net::Network& network,
                                        std::vector<Lit>& pi_lits,
                                        std::vector<Lit>* node_lits) {
    if (pi_lits.empty()) {
        pi_lits.reserve(network.inputs().size());
        for (std::size_t i = 0; i < network.inputs().size(); ++i) {
            pi_lits.push_back(fresh());
        }
    } else if (pi_lits.size() != network.inputs().size()) {
        throw std::invalid_argument("TseitinEncoder::encode: pi_lits size != PI count");
    }

    std::vector<Lit> value(network.node_count(), kUndefLit);
    for (std::size_t i = 0; i < network.inputs().size(); ++i) {
        value[network.inputs()[i]] = pi_lits[i];
    }
    std::vector<Lit> sop_fanins;
    for (const net::NodeId id : network.topo_order()) {
        const net::Node& n = network.node(id);
        const auto in = [&](std::size_t k) { return value[n.fanins[k]]; };
        switch (n.kind) {
            case net::GateKind::kInput: break;
            case net::GateKind::kConst0: value[id] = constant(false); break;
            case net::GateKind::kConst1: value[id] = constant(true); break;
            case net::GateKind::kBuf: value[id] = in(0); break;
            case net::GateKind::kNot: value[id] = ~in(0); break;
            case net::GateKind::kAnd: value[id] = encode_and(in(0), in(1)); break;
            case net::GateKind::kOr: value[id] = encode_or(in(0), in(1)); break;
            case net::GateKind::kNand: value[id] = ~encode_and(in(0), in(1)); break;
            case net::GateKind::kNor: value[id] = ~encode_or(in(0), in(1)); break;
            case net::GateKind::kXor: value[id] = encode_xor(in(0), in(1)); break;
            case net::GateKind::kXnor: value[id] = ~encode_xor(in(0), in(1)); break;
            case net::GateKind::kMaj: value[id] = encode_maj(in(0), in(1), in(2)); break;
            case net::GateKind::kMux: value[id] = encode_mux(in(0), in(1), in(2)); break;
            case net::GateKind::kSop: {
                sop_fanins.clear();
                for (const net::NodeId f : n.fanins) sop_fanins.push_back(value[f]);
                value[id] = encode_sop(n.sop, sop_fanins);
                break;
            }
        }
    }
    std::vector<Lit> outs;
    outs.reserve(network.outputs().size());
    for (const net::OutputPort& po : network.outputs()) outs.push_back(value[po.driver]);
    if (node_lits != nullptr) *node_lits = std::move(value);
    return outs;
}

}  // namespace bdsmaj::sat
