#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/fault_inject.hpp"

namespace bdsmaj::sat {

namespace {

/// Luby restart sequence (unit = 128 conflicts): 1 1 2 1 1 2 4 ...
std::int64_t luby(std::int64_t i) {
    // Find the finite subsequence containing index i and its size.
    std::int64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) >> 1;
        --seq;
        i = i % size;
    }
    return std::int64_t{1} << seq;
}

constexpr std::int64_t kRestartUnit = 128;

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
    const Var v = static_cast<Var>(assign_.size());
    assign_.push_back(Value::kUndef);
    model_.push_back(Value::kUndef);
    reason_.push_back(kNoClause);
    level_.push_back(0);
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    polarity_.push_back(0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_insert(v);
    return v;
}

Value Solver::fixed_value(Var v) const {
    const std::size_t i = static_cast<std::size_t>(v);
    if (assign_[i] == Value::kUndef || level_[i] != 0) return Value::kUndef;
    return assign_[i];
}

Solver::ClauseRef Solver::alloc_clause(const std::vector<Lit>& lits, bool learnt) {
    const ClauseRef c = static_cast<ClauseRef>(arena_.size());
    arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                     (learnt ? 2u : 0u));
    if (learnt) arena_.push_back(0);  // activity slot
    if (learnt) clause_activity(c) = 0.0f;
    for (const Lit p : lits) arena_.push_back(static_cast<std::uint32_t>(p.x));
    return c;
}

void Solver::attach_clause(ClauseRef c) {
    Lit* lits = clause_lits(c);
    watches_[static_cast<std::size_t>((~lits[0]).x)].push_back({c, lits[1]});
    watches_[static_cast<std::size_t>((~lits[1]).x)].push_back({c, lits[0]});
}

void Solver::detach_clause(ClauseRef c) {
    Lit* lits = clause_lits(c);
    for (int k = 0; k < 2; ++k) {
        auto& ws = watches_[static_cast<std::size_t>((~lits[k]).x)];
        for (std::size_t i = 0; i < ws.size(); ++i) {
            if (ws[i].cref == c) {
                ws[i] = ws.back();
                ws.pop_back();
                break;
            }
        }
    }
}

bool Solver::add_clause(std::vector<Lit> lits) {
    if (!ok_) return false;
    // Adding clauses is only legal at level 0 (between solve() calls).
    cancel_until(0);
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return a.x < b.x; });
    std::vector<Lit> out;
    out.reserve(lits.size());
    Lit prev = kUndefLit;
    for (const Lit p : lits) {
        if (p == prev) continue;
        if (p == ~prev) return true;  // tautology
        const Value v = value(p);
        if (v == Value::kTrue) return true;  // satisfied at level 0
        if (v == Value::kFalse) {
            prev = p;
            continue;  // falsified at level 0: drop the literal
        }
        out.push_back(p);
        prev = p;
    }
    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        unchecked_enqueue(out[0], kNoClause);
        if (propagate() != kNoClause) ok_ = false;
        return ok_;
    }
    const ClauseRef c = alloc_clause(out, /*learnt=*/false);
    clauses_.push_back(c);
    attach_clause(c);
    return true;
}

void Solver::unchecked_enqueue(Lit p, ClauseRef reason) {
    const std::size_t v = static_cast<std::size_t>(p.var());
    assign_[v] = p.negated() ? Value::kFalse : Value::kTrue;
    reason_[v] = reason;
    level_[v] = decision_level();
    trail_.push_back(p);
}

Solver::ClauseRef Solver::propagate() {
    ClauseRef confl = kNoClause;
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];  // p became true
        ++stats_.propagations;
        auto& ws = watches_[static_cast<std::size_t>(p.x)];
        std::size_t i = 0, j = 0;
        while (i < ws.size()) {
            const Watcher w = ws[i];
            // Blocker short-circuit: clause already satisfied.
            if (value(w.blocker) == Value::kTrue) {
                ws[j++] = ws[i++];
                continue;
            }
            const ClauseRef c = w.cref;
            Lit* lits = clause_lits(c);
            const std::uint32_t size = clause_size(c);
            // Normalize: the falsified watch (~p) goes to slot 1.
            const Lit false_lit = ~p;
            if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
            ++i;
            const Lit first = lits[0];
            if (first != w.blocker && value(first) == Value::kTrue) {
                ws[j++] = {c, first};
                continue;
            }
            bool moved = false;
            for (std::uint32_t k = 2; k < size; ++k) {
                if (value(lits[k]) != Value::kFalse) {
                    lits[1] = lits[k];
                    lits[k] = false_lit;
                    watches_[static_cast<std::size_t>((~lits[1]).x)].push_back({c, first});
                    moved = true;
                    break;
                }
            }
            if (moved) continue;
            // Unit or conflicting.
            ws[j++] = {c, first};
            if (value(first) == Value::kFalse) {
                confl = c;
                qhead_ = trail_.size();
                while (i < ws.size()) ws[j++] = ws[i++];
            } else {
                unchecked_enqueue(first, c);
            }
        }
        ws.resize(j);
        if (confl != kNoClause) break;
    }
    return confl;
}

void Solver::var_bump(Var v) {
    double& a = activity_[static_cast<std::size_t>(v)];
    a += var_inc_;
    if (a > 1e100) {
        for (double& x : activity_) x *= 1e-100;
        var_inc_ *= 1e-100;
    }
    const int pos = heap_pos_[static_cast<std::size_t>(v)];
    if (pos >= 0) heap_sift_up(pos);
}

void Solver::clause_bump(ClauseRef c) {
    float& a = clause_activity(c);
    a += static_cast<float>(cla_inc_);
    if (a > 1e20f) {
        for (const ClauseRef l : learnts_) {
            if (!clause_dead(l)) clause_activity(l) *= 1e-20f;
        }
        cla_inc_ *= 1e-20;
    }
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel) {
    out_learnt.clear();
    out_learnt.push_back(kUndefLit);  // slot for the asserting literal
    int path_count = 0;
    Lit p = kUndefLit;
    std::size_t index = trail_.size();

    do {
        Lit* lits = clause_lits(confl);
        const std::uint32_t size = clause_size(confl);
        if (clause_learnt(confl)) clause_bump(confl);
        for (std::uint32_t k = (p == kUndefLit ? 0 : 1); k < size; ++k) {
            const Lit q = lits[k];
            const std::size_t v = static_cast<std::size_t>(q.var());
            if (seen_[v] == 0 && level_[v] > 0) {
                var_bump(q.var());
                seen_[v] = 1;
                if (level_[v] >= decision_level()) {
                    ++path_count;
                } else {
                    out_learnt.push_back(q);
                }
            }
        }
        // Walk the trail back to the next marked literal.
        while (seen_[static_cast<std::size_t>(trail_[index - 1].var())] == 0) --index;
        --index;
        p = trail_[index];
        confl = reason_[static_cast<std::size_t>(p.var())];
        seen_[static_cast<std::size_t>(p.var())] = 0;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Basic clause minimization: a reason-implied literal whose entire
    // reason clause is already marked is redundant. Keep the pre-
    // minimization set so every seen_ flag gets cleared afterwards.
    analyze_clear_ = out_learnt;
    std::size_t j = 1;
    for (std::size_t i = 1; i < out_learnt.size(); ++i) {
        const Lit q = out_learnt[i];
        const ClauseRef r = reason_[static_cast<std::size_t>(q.var())];
        bool redundant = false;
        if (r != kNoClause) {
            redundant = true;
            Lit* rl = clause_lits(r);
            const std::uint32_t rs = clause_size(r);
            for (std::uint32_t k = 0; k < rs; ++k) {
                const std::size_t v = static_cast<std::size_t>(rl[k].var());
                if (seen_[v] == 0 && level_[v] > 0) {
                    redundant = false;
                    break;
                }
            }
        }
        if (redundant) {
            ++stats_.minimized_literals;
        } else {
            out_learnt[j++] = q;
        }
    }
    out_learnt.resize(j);

    // Backtrack level: highest level among the non-asserting literals.
    out_btlevel = 0;
    if (out_learnt.size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < out_learnt.size(); ++i) {
            if (level_[static_cast<std::size_t>(out_learnt[i].var())] >
                level_[static_cast<std::size_t>(out_learnt[max_i].var())]) {
                max_i = i;
            }
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level_[static_cast<std::size_t>(out_learnt[1].var())];
    }
    for (const Lit q : analyze_clear_) {
        if (q != kUndefLit) seen_[static_cast<std::size_t>(q.var())] = 0;
    }
    seen_[static_cast<std::size_t>(p.var())] = 0;
}

void Solver::analyze_final(Lit p) {
    // The negation of the assumption subset that forced the conflict.
    conflict_.clear();
    conflict_.push_back(~p);
    if (decision_level() == 0) return;
    seen_[static_cast<std::size_t>(p.var())] = 1;
    for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(trail_lim_[0]);) {
        const Var v = trail_[i].var();
        const std::size_t vi = static_cast<std::size_t>(v);
        if (seen_[vi] == 0) continue;
        const ClauseRef r = reason_[vi];
        if (r == kNoClause) {
            if (level_[vi] > 0) conflict_.push_back(~trail_[i]);
        } else {
            Lit* lits = clause_lits(r);
            const std::uint32_t size = clause_size(r);
            for (std::uint32_t k = 1; k < size; ++k) {
                if (level_[static_cast<std::size_t>(lits[k].var())] > 0) {
                    seen_[static_cast<std::size_t>(lits[k].var())] = 1;
                }
            }
        }
        seen_[vi] = 0;
    }
    seen_[static_cast<std::size_t>(p.var())] = 0;
}

void Solver::cancel_until(int target) {
    if (decision_level() <= target) return;
    const std::int32_t limit = trail_lim_[static_cast<std::size_t>(target)];
    for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(limit);) {
        const Var v = trail_[i].var();
        const std::size_t vi = static_cast<std::size_t>(v);
        polarity_[vi] = assign_[vi] == Value::kTrue ? 1 : 0;  // phase saving
        assign_[vi] = Value::kUndef;
        reason_[vi] = kNoClause;
        if (heap_pos_[vi] < 0) heap_insert(v);
    }
    trail_.resize(static_cast<std::size_t>(limit));
    trail_lim_.resize(static_cast<std::size_t>(target));
    qhead_ = trail_.size();
}

// ---- VSIDS order heap ------------------------------------------------------

void Solver::heap_insert(Var v) {
    heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(v);
    heap_sift_up(static_cast<int>(heap_.size()) - 1);
}

Var Solver::heap_pop() {
    const Var top = heap_[0];
    heap_pos_[static_cast<std::size_t>(top)] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
        heap_sift_down(0);
    }
    return top;
}

void Solver::heap_sift_up(int i) {
    const Var v = heap_[static_cast<std::size_t>(i)];
    while (i > 0) {
        const int parent = (i - 1) >> 1;
        if (!heap_less(v, heap_[static_cast<std::size_t>(parent)])) break;
        heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
        heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
        i = parent;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_sift_down(int i) {
    const Var v = heap_[static_cast<std::size_t>(i)];
    const int n = static_cast<int>(heap_.size());
    while (true) {
        int child = 2 * i + 1;
        if (child >= n) break;
        if (child + 1 < n &&
            heap_less(heap_[static_cast<std::size_t>(child + 1)],
                      heap_[static_cast<std::size_t>(child)])) {
            ++child;
        }
        if (!heap_less(heap_[static_cast<std::size_t>(child)], v)) break;
        heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
        heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
        i = child;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    heap_pos_[static_cast<std::size_t>(v)] = i;
}

Lit Solver::pick_branch_lit() {
    while (!heap_.empty()) {
        const Var v = heap_pop();
        if (assign_[static_cast<std::size_t>(v)] == Value::kUndef) {
            return Lit::make(v, polarity_[static_cast<std::size_t>(v)] == 0);
        }
    }
    return kUndefLit;
}

// ---- Learned-clause reduction ---------------------------------------------

void Solver::reduce_db() {
    ++stats_.db_reductions;
    std::vector<ClauseRef> live;
    live.reserve(learnts_.size());
    for (const ClauseRef c : learnts_) {
        if (!clause_dead(c)) live.push_back(c);
    }
    std::sort(live.begin(), live.end(), [this](ClauseRef a, ClauseRef b) {
        return clause_activity(a) < clause_activity(b);
    });
    std::vector<ClauseRef> kept;
    kept.reserve(live.size());
    const std::size_t target = live.size() / 2;
    for (std::size_t i = 0; i < live.size(); ++i) {
        const ClauseRef c = live[i];
        Lit* lits = clause_lits(c);
        const bool locked = reason_[static_cast<std::size_t>(lits[0].var())] == c &&
                            value(lits[0]) == Value::kTrue;
        if (i < target && !locked && clause_size(c) > 2) {
            detach_clause(c);
            arena_[c] |= 1;  // dead
        } else {
            kept.push_back(c);
        }
    }
    learnts_ = std::move(kept);
}

// ---- Search ----------------------------------------------------------------

SolveResult Solver::search(std::int64_t conflict_budget) {
    std::vector<Lit> learnt;
    std::int64_t restart_limit = luby(static_cast<std::int64_t>(stats_.restarts)) * kRestartUnit;
    std::int64_t conflicts_this_restart = 0;

    while (true) {
        const ClauseRef confl = propagate();
        if (confl != kNoClause) {
            ++stats_.conflicts;
            ++conflicts_this_restart;
            if (decision_level() == 0) {
                ok_ = false;
                conflict_.clear();
                return SolveResult::kUnsat;
            }
            int bt_level = 0;
            analyze(confl, learnt, bt_level);
            cancel_until(bt_level);
            ++stats_.learned_clauses;
            stats_.learned_literals += learnt.size();
            if (learnt.size() == 1) {
                unchecked_enqueue(learnt[0], kNoClause);
            } else {
                const ClauseRef c = alloc_clause(learnt, /*learnt=*/true);
                learnts_.push_back(c);
                attach_clause(c);
                clause_bump(c);
                unchecked_enqueue(learnt[0], c);
            }
            var_decay();
            cla_inc_ *= (1.0 / 0.999);
            continue;
        }

        if (conflict_budget > 0 && static_cast<std::int64_t>(stats_.conflicts) >= conflict_budget) {
            cancel_until(0);
            return SolveResult::kUnknown;
        }
        if (conflicts_this_restart >= restart_limit) {
            ++stats_.restarts;
            cancel_until(0);
            restart_limit = luby(static_cast<std::int64_t>(stats_.restarts)) * kRestartUnit;
            conflicts_this_restart = 0;
            continue;
        }
        if (static_cast<double>(learnts_.size()) >= max_learnts_ + trail_.size()) {
            reduce_db();
            max_learnts_ *= 1.1;
        }

        // Assumptions first, then VSIDS decisions.
        Lit next = kUndefLit;
        while (static_cast<std::size_t>(decision_level()) < assumptions_.size()) {
            const Lit p = assumptions_[static_cast<std::size_t>(decision_level())];
            const Value v = value(p);
            if (v == Value::kTrue) {
                trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
            } else if (v == Value::kFalse) {
                // p is the failing assumption; analyze_final negates it
                // into the core itself.
                analyze_final(p);
                return SolveResult::kUnsat;
            } else {
                next = p;
                break;
            }
        }
        if (next == kUndefLit &&
            static_cast<std::size_t>(decision_level()) >= assumptions_.size()) {
            next = pick_branch_lit();
            if (next == kUndefLit) {
                model_ = assign_;
                return SolveResult::kSat;
            }
            ++stats_.decisions;
        }
        trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
        unchecked_enqueue(next, kNoClause);
    }
}

SolveResult Solver::solve(const std::vector<Lit>& assumptions,
                          std::int64_t conflict_limit) {
    // Chaos site: a fault deep inside a strategy's SAT call must surface
    // as that job's failure, never as a wrong verdict.
    runtime::fault_point(runtime::FaultSite::kSatSolve);
    conflict_.clear();
    if (!ok_) return SolveResult::kUnsat;
    assumptions_ = assumptions;
    if (max_learnts_ < 1) {
        max_learnts_ = std::max(4000.0, static_cast<double>(clauses_.size()) / 3.0);
    }
    const std::int64_t budget =
        conflict_limit <= 0 ? 0
                            : static_cast<std::int64_t>(stats_.conflicts) + conflict_limit;
    const SolveResult r = search(budget);
    cancel_until(0);
    assumptions_.clear();
    return r;
}

}  // namespace bdsmaj::sat
