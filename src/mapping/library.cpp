#include "mapping/library.hpp"

#include <stdexcept>

namespace bdsmaj::mapping {

CellLibrary CellLibrary::cmos22nm() {
    // Transistor counts: static CMOS. Areas scale with transistor count at
    // ~0.0325 um^2/T (22 nm standard-cell density); intrinsic delays follow
    // stack depth, slopes follow output drive.
    CellLibrary lib;
    lib.add_cell({"INV", net::GateKind::kNot, 2, 0.065, 0.008, 0.0030});
    lib.add_cell({"NAND2", net::GateKind::kNand, 4, 0.130, 0.012, 0.0035});
    lib.add_cell({"NOR2", net::GateKind::kNor, 4, 0.130, 0.014, 0.0040});
    lib.add_cell({"XOR2", net::GateKind::kXor, 8, 0.260, 0.022, 0.0045});
    lib.add_cell({"XNOR2", net::GateKind::kXnor, 8, 0.260, 0.022, 0.0045});
    lib.add_cell({"MAJ3", net::GateKind::kMaj, 10, 0.325, 0.025, 0.0050});
    return lib;
}

void CellLibrary::add_cell(Cell cell) { cells_.push_back(std::move(cell)); }

const Cell& CellLibrary::cell_for(net::GateKind kind) const {
    for (const Cell& c : cells_) {
        if (c.kind == kind) return c;
    }
    throw std::out_of_range(std::string("no cell for gate kind ") +
                            net::gate_kind_name(kind));
}

bool CellLibrary::has_cell_for(net::GateKind kind) const {
    for (const Cell& c : cells_) {
        if (c.kind == kind) return true;
    }
    return false;
}

}  // namespace bdsmaj::mapping
