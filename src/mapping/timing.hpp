#pragma once
// Static timing analysis over mapped netlists with the linear load model
// delay(cell, fanout) = intrinsic + slope * fanout_count.

#include "mapping/library.hpp"
#include "network/network.hpp"

namespace bdsmaj::mapping {

/// Critical-path delay in ns. Inputs arrive at t = 0; unmapped kinds
/// (inputs, constants, buffers) contribute zero delay.
[[nodiscard]] double critical_path_ns(const net::Network& netlist,
                                      const CellLibrary& lib);

/// Per-node arrival times (ns), indexed by NodeId.
[[nodiscard]] std::vector<double> arrival_times_ns(const net::Network& netlist,
                                                   const CellLibrary& lib);

}  // namespace bdsmaj::mapping
