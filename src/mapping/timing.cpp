#include "mapping/timing.hpp"

#include <algorithm>

namespace bdsmaj::mapping {

std::vector<double> arrival_times_ns(const net::Network& netlist,
                                     const CellLibrary& lib) {
    const std::vector<std::uint32_t> fanout = netlist.fanout_counts();
    std::vector<double> arrival(netlist.node_count(), 0.0);
    for (const net::NodeId id : netlist.topo_order()) {
        const net::Node& n = netlist.node(id);
        double input_time = 0.0;
        for (const net::NodeId f : n.fanins) {
            input_time = std::max(input_time, arrival[f]);
        }
        double gate_delay = 0.0;
        if (lib.has_cell_for(n.kind)) {
            const Cell& cell = lib.cell_for(n.kind);
            gate_delay = cell.intrinsic_ns +
                         cell.slope_ns * static_cast<double>(fanout[id]);
        }
        arrival[id] = input_time + gate_delay;
    }
    return arrival;
}

double critical_path_ns(const net::Network& netlist, const CellLibrary& lib) {
    const std::vector<double> arrival = arrival_times_ns(netlist, lib);
    double worst = 0.0;
    for (const net::OutputPort& po : netlist.outputs()) {
        worst = std::max(worst, arrival[po.driver]);
    }
    return worst;
}

}  // namespace bdsmaj::mapping
