#pragma once
// Technology mapping onto the six-cell library (paper SV-B1).
//
// The two-step policy of the paper:
//   1. MAJ / XOR / XNOR nodes are assigned to their cells directly, so the
//      structure highlighted by the decomposition is preserved rather than
//      re-hidden by a generic mapper;
//   2. the remaining AND/OR logic is covered with NAND2/NOR2/INV using
//      polarity-aware construction (bubble pushing): each signal carries a
//      pending complement and an inverter cell is emitted only when a
//      polarity must be materialized, with AND/OR freely re-expressed as
//      NAND/NOR of complemented operands to absorb bubbles.
//
// The mapped netlist is a Network restricted to library gate kinds (plus
// inputs/constants), so simulation-based equivalence against the source
// network works unchanged.

#include "mapping/library.hpp"
#include "network/network.hpp"

namespace bdsmaj::mapping {

struct MappedResult {
    net::Network netlist;
    double area_um2 = 0.0;
    int gate_count = 0;
    double delay_ns = 0.0;
};

/// Map `network` (any mix of structured gates and SOP nodes) onto `lib`.
[[nodiscard]] MappedResult map_network(const net::Network& network,
                                       const CellLibrary& lib);

/// Area/gate-count/delay of an already-mapped netlist.
[[nodiscard]] MappedResult evaluate_netlist(net::Network netlist,
                                            const CellLibrary& lib);

}  // namespace bdsmaj::mapping
