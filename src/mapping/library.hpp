#pragma once
// Standard-cell library model (paper SV-B1): MAJ-3, XOR-2, XNOR-2, NAND-2,
// NOR-2 and INV characterized for a CMOS 22 nm technology node.
//
// Substitution note (see DESIGN.md): the paper characterizes its cells with
// PTM 22 nm SPICE models; we use a static linear timing model
//     delay(cell, fanout) = intrinsic + slope * fanout
// with constants scaled from transistor counts at 22 nm. Relative
// area/delay ratios between cell types follow transistor counts, which is
// what drives the paper's comparisons.

#include <string>
#include <vector>

#include "network/network.hpp"

namespace bdsmaj::mapping {

struct Cell {
    std::string name;
    net::GateKind kind = net::GateKind::kNot;
    int transistors = 0;
    double area_um2 = 0.0;
    double intrinsic_ns = 0.0;  ///< unloaded pin-to-pin delay
    double slope_ns = 0.0;      ///< additional delay per fanout
};

class CellLibrary {
public:
    /// The paper's six-cell library at the 22 nm node.
    [[nodiscard]] static CellLibrary cmos22nm();

    /// Cell implementing a mapped gate kind; throws std::out_of_range for
    /// kinds that are not library cells.
    [[nodiscard]] const Cell& cell_for(net::GateKind kind) const;
    [[nodiscard]] bool has_cell_for(net::GateKind kind) const;
    [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }

    void add_cell(Cell cell);

private:
    std::vector<Cell> cells_;
};

}  // namespace bdsmaj::mapping
