#include "mapping/mapper.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "mapping/timing.hpp"
#include "network/cleanup.hpp"
#include "network/factor.hpp"

namespace bdsmaj::mapping {

namespace {

using net::GateKind;
using net::Network;
using net::NodeId;

/// Polarity-aware netlist construction over library cells.
class NetlistBuilder {
public:
    explicit NetlistBuilder(Network& out) : out_(out) {}

    struct Sig {
        NodeId node = net::kNoNode;
        bool complemented = false;
        Sig operator!() const { return Sig{node, !complemented}; }
    };

    Sig constant(bool value) {
        if (const_node_[value] == net::kNoNode) {
            const_node_[value] = out_.add_constant(value);
        }
        return Sig{const_node_[value], false};
    }

    bool is_const(const Sig& s, bool value) const {
        if (s.node == net::kNoNode) return false;
        const GateKind k = out_.node(s.node).kind;
        if (k != GateKind::kConst0 && k != GateKind::kConst1) return false;
        return ((k == GateKind::kConst1) != s.complemented) == value;
    }

    /// Marginal inverters needed to present `s` with positive polarity.
    int inv_cost(const Sig& s) const {
        if (!s.complemented) return 0;
        return inverter_cache_.contains(s.node) ? 0 : 1;
    }

    NodeId realize(Sig s) {
        if (!s.complemented) return s.node;
        auto [it, fresh] = inverter_cache_.try_emplace(s.node, net::kNoNode);
        if (fresh) {
            const GateKind k = out_.node(s.node).kind;
            if (k == GateKind::kConst0 || k == GateKind::kConst1) {
                it->second = constant(k == GateKind::kConst0).node;
            } else if (k == GateKind::kXor || k == GateKind::kXnor) {
                // The complement of an XOR cell is the dual cell over the
                // same pins: no inverter needed.
                const GateKind dual =
                    k == GateKind::kXor ? GateKind::kXnor : GateKind::kXor;
                it->second = hashed(dual, out_.node(s.node).fanins).node;
            } else {
                it->second = out_.add_gate(GateKind::kNot, {s.node});
            }
        }
        return it->second;
    }

    Sig cell2(GateKind kind, Sig a, Sig b) {
        std::vector<NodeId> fanins{realize(a), realize(b)};
        std::sort(fanins.begin(), fanins.end());
        return hashed(kind, std::move(fanins));
    }

    Sig cell3(GateKind kind, Sig a, Sig b, Sig c) {
        std::vector<NodeId> fanins{realize(a), realize(b), realize(c)};
        std::sort(fanins.begin(), fanins.end());
        return hashed(kind, std::move(fanins));
    }

    /// AND with bubble pushing: !NAND2(a,b) or NOR2(!a,!b), whichever needs
    /// fewer inverters.
    Sig map_and(Sig a, Sig b) {
        if (is_const(a, false) || is_const(b, false)) return constant(false);
        if (is_const(a, true)) return b;
        if (is_const(b, true)) return a;
        if (a.node == b.node) {
            return a.complemented == b.complemented ? a : constant(false);
        }
        const int nand_cost = inv_cost(a) + inv_cost(b);
        const int nor_cost = inv_cost(!a) + inv_cost(!b);
        if (nor_cost < nand_cost) return cell2(GateKind::kNor, !a, !b);
        return !cell2(GateKind::kNand, a, b);
    }

    Sig map_or(Sig a, Sig b) { return !map_and(!a, !b); }

    /// XOR absorbs input polarity into the XOR2/XNOR2 cell choice.
    Sig map_xor(Sig a, Sig b) {
        const bool flip = a.complemented != b.complemented;
        a.complemented = false;
        b.complemented = false;
        if (is_const(a, false)) return Sig{b.node, flip};
        if (is_const(b, false)) return Sig{a.node, flip};
        if (is_const(a, true)) return Sig{b.node, !flip};
        if (is_const(b, true)) return Sig{a.node, !flip};
        if (a.node == b.node) return constant(flip);
        return cell2(flip ? GateKind::kXnor : GateKind::kXor, a, b);
    }

    /// MAJ3 with self-duality bubble absorption (at most one inverter).
    Sig map_maj(Sig a, Sig b, Sig c) {
        if (is_const(a, false)) return map_and(b, c);
        if (is_const(a, true)) return map_or(b, c);
        if (is_const(b, false)) return map_and(a, c);
        if (is_const(b, true)) return map_or(a, c);
        if (is_const(c, false)) return map_and(a, b);
        if (is_const(c, true)) return map_or(a, b);
        const int complemented = static_cast<int>(a.complemented) +
                                 static_cast<int>(b.complemented) +
                                 static_cast<int>(c.complemented);
        if (complemented >= 2) return !cell3(GateKind::kMaj, !a, !b, !c);
        return cell3(GateKind::kMaj, a, b, c);
    }

private:
    Sig hashed(GateKind kind, std::vector<NodeId> fanins) {
        const auto key = std::make_pair(kind, fanins);
        auto [it, fresh] = cell_cache_.try_emplace(key, net::kNoNode);
        if (fresh) it->second = out_.add_gate(kind, fanins);
        return Sig{it->second, false};
    }

    Network& out_;
    std::map<std::pair<GateKind, std::vector<NodeId>>, NodeId> cell_cache_;
    std::map<NodeId, NodeId> inverter_cache_;
    NodeId const_node_[2] = {net::kNoNode, net::kNoNode};
};

}  // namespace

MappedResult map_network(const Network& network, const CellLibrary& lib) {
    // Normalize: covers become gates, MUXes expand, constants fold.
    const Network prepared = net::cleanup(net::factor_network(network));

    Network netlist(network.model_name() + "_mapped");
    NetlistBuilder builder(netlist);
    std::vector<NetlistBuilder::Sig> sig(prepared.node_count());

    for (const NodeId id : prepared.topo_order()) {
        const net::Node& n = prepared.node(id);
        const auto in = [&](std::size_t k) { return sig[n.fanins[k]]; };
        switch (n.kind) {
            case GateKind::kInput:
                sig[id] = {netlist.add_input(n.name), false};
                break;
            case GateKind::kConst0: sig[id] = builder.constant(false); break;
            case GateKind::kConst1: sig[id] = builder.constant(true); break;
            case GateKind::kBuf: sig[id] = in(0); break;
            case GateKind::kNot: sig[id] = !in(0); break;
            case GateKind::kAnd: sig[id] = builder.map_and(in(0), in(1)); break;
            case GateKind::kNand: sig[id] = !builder.map_and(in(0), in(1)); break;
            case GateKind::kOr: sig[id] = builder.map_or(in(0), in(1)); break;
            case GateKind::kNor: sig[id] = !builder.map_or(in(0), in(1)); break;
            case GateKind::kXor: sig[id] = builder.map_xor(in(0), in(1)); break;
            case GateKind::kXnor: sig[id] = !builder.map_xor(in(0), in(1)); break;
            case GateKind::kMaj:
                sig[id] = builder.map_maj(in(0), in(1), in(2));
                break;
            case GateKind::kMux:
                // cleanup() expands MUXes; defensive fallback.
                sig[id] = builder.map_or(builder.map_and(in(0), in(1)),
                                         builder.map_and(!in(0), in(2)));
                break;
            case GateKind::kSop:
                assert(false && "factor_network must have removed SOP nodes");
                break;
        }
    }
    for (const net::OutputPort& po : prepared.outputs()) {
        netlist.add_output(po.name, builder.realize(sig[po.driver]));
    }
    return evaluate_netlist(std::move(netlist), lib);
}

MappedResult evaluate_netlist(Network netlist, const CellLibrary& lib) {
    MappedResult result;
    result.delay_ns = critical_path_ns(netlist, lib);
    for (const NodeId id : netlist.topo_order()) {
        const net::Node& n = netlist.node(id);
        if (n.kind == GateKind::kInput || n.kind == GateKind::kConst0 ||
            n.kind == GateKind::kConst1 || n.kind == GateKind::kBuf) {
            continue;
        }
        const Cell& cell = lib.cell_for(n.kind);
        result.area_um2 += cell.area_um2;
        ++result.gate_count;
    }
    result.netlist = std::move(netlist);
    return result;
}

}  // namespace bdsmaj::mapping
