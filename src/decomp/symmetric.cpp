#include "decomp/symmetric.hpp"

#include <cassert>
#include <optional>

namespace bdsmaj::decomp {

namespace {

using net::Signal;

/// Decoder table over the count bits: entry w is the function value at
/// ones-count w, entries above k (unreachable counts) are don't-cares.
using Table = std::vector<std::optional<bool>>;

/// True when the table's value provably depends on count bit b: some pair
/// of counts differing only in bit b is specified on both sides with
/// different values. The decoder never muxes on an independent bit (the
/// half-merge below collapses it first), so only dependent bits need to be
/// produced by the counter.
bool table_needs_bit(const Table& t, std::size_t b) {
    const std::size_t stride = std::size_t{1} << b;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if ((i & stride) != 0) continue;
        const std::optional<bool>& lo = t[i];
        const std::optional<bool>& hi = t[i | stride];
        if (lo && hi && *lo != *hi) return true;
    }
    return false;
}

/// All specified entries equal -> that value; none specified -> false
/// (free choice); conflicting -> nullopt.
std::optional<bool> uniform_of(const Table& t, std::size_t begin, std::size_t end) {
    std::optional<bool> seen;
    for (std::size_t i = begin; i < end; ++i) {
        if (!t[i]) continue;
        if (!seen) {
            seen = *t[i];
        } else if (*seen != *t[i]) {
            return std::nullopt;
        }
    }
    return seen ? seen : std::optional<bool>{false};
}

/// Mux-tree decoder with don't-care-aware half merging. `bits` are the
/// count-bit signals, LSB first; the table's size is a power of two.
Signal decode(net::GateSink& sink, std::span<const Signal> bits, Table t) {
    // Merge away every top bit the (remaining) table does not depend on:
    // when the two halves agree wherever both are specified, the bit is
    // irrelevant and the halves overlay into one table of half the size.
    // Parity tables merge all the way down to {0, 1} over bit 0.
    while (t.size() > 1) {
        const std::size_t half = t.size() / 2;
        bool compatible = true;
        for (std::size_t i = 0; i < half; ++i) {
            if (t[i] && t[i + half] && *t[i] != *t[i + half]) {
                compatible = false;
                break;
            }
        }
        if (!compatible) break;
        for (std::size_t i = 0; i < half; ++i) {
            if (!t[i]) t[i] = t[i + half];
        }
        t.resize(half);
    }
    if (t.size() == 1) return sink.constant(t[0].value_or(false));

    const std::size_t half = t.size() / 2;
    std::size_t bit = 0;
    while ((std::size_t{1} << (bit + 1)) < t.size()) ++bit;
    const Signal sel = bits[bit];
    // Complementary-constant shortcut: the select bit (possibly inverted)
    // IS the function; skip the 3-gate mux expansion.
    const std::optional<bool> lo_u = uniform_of(t, 0, half);
    const std::optional<bool> hi_u = uniform_of(t, half, t.size());
    if (lo_u && hi_u && *lo_u != *hi_u) return *hi_u ? sel : !sel;
    const Signal shi = decode(sink, bits, Table(t.begin() + static_cast<std::ptrdiff_t>(half), t.end()));
    const Signal slo = decode(sink, bits, Table(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(half)));
    return sink.build_mux(sel, shi, slo);
}

/// Ones counter over `inputs`, producing count bits 0..max_bit (LSB
/// first). Buckets below max_bit reduce by full adders (sum: 2 XOR,
/// carry: 1 MAJ — the majority-logic heart of the construction) and half
/// adders; the top bucket XOR-folds, since its carries would only feed
/// bits the decoder never reads (bit w of the count is the parity of the
/// weight-w wires once all lower carries have arrived).
std::vector<Signal> build_counter(net::GateSink& sink,
                                  std::span<const Signal> inputs,
                                  std::size_t max_bit) {
    std::vector<std::vector<Signal>> weights(1);
    weights[0].assign(inputs.begin(), inputs.end());
    std::vector<Signal> bits;
    for (std::size_t w = 0; w <= max_bit; ++w) {
        if (w >= weights.size()) {
            bits.push_back(sink.constant(false));  // unreachable count bit
            continue;
        }
        std::size_t head = 0;
        if (w == max_bit) {
            if (weights[w].size() == 0) {
                bits.push_back(sink.constant(false));
                continue;
            }
            Signal acc = weights[w][head++];
            while (head < weights[w].size()) {
                acc = sink.build_xor(acc, weights[w][head++]);
            }
            bits.push_back(acc);
            continue;
        }
        while (weights[w].size() - head >= 2) {
            if (weights[w].size() - head >= 3) {
                const Signal a = weights[w][head];
                const Signal b = weights[w][head + 1];
                const Signal c = weights[w][head + 2];
                head += 3;
                const Signal sum = sink.build_xor(sink.build_xor(a, b), c);
                const Signal carry = sink.build_maj(a, b, c);
                weights[w].push_back(sum);
                if (w + 1 >= weights.size()) weights.emplace_back();
                weights[w + 1].push_back(carry);
            } else {
                const Signal a = weights[w][head];
                const Signal b = weights[w][head + 1];
                head += 2;
                const Signal sum = sink.build_xor(a, b);
                const Signal carry = sink.build_and(a, b);
                weights[w].push_back(sum);
                if (w + 1 >= weights.size()) weights.emplace_back();
                weights[w + 1].push_back(carry);
            }
        }
        bits.push_back(weights[w].size() - head == 1 ? weights[w][head]
                                                     : sink.constant(false));
    }
    return bits;
}

Signal build_impl(net::GateSink& sink, std::span<const Signal> inputs,
                  const SymmetricValues& values) {
    const std::size_t k = inputs.size();
    assert(values.size() == k + 1);
    std::size_t num_bits = 0;
    while ((std::size_t{1} << num_bits) < k + 1) ++num_bits;
    Table table(std::size_t{1} << num_bits);
    for (std::size_t w = 0; w <= k; ++w) table[w] = values[w] != 0;

    // Produce only the count bits the decoder will read; everything above
    // merges away, so the counter can stop early (a parity table needs
    // nothing but the XOR fold of bit 0).
    std::size_t max_bit = 0;
    bool any = false;
    for (std::size_t b = 0; b < num_bits; ++b) {
        if (table_needs_bit(table, b)) {
            max_bit = b;
            any = true;
        }
    }
    if (!any) return sink.constant(values[0] != 0);  // constant function
    const std::vector<Signal> bits = build_counter(sink, inputs, max_bit);
    return decode(sink, bits, std::move(table));
}

/// Dry-run sink for the profitability gate: counts emissions (a MUX as the
/// builder's 3-gate expansion) and fabricates fresh ids so the shared
/// construction code runs unchanged.
class CountingSink final : public net::GateSink {
public:
    int gates = 0;

    Signal constant(bool value) override { return Signal{0, value}; }
    Signal build_and(Signal, Signal) override { return gate(1); }
    Signal build_or(Signal, Signal) override { return gate(1); }
    Signal build_xor(Signal, Signal) override { return gate(1); }
    Signal build_maj(Signal, Signal, Signal) override { return gate(1); }
    Signal build_mux(Signal, Signal, Signal) override { return gate(3); }

private:
    Signal gate(int cost) {
        gates += cost;
        return Signal{++next_, false};
    }
    net::NodeId next_ = 0;
};

}  // namespace

int symmetric_network_cost(const SymmetricValues& values) {
    assert(values.size() >= 2);
    const std::size_t k = values.size() - 1;
    CountingSink sink;
    std::vector<Signal> inputs(k);
    for (std::size_t i = 0; i < k; ++i) {
        inputs[i] = Signal{static_cast<net::NodeId>(1000 + i), false};
    }
    (void)build_impl(sink, inputs, values);
    return sink.gates;
}

Signal build_symmetric_network(net::GateSink& sink,
                               std::span<const Signal> inputs,
                               const SymmetricValues& values) {
    return build_impl(sink, inputs, values);
}

}  // namespace bdsmaj::decomp
