#pragma once
// SAT-based exact synthesis for 5-6 input cones (the >= 5-var extension of
// the enumerated backend in decomp/exact.hpp).
//
// The narrow backend pre-enumerates all 65536 4-var functions; that is
// hopeless at 2^32 / 2^64 functions, so wider cones are synthesized
// on demand by asking a SAT solver (sat/solver.hpp) a sequence of
// percy-style questions: "does an r-step straight-line chain over
// {MAJ, AND, OR, XOR, MUX} with free input/output polarities compute tt?"
// for r growing from a fanin lower bound. The encoding is the standard
// selection-variable scheme over *normal* chains:
//
//   * step i picks an ordered operand triple (j < k < l) from the inputs
//     and earlier steps via selection variables sel_i[t];
//   * seven operator bits f_i[1..7] give the step's output for each
//     nonzero operand pattern — f_i(000) = 0 is implicit, making every
//     step a normal function. The gate alphabet with polarities is closed
//     under output complement (~AND = OR of complements, ~MAJ = MAJ of
//     complements, ~MUX(s,t,e) = MUX(s,~t,~e), XOR absorbs complements),
//     so normal chains lose no generality: the target is normalized to
//     tt(0...0) = 0 and the recorded output polarity restores it;
//   * per-operator-bit "forbidden pattern" clauses restrict each step's
//     8-bit table to the ~30 tables a single gate of the alphabet (with
//     operand polarities) can realize; decode maps the table back to
//     (op, operand roles, operand complements);
//   * value variables v_i[m] tie steps to the target on a small, growing
//     set of counterexample minterms (CEGAR): a candidate model is decoded
//     and evaluated against the full 64-bit truth table in O(r) word ops,
//     and the lowest differing minterm refines the encoding. Most calls
//     converge with a handful of minterms instead of all 2^n;
//   * chain lengths share one incremental solver: the r-specific clauses
//     (output binding, use-every-step symmetry breaking) are guarded by a
//     per-r assumption literal, so learned clauses survive the r -> r+1
//     step and the dead generation is killed with one unit clause;
//   * for long chains (r >= fence_min_steps) the search switches to fence
//     topology pre-enumeration: each composition of r into levels gets its
//     own small solver whose steps may only select operands from lower
//     levels with at least one operand on the level directly below.
//     Every DAG chain maps to exactly one fence via longest-path level
//     assignment, so enumerating all compositions per r stays complete
//     while each individual CNF is far more constrained. (Partial-DAG
//     enumeration would refine this further per-topology; fences are the
//     coarser, cheaper cut of the same idea.)
//
// Everything is budgeted by solver conflicts — never wall time — and all
// tie-breaks (counterexample choice, triple decode, fence order) are
// deterministic, so a result is a pure function of (tt, n, params): racing
// workers, any jobs count, and any run-to-run timing converge on identical
// programs. Budget exhaustion returns kUnknown and the caller falls back
// to the heuristic ladder; nothing is partially emitted.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "bdd/bdd.hpp"
#include "decomp/exact.hpp"
#include "network/gate_sink.hpp"
#include "tt/npn.hpp"

namespace bdsmaj::decomp {

struct ExactSatParams {
    /// Total CDCL conflicts one synthesize call may spend, across every
    /// chain length and fence. Conflicts — not time — keep the verdict
    /// machine-independent. <= 0 means no budget: immediate kUnknown.
    long long conflict_budget = 10000;
    /// Largest chain length tried before giving up with kUnsat.
    int max_steps = 8;
    /// Chain lengths >= this use per-fence solvers instead of the shared
    /// incremental encoding (the unrestricted CNF gets too loose there).
    int fence_min_steps = 6;
};

enum class ExactSatStatus : std::uint8_t {
    kFound,    ///< chain found and validated against the full truth table
    kUnsat,    ///< proven: no chain of <= max_steps steps computes tt
    kUnknown,  ///< conflict budget exhausted before a verdict
};

struct ExactSatResult {
    ExactSatStatus status = ExactSatStatus::kUnknown;
    std::shared_ptr<const WideStructure> structure;  ///< kFound only
    long long conflicts = 0;  ///< solver conflicts actually spent
    int sat_calls = 0;
    int steps_tried = 0;  ///< last chain length attempted
};

/// Synthesize a minimum-length chain computing the n-variable function
/// `tt` (low 2^n bits; 3 <= n <= 6 — the strategy pipeline calls with 5-6,
/// smaller n is allowed for tests). On kFound the structure's gates are
/// dead-code-eliminated from the decoded model, validated by eval_tt(),
/// and `structure->canonical == tt`. Deterministic: identical
/// (tt, n, params) always produce the identical result, including the
/// exact gate list.
[[nodiscard]] ExactSatResult exact_sat_synthesize(
    std::uint64_t tt, int num_inputs, const ExactSatParams& params = {});

/// How a concrete 5-6 support cone maps onto a wide canonical class:
/// truth table over the sorted support, wide NPN class and transform
/// (apply_npn_w(tt, n, transform) == canonical), support variables.
struct WideConeMatch {
    std::uint64_t tt = 0;
    std::uint64_t canonical = 0;
    tt::NpnTransformW transform;
    std::array<int, 6> support{-1, -1, -1, -1, -1, -1};
    int support_size = 0;
};

/// Extract the truth table of `f` when its support size is within
/// [min_support, max_support] (max_support <= 6); nullopt otherwise.
/// Canonicalization is memoized process-wide (a 6-var canonicalization
/// walks ~92k transforms; repeated cone shapes pay it once).
[[nodiscard]] std::optional<WideConeMatch> match_cone_wide(
    bdd::Manager& mgr, const bdd::Bdd& f, int min_support, int max_support);

/// Replay `s` into `sink` for the cone described by `match` — the wide
/// analogue of emit_exact_cone: canonical input j resolves through the
/// inverse NPN transform to the leaf of the matching support variable.
/// `leaves[v]` must be the sink signal of manager variable v.
[[nodiscard]] net::Signal emit_exact_cone_wide(
    const WideConeMatch& match, const WideStructure& s, net::GateSink& sink,
    std::span<const net::Signal> leaves);

/// Size of the one-gate operator alphabet (distinct normal 3-operand
/// tables realizable by one {MAJ,AND,OR,XOR,MUX} gate with operand
/// polarities); exposed for tests and docs.
[[nodiscard]] int exact_sat_operator_count();

}  // namespace bdsmaj::decomp
