#pragma once
// Totally symmetric cone decomposition (Benschop-style, PAPERS.md): a
// function symmetric in all k support variables depends only on the ones
// count of its inputs, so it factors into
//
//   inputs -> ones counter (full-adder tree: 2 XOR + 1 MAJ per FA, the
//             carry IS a majority gate) -> ceil(log2(k+1)) count bits
//          -> value decoder (a mux tree over the count bits, collapsed
//             with don't-care-aware half merging, so e.g. parity reduces
//             to count bit 0 alone)
//
// That is O(k) gates where the generic ladder yields ~1 gate per BDD node
// of an O(k^2)-node symmetric BDD — the asymmetry the SymmetricStrategy's
// profitability gate exploits. The construction is a pure function of
// (k, value vector), emitted as a deterministic GateSink call sequence, so
// it honors the tape-replay contract like every other emission path.

#include <cstdint>
#include <span>
#include <vector>

#include "network/gate_sink.hpp"

namespace bdsmaj::decomp {

/// Value vector of a totally symmetric function: values[w] is f at any
/// input with exactly w of the k support variables true (size k + 1).
using SymmetricValues = std::vector<std::uint8_t>;

/// Gate count build_symmetric_network will emit for this value vector
/// (counting a MUX as the builder's 3-gate expansion). Deterministic; used
/// by the strategy's profitability gate before anything is emitted.
[[nodiscard]] int symmetric_network_cost(const SymmetricValues& values);

/// Emit the ones-counting network for `values` over `inputs` (the cone's
/// support literals, in support order) into `sink`.
[[nodiscard]] net::Signal build_symmetric_network(net::GateSink& sink,
                                                  std::span<const net::Signal> inputs,
                                                  const SymmetricValues& values);

}  // namespace bdsmaj::decomp
