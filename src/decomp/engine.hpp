#pragma once
// The BDD decomposition engine (paper SIV-B): recursively decomposes a BDD
// into a factoring tree emitted through any GateSink (the hash-consing
// network builder for on-line logic sharing, SIV-C, or a worker's GateTape).
//
// Since the strategy refactor the engine is a pipeline driver, not a fixed
// ladder: each recursion step computes the dominator analysis once, hands
// it to an ordered list of pluggable DecompStrategy objects
// (strategy.hpp), and emits the winning Candidate — first-fit for the
// paper's ladder semantics, or cheapest-by-CostModel for the cost-driven
// presets. The stages themselves live in strategy.cpp:
//
//   0. constants / literals terminate the recursion (engine-internal);
//   1. ExactSmallConeStrategy  — optional: NPN-cached minimal structures
//      for cones with <= 4 support variables (decomp/exact.hpp);
//   2. MajorityStrategy        — MAJ "on the top of the dominator nodes
//      search", accepted only when globally advantageous (k_global);
//   3. SimpleDominatorStrategy — 1-, 0-, x-dominators -> AND / OR / XOR;
//   4. GeneralizedXorStrategy  — non-disjoint XOR split when both parts
//      shrink;
//   5. ShannonMuxStrategy      — cofactoring on the top variable, the
//      guaranteed last resort.
//
// The pipeline is selected by EngineParams::preset (see preset_catalog()):
// `paper` reproduces the pre-framework ladder byte-for-byte, `bds-pga` is
// the Table I baseline (use_majority = false strips the majority stage
// from any preset, which is exactly how the flows request it), and the
// exact / cost-model presets trade structure for gate count. Every
// candidate is a valid decomposition by construction, so all presets
// yield functionally equivalent networks.

#include <memory>
#include <string>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "decomp/maj_decomp.hpp"
#include "decomp/strategy.hpp"
#include "network/gate_sink.hpp"

namespace bdsmaj::decomp {

struct EngineParams {
    bool use_majority = true;  ///< false => strip the majority stage (BDS-PGA)
    MajDecompParams maj;
    /// Simple-dominator candidates scored for balance (top-k shortlist).
    int max_simple_candidates = 4;
    /// Accept a generalized XOR split only if both parts are smaller than
    /// the function by this factor.
    double xor_acceptance_factor = 1.0;
    /// Named strategy pipeline (see preset_catalog()); resolved once per
    /// decomposer. Unknown names throw std::invalid_argument at
    /// construction.
    std::string preset = "paper";
    /// Support cap for the exact cone strategy. Up to 4 uses the
    /// pre-enumerated NPN table (decomp/exact.hpp); 5 and 6 engage the
    /// on-demand SAT backend (decomp/exact_sat.hpp). Hard limit 6.
    int exact_max_support = 6;
    /// Conflict budget per SAT synthesis call on a 5-6 var cone class;
    /// exhaustion records a negative cache entry and falls back to the
    /// heuristic ladder (nothing partial is emitted). <= 0 disables the
    /// SAT backend outright (wide cones fall through to the ladder).
    long long exact_sat_budget = 10000;
    /// Longest chain the SAT backend tries before declaring a class
    /// unsynthesizable at this effort.
    int exact_sat_max_steps = 8;
    /// Profitability gate for the exact strategy: serve a cached structure
    /// only when its gate count is below |dag(f)| + this margin (more
    /// negative = more conservative, preserving the ladder's cross-cone
    /// sharing; see ExactSmallConeStrategy). -1 is the measured sweet spot
    /// on the MCNC suite.
    int exact_min_saving = -1;
    /// The same margin for the 5-6 var SAT-synthesized cones, which are
    /// larger sharing-opaque blocks and need a harsher bar (see
    /// ExactSmallConeStrategy::propose_wide); tuned on MCNC mapped gates:
    /// -4 ties the 4-var-only backend while still serving wide cones,
    /// shallower margins lose the ladder's cross-cone sharing.
    int exact_min_saving_wide = -4;
    /// Support cap for the symmetric-cone strategy (the `symmetry`
    /// preset): cones with more support variables than this skip the
    /// symmetry census entirely.
    int symmetric_max_support = 12;
    /// Profitability margin for symmetric cones: serve the ones-counting
    /// network only when its gate count is below |dag(f)| + this margin.
    /// At 0 the gate is self-tuning — small symmetric cones (MAJ-3,
    /// voter-5) have compact ladder yields and are rejected; wide ones are
    /// where the O(k) counter beats the ~O(k^2) ladder.
    int symmetric_min_saving = 0;
};

/// Counts of applied decompositions, one increment per recursion step.
/// npn_cache_* describe the process-wide exact-structure cache and are the
/// only fields that depend on prior process history (a class enumerated by
/// an earlier run is a hit here), so they are excluded from determinism
/// fingerprints; everything else is a pure function of input and preset.
struct EngineStats {
    int and_steps = 0;
    int or_steps = 0;
    int xor_steps = 0;      ///< simple-dominator + generalized XOR steps
    int maj_steps = 0;
    int mux_steps = 0;
    int exact_steps = 0;    ///< whole cones served by the exact backend
    int exact_wide_steps = 0;  ///< the 5-6 var SAT-backed subset of exact_steps
    int symmetric_steps = 0;   ///< cones served as ones-counting networks
    int gen_xor_steps = 0;  ///< the generalized (stage 3) subset of xor_steps
    int maj_attempts = 0;   ///< majority decompositions evaluated
    int maj_rejected = 0;   ///< failed the global advantage gate
    int literal_leaves = 0;
    // Symmetric-cone census telemetry: cones that passed the cheap size
    // filter and entered the cofactor-pair check, and the subset confirmed
    // totally symmetric (served or not — the profitability gate decides
    // separately, counted by symmetric_steps).
    long long sym_cone_checks = 0;
    long long sym_cone_total = 0;
    long long npn_cache_hits = 0;
    long long npn_cache_misses = 0;
    // SAT exact-synthesis telemetry (the 5-6 var wide path). Like
    // npn_cache_*, these depend on prior process history — a class
    // synthesized earlier (or loaded from disk) is a cache hit that skips
    // the solver — so they stay outside determinism fingerprints. The
    // served PROGRAMS are deterministic: a hit returns byte-for-byte what
    // a cold synthesis at equal-or-lower effort would have produced.
    long long exact_sat_synthesized = 0;  ///< solver calls actually made
    long long exact_sat_cache_hits = 0;   ///< wide classes served from cache
    long long exact_sat_fallbacks = 0;    ///< budget/steps exhausted -> ladder
    long long exact_sat_conflicts = 0;    ///< total solver conflicts spent
    // Cone-memoization telemetry (decomp/cone_cache.hpp; filled by the
    // flow layer). Like npn_cache_*, hit/miss/eviction counts depend on
    // prior process history — a cone decomposed by an earlier run or a
    // concurrent worker is a hit here — so all cone_cache_* fields stay
    // outside the determinism fingerprints. The decomposition RESULTS are
    // history-independent either way: a hit replays the byte-identical
    // tape a cold run would have produced.
    long long cone_cache_hits = 0;
    long long cone_cache_misses = 0;
    long long cone_cache_evictions = 0;  ///< evictions during this run
    long long cone_cache_bytes = 0;      ///< cache footprint at run end
    // Reordering effort of the per-supernode managers (filled by the flow
    // layer, not the decomposer). Sums/max over supernodes are
    // order-independent, so these stay deterministic at any job count —
    // but they are telemetry, not part of the engine-step fingerprints.
    long long sift_swaps = 0;       ///< structural adjacent-level swaps
    long long sift_fast_swaps = 0;  ///< label-only swaps of non-interacting levels
    long long sift_lb_aborts = 0;   ///< sift directions cut by the lower bound
    long long peak_bdd_nodes = 0;   ///< max peak node count over the managers
    long long sift_sym_groups = 0;  ///< symmetry groups detected during sifting
    long long sift_block_swaps = 0; ///< multi-level block moves during sifting
    // Graceful-degradation telemetry (filled by the flow layer): supernodes
    // whose tape was produced by a degrade-ladder stage instead of the
    // requested parameters — because the soft budget expired or a resource
    // guard threw ResourceExhausted mid-cone. Timing-dependent under a soft
    // budget, so outside the determinism fingerprints; zero whenever no
    // deadline/budget/guard is configured.
    long long degraded_supernodes = 0;
    long long resource_exhausted_cones = 0;  ///< cones retried after a guard trip

    EngineStats& operator+=(const EngineStats& o);

    /// Total accepted decomposition steps (excludes literal leaves).
    [[nodiscard]] int total_steps() const noexcept {
        return and_steps + or_steps + xor_steps + maj_steps + mux_steps +
               exact_steps + symmetric_steps;
    }
    /// Steps credited to one strategy; summing over all strategies in a
    /// pipeline yields total_steps() (tests enforce it).
    [[nodiscard]] int steps_for(StrategyKind kind) const noexcept;
};

/// Decomposes functions of one BDD manager into gates over leaf signals,
/// emitted through any GateSink (the shared hash-consing builder for
/// direct serial emission, a GateTape for an isolated parallel worker).
/// Leaf signal i corresponds to manager variable i. The memoization across
/// calls realizes BDD-level sharing inside a supernode.
class BddDecomposer {
public:
    /// Throws std::invalid_argument when params.preset is unknown.
    BddDecomposer(bdd::Manager& mgr, net::GateSink& sink,
                  std::vector<net::Signal> leaves, EngineParams params = {});

    /// Decompose `f` and return the signal computing it.
    [[nodiscard]] net::Signal decompose(const bdd::Bdd& f);

    [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

    /// The resolved pipeline (after the use_majority strip), for
    /// introspection and tests.
    [[nodiscard]] const StrategyPipelineConfig& pipeline() const noexcept {
        return config_;
    }

private:
    net::Signal decompose_edge(bdd::Edge e);
    net::Signal decompose_regular(bdd::Edge e);
    net::Signal emit(const Candidate& cand);

    bdd::Manager& mgr_;
    net::GateSink& builder_;
    std::vector<net::Signal> leaves_;
    EngineParams params_;
    StrategyPipelineConfig config_;
    std::vector<std::unique_ptr<DecompStrategy>> strategies_;
    std::unique_ptr<CostModel> cost_model_;  ///< kBestCost pipelines only
    EngineStats stats_;
    std::unordered_map<bdd::Edge, net::Signal> memo_;  // regular edges only
    /// Keeps every memoized function referenced: a bare Edge key would dangle
    /// once garbage collection reuses its node slot for a different function.
    std::vector<bdd::Bdd> memo_pins_;
};

}  // namespace bdsmaj::decomp
