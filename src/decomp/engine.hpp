#pragma once
// The BDD decomposition engine (paper SIV-B): recursively decomposes a BDD
// into a factoring tree emitted through the hash-consing network builder
// (on-line logic sharing, SIV-C).
//
// Stage order per function, following the paper:
//   0. constants / literals terminate the recursion;
//   1. majority decomposition "on the top of the dominator nodes search" —
//      tried first, accepted only when globally advantageous (k_global);
//   2. simple dominators (1-, 0-, x-) -> disjoint AND / OR / XOR;
//   3. generalized (non-disjoint) XOR split when it shrinks both parts;
//   4. Shannon cofactoring on the top variable (MUX) as last resort.
//
// Setting `use_majority = false` removes stage 1 and yields the BDS-PGA
// baseline the paper compares against in Table I.

#include <unordered_map>

#include "bdd/bdd.hpp"
#include "decomp/maj_decomp.hpp"
#include "network/gate_sink.hpp"

namespace bdsmaj::decomp {

struct EngineParams {
    bool use_majority = true;  ///< false => BDS-PGA baseline
    MajDecompParams maj;
    /// Simple-dominator candidates scored for balance (top-k shortlist).
    int max_simple_candidates = 4;
    /// Accept a generalized XOR split only if both parts are smaller than
    /// the function by this factor.
    double xor_acceptance_factor = 1.0;
};

/// Counts of applied decompositions, one increment per recursion step.
struct EngineStats {
    int and_steps = 0;
    int or_steps = 0;
    int xor_steps = 0;
    int maj_steps = 0;
    int mux_steps = 0;
    int maj_attempts = 0;   ///< majority decompositions evaluated
    int maj_rejected = 0;   ///< failed the global advantage gate
    int literal_leaves = 0;

    EngineStats& operator+=(const EngineStats& o);
};

/// Decomposes functions of one BDD manager into gates over leaf signals,
/// emitted through any GateSink (the shared hash-consing builder for
/// direct serial emission, a GateTape for an isolated parallel worker).
/// Leaf signal i corresponds to manager variable i. The memoization across
/// calls realizes BDD-level sharing inside a supernode.
class BddDecomposer {
public:
    BddDecomposer(bdd::Manager& mgr, net::GateSink& sink,
                  std::vector<net::Signal> leaves, EngineParams params = {});

    /// Decompose `f` and return the signal computing it.
    [[nodiscard]] net::Signal decompose(const bdd::Bdd& f);

    [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

private:
    net::Signal decompose_edge(bdd::Edge e);
    net::Signal decompose_regular(bdd::Edge e);

    bdd::Manager& mgr_;
    net::GateSink& builder_;
    std::vector<net::Signal> leaves_;
    EngineParams params_;
    EngineStats stats_;
    std::unordered_map<bdd::Edge, net::Signal> memo_;  // regular edges only
    /// Keeps every memoized function referenced: a bare Edge key would dangle
    /// once garbage collection reuses its node slot for a different function.
    std::vector<bdd::Bdd> memo_pins_;
};

}  // namespace bdsmaj::decomp
