#include "decomp/engine.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "decomp/dominators.hpp"
#include "decomp/xor_decomp.hpp"

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;
using bdd::Edge;
using net::Signal;

}  // namespace

EngineStats& EngineStats::operator+=(const EngineStats& o) {
    and_steps += o.and_steps;
    or_steps += o.or_steps;
    xor_steps += o.xor_steps;
    maj_steps += o.maj_steps;
    mux_steps += o.mux_steps;
    maj_attempts += o.maj_attempts;
    maj_rejected += o.maj_rejected;
    literal_leaves += o.literal_leaves;
    return *this;
}

BddDecomposer::BddDecomposer(bdd::Manager& mgr, net::GateSink& sink,
                             std::vector<net::Signal> leaves, EngineParams params)
    : mgr_(mgr), builder_(sink), leaves_(std::move(leaves)), params_(params) {}

Signal BddDecomposer::decompose(const Bdd& f) {
    assert(f.manager() == &mgr_);
    return decompose_edge(f.edge());
}

Signal BddDecomposer::decompose_edge(Edge e) {
    if (bdd::edge_complemented(e)) return !decompose_edge(bdd::edge_not(e));
    if (e == bdd::kEdgeOne) return builder_.constant(true);
    const auto it = memo_.find(e);
    if (it != memo_.end()) return it->second;
    memo_pins_.push_back(mgr_.from_edge(e));  // pin before any op can GC
    const Signal s = decompose_regular(e);
    memo_.emplace(e, s);
    return s;
}

Signal BddDecomposer::decompose_regular(Edge e) {
    const Bdd f = mgr_.from_edge(e);
    const int top_var = mgr_.edge_top_var(e);

    // Stage 0: literal.
    if (mgr_.edge_then(e) == bdd::kEdgeOne && mgr_.edge_else(e) == bdd::kEdgeZero) {
        ++stats_.literal_leaves;
        assert(static_cast<std::size_t>(top_var) < leaves_.size());
        return leaves_[static_cast<std::size_t>(top_var)];
    }

    DominatorAnalysis analysis(mgr_, f);
    // |dag(f)| falls out of the analysis DAG; stages 2 and 3 share it
    // instead of re-traversing f once (or twice) per recursion step.
    const std::size_t f_size = analysis.nodes().size();

    // Stage 1: majority decomposition at the top of the dominator search.
    // The engine's dominator analysis is handed down so the candidate
    // search does not repeat it.
    if (params_.use_majority) {
        const std::optional<MajDecomposition> md =
            maj_decompose(mgr_, f, analysis, params_.maj);
        if (md) {
            ++stats_.maj_attempts;
            if (maj_globally_advantageous(mgr_, f, *md, params_.maj.k_global)) {
                ++stats_.maj_steps;
                const Signal sa = decompose_edge(md->fa.edge());
                const Signal sb = decompose_edge(md->fb.edge());
                const Signal sc = decompose_edge(md->fc.edge());
                return builder_.build_maj(sa, sb, sc);
            }
            ++stats_.maj_rejected;
        }
    }

    // Stage 2: simple dominators. Shortlist by divisor balance (|Fv| close
    // to |F|/2), then score shortlisted candidates exactly. Divisor sizes
    // come from the analysis' one-pass size computation — the previous
    // dag_size call per flagged candidate made this step quadratic in |F|.
    if (analysis.has_simple_dominator()) {
        struct Candidate {
            const NodeDomInfo* info;
            SimpleDecomposition::Op op;
            std::size_t divisor_size;
        };
        const std::vector<std::size_t>& sizes = analysis.node_sizes();
        const std::vector<NodeDomInfo>& infos = analysis.nodes();
        std::vector<Candidate> shortlist;
        for (std::size_t i = 0; i < infos.size(); ++i) {
            const NodeDomInfo& info = infos[i];
            if (info.is_one_dominator) {
                shortlist.push_back({&info, SimpleDecomposition::Op::kAnd, sizes[i]});
            } else if (info.is_zero_dominator) {
                shortlist.push_back({&info, SimpleDecomposition::Op::kOr, sizes[i]});
            } else if (info.is_x_dominator) {
                shortlist.push_back({&info, SimpleDecomposition::Op::kXor, sizes[i]});
            }
        }
        const auto balance = [f_size](std::size_t part) {
            const auto half = static_cast<double>(f_size) / 2.0;
            return std::abs(static_cast<double>(part) - half);
        };
        std::stable_sort(shortlist.begin(), shortlist.end(),
                         [&](const Candidate& a, const Candidate& b) {
                             return balance(a.divisor_size) < balance(b.divisor_size);
                         });
        if (static_cast<int>(shortlist.size()) > params_.max_simple_candidates) {
            shortlist.resize(static_cast<std::size_t>(params_.max_simple_candidates));
        }
        std::optional<SimpleDecomposition> best;
        std::size_t best_score = 0;
        for (const Candidate& c : shortlist) {
            SimpleDecomposition d = analysis.decompose_at(*c.info, c.op);
            const std::size_t score =
                std::max(mgr_.dag_size(d.quotient), mgr_.dag_size(d.divisor));
            if (!best || score < best_score) {
                best_score = score;
                best = std::move(d);
            }
        }
        if (best) {
            const Signal q = decompose_edge(best->quotient.edge());
            const Signal d = decompose_edge(best->divisor.edge());
            switch (best->op) {
                case SimpleDecomposition::Op::kAnd:
                    ++stats_.and_steps;
                    return builder_.build_and(q, d);
                case SimpleDecomposition::Op::kOr:
                    ++stats_.or_steps;
                    return builder_.build_or(q, d);
                case SimpleDecomposition::Op::kXor:
                    ++stats_.xor_steps;
                    return builder_.build_xor(q, d);
            }
        }
    }

    // Stage 3: generalized (non-disjoint) XOR split, accepted only when
    // both parts strictly shrink.
    {
        const XorSplit split = xor_decompose(mgr_, f, params_.maj.xor_params);
        if (!split.trivial) {
            const auto limit = static_cast<double>(f_size) * params_.xor_acceptance_factor;
            if (static_cast<double>(mgr_.dag_size(split.m)) < limit &&
                static_cast<double>(mgr_.dag_size(split.k)) < limit) {
                ++stats_.xor_steps;
                const Signal m = decompose_edge(split.m.edge());
                const Signal k = decompose_edge(split.k.edge());
                return builder_.build_xor(m, k);
            }
        }
    }

    // Stage 4: Shannon cofactoring on the top variable (MUX fallback). The
    // builder expands the MUX into the AND/OR alphabet.
    ++stats_.mux_steps;
    const Signal sel = leaves_[static_cast<std::size_t>(top_var)];
    const Signal hi = decompose_edge(mgr_.edge_then(e));
    const Signal lo = decompose_edge(mgr_.edge_else(e));
    return builder_.build_mux(sel, hi, lo);
}

}  // namespace bdsmaj::decomp
