#include "decomp/engine.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "decomp/dominators.hpp"

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;
using bdd::Edge;
using net::Signal;

}  // namespace

EngineStats& EngineStats::operator+=(const EngineStats& o) {
    and_steps += o.and_steps;
    or_steps += o.or_steps;
    xor_steps += o.xor_steps;
    maj_steps += o.maj_steps;
    mux_steps += o.mux_steps;
    exact_steps += o.exact_steps;
    exact_wide_steps += o.exact_wide_steps;
    symmetric_steps += o.symmetric_steps;
    gen_xor_steps += o.gen_xor_steps;
    maj_attempts += o.maj_attempts;
    maj_rejected += o.maj_rejected;
    literal_leaves += o.literal_leaves;
    sym_cone_checks += o.sym_cone_checks;
    sym_cone_total += o.sym_cone_total;
    npn_cache_hits += o.npn_cache_hits;
    npn_cache_misses += o.npn_cache_misses;
    exact_sat_synthesized += o.exact_sat_synthesized;
    exact_sat_cache_hits += o.exact_sat_cache_hits;
    exact_sat_fallbacks += o.exact_sat_fallbacks;
    exact_sat_conflicts += o.exact_sat_conflicts;
    cone_cache_hits += o.cone_cache_hits;
    cone_cache_misses += o.cone_cache_misses;
    cone_cache_evictions += o.cone_cache_evictions;
    cone_cache_bytes = std::max(cone_cache_bytes, o.cone_cache_bytes);
    sift_swaps += o.sift_swaps;
    sift_fast_swaps += o.sift_fast_swaps;
    sift_lb_aborts += o.sift_lb_aborts;
    peak_bdd_nodes = std::max(peak_bdd_nodes, o.peak_bdd_nodes);
    sift_sym_groups += o.sift_sym_groups;
    sift_block_swaps += o.sift_block_swaps;
    degraded_supernodes += o.degraded_supernodes;
    resource_exhausted_cones += o.resource_exhausted_cones;
    return *this;
}

int EngineStats::steps_for(StrategyKind kind) const noexcept {
    switch (kind) {
        case StrategyKind::kSymmetric: return symmetric_steps;
        case StrategyKind::kExactSmallCone: return exact_steps;
        case StrategyKind::kMajority: return maj_steps;
        case StrategyKind::kSimpleDominator:
            return and_steps + or_steps + (xor_steps - gen_xor_steps);
        case StrategyKind::kGeneralizedXor: return gen_xor_steps;
        case StrategyKind::kShannonMux: return mux_steps;
    }
    return 0;
}

BddDecomposer::BddDecomposer(bdd::Manager& mgr, net::GateSink& sink,
                             std::vector<net::Signal> leaves, EngineParams params)
    : mgr_(mgr), builder_(sink), leaves_(std::move(leaves)), params_(std::move(params)) {
    config_ = preset_pipeline(params_.preset);
    if (!params_.use_majority) {
        config_.order.erase(std::remove(config_.order.begin(), config_.order.end(),
                                        StrategyKind::kMajority),
                            config_.order.end());
    }
    strategies_.reserve(config_.order.size());
    for (const StrategyKind kind : config_.order) {
        strategies_.push_back(make_strategy(kind));
    }
    if (config_.selection == SelectionMode::kBestCost) {
        cost_model_ = make_cost_model(config_.cost_model);
    }
}

Signal BddDecomposer::decompose(const Bdd& f) {
    assert(f.manager() == &mgr_);
    return decompose_edge(f.edge());
}

Signal BddDecomposer::decompose_edge(Edge e) {
    if (bdd::edge_complemented(e)) return !decompose_edge(bdd::edge_not(e));
    if (e == bdd::kEdgeOne) return builder_.constant(true);
    const auto it = memo_.find(e);
    if (it != memo_.end()) return it->second;
    memo_pins_.push_back(mgr_.from_edge(e));  // pin before any op can GC
    const Signal s = decompose_regular(e);
    memo_.emplace(e, s);
    return s;
}

Signal BddDecomposer::emit(const Candidate& cand) {
    switch (cand.op) {
        case Candidate::Op::kAnd: {
            ++stats_.and_steps;
            const Signal q = decompose_edge(cand.a.edge());
            const Signal d = decompose_edge(cand.b.edge());
            return builder_.build_and(q, d);
        }
        case Candidate::Op::kOr: {
            ++stats_.or_steps;
            const Signal q = decompose_edge(cand.a.edge());
            const Signal d = decompose_edge(cand.b.edge());
            return builder_.build_or(q, d);
        }
        case Candidate::Op::kXor: {
            ++stats_.xor_steps;
            if (cand.source == StrategyKind::kGeneralizedXor) ++stats_.gen_xor_steps;
            const Signal q = decompose_edge(cand.a.edge());
            const Signal d = decompose_edge(cand.b.edge());
            return builder_.build_xor(q, d);
        }
        case Candidate::Op::kMaj: {
            ++stats_.maj_steps;
            const Signal sa = decompose_edge(cand.a.edge());
            const Signal sb = decompose_edge(cand.b.edge());
            const Signal sc = decompose_edge(cand.c.edge());
            return builder_.build_maj(sa, sb, sc);
        }
        case Candidate::Op::kMux: {
            ++stats_.mux_steps;
            assert(cand.mux_var >= 0 &&
                   static_cast<std::size_t>(cand.mux_var) < leaves_.size());
            const Signal sel = leaves_[static_cast<std::size_t>(cand.mux_var)];
            const Signal hi = decompose_edge(cand.a.edge());
            const Signal lo = decompose_edge(cand.b.edge());
            return builder_.build_mux(sel, hi, lo);
        }
        case Candidate::Op::kExact: {
            ++stats_.exact_steps;
            assert(cand.structure != nullptr);
            return emit_exact_cone(cand.match, *cand.structure, builder_, leaves_);
        }
        case Candidate::Op::kExactWide: {
            ++stats_.exact_steps;
            ++stats_.exact_wide_steps;
            assert(cand.wide_structure != nullptr);
            return emit_exact_cone_wide(cand.wide_match, *cand.wide_structure,
                                        builder_, leaves_);
        }
        case Candidate::Op::kSymmetric: {
            ++stats_.symmetric_steps;
            std::vector<Signal> inputs;
            inputs.reserve(cand.sym_vars.size());
            for (const int v : cand.sym_vars) {
                assert(v >= 0 && static_cast<std::size_t>(v) < leaves_.size());
                inputs.push_back(leaves_[static_cast<std::size_t>(v)]);
            }
            return build_symmetric_network(builder_, inputs, cand.sym_values);
        }
    }
    assert(false && "unreachable candidate op");
    return Signal{};
}

Signal BddDecomposer::decompose_regular(Edge e) {
    const Bdd f = mgr_.from_edge(e);
    const int top_var = mgr_.edge_top_var(e);

    // Stage 0: literal. Terminal for the recursion, so it stays
    // engine-internal rather than being a strategy.
    if (mgr_.edge_then(e) == bdd::kEdgeOne && mgr_.edge_else(e) == bdd::kEdgeZero) {
        ++stats_.literal_leaves;
        assert(static_cast<std::size_t>(top_var) < leaves_.size());
        return leaves_[static_cast<std::size_t>(top_var)];
    }

    DominatorAnalysis analysis(mgr_, f);
    // |dag(f)| falls out of the analysis DAG; every strategy shares it
    // instead of re-traversing f per recursion step.
    StepContext ctx{mgr_, f, analysis, analysis.nodes().size(), params_, stats_};

    std::optional<Candidate> chosen;
    if (config_.selection == SelectionMode::kFirstFit) {
        for (const auto& strategy : strategies_) {
            chosen = strategy->propose(ctx);
            if (chosen) break;
        }
    } else {
        double best_cost = 0.0;
        for (const auto& strategy : strategies_) {
            std::optional<Candidate> cand = strategy->propose(ctx);
            if (!cand) continue;
            const double c = cost_model_->cost(*cand, ctx);
            // Strict <: ties go to the earlier strategy in pipeline order.
            if (!chosen || c < best_cost) {
                best_cost = c;
                chosen = std::move(cand);
            }
        }
    }
    // Pipeline resolution guarantees ShannonMux is present and it always
    // proposes, so a candidate always exists.
    assert(chosen.has_value());
    return emit(*chosen);
}

}  // namespace bdsmaj::decomp
