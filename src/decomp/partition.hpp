#pragma once
// Network partitioning (paper SIV-A): partial collapse of the input network
// into supernodes, each small enough for a local BDD.
//
// The collapse policy follows the eliminate-style preprocessing of BDS:
// a node is absorbed into its (unique) fanout while the merged cone's leaf
// support stays within bounds; multi-fanout nodes, primary inputs and
// support-limited nodes become cut points. Every cut point then roots one
// supernode whose leaves are the nearest cut points below it.

#include <vector>

#include "network/network.hpp"

namespace bdsmaj::net {
class Network;
}

namespace bdsmaj::decomp {

struct PartitionParams {
    /// Maximum leaf support of a supernode (local BDD variable count).
    std::size_t max_leaves = 16;
    /// Absorb multi-fanout nodes too when their fanout count is at most
    /// this, duplicating their logic into each consumer's cone (BDS's
    /// eliminate does the same for low-value nodes). Hash-consed factoring
    /// re-shares identical duplicates on the way out. The default of 2 is
    /// what lets an adder's g/p pairs collapse into the carry cone so the
    /// carry is seen as Maj(a, b, c).
    std::uint32_t max_absorbed_fanout = 2;
    /// A multi-fanout node is only absorbed when its own collapsed cone has
    /// at most this many gates (the BDS eliminate "value" bound); without
    /// it duplication compounds exponentially through deep datapaths.
    /// 1 = single-gate cones only (a ripple adder's generate/propagate
    /// pair), the sweet spot across the Table I suite (see
    /// bench/ablation_mdom and EXPERIMENTS.md).
    std::uint32_t max_duplicated_gates = 1;
};

struct Supernode {
    net::NodeId root = net::kNoNode;
    std::vector<net::NodeId> leaves;   ///< cut points / PIs feeding the cone
    std::vector<net::NodeId> cone;     ///< internal nodes, topological order
};

/// Partition `network` into supernodes covering every node reachable from
/// the outputs. Supernodes are returned in topological order (leaves of a
/// supernode are PIs or roots of earlier supernodes).
[[nodiscard]] std::vector<Supernode> partition_network(const net::Network& network,
                                                       const PartitionParams& params = {});

}  // namespace bdsmaj::decomp
