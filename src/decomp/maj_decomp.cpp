#include "decomp/maj_decomp.hpp"

#include <array>
#include <cassert>

#include "decomp/dominators.hpp"

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;
using bdd::Manager;

/// SIII-E superiority test between two decompositions: primary criterion is
/// total size; additionally, if every component of `a` is at least k times
/// smaller than the matching component of `b`, `a` dominates regardless.
bool locally_superior(Manager& mgr, const MajDecomposition& a,
                      const MajDecomposition& b, double k) {
    const double ka = k * static_cast<double>(a.size_fa(mgr));
    const double kb = k * static_cast<double>(a.size_fb(mgr));
    const double kc = k * static_cast<double>(a.size_fc(mgr));
    if (ka <= static_cast<double>(b.size_fa(mgr)) &&
        kb <= static_cast<double>(b.size_fb(mgr)) &&
        kc <= static_cast<double>(b.size_fc(mgr))) {
        return true;
    }
    return a.total_size(mgr) < b.total_size(mgr);
}

}  // namespace

MajDecomposition construct_majority(Manager& mgr, const Bdd& f, const Bdd& fa,
                                    bool use_restrict) {
    // Theorem 3.3 seeds: H = F|Fa, W = F|!Fa (generalized cofactors). The
    // care sets are non-empty unless Fa is constant, in which case the
    // cofactor against the empty set is replaced by F itself (the trivial
    // H = F solution of Theorem 3.2 is always valid).
    const Bdd not_fa = !fa;
    const Bdd h = fa.is_zero() ? f
                  : use_restrict ? mgr.restrict_to(f, fa)
                                 : mgr.constrain(f, fa);
    const Bdd w = fa.is_one() ? f
                  : use_restrict ? mgr.restrict_to(f, not_fa)
                                 : mgr.constrain(f, not_fa);
    // Theorem 3.2: Fb = ITE(Fa^F, F, H), Fc = ITE(Fa^F, F, W).
    const Bdd diff = mgr.apply_xor(fa, f);
    MajDecomposition d;
    d.fa = fa;
    d.fb = mgr.ite(diff, f, h);
    d.fc = mgr.ite(diff, f, w);
    assert(mgr.maj(d.fa, d.fb, d.fc) == f);
    return d;
}

bool balance_majority_once(Manager& mgr, const Bdd& f, MajDecomposition& decomp,
                           const XorDecompParams& xor_params) {
    bool improved = false;
    // All couples (X, Y) among Fa, Fb, Fc, as in Algorithm 1.
    const std::array<std::pair<Bdd*, Bdd*>, 3> pairs = {
        std::make_pair(&decomp.fb, &decomp.fc),
        std::make_pair(&decomp.fa, &decomp.fb),
        std::make_pair(&decomp.fa, &decomp.fc),
    };
    for (const auto& [px, py] : pairs) {
        Bdd& x = *px;
        Bdd& y = *py;
        const Bdd fx = mgr.apply_xor(x, y);
        if (fx.is_zero()) continue;  // X == Y: nothing to rebalance
        const XorSplit split = xor_decompose(mgr, fx, xor_params);
        if (split.trivial) continue;
        // Theorem 3.4 restructuring with (M, K) satisfying M ^ K = Fx.
        const Bdd x_opt = mgr.ite(fx, split.k, x);
        const Bdd y_opt = mgr.ite(fx, split.m, y);
        const std::size_t before = mgr.dag_size(x) + mgr.dag_size(y);
        const std::size_t after = mgr.dag_size(x_opt) + mgr.dag_size(y_opt);
        if (after < before) {
            x = x_opt;
            y = y_opt;
            decomp.invalidate_size_memo();
            improved = true;
            assert(mgr.maj(decomp.fa, decomp.fb, decomp.fc) == f);
        }
    }
    return improved;
}

std::optional<MajDecomposition> maj_decompose(Manager& mgr, const Bdd& f,
                                              const MajDecompParams& params) {
    if (f.is_constant()) return std::nullopt;
    DominatorAnalysis analysis(mgr, f);
    return maj_decompose(mgr, f, analysis, params);
}

std::optional<MajDecomposition> maj_decompose(Manager& mgr, const Bdd& f,
                                              const DominatorAnalysis& analysis,
                                              const MajDecompParams& params) {
    if (f.is_constant()) return std::nullopt;

    // (α): m-dominator candidates.
    const std::vector<bdd::NodeIndex> candidates = analysis.m_dominators(
        params.max_candidates, params.min_then_fanin, params.min_else_fanin);
    if (candidates.empty()) return std::nullopt;

    std::optional<MajDecomposition> best;
    for (const bdd::NodeIndex v : candidates) {
        // With complement edges the m-dominator may be used in either
        // polarity along different paths; Theorem 3.2 is valid for any Fa,
        // so both polarities are evaluated and (ω) keeps the winner.
        for (const bool complemented : {false, true}) {
            const Bdd node_fn = mgr.node_function(v);
            const Bdd fa = complemented ? !node_fn : node_fn;
            // (β): initial construction.
            MajDecomposition current =
                construct_majority(mgr, f, fa, params.use_restrict);
            // (γ): cyclic balancing until no improvement or iteration limit.
            for (int iter = 0; iter < params.max_iterations; ++iter) {
                if (!balance_majority_once(mgr, f, current, params.xor_params)) break;
            }
            assert(mgr.maj(current.fa, current.fb, current.fc) == f);
            // (ω): keep the best decomposition.
            if (!best || locally_superior(mgr, current, *best, params.k_local)) {
                best = std::move(current);
            }
        }
    }
    return best;
}

bool maj_globally_advantageous(Manager& mgr, const Bdd& f,
                               const MajDecomposition& decomp, double k_global) {
    const auto original = static_cast<double>(mgr.dag_size(f));
    return k_global * static_cast<double>(decomp.size_fa(mgr)) <= original &&
           k_global * static_cast<double>(decomp.size_fb(mgr)) <= original &&
           k_global * static_cast<double>(decomp.size_fc(mgr)) <= original;
}

}  // namespace bdsmaj::decomp
