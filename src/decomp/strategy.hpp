#pragma once
// Pluggable decomposition strategies and cost models for the BDD engine.
//
// Every stage of the paper's priority ladder is a self-contained
// DecompStrategy that inspects one recursion step (a function, its
// dominator analysis) and proposes at most one scored Candidate. The
// engine assembles strategies into an ordered pipeline:
//
//   * kFirstFit   — strategies are consulted in order and the first
//                   proposal wins: the paper's ladder semantics. The
//                   `paper` preset reproduces the pre-framework engine
//                   byte-for-byte.
//   * kBestCost   — every strategy proposes; the shared CostModel (gate
//                   count / literal count / MAJ depth) scores all
//                   candidates and the cheapest wins (ties go to the
//                   earlier strategy in the pipeline order).
//
// Pipelines are configured by named presets (preset_catalog()); the name
// travels EngineParams -> DecompFlowParams -> flows/SynthesisService ->
// `bdsmaj_cli --preset`. Every candidate is a valid decomposition by
// construction, so any pipeline yields an equivalent network — presets
// only trade gate count, structure, and runtime.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bdd/bdd.hpp"
#include "decomp/dominators.hpp"
#include "decomp/exact.hpp"
#include "decomp/exact_sat.hpp"
#include "decomp/symmetric.hpp"

namespace bdsmaj::decomp {

struct EngineParams;
struct EngineStats;

enum class StrategyKind {
    kSymmetric,        ///< totally symmetric cones -> ones-counting MAJ network
    kExactSmallCone,   ///< exact structures: enumerated (<= 4 vars) and
                       ///< SAT-synthesized (5-6 vars) cones
    kMajority,         ///< paper stage 1: MAJ on top of the dominator search
    kSimpleDominator,  ///< paper stage 2: 1-/0-/x-dominators -> AND/OR/XOR
    kGeneralizedXor,   ///< paper stage 3: non-disjoint XOR split
    kShannonMux,       ///< paper stage 4: Shannon cofactoring (always fires)
};

enum class CostModelKind { kGateCount, kLiteralCount, kMajDepth };
enum class SelectionMode { kFirstFit, kBestCost };

/// What one strategy proposes for one recursion step: the operator to
/// emit plus the sub-functions the engine should recurse into (or, for
/// kExact, a cached replay program that covers the whole cone).
struct Candidate {
    StrategyKind source = StrategyKind::kShannonMux;
    enum class Op {
        kAnd, kOr, kXor, kMaj, kMux, kExact, kExactWide, kSymmetric
    } op = Op::kMux;
    /// Recursion operands: AND/OR/XOR use {a = quotient, b = divisor};
    /// MAJ uses {a, b, c}; MUX uses {a = then-cofactor, b = else-cofactor}
    /// with `mux_var` as the select literal.
    bdd::Bdd a, b, c;
    int mux_var = -1;
    /// kExact payload: the cone binding and the cached program.
    ConeMatch match;
    std::shared_ptr<const ExactStructure> structure;
    /// kExactWide payload: the 5-6 var cone binding and its SAT-synthesized
    /// (or cache-served) program.
    WideConeMatch wide_match;
    std::shared_ptr<const WideStructure> wide_structure;
    /// kSymmetric payload: the cone's support (manager var indices, in
    /// support order) and its ones-count value vector.
    std::vector<int> sym_vars;
    SymmetricValues sym_values;
};

/// One recursion step as seen by strategies: the function, its dominator
/// analysis (shared, computed once per step by the engine), and the
/// engine's parameters/stats (strategies account their own attempt
/// counters; the engine accounts accepted steps).
struct StepContext {
    bdd::Manager& mgr;
    const bdd::Bdd& f;
    DominatorAnalysis& analysis;
    std::size_t f_size = 0;
    const EngineParams& params;
    EngineStats& stats;
};

class DecompStrategy {
public:
    virtual ~DecompStrategy() = default;
    [[nodiscard]] virtual StrategyKind kind() const noexcept = 0;
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
    /// The strategy's best candidate for ctx.f, or nullopt when the
    /// strategy does not apply (or its internal acceptance gate rejects).
    [[nodiscard]] virtual std::optional<Candidate> propose(StepContext& ctx) = 0;
};

/// Scores candidates for kBestCost selection. Estimates are heuristic
/// (BDD sizes proxy the recursion's eventual gate/literal yield) except
/// for kExact candidates, whose gate count is known exactly.
class CostModel {
public:
    virtual ~CostModel() = default;
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
    [[nodiscard]] virtual double cost(const Candidate& cand, StepContext& ctx) const = 0;
};

[[nodiscard]] std::unique_ptr<DecompStrategy> make_strategy(StrategyKind kind);
[[nodiscard]] std::unique_ptr<CostModel> make_cost_model(CostModelKind kind);
[[nodiscard]] std::string_view strategy_name(StrategyKind kind);

/// An ordered strategy pipeline plus its selection rule. Resolution
/// guarantees kShannonMux is present (appended if missing), so every
/// pipeline terminates.
struct StrategyPipelineConfig {
    std::vector<StrategyKind> order;
    SelectionMode selection = SelectionMode::kFirstFit;
    CostModelKind cost_model = CostModelKind::kGateCount;
};

struct PresetInfo {
    std::string name;
    std::string description;
};

/// The named presets, in catalog order. `paper` is the default and is
/// byte-identical to the pre-framework ladder.
[[nodiscard]] const std::vector<PresetInfo>& preset_catalog();
[[nodiscard]] bool is_known_preset(std::string_view name);
/// Throws std::invalid_argument (listing the catalog) on unknown names.
[[nodiscard]] StrategyPipelineConfig preset_pipeline(std::string_view name);
/// Whether a preset turns symmetry-aware sifting on when the caller left
/// the knob at its "preset decides" default. `paper` (and the other pinned
/// baselines) keep it off so their fingerprints stay byte-identical.
[[nodiscard]] bool preset_sift_symmetry_default(std::string_view name);

}  // namespace bdsmaj::decomp
