#pragma once
// Majority logic decomposition on BDDs — the paper's core contribution
// (Section III, Algorithm 1).
//
// Given F, find Fa, Fb, Fc with F = Maj(Fa, Fb, Fc):
//   (α) candidate Fa roots = non-trivial m-dominators of F's BDD;
//   (β) initial construction (Theorems 3.2/3.3):
//         Fb = ITE(Fa ^ F, F, F|Fa),  Fc = ITE(Fa ^ F, F, F|!Fa)
//       with the generalized cofactor as H/W seed;
//   (γ) cyclic balancing (Theorem 3.4): for each pair (X, Y), XOR-decompose
//       Fx = X ^ Y into balanced (M, K) and restructure
//         X <- ITE(Fx, K, X),  Y <- ITE(Fx, M, Y),
//       iterated while the total size improves, at most `max_iterations`;
//   (ω) selection: smallest |Fa|+|Fb|+|Fc|, with the k-balance superiority
//       test of SIII-E as tie-breaking dominance condition.
//
// Every decomposition this module returns satisfies Maj(Fa,Fb,Fc) == F by
// construction; debug builds assert it at each phase.

#include <array>
#include <optional>
#include <utility>

#include "bdd/bdd.hpp"
#include "decomp/xor_decomp.hpp"

namespace bdsmaj::decomp {

struct MajDecompParams {
    int max_candidates = 8;   ///< m-dominator candidates to evaluate (α)
    int max_iterations = 5;   ///< balancing iterations (paper SIV-B: 5)
    double k_local = 1.5;     ///< local selection sizing factor (SIV-B)
    double k_global = 1.6;    ///< global acceptance sizing factor (SIV-B)
    std::uint32_t min_then_fanin = 1;   ///< condition (ii) tightening knobs
    std::uint32_t min_else_fanin = 1;
    /// Use `restrict` (support-reducing) rather than `constrain` for the
    /// H/W seeds of Eq. 3; both are valid generalized cofactors.
    bool use_restrict = true;
    XorDecompParams xor_params;
};

struct MajDecomposition {
    bdd::Bdd fa, fb, fc;
    // Selection and balancing re-query component sizes many times per
    // candidate; sizes are memoized per component and recomputed only when
    // the component's edge changes (the handles pin the functions, so an
    // unchanged edge always denotes the same function).
    [[nodiscard]] std::size_t size_fa(bdd::Manager& mgr) const { return memo_size(0, fa, mgr); }
    [[nodiscard]] std::size_t size_fb(bdd::Manager& mgr) const { return memo_size(1, fb, mgr); }
    [[nodiscard]] std::size_t size_fc(bdd::Manager& mgr) const { return memo_size(2, fc, mgr); }
    [[nodiscard]] std::size_t total_size(bdd::Manager& mgr) const {
        return size_fa(mgr) + size_fb(mgr) + size_fc(mgr);
    }
    /// Must be called after assigning to fa/fb/fc. Edge comparison alone is
    /// not a safe staleness check: a garbage-collected node slot can be
    /// recycled into a different function with the same edge value.
    void invalidate_size_memo() const {
        for (auto& [edge, size] : size_memo_) edge = bdd::kEdgeInvalid;
    }

private:
    [[nodiscard]] std::size_t memo_size(int i, const bdd::Bdd& f,
                                        bdd::Manager& mgr) const {
        auto& [edge, size] = size_memo_[static_cast<std::size_t>(i)];
        if (edge != f.edge()) {
            edge = f.edge();
            size = mgr.dag_size(f);
        }
        return size;
    }
    mutable std::array<std::pair<bdd::Edge, std::size_t>, 3> size_memo_{
        {{bdd::kEdgeInvalid, 0}, {bdd::kEdgeInvalid, 0}, {bdd::kEdgeInvalid, 0}}};
};

/// (β)-phase: construct Fb, Fc for a given Fa per Theorem 3.2 with the
/// Eq. 3 seeds. Exposed for tests and for callers with their own Fa choice.
[[nodiscard]] MajDecomposition construct_majority(bdd::Manager& mgr,
                                                  const bdd::Bdd& f,
                                                  const bdd::Bdd& fa,
                                                  bool use_restrict = true);

/// (γ)-phase: one balancing sweep over all pairs; returns true if any pair
/// improved. `decomp` is updated in place and stays a valid decomposition.
bool balance_majority_once(bdd::Manager& mgr, const bdd::Bdd& f,
                           MajDecomposition& decomp,
                           const XorDecompParams& xor_params = {});

class DominatorAnalysis;

/// Full Algorithm 1. Returns the best decomposition over all m-dominator
/// candidates, or nullopt when no candidate exists.
[[nodiscard]] std::optional<MajDecomposition> maj_decompose(
    bdd::Manager& mgr, const bdd::Bdd& f, const MajDecompParams& params = {});

/// Same, reusing a dominator analysis of `f` the caller already computed
/// (the decomposition engine runs one per recursion step anyway).
[[nodiscard]] std::optional<MajDecomposition> maj_decompose(
    bdd::Manager& mgr, const bdd::Bdd& f, const DominatorAnalysis& analysis,
    const MajDecompParams& params = {});

/// Global acceptance gate (SIV-B): every component at least k_global times
/// smaller than the undecomposed |F|.
[[nodiscard]] bool maj_globally_advantageous(bdd::Manager& mgr, const bdd::Bdd& f,
                                             const MajDecomposition& decomp,
                                             double k_global = 1.6);

}  // namespace bdsmaj::decomp
