#pragma once
// Exact synthesis backend for small cones (<= 4 support variables).
//
// Any function reaching the decomposition engine whose support fits in four
// variables has a 16-bit truth table; NPN canonicalization (tt/npn.hpp)
// collapses the 65536 functions into 222 classes. This module serves, per
// class, a minimal-gate-count fanout-free structure over the engine's gate
// alphabet {MAJ, AND, OR, XOR, MUX, NOT} — NOT is free (signals carry
// polarity), so AND with input/output complements subsumes OR/NAND/NOR and
// XOR subsumes XNOR.
//
// Costs come from a one-time dynamic program over all 65536 truth tables
// (Dijkstra by gate count: cost(op(a, b)) <= cost(a) + cost(b) + 1, with
// 3-input MAJ/MUX taking at least one literal operand — the tractable tree
// grammar; see docs/performance.md). Per-class replay programs are
// materialized lazily on first miss into a process-wide, mutex-sharded
// cache shared by every decomposer on every thread: one enumeration serves
// all jobs for the rest of the process lifetime.
//
// A structure is a straight-line program over canonical-space inputs; the
// ConeMatch carries the NPN transform that binds those inputs back onto the
// engine's leaf signals (with polarities), so replay composes with any
// GateSink — the shared hash-consing builder or a worker's GateTape alike.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/gate_sink.hpp"
#include "tt/npn.hpp"

namespace bdsmaj::decomp {

/// Operand of an exact-structure gate: a canonical-space input literal
/// (index 0..3), an earlier gate of the same program (index 4 + gate
/// position), or a constant, each with an optional complement.
struct ExactRef {
    static constexpr std::uint8_t kConstIndex = 0xff;
    std::uint8_t index = kConstIndex;
    bool complemented = false;  ///< for kConstIndex: true = constant one

    [[nodiscard]] static ExactRef input(int i, bool c) {
        return {static_cast<std::uint8_t>(i), c};
    }
    [[nodiscard]] static ExactRef gate(int g, bool c) {
        return {static_cast<std::uint8_t>(4 + g), c};
    }
    [[nodiscard]] static ExactRef constant(bool one) { return {kConstIndex, one}; }
    [[nodiscard]] bool is_const() const noexcept { return index == kConstIndex; }
    [[nodiscard]] bool is_input() const noexcept { return !is_const() && index < 4; }
    [[nodiscard]] ExactRef operator!() const { return {index, !complemented}; }
};

/// kOr exists for the wide (5-6 input) SAT-synthesized programs only: the
/// narrow backend absorbs OR into AND via free complemented refs, but a
/// wide gate's 8-bit operator table must be realizable without an output
/// complement, so OR is a first-class op there.
enum class ExactOp : std::uint8_t { kAnd, kXor, kMaj, kMux, kOr };

struct ExactGate {
    ExactOp op = ExactOp::kAnd;
    ExactRef a, b, c;  ///< c is used by kMaj and kMux (select = a) only
};

/// A straight-line replay program computing one NPN-canonical function of
/// the four canonical-space inputs. Immutable once published by the cache.
struct ExactStructure {
    std::uint16_t canonical = 0;   ///< the class this program computes
    std::vector<ExactGate> gates;  ///< topologically ordered
    ExactRef output;               ///< may reference an input or constant

    [[nodiscard]] int gate_count() const noexcept {
        return static_cast<int>(gates.size());
    }
    /// Evaluate the program over 16-bit truth-table arithmetic; returns the
    /// function of the output. Used by tests and debug assertions to prove
    /// the program really computes `canonical`.
    [[nodiscard]] std::uint16_t eval_tt() const;
};

/// How a concrete cone maps onto a cached structure: its truth table over
/// the (sorted, padded-to-4) support, the NPN class, and the transform
/// with apply_npn(tt, transform) == structure.canonical.
struct ConeMatch {
    std::uint16_t tt = 0;
    std::uint16_t canonical = 0;
    tt::NpnTransform transform;
    std::array<int, 4> support{-1, -1, -1, -1};  ///< manager var per position
    int support_size = 0;
};

/// Extract the truth table of `f` when its support has at most
/// `max_support` (<= 4) variables; nullopt otherwise. Callers should
/// pre-filter on DAG size — a function on <= 4 variables never has more
/// than a handful of BDD nodes, so a size check makes the common reject
/// path O(1).
[[nodiscard]] std::optional<ConeMatch> match_cone(bdd::Manager& mgr,
                                                  const bdd::Bdd& f,
                                                  int max_support = 4);

/// Replay `s` into `sink` for the cone described by `match`: canonical
/// input j resolves through the inverse NPN transform to the leaf signal
/// of the corresponding support variable (complemented as needed), and the
/// program's output polarity absorbs the transform's output negation.
/// `leaves[v]` must be the sink signal of manager variable v.
[[nodiscard]] net::Signal emit_exact_cone(const ConeMatch& match,
                                          const ExactStructure& s,
                                          net::GateSink& sink,
                                          std::span<const net::Signal> leaves);

// ---------------------------------------------------------------------------
// Wide (5-6 input) structures, produced by the SAT-based exact backend
// (decomp/exact_sat.hpp). Same straight-line replay shape as
// ExactStructure, but over up to six canonical-space inputs and 64-bit
// truth tables; gates are full fanin-3 chain steps (the SAT encoding lifts
// the narrow backend's one-literal-operand tree-grammar restriction).
// ---------------------------------------------------------------------------

/// Operand of a wide gate: canonical-space input (index 0..5), an earlier
/// gate (index 6 + position), or a constant. The input base is fixed at 6
/// regardless of the actual input count so refs stay stable across n.
struct WideRef {
    static constexpr std::uint8_t kConstIndex = 0xff;
    static constexpr std::uint8_t kGateBase = 6;
    std::uint8_t index = kConstIndex;
    bool complemented = false;  ///< for kConstIndex: true = constant one

    [[nodiscard]] static WideRef input(int i, bool c) {
        return {static_cast<std::uint8_t>(i), c};
    }
    [[nodiscard]] static WideRef gate(int g, bool c) {
        return {static_cast<std::uint8_t>(kGateBase + g), c};
    }
    [[nodiscard]] static WideRef constant(bool one) { return {kConstIndex, one}; }
    [[nodiscard]] bool is_const() const noexcept { return index == kConstIndex; }
    [[nodiscard]] bool is_input() const noexcept {
        return !is_const() && index < kGateBase;
    }
    [[nodiscard]] WideRef operator!() const { return {index, !complemented}; }
};

struct WideGate {
    ExactOp op = ExactOp::kAnd;
    WideRef a, b, c;  ///< c is used by kMaj and kMux (select = a) only
};

/// A straight-line program computing one wide NPN-canonical function of
/// `num_inputs` (5 or 6) canonical-space inputs. Immutable once published.
struct WideStructure {
    std::uint64_t canonical = 0;  ///< class tt in the low 2^num_inputs bits
    std::uint8_t num_inputs = 0;
    std::vector<WideGate> gates;  ///< topologically ordered
    WideRef output;

    [[nodiscard]] int gate_count() const noexcept {
        return static_cast<int>(gates.size());
    }
    /// Evaluate over 64-bit truth-table arithmetic (masked to 2^num_inputs
    /// bits); proves the program really computes `canonical`.
    [[nodiscard]] std::uint64_t eval_tt() const;
};

/// Telemetry of the process-wide class cache.
struct ExactCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;   ///< first-touch materializations
    int classes_cached = 0;
    std::uint64_t wide_hits = 0;
    std::uint64_t wide_misses = 0;  ///< lookups that found no wide program
    int wide_classes_cached = 0;
    int wide_failures_recorded = 0;  ///< negative entries (budget/steps keyed)
};

/// Process-wide NPN-class structure cache. Thread-safe; the underlying
/// cost table is enumerated once per process (on the first miss), the
/// per-class replay programs are materialized lazily under per-shard
/// mutexes and then shared by every thread for the process lifetime.
class ExactSynthesisCache {
public:
    /// The singleton shared by all decomposers/jobs/threads.
    [[nodiscard]] static ExactSynthesisCache& instance();

    /// Structure for an NPN-canonical class; `was_hit` (optional) reports
    /// whether the program was already materialized. Never fails: every
    /// 16-bit function is reachable in the enumeration grammar.
    [[nodiscard]] std::shared_ptr<const ExactStructure> lookup(
        std::uint16_t canonical, bool* was_hit = nullptr);

    /// Persist every materialized class to `path` (versioned binary
    /// format), via a temp file + atomic rename so a crash mid-save never
    /// corrupts an existing cache file. Entries are written in canonical
    /// order, so the bytes are deterministic for a given class set.
    /// Returns the number of classes written, or -1 on I/O failure.
    int save_to_file(const std::string& path) const;

    /// Pre-warm from a file written by save_to_file. Tolerant by design:
    /// a missing file, bad magic, unknown version or truncated payload
    /// loads nothing (returns 0) instead of failing the run, and every
    /// entry is re-validated (reference well-formedness + the program
    /// must evaluate to its claimed class) before being trusted — a
    /// corrupted structure is skipped, never served. Already-materialized
    /// classes keep their in-memory program (first insert wins). Accepts
    /// both the legacy narrow-only version 1 files and the version 2
    /// layout that appends SAT-found wide programs. Returns the number of
    /// classes actually inserted (narrow + wide).
    int load_from_file(const std::string& path);

    // --- Wide (5-6 input) SAT-synthesized programs -----------------------

    /// Program for a wide canonical class, or nullptr when none has been
    /// synthesized yet (the SAT backend is on-demand; a miss here is the
    /// caller's cue to synthesize). Thread-safe.
    [[nodiscard]] std::shared_ptr<const WideStructure> lookup_wide(
        int num_inputs, std::uint64_t canonical);

    /// Publish a synthesized program; first insert wins (racing workers
    /// that synthesized the same class concurrently converge on the first
    /// published copy). Returns the canonical in-cache pointer. Clears any
    /// negative entry for the class.
    std::shared_ptr<const WideStructure> insert_wide(
        std::shared_ptr<const WideStructure> s);

    /// True when a previous synthesis attempt for the class already failed
    /// with at least this conflict budget AND step cap — retrying with the
    /// same or less effort is pointless and would burn the budget again.
    [[nodiscard]] bool wide_failure_covers(int num_inputs,
                                           std::uint64_t canonical,
                                           long long budget, int max_steps);

    /// Record a failed synthesis attempt (budget exhausted or UNSAT up to
    /// max_steps). Keeps the strongest attempt per class; in-memory only,
    /// never persisted (a failure is relative to a budget, not a fact
    /// about the function).
    void record_wide_failure(int num_inputs, std::uint64_t canonical,
                             long long budget, int max_steps);

    [[nodiscard]] ExactCacheStats stats() const;

private:
    ExactSynthesisCache() = default;

    static constexpr std::size_t kShards = 16;
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::uint16_t, std::shared_ptr<const ExactStructure>> map;
    };
    struct WideFailure {
        long long budget = 0;
        int max_steps = 0;
    };
    /// Wide classes are few (hundreds, each guarded by an expensive SAT
    /// call), so a single mutex over both per-n maps is not a bottleneck.
    struct WideStore {
        mutable std::mutex mutex;
        // Index 0 holds 5-input classes, index 1 holds 6-input classes.
        std::array<std::unordered_map<std::uint64_t,
                                      std::shared_ptr<const WideStructure>>,
                   2>
            map;
        std::array<std::unordered_map<std::uint64_t, WideFailure>, 2> failures;
    };
    static bool wide_slot(int num_inputs, std::size_t* slot);

    std::array<Shard, kShards> shards_;
    WideStore wide_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> wide_hits_{0};
    std::atomic<std::uint64_t> wide_misses_{0};
};

/// Minimal gate count of `tt` in the enumeration grammar (exposed for
/// tests; forces the one-time cost enumeration on first call).
[[nodiscard]] int exact_gate_cost(std::uint16_t tt);

}  // namespace bdsmaj::decomp
