#pragma once
// Exact synthesis backend for small cones (<= 4 support variables).
//
// Any function reaching the decomposition engine whose support fits in four
// variables has a 16-bit truth table; NPN canonicalization (tt/npn.hpp)
// collapses the 65536 functions into 222 classes. This module serves, per
// class, a minimal-gate-count fanout-free structure over the engine's gate
// alphabet {MAJ, AND, OR, XOR, MUX, NOT} — NOT is free (signals carry
// polarity), so AND with input/output complements subsumes OR/NAND/NOR and
// XOR subsumes XNOR.
//
// Costs come from a one-time dynamic program over all 65536 truth tables
// (Dijkstra by gate count: cost(op(a, b)) <= cost(a) + cost(b) + 1, with
// 3-input MAJ/MUX taking at least one literal operand — the tractable tree
// grammar; see docs/performance.md). Per-class replay programs are
// materialized lazily on first miss into a process-wide, mutex-sharded
// cache shared by every decomposer on every thread: one enumeration serves
// all jobs for the rest of the process lifetime.
//
// A structure is a straight-line program over canonical-space inputs; the
// ConeMatch carries the NPN transform that binds those inputs back onto the
// engine's leaf signals (with polarities), so replay composes with any
// GateSink — the shared hash-consing builder or a worker's GateTape alike.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/gate_sink.hpp"
#include "tt/npn.hpp"

namespace bdsmaj::decomp {

/// Operand of an exact-structure gate: a canonical-space input literal
/// (index 0..3), an earlier gate of the same program (index 4 + gate
/// position), or a constant, each with an optional complement.
struct ExactRef {
    static constexpr std::uint8_t kConstIndex = 0xff;
    std::uint8_t index = kConstIndex;
    bool complemented = false;  ///< for kConstIndex: true = constant one

    [[nodiscard]] static ExactRef input(int i, bool c) {
        return {static_cast<std::uint8_t>(i), c};
    }
    [[nodiscard]] static ExactRef gate(int g, bool c) {
        return {static_cast<std::uint8_t>(4 + g), c};
    }
    [[nodiscard]] static ExactRef constant(bool one) { return {kConstIndex, one}; }
    [[nodiscard]] bool is_const() const noexcept { return index == kConstIndex; }
    [[nodiscard]] bool is_input() const noexcept { return !is_const() && index < 4; }
    [[nodiscard]] ExactRef operator!() const { return {index, !complemented}; }
};

enum class ExactOp : std::uint8_t { kAnd, kXor, kMaj, kMux };

struct ExactGate {
    ExactOp op = ExactOp::kAnd;
    ExactRef a, b, c;  ///< c is used by kMaj and kMux (select = a) only
};

/// A straight-line replay program computing one NPN-canonical function of
/// the four canonical-space inputs. Immutable once published by the cache.
struct ExactStructure {
    std::uint16_t canonical = 0;   ///< the class this program computes
    std::vector<ExactGate> gates;  ///< topologically ordered
    ExactRef output;               ///< may reference an input or constant

    [[nodiscard]] int gate_count() const noexcept {
        return static_cast<int>(gates.size());
    }
    /// Evaluate the program over 16-bit truth-table arithmetic; returns the
    /// function of the output. Used by tests and debug assertions to prove
    /// the program really computes `canonical`.
    [[nodiscard]] std::uint16_t eval_tt() const;
};

/// How a concrete cone maps onto a cached structure: its truth table over
/// the (sorted, padded-to-4) support, the NPN class, and the transform
/// with apply_npn(tt, transform) == structure.canonical.
struct ConeMatch {
    std::uint16_t tt = 0;
    std::uint16_t canonical = 0;
    tt::NpnTransform transform;
    std::array<int, 4> support{-1, -1, -1, -1};  ///< manager var per position
    int support_size = 0;
};

/// Extract the truth table of `f` when its support has at most
/// `max_support` (<= 4) variables; nullopt otherwise. Callers should
/// pre-filter on DAG size — a function on <= 4 variables never has more
/// than a handful of BDD nodes, so a size check makes the common reject
/// path O(1).
[[nodiscard]] std::optional<ConeMatch> match_cone(bdd::Manager& mgr,
                                                  const bdd::Bdd& f,
                                                  int max_support = 4);

/// Replay `s` into `sink` for the cone described by `match`: canonical
/// input j resolves through the inverse NPN transform to the leaf signal
/// of the corresponding support variable (complemented as needed), and the
/// program's output polarity absorbs the transform's output negation.
/// `leaves[v]` must be the sink signal of manager variable v.
[[nodiscard]] net::Signal emit_exact_cone(const ConeMatch& match,
                                          const ExactStructure& s,
                                          net::GateSink& sink,
                                          std::span<const net::Signal> leaves);

/// Telemetry of the process-wide class cache.
struct ExactCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;   ///< first-touch materializations
    int classes_cached = 0;
};

/// Process-wide NPN-class structure cache. Thread-safe; the underlying
/// cost table is enumerated once per process (on the first miss), the
/// per-class replay programs are materialized lazily under per-shard
/// mutexes and then shared by every thread for the process lifetime.
class ExactSynthesisCache {
public:
    /// The singleton shared by all decomposers/jobs/threads.
    [[nodiscard]] static ExactSynthesisCache& instance();

    /// Structure for an NPN-canonical class; `was_hit` (optional) reports
    /// whether the program was already materialized. Never fails: every
    /// 16-bit function is reachable in the enumeration grammar.
    [[nodiscard]] std::shared_ptr<const ExactStructure> lookup(
        std::uint16_t canonical, bool* was_hit = nullptr);

    /// Persist every materialized class to `path` (versioned binary
    /// format), via a temp file + atomic rename so a crash mid-save never
    /// corrupts an existing cache file. Entries are written in canonical
    /// order, so the bytes are deterministic for a given class set.
    /// Returns the number of classes written, or -1 on I/O failure.
    int save_to_file(const std::string& path) const;

    /// Pre-warm from a file written by save_to_file. Tolerant by design:
    /// a missing file, bad magic, unknown version or truncated payload
    /// loads nothing (returns 0) instead of failing the run, and every
    /// entry is re-validated (reference well-formedness + the program
    /// must evaluate to its claimed class) before being trusted — a
    /// corrupted structure is skipped, never served. Already-materialized
    /// classes keep their in-memory program (first insert wins). Returns
    /// the number of classes actually inserted.
    int load_from_file(const std::string& path);

    [[nodiscard]] ExactCacheStats stats() const;

private:
    ExactSynthesisCache() = default;

    static constexpr std::size_t kShards = 16;
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::uint16_t, std::shared_ptr<const ExactStructure>> map;
    };
    std::array<Shard, kShards> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

/// Minimal gate count of `tt` in the enumeration grammar (exposed for
/// tests; forces the one-time cost enumeration on first call).
[[nodiscard]] int exact_gate_cost(std::uint16_t tt);

}  // namespace bdsmaj::decomp
