#pragma once
// Dominator analysis on BDD structure (paper SII-C, SIII-B).
//
// A node v of F's BDD DAG is
//   * a 1-dominator when every 1-path (root-to-terminal path of even
//     complement parity) passes through v and every path reaching v has
//     even parity: then F = F_{v->1} AND Fv (conjunctive decomposition);
//   * a 0-dominator when the dual holds for 0-paths:
//     F = F_{v->0} OR Fv (disjunctive decomposition);
//   * an x-dominator when every path passes through v:
//     F = F_{v->0} XOR Fv (the BDS XNOR/XOR decomposition);
//   * a non-trivial m-dominator (the paper's new class) when it is none of
//     the above and is reached both through then-edges and through regular
//     else-edges (condition (ii)): a highly connected node, the candidate
//     Fa of the majority decomposition.
//
// Candidates are detected with a path-parity counting DP and then verified
// exactly with BDD operations, so floating-point path counts can never
// produce a wrong decomposition.

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"

namespace bdsmaj::decomp {

struct NodeDomInfo {
    bdd::NodeIndex node = 0;
    std::uint32_t level = 0;
    std::uint32_t then_fanin = 0;       ///< incoming then-edges within the DAG
    std::uint32_t else_fanin_reg = 0;   ///< incoming regular else-edges
    std::uint32_t else_fanin_comp = 0;  ///< incoming complemented else-edges
    bool is_one_dominator = false;
    bool is_zero_dominator = false;
    bool is_x_dominator = false;
    bool is_root = false;
    /// True when every path reaches the node with odd complement parity;
    /// the AND/OR decomposition then uses the complemented node function
    /// (F = quotient OP !Fv). XOR absorbs parity and never needs this.
    bool divisor_complemented = false;
};

/// A verified simple-dominator decomposition F = quotient OP node_function.
struct SimpleDecomposition {
    enum class Op { kAnd, kOr, kXor } op = Op::kAnd;
    bdd::Bdd quotient;  ///< F with the dominator node redirected to a constant
    bdd::Bdd divisor;   ///< function rooted at the dominator node
};

class DominatorAnalysis {
public:
    /// Analyze the DAG of `f` in `mgr`. Simple-dominator flags are verified
    /// with exact BDD identities before being set.
    DominatorAnalysis(bdd::Manager& mgr, const bdd::Bdd& f);

    /// Per-node info, root first (topological order by level).
    [[nodiscard]] const std::vector<NodeDomInfo>& nodes() const noexcept {
        return infos_;
    }

    [[nodiscard]] bool has_simple_dominator() const noexcept {
        return has_simple_;
    }

    /// Build the verified decomposition for a flagged node.
    [[nodiscard]] SimpleDecomposition decompose_at(const NodeDomInfo& info,
                                                   SimpleDecomposition::Op op);

    /// Non-trivial m-dominator candidates (condition (i) and (ii) of
    /// SIII-B), ordered by decreasing connectivity, at most `max_count`.
    /// `min_then_fanin` / `min_else_fanin` tighten condition (ii), the
    /// paper's knob for pruning the candidate list.
    [[nodiscard]] std::vector<bdd::NodeIndex> m_dominators(
        int max_count, std::uint32_t min_then_fanin = 1,
        std::uint32_t min_else_fanin = 1) const;

    /// Exact DAG size of every node function, aligned with nodes():
    /// node_sizes()[i] == dag_size(node_function(nodes()[i].node)). Computed
    /// once for the whole DAG in a single bottom-up reachability pass
    /// (bitset union over DAG positions), instead of one full traversal per
    /// queried node; lazily evaluated and cached. Entry 0 (the root) is the
    /// DAG size of f itself.
    [[nodiscard]] const std::vector<std::size_t>& node_sizes();

private:
    bdd::Manager& mgr_;
    bdd::Bdd f_;
    std::vector<bdd::NodeIndex> dag_;  // topological (level) order, root first
    std::vector<NodeDomInfo> infos_;   // aligned with dag_
    std::vector<std::size_t> sizes_;   // aligned with dag_; lazy
    bool has_simple_ = false;
};

}  // namespace bdsmaj::decomp
