#pragma once
// Balanced XOR decomposition on BDDs: given Fx, find M and K with
// Fx = M XOR K and |M| ~ |K|.
//
// This is the core the paper's (γ)-phase borrows from BDS ("BDD-based XOR
// decomposition methods in [10] offer an efficient opportunity to compute
// balanced M and K functions", SIII-D). The search order is:
//   1. every verified x-dominator of Fx (each yields Fx = F_{v->0} ^ Fv);
//   2. single-variable splits Fx = x ^ (Fx ^ x) over the support;
//   3. the trivial split (Fx, 0).
// Among valid splits the most balanced one (smallest max component, ties
// by total size) wins.

#include "bdd/bdd.hpp"

namespace bdsmaj::decomp {

struct XorSplit {
    bdd::Bdd m;
    bdd::Bdd k;
    /// True when the split is the trivial (Fx, 0).
    bool trivial = false;
};

struct XorDecompParams {
    /// Cap on single-variable fallback candidates (support can be large).
    int max_var_candidates = 8;
    /// Reject non-trivial splits whose total size exceeds this multiple of
    /// |Fx| (guards against var-splits that blow up M).
    double max_growth = 2.0;
};

/// Decompose `fx` into a balanced XOR pair. Always succeeds: the trivial
/// split is returned when nothing better exists. Postcondition:
/// m XOR k == fx.
[[nodiscard]] XorSplit xor_decompose(bdd::Manager& mgr, const bdd::Bdd& fx,
                                     const XorDecompParams& params = {});

}  // namespace bdsmaj::decomp
