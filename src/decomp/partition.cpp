#include "decomp/partition.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace bdsmaj::decomp {

namespace {

using net::Network;
using net::NodeId;

}  // namespace

std::vector<Supernode> partition_network(const Network& network,
                                         const PartitionParams& params) {
    const std::vector<NodeId> topo = network.topo_order();
    const std::vector<std::uint32_t> fanout = network.fanout_counts();

    // Output drivers are always cut points.
    std::vector<bool> is_po_driver(network.node_count(), false);
    for (const net::OutputPort& po : network.outputs()) is_po_driver[po.driver] = true;

    // leaves_of[n]: leaf support of the cone currently collapsed into n.
    std::vector<std::vector<NodeId>> leaves_of(network.node_count());
    std::vector<bool> is_cut(network.node_count(), false);

    auto merged_leaves = [&](const net::Node& node) {
        std::vector<NodeId> merged;
        for (const NodeId f : node.fanins) {
            const std::vector<NodeId>& add =
                is_cut[f] ? std::vector<NodeId>{f} : leaves_of[f];
            for (const NodeId leaf : add) {
                if (std::find(merged.begin(), merged.end(), leaf) == merged.end()) {
                    merged.push_back(leaf);
                }
            }
        }
        return merged;
    };

    // Duplicated-gate count of each node's collapsed cone (absorbed fanins
    // included, duplicates counted).
    std::vector<std::uint32_t> cone_gates(network.node_count(), 0);

    for (const NodeId id : topo) {
        const net::Node& node = network.node(id);
        if (node.kind == net::GateKind::kInput) {
            is_cut[id] = true;
            continue;
        }
        // Decide for each fanin whether it stays absorbed: single-fanout
        // cones always collapse; small multi-fanout cones may be duplicated
        // (the eliminate value heuristic); everything else becomes a cut.
        for (const NodeId f : node.fanins) {
            if (is_cut[f]) continue;
            const bool absorb =
                fanout[f] == 1 || (fanout[f] <= params.max_absorbed_fanout &&
                                   cone_gates[f] <= params.max_duplicated_gates);
            if (!absorb) is_cut[f] = true;
        }
        std::vector<NodeId> merged = merged_leaves(node);
        if (merged.size() > params.max_leaves) {
            // Too wide: cut the largest contributors until within bounds.
            std::vector<NodeId> fanins_by_support(node.fanins.begin(), node.fanins.end());
            std::sort(fanins_by_support.begin(), fanins_by_support.end(),
                      [&](NodeId a, NodeId b) {
                          const std::size_t sa = is_cut[a] ? 1 : leaves_of[a].size();
                          const std::size_t sb = is_cut[b] ? 1 : leaves_of[b].size();
                          return sa > sb;
                      });
            for (const NodeId f : fanins_by_support) {
                if (merged.size() <= params.max_leaves) break;
                if (is_cut[f]) continue;
                is_cut[f] = true;
                merged = merged_leaves(node);
            }
        }
        leaves_of[id] = std::move(merged);
        cone_gates[id] = 1;
        for (const NodeId f : node.fanins) {
            if (!is_cut[f]) cone_gates[id] += cone_gates[f];
        }
        if (is_po_driver[id]) is_cut[id] = true;
    }

    // Build supernodes rooted at cut points, in topological order.
    std::vector<Supernode> supernodes;
    for (const NodeId id : topo) {
        const net::Node& node = network.node(id);
        if (node.kind == net::GateKind::kInput || !is_cut[id]) continue;
        Supernode sn;
        sn.root = id;
        sn.leaves = leaves_of[id];
        // Collect the internal cone between the root and its leaves.
        std::unordered_set<NodeId> leaf_set(sn.leaves.begin(), sn.leaves.end());
        std::unordered_set<NodeId> visited;
        std::vector<NodeId> stack{id};
        std::vector<NodeId> cone_unordered;
        visited.insert(id);
        while (!stack.empty()) {
            const NodeId v = stack.back();
            stack.pop_back();
            cone_unordered.push_back(v);
            for (const NodeId f : network.node(v).fanins) {
                if (leaf_set.contains(f) || visited.contains(f)) continue;
                visited.insert(f);
                stack.push_back(f);
            }
        }
        // Topological order within the cone = ascending id (construction
        // invariant of Network).
        std::sort(cone_unordered.begin(), cone_unordered.end());
        sn.cone = std::move(cone_unordered);
        supernodes.push_back(std::move(sn));
    }
    return supernodes;
}

}  // namespace bdsmaj::decomp
