#include "decomp/exact_sat.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sat/solver.hpp"

namespace bdsmaj::decomp {

namespace {

// Truth tables of the canonical-space input literals over 64 bits.
constexpr std::uint64_t kLitW[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

std::uint64_t wide_mask(int n) {
    return n >= 6 ? ~0ULL : ((1ULL << (1u << n)) - 1);
}

// ---------------------------------------------------------------------------
// Operator alphabet: the distinct normal 8-bit tables one gate of
// {MAJ, AND, OR, XOR, MUX} can realize over three ordered operand slots
// with per-operand complements. Enumerated once; the forbidden-pattern
// clauses keep every step's f-bits inside the set and decode maps a table
// back to its realization (deterministically: first enumeration wins).
// ---------------------------------------------------------------------------

struct OpRealization {
    ExactOp op = ExactOp::kAnd;
    std::array<std::uint8_t, 3> slot{0, 1, 2};  ///< gate arg -> triple slot
    std::uint8_t neg = 0;  ///< complement mask over triple slots
};

struct OpAlphabet {
    std::map<std::uint8_t, OpRealization> table;  ///< ordered => determinism
    std::array<bool, 256> allowed{};
};

const OpAlphabet& op_alphabet() {
    static const OpAlphabet alpha = [] {
        OpAlphabet a;
        const auto slot_bit = [](int pattern, int s) { return (pattern >> s) & 1; };
        const auto try_insert = [&](ExactOp op, std::array<std::uint8_t, 3> slot,
                                    std::uint8_t neg, int arity) {
            std::uint8_t h = 0;
            for (int v = 0; v < 8; ++v) {
                int x[3];
                for (int q = 0; q < arity; ++q) {
                    x[q] = slot_bit(v, slot[static_cast<std::size_t>(q)]) ^
                           ((neg >> slot[static_cast<std::size_t>(q)]) & 1);
                }
                int out = 0;
                switch (op) {
                    case ExactOp::kAnd: out = x[0] & x[1]; break;
                    case ExactOp::kOr: out = x[0] | x[1]; break;
                    case ExactOp::kXor: out = x[0] ^ x[1]; break;
                    case ExactOp::kMaj:
                        out = (x[0] & x[1]) | (x[0] & x[2]) | (x[1] & x[2]);
                        break;
                    case ExactOp::kMux: out = x[0] ? x[1] : x[2]; break;
                }
                h = static_cast<std::uint8_t>(h | (out << v));
            }
            if (h & 1) return;  // not normal: unusable in a normal chain
            if (a.allowed[h]) return;  // first realization wins
            a.allowed[h] = true;
            a.table.emplace(h, OpRealization{op, slot, neg});
        };

        // Fanin-2 projections over the three slot pairs. XOR only needs the
        // uncomplemented polarity (complements flip its output, which a
        // normal chain cannot absorb); AND/OR keep the normal subset of
        // operand polarities.
        constexpr std::array<std::array<std::uint8_t, 2>, 3> kPairs{
            {{0, 1}, {0, 2}, {1, 2}}};
        for (const auto& pr : kPairs) {
            const std::array<std::uint8_t, 3> slot{pr[0], pr[1], 0};
            for (int p0 = 0; p0 < 2; ++p0) {
                for (int p1 = 0; p1 < 2; ++p1) {
                    const auto neg = static_cast<std::uint8_t>((p0 << pr[0]) |
                                                               (p1 << pr[1]));
                    try_insert(ExactOp::kAnd, slot, neg, 2);
                    try_insert(ExactOp::kOr, slot, neg, 2);
                    try_insert(ExactOp::kXor, slot, neg, 2);
                }
            }
        }
        // MAJ over all operand polarities (normal subset survives).
        for (int neg = 0; neg < 8; ++neg) {
            try_insert(ExactOp::kMaj, {0, 1, 2},
                       static_cast<std::uint8_t>(neg), 3);
        }
        // MUX over every (select, then, else) role assignment + polarities.
        constexpr std::array<std::array<std::uint8_t, 3>, 6> kRoles{
            {{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}};
        for (const auto& role : kRoles) {
            for (int neg = 0; neg < 8; ++neg) {
                try_insert(ExactOp::kMux, role, static_cast<std::uint8_t>(neg), 3);
            }
        }
        return a;
    }();
    return alpha;
}

// ---------------------------------------------------------------------------
// Chain encoding over one sat::Solver. Used in two modes:
//   * flat/incremental: steps are appended as the chain length grows, with
//     per-r output bindings and symmetry clauses guarded by an assumption
//     literal (grow_to / output binding via activation var);
//   * fence: a fixed number of steps whose operand triples are restricted
//     by a level structure, output bindings unguarded.
// ---------------------------------------------------------------------------

struct Triple {
    std::uint8_t j = 0, k = 0, l = 0;  ///< operand indices, j < k < l
    [[nodiscard]] bool contains(int x) const noexcept {
        return j == x || k == x || l == x;
    }
};

struct StepVars {
    std::array<sat::Var, 8> f{};  ///< f[1..7]; pattern 000 is implicitly 0
    std::vector<Triple> triples;
    std::vector<sat::Var> sel;  ///< parallel to triples
    std::vector<sat::Var> val;  ///< parallel to the active minterm list
};

class ChainEncoding {
public:
    ChainEncoding(std::uint64_t target, int n) : target_(target), n_(n) {}

    sat::Solver& solver() { return solver_; }
    [[nodiscard]] int num_steps() const {
        return static_cast<int>(steps_.size());
    }

    /// Append one step whose operand triples are `triples` (already
    /// restricted by the caller: full universe in flat mode, fence-legal
    /// in fence mode). Adds operator-alphabet and selection clauses plus
    /// value bindings for every already-active minterm.
    void add_step(std::vector<Triple> triples) {
        const OpAlphabet& alpha = op_alphabet();
        StepVars sv;
        sv.triples = std::move(triples);
        for (int v = 1; v < 8; ++v) sv.f[static_cast<std::size_t>(v)] = solver_.new_var();
        // Forbid every normal 8-bit table outside the one-gate alphabet.
        std::vector<sat::Lit> clause;
        for (int h = 0; h < 256; h += 2) {
            if (alpha.allowed[static_cast<std::size_t>(h)]) continue;
            clause.clear();
            for (int v = 1; v < 8; ++v) {
                clause.push_back(sat::Lit::make(sv.f[static_cast<std::size_t>(v)],
                                                ((h >> v) & 1) != 0));
            }
            solver_.add_clause(clause);
        }
        sv.sel.reserve(sv.triples.size());
        clause.clear();
        for (std::size_t t = 0; t < sv.triples.size(); ++t) {
            sv.sel.push_back(solver_.new_var());
            clause.push_back(sat::Lit::make(sv.sel.back()));
        }
        solver_.add_clause(clause);  // at least one triple selected
        sv.val.reserve(minterms_.size());
        for (std::size_t mi = 0; mi < minterms_.size(); ++mi) {
            sv.val.push_back(solver_.new_var());
        }
        steps_.push_back(std::move(sv));
        const int i = static_cast<int>(steps_.size()) - 1;
        for (std::size_t mi = 0; mi < minterms_.size(); ++mi) {
            bind_step_minterm(i, static_cast<int>(mi));
        }
    }

    /// Activate minterm `m`: every step gets a value variable and binding
    /// clauses tying it to the selected operands and operator bits.
    /// Returns the minterm's index in the active list.
    int add_minterm(std::uint32_t m) {
        minterms_.push_back(m);
        const int mi = static_cast<int>(minterms_.size()) - 1;
        for (StepVars& sv : steps_) sv.val.push_back(solver_.new_var());
        for (int i = 0; i < static_cast<int>(steps_.size()); ++i) {
            bind_step_minterm(i, mi);
        }
        return mi;
    }

    [[nodiscard]] int num_minterms() const {
        return static_cast<int>(minterms_.size());
    }

    /// Clause "output step equals the target at active minterm mi",
    /// optionally guarded (guard must be false or the clause holds).
    void add_output_binding(int mi, sat::Lit guard = sat::kUndefLit) {
        const StepVars& out = steps_.back();
        const std::uint32_t m = minterms_[static_cast<std::size_t>(mi)];
        const bool bit = ((target_ >> m) & 1) != 0;
        const sat::Lit vl =
            sat::Lit::make(out.val[static_cast<std::size_t>(mi)], !bit);
        if (guard == sat::kUndefLit) {
            solver_.add_clause(vl);
        } else {
            solver_.add_clause(~guard, vl);
        }
    }

    /// Symmetry breaking: every non-output step must be referenced by a
    /// selected triple of a later step (a minimal chain has no dead step).
    void add_use_all_steps(sat::Lit guard = sat::kUndefLit) {
        const int r = num_steps();
        std::vector<sat::Lit> clause;
        for (int i = 0; i < r - 1; ++i) {
            clause.clear();
            if (guard != sat::kUndefLit) clause.push_back(~guard);
            const int operand = n_ + i;
            for (int i2 = i + 1; i2 < r; ++i2) {
                const StepVars& sv = steps_[static_cast<std::size_t>(i2)];
                for (std::size_t t = 0; t < sv.triples.size(); ++t) {
                    if (sv.triples[t].contains(operand)) {
                        clause.push_back(sat::Lit::make(sv.sel[t]));
                    }
                }
            }
            solver_.add_clause(clause);
        }
    }

    /// Decode the model into per-step (table, triple) choices and the
    /// chain's full truth table. Deterministic: smallest selected triple.
    struct Decoded {
        std::vector<std::uint8_t> h;
        std::vector<Triple> triple;
        std::uint64_t tt = 0;
    };
    [[nodiscard]] Decoded decode() const {
        const std::uint64_t mask = wide_mask(n_);
        Decoded d;
        std::vector<std::uint64_t> step_tt;
        for (const StepVars& sv : steps_) {
            std::uint8_t h = 0;
            for (int v = 1; v < 8; ++v) {
                if (solver_.model_true(
                        sat::Lit::make(sv.f[static_cast<std::size_t>(v)]))) {
                    h = static_cast<std::uint8_t>(h | (1 << v));
                }
            }
            std::size_t chosen = sv.triples.size();
            for (std::size_t t = 0; t < sv.triples.size(); ++t) {
                if (solver_.model_true(sat::Lit::make(sv.sel[t]))) {
                    chosen = t;
                    break;
                }
            }
            assert(chosen < sv.triples.size() && "at-least-one clause");
            const Triple tr = sv.triples[chosen];
            const auto operand_tt = [&](int x) {
                return x < n_ ? (kLitW[x] & mask)
                              : step_tt[static_cast<std::size_t>(x - n_)];
            };
            const std::uint64_t a = operand_tt(tr.j);
            const std::uint64_t b = operand_tt(tr.k);
            const std::uint64_t c = operand_tt(tr.l);
            std::uint64_t tt = 0;
            for (int v = 1; v < 8; ++v) {
                if (!((h >> v) & 1)) continue;
                tt |= ((v & 1) ? a : ~a) & ((v & 2) ? b : ~b) &
                      ((v & 4) ? c : ~c);
            }
            step_tt.push_back(tt & mask);
            d.h.push_back(h);
            d.triple.push_back(tr);
        }
        d.tt = step_tt.empty() ? 0 : step_tt.back();
        return d;
    }

private:
    /// The selection/operator/value consistency clauses for one
    /// (step, minterm) pair: for every triple and every operand pattern
    /// consistent with the minterm's input bits,
    ///   sel & (operands match pattern) -> (value <-> f[pattern]).
    /// Input operands are compile-time constants at a fixed minterm, so
    /// all-input triples collapse to two unit-ish clauses.
    void bind_step_minterm(int i, int mi) {
        StepVars& sv = steps_[static_cast<std::size_t>(i)];
        const std::uint32_t m = minterms_[static_cast<std::size_t>(mi)];
        const sat::Lit vi = sat::Lit::make(sv.val[static_cast<std::size_t>(mi)]);
        std::vector<sat::Lit> base;
        std::vector<sat::Lit> clause;
        for (std::size_t t = 0; t < sv.triples.size(); ++t) {
            const Triple tr = sv.triples[t];
            const std::array<int, 3> ops{tr.j, tr.k, tr.l};
            for (int v = 0; v < 8; ++v) {
                base.clear();
                base.push_back(sat::Lit::make(sv.sel[t], true));
                bool consistent = true;
                for (int s = 0; s < 3 && consistent; ++s) {
                    const int bit = (v >> s) & 1;
                    const int x = ops[static_cast<std::size_t>(s)];
                    if (x < n_) {
                        // Input: its value at minterm m is a constant.
                        if (((m >> x) & 1) != static_cast<std::uint32_t>(bit)) {
                            consistent = false;
                        }
                    } else {
                        const sat::Var xv =
                            steps_[static_cast<std::size_t>(x - n_)]
                                .val[static_cast<std::size_t>(mi)];
                        // "operand != bit" escape literal.
                        base.push_back(sat::Lit::make(xv, bit == 1));
                    }
                }
                if (!consistent) continue;
                if (v == 0) {
                    // f(000) == 0 (normal chain): value must be false.
                    clause = base;
                    clause.push_back(~vi);
                    solver_.add_clause(clause);
                    continue;
                }
                const sat::Lit fv =
                    sat::Lit::make(sv.f[static_cast<std::size_t>(v)]);
                clause = base;
                clause.push_back(~vi);
                clause.push_back(fv);
                solver_.add_clause(clause);
                clause = base;
                clause.push_back(vi);
                clause.push_back(~fv);
                solver_.add_clause(clause);
            }
        }
    }

    sat::Solver solver_;
    std::uint64_t target_ = 0;
    int n_ = 0;
    std::vector<StepVars> steps_;
    std::vector<std::uint32_t> minterms_;
};

/// All operand triples j < k < l over universe size `u`.
std::vector<Triple> full_triples(int u) {
    std::vector<Triple> out;
    for (int j = 0; j < u; ++j) {
        for (int k = j + 1; k < u; ++k) {
            for (int l = k + 1; l < u; ++l) {
                out.push_back(Triple{static_cast<std::uint8_t>(j),
                                     static_cast<std::uint8_t>(k),
                                     static_cast<std::uint8_t>(l)});
            }
        }
    }
    return out;
}

/// Compositions of r into ordered positive parts (fence level sizes),
/// in deterministic separator-mask order.
std::vector<std::vector<int>> compositions(int r) {
    std::vector<std::vector<int>> out;
    const std::uint32_t masks = 1u << (r - 1);
    for (std::uint32_t sep = 0; sep < masks; ++sep) {
        std::vector<int> parts;
        int run = 1;
        for (int g = 0; g < r - 1; ++g) {
            if ((sep >> g) & 1) {
                parts.push_back(run);
                run = 1;
            } else {
                ++run;
            }
        }
        parts.push_back(run);
        out.push_back(std::move(parts));
    }
    return out;
}

/// Build the decoded model into a dead-code-eliminated WideStructure
/// computing `tt` (the pre-normalization target); output complementation
/// is `out_compl`.
std::shared_ptr<const WideStructure> build_structure(
    const ChainEncoding::Decoded& d, std::uint64_t tt, int n, bool out_compl) {
    const OpAlphabet& alpha = op_alphabet();
    const int r = static_cast<int>(d.h.size());
    struct TempGate {
        ExactOp op;
        std::array<int, 3> operand{-1, -1, -1};  ///< input < n, else n + step
        std::array<bool, 3> compl_in{false, false, false};
        int arity = 2;
    };
    std::vector<TempGate> temp;
    temp.reserve(static_cast<std::size_t>(r));
    for (int i = 0; i < r; ++i) {
        const auto it = alpha.table.find(d.h[static_cast<std::size_t>(i)]);
        assert(it != alpha.table.end() && "forbidden-pattern clauses");
        const OpRealization& real = it->second;
        const Triple tr = d.triple[static_cast<std::size_t>(i)];
        const std::array<int, 3> slot_operand{tr.j, tr.k, tr.l};
        TempGate g;
        g.op = real.op;
        g.arity = (real.op == ExactOp::kMaj || real.op == ExactOp::kMux) ? 3 : 2;
        for (int q = 0; q < g.arity; ++q) {
            const int s = real.slot[static_cast<std::size_t>(q)];
            g.operand[static_cast<std::size_t>(q)] =
                slot_operand[static_cast<std::size_t>(s)];
            g.compl_in[static_cast<std::size_t>(q)] = ((real.neg >> s) & 1) != 0;
        }
        temp.push_back(g);
    }
    // Reachability from the output step; unused filler steps (the use-all
    // clause counts triple slots, not gate arguments) are dropped.
    std::vector<bool> live(static_cast<std::size_t>(r), false);
    std::vector<int> stack{r - 1};
    while (!stack.empty()) {
        const int i = stack.back();
        stack.pop_back();
        if (live[static_cast<std::size_t>(i)]) continue;
        live[static_cast<std::size_t>(i)] = true;
        const TempGate& g = temp[static_cast<std::size_t>(i)];
        for (int q = 0; q < g.arity; ++q) {
            const int x = g.operand[static_cast<std::size_t>(q)];
            if (x >= n) stack.push_back(x - n);
        }
    }
    auto s = std::make_shared<WideStructure>();
    s->canonical = tt;
    s->num_inputs = static_cast<std::uint8_t>(n);
    std::vector<int> remap(static_cast<std::size_t>(r), -1);
    for (int i = 0; i < r; ++i) {
        if (!live[static_cast<std::size_t>(i)]) continue;
        const TempGate& g = temp[static_cast<std::size_t>(i)];
        WideGate wg;
        wg.op = g.op;
        const auto make_ref = [&](int q) {
            const int x = g.operand[static_cast<std::size_t>(q)];
            const bool c = g.compl_in[static_cast<std::size_t>(q)];
            return x < n ? WideRef::input(x, c)
                         : WideRef::gate(remap[static_cast<std::size_t>(x - n)], c);
        };
        wg.a = make_ref(0);
        wg.b = make_ref(1);
        if (g.arity == 3) wg.c = make_ref(2);
        remap[static_cast<std::size_t>(i)] = static_cast<int>(s->gates.size());
        s->gates.push_back(wg);
    }
    s->output = WideRef::gate(remap[static_cast<std::size_t>(r - 1)], out_compl);
    assert(s->eval_tt() == tt);
    return s;
}

/// Support of `tt` over n variables: which inputs it actually depends on.
int support_size_of(std::uint64_t tt, int n) {
    const std::uint64_t mask = wide_mask(n);
    int count = 0;
    for (int v = 0; v < n; ++v) {
        const std::uint64_t mv = kLitW[v];
        const int shift = 1 << v;
        const std::uint64_t flipped =
            (((tt & mv) >> shift) | ((tt & ~mv) << shift)) & mask;
        if (flipped != tt) ++count;
    }
    return count;
}

// ---------------------------------------------------------------------------
// The synthesis driver: r-iteration, CEGAR, budget accounting.
// ---------------------------------------------------------------------------

class SatSynthesizer {
public:
    SatSynthesizer(std::uint64_t tt, int n, const ExactSatParams& params)
        : tt_(tt), n_(n), params_(params), mask_(wide_mask(n)) {}

    ExactSatResult run() {
        ExactSatResult res;
        const bool out_compl = (tt_ & 1) != 0;
        const std::uint64_t g = out_compl ? (~tt_ & mask_) : tt_;

        // Zero-gate programs: constants and (uncomplemented, since g is
        // normal) input projections.
        if (g == 0) {
            auto s = std::make_shared<WideStructure>();
            s->canonical = tt_;
            s->num_inputs = static_cast<std::uint8_t>(n_);
            s->output = WideRef::constant(out_compl);
            assert(s->eval_tt() == tt_);
            res.status = ExactSatStatus::kFound;
            res.structure = std::move(s);
            return res;
        }
        for (int v = 0; v < n_; ++v) {
            if (g != (kLitW[v] & mask_)) continue;
            auto s = std::make_shared<WideStructure>();
            s->canonical = tt_;
            s->num_inputs = static_cast<std::uint8_t>(n_);
            s->output = WideRef::input(v, out_compl);
            assert(s->eval_tt() == tt_);
            res.status = ExactSatStatus::kFound;
            res.structure = std::move(s);
            return res;
        }

        // Fanin bound: r steps expose at most 2r + 1 leaf slots.
        const int supp = support_size_of(g, n_);
        const int r_min = std::max(1, (supp - 1 + 1) / 2);
        if (params_.conflict_budget <= 0) {
            finish(res, ExactSatStatus::kUnknown);
            return res;
        }

        // Flat incremental phase.
        ChainEncoding flat(g, n_);
        const int flat_end =
            std::min(params_.max_steps, params_.fence_min_steps - 1);
        for (int r = r_min; r <= flat_end; ++r) {
            res.steps_tried = r;
            while (flat.num_steps() < r) {
                flat.add_step(full_triples(n_ + flat.num_steps()));
            }
            const sat::Lit guard = sat::Lit::make(flat.solver().new_var());
            for (int mi = 0; mi < flat.num_minterms(); ++mi) {
                flat.add_output_binding(mi, guard);
            }
            flat.add_use_all_steps(guard);
            for (;;) {
                const long long remaining = params_.conflict_budget - spent_;
                if (remaining <= 0) {
                    finish(res, ExactSatStatus::kUnknown);
                    return res;
                }
                const sat::SolveResult sr = solve(flat, {guard}, remaining);
                ++res.sat_calls;
                if (sr == sat::SolveResult::kUnknown) {
                    finish(res, ExactSatStatus::kUnknown);
                    return res;
                }
                if (sr == sat::SolveResult::kUnsat) {
                    // Kill this generation's clauses and move to r + 1.
                    flat.solver().add_clause(~guard);
                    break;
                }
                const ChainEncoding::Decoded d = flat.decode();
                if (d.tt == g) {
                    res.structure = build_structure(d, tt_, n_, out_compl);
                    finish(res, ExactSatStatus::kFound);
                    return res;
                }
                const std::uint32_t cex = next_counterexample(d.tt, g);
                minterms_.push_back(cex);
                const int mi = flat.add_minterm(cex);
                flat.add_output_binding(mi, guard);
            }
        }

        // Fence phase: per-(r, fence) solvers over restricted triples.
        for (int r = std::max(r_min, params_.fence_min_steps);
             r <= params_.max_steps; ++r) {
            res.steps_tried = r;
            for (const std::vector<int>& fence : compositions(r)) {
                ChainEncoding enc(g, n_);
                build_fence(enc, fence);
                for (const std::uint32_t m : minterms_) enc.add_minterm(m);
                for (int mi = 0; mi < enc.num_minterms(); ++mi) {
                    enc.add_output_binding(mi);
                }
                enc.add_use_all_steps();
                bool fence_done = false;
                while (!fence_done) {
                    const long long remaining = params_.conflict_budget - spent_;
                    if (remaining <= 0) {
                        finish(res, ExactSatStatus::kUnknown);
                        return res;
                    }
                    const sat::SolveResult sr = solve(enc, {}, remaining);
                    ++res.sat_calls;
                    if (sr == sat::SolveResult::kUnknown) {
                        finish(res, ExactSatStatus::kUnknown);
                        return res;
                    }
                    if (sr == sat::SolveResult::kUnsat) {
                        fence_done = true;
                        continue;
                    }
                    const ChainEncoding::Decoded d = enc.decode();
                    if (d.tt == g) {
                        res.structure = build_structure(d, tt_, n_, out_compl);
                        finish(res, ExactSatStatus::kFound);
                        return res;
                    }
                    const std::uint32_t cex = next_counterexample(d.tt, g);
                    minterms_.push_back(cex);
                    const int mi = enc.add_minterm(cex);
                    enc.add_output_binding(mi);
                }
            }
        }
        finish(res, ExactSatStatus::kUnsat);
        return res;
    }

private:
    /// Fence-legal steps: level q may select operands among inputs and all
    /// steps of levels < q, with at least one operand on level q - 1 (the
    /// longest-path argument makes the per-r enumeration complete).
    void build_fence(ChainEncoding& enc, const std::vector<int>& fence) {
        int level_begin = 0;  // first step index of the current level
        for (std::size_t q = 0; q < fence.size(); ++q) {
            const int level_size = fence[q];
            // Operand universe: inputs plus steps below this level.
            const int universe = n_ + level_begin;
            const int prev_begin =
                q == 0 ? -1 : level_begin - fence[q - 1];
            std::vector<Triple> legal;
            for (const Triple& t : full_triples(universe)) {
                if (q == 0) {
                    legal.push_back(t);  // level 0: inputs only, by universe
                    continue;
                }
                const auto on_prev = [&](int x) {
                    return x >= n_ + prev_begin && x < n_ + level_begin;
                };
                if (on_prev(t.j) || on_prev(t.k) || on_prev(t.l)) {
                    legal.push_back(t);
                }
            }
            for (int s = 0; s < level_size; ++s) enc.add_step(legal);
            level_begin += level_size;
        }
    }

    sat::SolveResult solve(ChainEncoding& enc,
                           const std::vector<sat::Lit>& assumptions,
                           long long limit) {
        const std::uint64_t before = enc.solver().stats().conflicts;
        const sat::SolveResult sr = enc.solver().solve(assumptions, limit);
        spent_ += static_cast<long long>(enc.solver().stats().conflicts - before);
        return sr;
    }

    /// Lowest differing minterm. Minterm 0 can never differ: the chain is
    /// normal and the target is normalized.
    static std::uint32_t next_counterexample(std::uint64_t have,
                                             std::uint64_t want) {
        const std::uint64_t diff = have ^ want;
        assert(diff != 0 && (diff & 1) == 0);
        return static_cast<std::uint32_t>(std::countr_zero(diff));
    }

    void finish(ExactSatResult& res, ExactSatStatus status) const {
        res.status = status;
        res.conflicts = spent_;
    }

    std::uint64_t tt_;
    int n_;
    ExactSatParams params_;
    std::uint64_t mask_;
    long long spent_ = 0;
    std::vector<std::uint32_t> minterms_;  ///< shared across fences
};

// ---------------------------------------------------------------------------
// Wide canonicalization memo: a 6-var exact NPN walk visits ~92k
// transforms, and the strategy pipeline canonicalizes every 5-6 support
// cone it sees — repeated shapes (there are few distinct wide classes in
// real netlists) should pay once per process.
// ---------------------------------------------------------------------------

struct WideCanonEntry {
    std::uint64_t canonical = 0;
    tt::NpnTransformW transform;
};

std::uint64_t wide_canonical_memo(std::uint64_t tt, int n,
                                  tt::NpnTransformW* transform) {
    static std::mutex mutex;
    static std::array<std::unordered_map<std::uint64_t, WideCanonEntry>, 2> memo;
    if (n < 5 || n > 6) return tt::npn_canonical_w(tt, n, transform);
    const std::size_t slot = static_cast<std::size_t>(n - 5);
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = memo[slot].find(tt);
        if (it != memo[slot].end()) {
            if (transform != nullptr) *transform = it->second.transform;
            return it->second.canonical;
        }
    }
    WideCanonEntry e;
    e.canonical = tt::npn_canonical_w(tt, n, &e.transform);
    if (transform != nullptr) *transform = e.transform;
    std::lock_guard<std::mutex> lock(mutex);
    memo[slot].emplace(tt, e);
    return e.canonical;
}

}  // namespace

ExactSatResult exact_sat_synthesize(std::uint64_t tt, int num_inputs,
                                    const ExactSatParams& params) {
    // The triple encoding needs an operand universe of at least three, so
    // the smallest supported input count is 3 (callers use 5-6).
    assert(num_inputs >= 3 && num_inputs <= 6);
    const std::uint64_t mask = wide_mask(num_inputs);
    SatSynthesizer synth(tt & mask, num_inputs, params);
    return synth.run();
}

std::optional<WideConeMatch> match_cone_wide(bdd::Manager& mgr,
                                             const bdd::Bdd& f,
                                             int min_support, int max_support) {
    assert(max_support <= 6);
    const std::vector<int> support = mgr.support_vars(f);
    const int size = static_cast<int>(support.size());
    if (size < min_support || size > max_support) return std::nullopt;
    WideConeMatch match;
    match.support_size = size;
    for (int i = 0; i < size; ++i) {
        match.support[static_cast<std::size_t>(i)] =
            support[static_cast<std::size_t>(i)];
    }
    std::vector<bool> values(static_cast<std::size_t>(mgr.num_vars()), false);
    for (std::uint32_t m = 0; m < (1u << size); ++m) {
        for (int i = 0; i < size; ++i) {
            values[static_cast<std::size_t>(support[static_cast<std::size_t>(i)])] =
                ((m >> i) & 1) != 0;
        }
        if (mgr.eval(f, values)) match.tt |= 1ULL << m;
    }
    match.canonical = wide_canonical_memo(match.tt, size, &match.transform);
    return match;
}

net::Signal emit_exact_cone_wide(const WideConeMatch& match,
                                 const WideStructure& s, net::GateSink& sink,
                                 std::span<const net::Signal> leaves) {
    assert(s.canonical == match.canonical);
    assert(s.num_inputs == match.support_size);
    const int n = match.support_size;
    std::array<int, 6> invperm{};
    for (int v = 0; v < n; ++v) {
        invperm[match.transform.permutation[static_cast<std::size_t>(v)]] = v;
    }
    std::array<net::Signal, 6> input{};
    std::array<bool, 6> input_ready{};
    std::vector<net::Signal> value;
    value.reserve(s.gates.size());
    const auto resolve = [&](const WideRef& r) -> net::Signal {
        net::Signal v;
        if (r.is_const()) {
            v = sink.constant(r.complemented);
            return v;
        }
        if (r.is_input()) {
            if (!input_ready[r.index]) {
                const int pos = invperm[r.index];
                const bool negated =
                    ((match.transform.input_negation >> pos) & 1) != 0;
                const int var = match.support[static_cast<std::size_t>(pos)];
                const net::Signal leaf = leaves[static_cast<std::size_t>(var)];
                input[r.index] = negated ? !leaf : leaf;
                input_ready[r.index] = true;
            }
            v = input[r.index];
        } else {
            v = value[static_cast<std::size_t>(r.index - WideRef::kGateBase)];
        }
        return r.complemented ? !v : v;
    };
    for (const WideGate& g : s.gates) {
        net::Signal out;
        switch (g.op) {
            case ExactOp::kAnd:
                out = sink.build_and(resolve(g.a), resolve(g.b));
                break;
            case ExactOp::kOr:
                out = sink.build_or(resolve(g.a), resolve(g.b));
                break;
            case ExactOp::kXor:
                out = sink.build_xor(resolve(g.a), resolve(g.b));
                break;
            case ExactOp::kMaj:
                out = sink.build_maj(resolve(g.a), resolve(g.b), resolve(g.c));
                break;
            case ExactOp::kMux:
                out = sink.build_mux(resolve(g.a), resolve(g.b), resolve(g.c));
                break;
        }
        value.push_back(out);
    }
    const net::Signal canonical_out = resolve(s.output);
    return match.transform.output_negation ? !canonical_out : canonical_out;
}

int exact_sat_operator_count() {
    return static_cast<int>(op_alphabet().table.size());
}

}  // namespace bdsmaj::decomp
