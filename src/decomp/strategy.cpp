#include "decomp/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "decomp/engine.hpp"
#include "decomp/maj_decomp.hpp"
#include "decomp/xor_decomp.hpp"

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;

// ---------------------------------------------------------------------------
// Strategies. Each is stateless between steps; all per-step inputs arrive
// through the StepContext, so one instance is safe to reuse across an
// entire supernode recursion (and strategies hold no manager state).
// ---------------------------------------------------------------------------

/// Paper stage 1: majority decomposition on top of the dominator search,
/// accepted only when globally advantageous (k_global). Attempt/rejection
/// counters live here — they describe the search, not an accepted step.
class MajorityStrategy final : public DecompStrategy {
public:
    [[nodiscard]] StrategyKind kind() const noexcept override {
        return StrategyKind::kMajority;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "majority";
    }
    [[nodiscard]] std::optional<Candidate> propose(StepContext& ctx) override {
        const std::optional<MajDecomposition> md =
            maj_decompose(ctx.mgr, ctx.f, ctx.analysis, ctx.params.maj);
        if (!md) return std::nullopt;
        ++ctx.stats.maj_attempts;
        if (!maj_globally_advantageous(ctx.mgr, ctx.f, *md,
                                       ctx.params.maj.k_global)) {
            ++ctx.stats.maj_rejected;
            return std::nullopt;
        }
        Candidate cand;
        cand.source = StrategyKind::kMajority;
        cand.op = Candidate::Op::kMaj;
        cand.a = md->fa;
        cand.b = md->fb;
        cand.c = md->fc;
        return cand;
    }
};

/// Paper stage 2: simple dominators (1-, 0-, x-) -> disjoint AND/OR/XOR.
/// Shortlist by divisor balance (|Fv| close to |F|/2), then score the
/// shortlist exactly by max(|quotient|, |divisor|).
class SimpleDominatorStrategy final : public DecompStrategy {
public:
    [[nodiscard]] StrategyKind kind() const noexcept override {
        return StrategyKind::kSimpleDominator;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "simple-dominator";
    }
    [[nodiscard]] std::optional<Candidate> propose(StepContext& ctx) override {
        if (!ctx.analysis.has_simple_dominator()) return std::nullopt;
        struct Entry {
            const NodeDomInfo* info;
            SimpleDecomposition::Op op;
            std::size_t divisor_size;
        };
        const std::vector<std::size_t>& sizes = ctx.analysis.node_sizes();
        const std::vector<NodeDomInfo>& infos = ctx.analysis.nodes();
        std::vector<Entry> shortlist;
        for (std::size_t i = 0; i < infos.size(); ++i) {
            const NodeDomInfo& info = infos[i];
            if (info.is_one_dominator) {
                shortlist.push_back({&info, SimpleDecomposition::Op::kAnd, sizes[i]});
            } else if (info.is_zero_dominator) {
                shortlist.push_back({&info, SimpleDecomposition::Op::kOr, sizes[i]});
            } else if (info.is_x_dominator) {
                shortlist.push_back({&info, SimpleDecomposition::Op::kXor, sizes[i]});
            }
        }
        const std::size_t f_size = ctx.f_size;
        const auto balance = [f_size](std::size_t part) {
            const auto half = static_cast<double>(f_size) / 2.0;
            return std::abs(static_cast<double>(part) - half);
        };
        std::stable_sort(shortlist.begin(), shortlist.end(),
                         [&](const Entry& a, const Entry& b) {
                             return balance(a.divisor_size) < balance(b.divisor_size);
                         });
        if (static_cast<int>(shortlist.size()) > ctx.params.max_simple_candidates) {
            shortlist.resize(
                static_cast<std::size_t>(ctx.params.max_simple_candidates));
        }
        std::optional<SimpleDecomposition> best;
        std::size_t best_score = 0;
        for (const Entry& e : shortlist) {
            SimpleDecomposition d = ctx.analysis.decompose_at(*e.info, e.op);
            const std::size_t score =
                std::max(ctx.mgr.dag_size(d.quotient), ctx.mgr.dag_size(d.divisor));
            if (!best || score < best_score) {
                best_score = score;
                best = std::move(d);
            }
        }
        if (!best) return std::nullopt;
        Candidate cand;
        cand.source = StrategyKind::kSimpleDominator;
        switch (best->op) {
            case SimpleDecomposition::Op::kAnd: cand.op = Candidate::Op::kAnd; break;
            case SimpleDecomposition::Op::kOr: cand.op = Candidate::Op::kOr; break;
            case SimpleDecomposition::Op::kXor: cand.op = Candidate::Op::kXor; break;
        }
        cand.a = std::move(best->quotient);
        cand.b = std::move(best->divisor);
        return cand;
    }
};

/// Paper stage 3: generalized (non-disjoint) XOR split, accepted only when
/// both parts shrink below xor_acceptance_factor * |F|.
class GeneralizedXorStrategy final : public DecompStrategy {
public:
    [[nodiscard]] StrategyKind kind() const noexcept override {
        return StrategyKind::kGeneralizedXor;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "generalized-xor";
    }
    [[nodiscard]] std::optional<Candidate> propose(StepContext& ctx) override {
        const XorSplit split =
            xor_decompose(ctx.mgr, ctx.f, ctx.params.maj.xor_params);
        if (split.trivial) return std::nullopt;
        const auto limit =
            static_cast<double>(ctx.f_size) * ctx.params.xor_acceptance_factor;
        if (static_cast<double>(ctx.mgr.dag_size(split.m)) >= limit ||
            static_cast<double>(ctx.mgr.dag_size(split.k)) >= limit) {
            return std::nullopt;
        }
        Candidate cand;
        cand.source = StrategyKind::kGeneralizedXor;
        cand.op = Candidate::Op::kXor;
        cand.a = split.m;
        cand.b = split.k;
        return cand;
    }
};

/// Paper stage 4: Shannon cofactoring on the top variable. Always
/// proposes, so any pipeline ending here terminates.
class ShannonMuxStrategy final : public DecompStrategy {
public:
    [[nodiscard]] StrategyKind kind() const noexcept override {
        return StrategyKind::kShannonMux;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "shannon-mux";
    }
    [[nodiscard]] std::optional<Candidate> propose(StepContext& ctx) override {
        const bdd::Edge e = ctx.f.edge();
        Candidate cand;
        cand.source = StrategyKind::kShannonMux;
        cand.op = Candidate::Op::kMux;
        cand.mux_var = ctx.mgr.edge_top_var(e);
        cand.a = ctx.mgr.from_edge(ctx.mgr.edge_then(e));
        cand.b = ctx.mgr.from_edge(ctx.mgr.edge_else(e));
        return cand;
    }
};

/// Totally symmetric cones -> ones-counting MAJ network. A function
/// symmetric in every support variable is fixed by all transpositions of
/// adjacent support variables, and those generate the full symmetric
/// group, so k-1 cofactor-pair checks
///
///   f|v_i=0,v_{i+1}=1  ==  f|v_i=1,v_{i+1}=0
///
/// certify total symmetry exactly (canonical BDDs: equality of edges is
/// equality of functions). The value vector values[w] = f(any input of
/// ones-count w) then determines f completely, and the ones-counting
/// construction (decomp/symmetric.hpp) emits it in O(k) gates. Both the
/// census and the value extraction are polynomial in the BDD size — no
/// truth table is ever materialized, so wide supports stay cheap.
class SymmetricStrategy final : public DecompStrategy {
public:
    [[nodiscard]] StrategyKind kind() const noexcept override {
        return StrategyKind::kSymmetric;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "symmetric";
    }
    [[nodiscard]] std::optional<Candidate> propose(StepContext& ctx) override {
        const std::vector<int> support = ctx.mgr.support_vars(ctx.f);
        const auto k = static_cast<int>(support.size());
        if (k < 3 || k > ctx.params.symmetric_max_support) return std::nullopt;
        // Quick size filter: a totally symmetric function on k variables
        // has at most k(k+1)/2 + 1 reduced-BDD nodes (w+1 distinct
        // subfunctions at support level w). Anything bigger cannot pass
        // the census, so the k-1 cofactor checks are skipped outright.
        if (ctx.f_size > static_cast<std::size_t>(k * (k + 1) / 2 + 1)) {
            return std::nullopt;
        }
        ++ctx.stats.sym_cone_checks;
        for (int i = 0; i + 1 < k; ++i) {
            const Bdd f01 =
                ctx.mgr.cofactor(ctx.mgr.cofactor(ctx.f, support[static_cast<std::size_t>(i)], false),
                                 support[static_cast<std::size_t>(i) + 1], true);
            const Bdd f10 =
                ctx.mgr.cofactor(ctx.mgr.cofactor(ctx.f, support[static_cast<std::size_t>(i)], true),
                                 support[static_cast<std::size_t>(i) + 1], false);
            if (!(f01 == f10)) return std::nullopt;
        }
        ++ctx.stats.sym_cone_total;
        SymmetricValues values(static_cast<std::size_t>(k) + 1);
        std::vector<bool> assignment(static_cast<std::size_t>(ctx.mgr.num_vars()), false);
        for (int w = 0; w <= k; ++w) {
            // Symmetry makes the choice of which w support vars are true
            // irrelevant; use the first w.
            if (w > 0) assignment[static_cast<std::size_t>(support[static_cast<std::size_t>(w) - 1])] = true;
            values[static_cast<std::size_t>(w)] =
                ctx.mgr.eval(ctx.f, assignment) ? 1 : 0;
        }
        // Profitability: the ladder yields ~1 gate per BDD node, so demand
        // the counter network beat f_size by the configured margin. Small
        // symmetric cones (MAJ-3, voter-5) have compact ladders and are
        // naturally rejected; wide ones are where O(k) beats O(k^2).
        const int limit =
            static_cast<int>(ctx.f_size) + ctx.params.symmetric_min_saving;
        if (symmetric_network_cost(values) >= limit) return std::nullopt;
        Candidate cand;
        cand.source = StrategyKind::kSymmetric;
        cand.op = Candidate::Op::kSymmetric;
        cand.sym_vars = support;
        cand.sym_values = std::move(values);
        return cand;
    }
};

/// Exact cone strategy: when the support fits in 4 variables, serve the
/// minimal cached {MAJ,AND,OR,XOR,MUX,NOT} structure for the cone's NPN
/// class; with exact_max_support >= 5, cones of 5-6 support variables are
/// synthesized on demand by the SAT backend (decomp/exact_sat.hpp) under
/// a per-class conflict budget, with both successes and exhaustions
/// memoized process-wide. The DAG-size pre-filters keep the reject path
/// O(1): a reduced BDD over 4 (resp. 6) variables never exceeds a
/// handful of nodes.
class ExactSmallConeStrategy final : public DecompStrategy {
public:
    /// Largest reduced-BDD node count of any function on <= 4 variables
    /// (3 + 2 + 4 + 2 per level, generously rounded up).
    static constexpr std::size_t kMaxSmallConeNodes = 16;
    /// Same bound for 6 variables: level widths 1+2+4+8+13+2 with
    /// complement edges, generously rounded up.
    static constexpr std::size_t kMaxWideConeNodes = 40;

    [[nodiscard]] StrategyKind kind() const noexcept override {
        return StrategyKind::kExactSmallCone;
    }
    [[nodiscard]] std::string_view name() const noexcept override {
        return "exact-small-cone";
    }
    [[nodiscard]] std::optional<Candidate> propose(StepContext& ctx) override {
        // Profitability gate (both widths): an exact structure is a
        // sharing-opaque block (its gates only unify with structurally
        // identical ones), while the ladder's recursion memoizes shared
        // sub-BDDs across the whole supernode. Serving the cone is only a
        // win when the program is strictly smaller than the ladder's
        // ~1-gate-per-BDD-node yield.
        const int gate_limit =
            static_cast<int>(ctx.f_size) + ctx.params.exact_min_saving;
        if (ctx.f_size <= kMaxSmallConeNodes) {
            const int max_support = std::min(ctx.params.exact_max_support, 4);
            std::optional<ConeMatch> match =
                match_cone(ctx.mgr, ctx.f, max_support);
            if (match) {
                bool was_hit = false;
                Candidate cand;
                cand.structure = ExactSynthesisCache::instance().lookup(
                    match->canonical, &was_hit);
                if (was_hit) {
                    ++ctx.stats.npn_cache_hits;
                } else {
                    ++ctx.stats.npn_cache_misses;
                }
                if (cand.structure->gate_count() >= gate_limit) {
                    return std::nullopt;
                }
                cand.source = StrategyKind::kExactSmallCone;
                cand.op = Candidate::Op::kExact;
                cand.match = *match;
                return cand;
            }
        }
        return propose_wide(ctx, gate_limit);
    }

private:
    /// The 5-6 var SAT path. Every decision is a pure function of the
    /// cone's canonical class and the (budget, max_steps) effort, so racing
    /// workers and any jobs count converge: a cache hit serves exactly the
    /// program a cold synthesis would have produced, and a negative entry
    /// only covers efforts where synthesis would have failed identically.
    [[nodiscard]] std::optional<Candidate> propose_wide(StepContext& ctx,
                                                        int gate_limit) {
        if (ctx.params.exact_max_support < 5 || ctx.params.exact_sat_budget <= 0 ||
            ctx.f_size > kMaxWideConeNodes) {
            return std::nullopt;
        }
        // Wide cones need a harsher margin than the narrow ones: at 5-6
        // variables the cone's sub-BDDs are shared across far more sibling
        // recursions, so the ladder's marginal cost sits below f_size.
        gate_limit =
            static_cast<int>(ctx.f_size) + ctx.params.exact_min_saving_wide;
        const int max_support = std::min(ctx.params.exact_max_support, 6);
        const std::optional<WideConeMatch> match =
            match_cone_wide(ctx.mgr, ctx.f, 5, max_support);
        if (!match) return std::nullopt;
        // Fanin floor: r 3-input steps reach at most 2r+1 leaves, so a
        // cone on s variables needs >= ceil((s-1)/2) = s/2 gates. Skip the
        // solver entirely when even that floor cannot beat the gate limit.
        if (match->support_size / 2 >= gate_limit) return std::nullopt;

        ExactSynthesisCache& cache = ExactSynthesisCache::instance();
        std::shared_ptr<const WideStructure> structure =
            cache.lookup_wide(match->support_size, match->canonical);
        if (structure != nullptr) {
            ++ctx.stats.exact_sat_cache_hits;
        } else if (cache.wide_failure_covers(match->support_size, match->canonical,
                                             ctx.params.exact_sat_budget,
                                             ctx.params.exact_sat_max_steps)) {
            ++ctx.stats.exact_sat_fallbacks;
            return std::nullopt;
        } else {
            ExactSatParams sat_params;
            sat_params.conflict_budget = ctx.params.exact_sat_budget;
            sat_params.max_steps = ctx.params.exact_sat_max_steps;
            const ExactSatResult res = exact_sat_synthesize(
                match->canonical, match->support_size, sat_params);
            ++ctx.stats.exact_sat_synthesized;
            ctx.stats.exact_sat_conflicts += res.conflicts;
            if (res.status != ExactSatStatus::kFound) {
                cache.record_wide_failure(match->support_size, match->canonical,
                                          sat_params.conflict_budget,
                                          sat_params.max_steps);
                ++ctx.stats.exact_sat_fallbacks;
                return std::nullopt;
            }
            structure = cache.insert_wide(res.structure);
        }
        if (structure->gate_count() >= gate_limit) return std::nullopt;
        Candidate cand;
        cand.source = StrategyKind::kExactSmallCone;
        cand.op = Candidate::Op::kExactWide;
        cand.wide_match = *match;
        cand.wide_structure = std::move(structure);
        return cand;
    }
};

// ---------------------------------------------------------------------------
// Cost models. Recursion yields are estimated from the BDD sizes of the
// operands (a decomposed part of n nodes lands near n gates); exact
// candidates are scored by their known program size.
// ---------------------------------------------------------------------------

double part_size(StepContext& ctx, const Bdd& part) {
    if (!part.valid() || part.is_constant()) return 0.0;
    const std::size_t n = ctx.mgr.dag_size(part);
    // A literal costs nothing: it is a leaf wire, not a gate.
    return n <= 1 ? 0.0 : static_cast<double>(n);
}

struct CandidateShape {
    double parts = 0.0;      ///< summed operand size estimate
    double max_part = 0.0;   ///< largest operand size estimate
    int root_gates = 0;      ///< gates the root operator itself emits
    int root_fanin = 0;      ///< fanin literals of the root operator
    bool exact = false;
    int exact_gates = 0;
};

CandidateShape shape_of(const Candidate& cand, StepContext& ctx) {
    CandidateShape s;
    if (cand.op == Candidate::Op::kExact) {
        s.exact = true;
        s.exact_gates = cand.structure != nullptr ? cand.structure->gate_count() : 0;
        return s;
    }
    if (cand.op == Candidate::Op::kExactWide) {
        s.exact = true;
        s.exact_gates =
            cand.wide_structure != nullptr ? cand.wide_structure->gate_count() : 0;
        return s;
    }
    if (cand.op == Candidate::Op::kSymmetric) {
        // Like exact candidates, the counter network's gate count is known
        // before anything is emitted.
        s.exact = true;
        s.exact_gates = symmetric_network_cost(cand.sym_values);
        return s;
    }
    for (const Bdd* part : {&cand.a, &cand.b, &cand.c}) {
        if (!part->valid()) continue;
        const double n = part_size(ctx, *part);
        s.parts += n;
        s.max_part = std::max(s.max_part, n);
    }
    switch (cand.op) {
        case Candidate::Op::kAnd:
        case Candidate::Op::kOr:
        case Candidate::Op::kXor:
            s.root_gates = 1;
            s.root_fanin = 2;
            break;
        case Candidate::Op::kMaj:
            s.root_gates = 1;
            s.root_fanin = 3;
            break;
        case Candidate::Op::kMux:
            // The builder expands MUX into OR(AND(s,t), AND(!s,e)).
            s.root_gates = 3;
            s.root_fanin = 4;
            break;
        case Candidate::Op::kExact:
        case Candidate::Op::kExactWide:
        case Candidate::Op::kSymmetric:
            break;
    }
    return s;
}

class GateCountCost final : public CostModel {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "gate-count";
    }
    [[nodiscard]] double cost(const Candidate& cand, StepContext& ctx) const override {
        const CandidateShape s = shape_of(cand, ctx);
        if (s.exact) return static_cast<double>(s.exact_gates);
        return static_cast<double>(s.root_gates) + s.parts;
    }
};

class LiteralCountCost final : public CostModel {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "literal-count";
    }
    [[nodiscard]] double cost(const Candidate& cand, StepContext& ctx) const override {
        const CandidateShape s = shape_of(cand, ctx);
        // Two-input gates dominate the recursion tail: ~2 literals per
        // eventual gate, plus the root operator's own fanin.
        if (s.exact) return 2.0 * static_cast<double>(s.exact_gates);
        return static_cast<double>(s.root_fanin) + 2.0 * s.parts;
    }
};

class MajDepthCost final : public CostModel {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "maj-depth";
    }
    [[nodiscard]] double cost(const Candidate& cand, StepContext& ctx) const override {
        const CandidateShape s = shape_of(cand, ctx);
        // Depth proxy: one level for the root (two for an expanded MUX),
        // plus the deepest operand's recursion estimated at log2(size).
        if (s.exact) return static_cast<double>(s.exact_gates);
        const double root_depth = cand.op == Candidate::Op::kMux ? 2.0 : 1.0;
        return root_depth + std::log2(s.max_part + 1.0);
    }
};

}  // namespace

std::unique_ptr<DecompStrategy> make_strategy(StrategyKind kind) {
    switch (kind) {
        case StrategyKind::kSymmetric:
            return std::make_unique<SymmetricStrategy>();
        case StrategyKind::kExactSmallCone:
            return std::make_unique<ExactSmallConeStrategy>();
        case StrategyKind::kMajority: return std::make_unique<MajorityStrategy>();
        case StrategyKind::kSimpleDominator:
            return std::make_unique<SimpleDominatorStrategy>();
        case StrategyKind::kGeneralizedXor:
            return std::make_unique<GeneralizedXorStrategy>();
        case StrategyKind::kShannonMux:
            return std::make_unique<ShannonMuxStrategy>();
    }
    throw std::invalid_argument("unknown StrategyKind");
}

std::unique_ptr<CostModel> make_cost_model(CostModelKind kind) {
    switch (kind) {
        case CostModelKind::kGateCount: return std::make_unique<GateCountCost>();
        case CostModelKind::kLiteralCount:
            return std::make_unique<LiteralCountCost>();
        case CostModelKind::kMajDepth: return std::make_unique<MajDepthCost>();
    }
    throw std::invalid_argument("unknown CostModelKind");
}

std::string_view strategy_name(StrategyKind kind) {
    switch (kind) {
        case StrategyKind::kSymmetric: return "symmetric";
        case StrategyKind::kExactSmallCone: return "exact-small-cone";
        case StrategyKind::kMajority: return "majority";
        case StrategyKind::kSimpleDominator: return "simple-dominator";
        case StrategyKind::kGeneralizedXor: return "generalized-xor";
        case StrategyKind::kShannonMux: return "shannon-mux";
    }
    return "?";
}

const std::vector<PresetInfo>& preset_catalog() {
    static const std::vector<PresetInfo> catalog = {
        {"paper",
         "majority -> simple dominators -> generalized XOR -> Shannon; "
         "byte-identical to the pre-framework engine"},
        {"bds-pga",
         "the paper ladder without the majority stage (Table I baseline)"},
        {"exact-aggressive",
         "exact structures for small cones — enumerated NPN classes up to "
         "4 support variables, SAT-synthesized chains for 5-6 — then the "
         "paper ladder"},
        {"best-cost",
         "all strategies propose every step; the gate-count cost model "
         "picks the cheapest candidate"},
        {"best-literals",
         "all strategies propose every step; the literal-count cost model "
         "picks the cheapest candidate"},
        {"maj-depth",
         "all strategies propose every step; the MAJ-depth cost model "
         "favors shallow majority-heavy structures"},
        {"symmetry",
         "totally symmetric cones served as ones-counting MAJ networks, "
         "then exact structures, then the paper ladder; symmetry-aware "
         "block sifting on"},
        {"shannon",
         "plain Shannon cofactor expansion only — the cheapest preset and "
         "the terminal stage of the degrade ladder; always terminates"},
    };
    return catalog;
}

bool is_known_preset(std::string_view name) {
    for (const PresetInfo& p : preset_catalog()) {
        if (p.name == name) return true;
    }
    return false;
}

StrategyPipelineConfig preset_pipeline(std::string_view name) {
    using K = StrategyKind;
    StrategyPipelineConfig config;
    if (name == "paper") {
        config.order = {K::kMajority, K::kSimpleDominator, K::kGeneralizedXor,
                        K::kShannonMux};
    } else if (name == "bds-pga") {
        config.order = {K::kSimpleDominator, K::kGeneralizedXor, K::kShannonMux};
    } else if (name == "exact-aggressive") {
        config.order = {K::kExactSmallCone, K::kMajority, K::kSimpleDominator,
                        K::kGeneralizedXor, K::kShannonMux};
    } else if (name == "best-cost") {
        config.order = {K::kExactSmallCone, K::kMajority, K::kSimpleDominator,
                        K::kGeneralizedXor, K::kShannonMux};
        config.selection = SelectionMode::kBestCost;
        config.cost_model = CostModelKind::kGateCount;
    } else if (name == "best-literals") {
        config.order = {K::kExactSmallCone, K::kMajority, K::kSimpleDominator,
                        K::kGeneralizedXor, K::kShannonMux};
        config.selection = SelectionMode::kBestCost;
        config.cost_model = CostModelKind::kLiteralCount;
    } else if (name == "maj-depth") {
        config.order = {K::kExactSmallCone, K::kMajority, K::kSimpleDominator,
                        K::kGeneralizedXor, K::kShannonMux};
        config.selection = SelectionMode::kBestCost;
        config.cost_model = CostModelKind::kMajDepth;
    } else if (name == "symmetry") {
        config.order = {K::kSymmetric, K::kExactSmallCone, K::kMajority,
                        K::kSimpleDominator, K::kGeneralizedXor, K::kShannonMux};
    } else if (name == "shannon") {
        config.order = {K::kShannonMux};
    } else {
        std::string known;
        for (const PresetInfo& p : preset_catalog()) {
            if (!known.empty()) known += ", ";
            known += p.name;
        }
        throw std::invalid_argument("unknown decomposition preset \"" +
                                    std::string(name) + "\" (known: " + known + ")");
    }
    if (std::find(config.order.begin(), config.order.end(), K::kShannonMux) ==
        config.order.end()) {
        config.order.push_back(K::kShannonMux);
    }
    return config;
}

bool preset_sift_symmetry_default(std::string_view name) {
    return name == "symmetry" || name == "exact-aggressive" ||
           name == "best-cost";
}

}  // namespace bdsmaj::decomp
