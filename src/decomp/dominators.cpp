#include "decomp/dominators.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;
using bdd::Edge;
using bdd::Manager;
using bdd::NodeIndex;

constexpr double kPathTolerance = 1e-9;

bool close(double a, double b) {
    return std::abs(a - b) <= kPathTolerance * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

DominatorAnalysis::DominatorAnalysis(Manager& mgr, const Bdd& f) : mgr_(mgr), f_(f) {
    if (f.is_constant()) return;

    // Collect the DAG and sort by level: parents strictly above children,
    // so ascending level order is topological.
    std::vector<NodeIndex>& dag = dag_;
    mgr_.for_each_node(f.edge(), [&](NodeIndex v) { dag.push_back(v); });
    std::sort(dag.begin(), dag.end(), [&](NodeIndex a, NodeIndex b) {
        const Edge ea = bdd::make_edge(a, false);
        const Edge eb = bdd::make_edge(b, false);
        return mgr_.edge_level(ea) < mgr_.edge_level(eb);
    });
    // DAG position of each node, in a generation-stamped Manager side map
    // (no hashing, no per-analysis allocation).
    bdd::Manager::NodeMap pos_map = mgr_.make_node_map();
    for (std::size_t i = 0; i < dag.size(); ++i) {
        pos_map.set(dag[i], static_cast<std::uint32_t>(i));
    }
    const auto pos = [&pos_map](NodeIndex v) -> std::size_t {
        return pos_map.at(v);
    };

    // Downward DP: root-to-node path counts split by complement parity.
    std::vector<double> pe(dag.size(), 0.0), po(dag.size(), 0.0);
    const NodeIndex root = bdd::edge_index(f.edge());
    if (bdd::edge_complemented(f.edge())) {
        po[pos(root)] = 1.0;
    } else {
        pe[pos(root)] = 1.0;
    }
    // Upward DP: node-to-terminal path counts by parity (parity of edges
    // below the node; even parity ends at the 1 value).
    std::vector<double> qe(dag.size(), 0.0), qo(dag.size(), 0.0);

    infos_.resize(dag.size());
    for (std::size_t i = 0; i < dag.size(); ++i) {
        const NodeIndex v = dag[i];
        const Edge reg = bdd::make_edge(v, false);
        infos_[i].node = v;
        infos_[i].level = mgr_.edge_level(reg);
        infos_[i].is_root = (v == root);
        const Edge t = mgr_.edge_then(reg);
        const Edge e = mgr_.edge_else(reg);
        // Propagate path counts downward.
        if (!bdd::edge_is_constant(t)) {
            const std::size_t ti = pos(bdd::edge_index(t));
            pe[ti] += pe[i];
            po[ti] += po[i];
            ++infos_[ti].then_fanin;
        }
        if (!bdd::edge_is_constant(e)) {
            const std::size_t ei = pos(bdd::edge_index(e));
            if (bdd::edge_complemented(e)) {
                pe[ei] += po[i];
                po[ei] += pe[i];
                ++infos_[ei].else_fanin_comp;
            } else {
                pe[ei] += pe[i];
                po[ei] += po[i];
                ++infos_[ei].else_fanin_reg;
            }
        }
    }
    // Fanin bookkeeping above only tracked internal children; indexes are
    // aligned with `infos_` because `pos` maps the shared `dag` order.

    for (std::size_t i = dag.size(); i-- > 0;) {
        const NodeIndex v = dag[i];
        const Edge reg = bdd::make_edge(v, false);
        const Edge t = mgr_.edge_then(reg);
        const Edge e = mgr_.edge_else(reg);
        const auto contribution = [&](Edge child, double* even, double* odd) {
            const bool comp = bdd::edge_complemented(child);
            if (bdd::edge_is_constant(child)) {
                // A terminal edge is one path whose parity is the edge's
                // complement bit.
                (comp ? *odd : *even) += 1.0;
                return;
            }
            const std::size_t ci = pos(bdd::edge_index(child));
            if (comp) {
                *even += qo[ci];
                *odd += qe[ci];
            } else {
                *even += qe[ci];
                *odd += qo[ci];
            }
        };
        contribution(t, &qe[i], &qo[i]);
        contribution(e, &qe[i], &qo[i]);
    }

    const std::size_t root_pos = pos(root);
    const double total_paths = qe[root_pos] + qo[root_pos];
    const bool root_comp = bdd::edge_complemented(f.edge());
    const double total_one_paths = root_comp ? qo[root_pos] : qe[root_pos];
    const double total_zero_paths = root_comp ? qe[root_pos] : qo[root_pos];

    const Bdd one = mgr_.one();
    for (std::size_t i = 0; i < dag.size(); ++i) {
        NodeDomInfo& info = infos_[i];
        if (info.is_root) continue;  // root decompositions are trivial
        const double through_all = (pe[i] + po[i]) * (qe[i] + qo[i]);
        const double through_one = pe[i] * qe[i] + po[i] * qo[i];
        const double through_zero = pe[i] * qo[i] + po[i] * qe[i];
        const Bdd fv = mgr_.node_function(info.node);

        if (close(through_all, total_paths)) {
            // Candidate x-dominator; verify F == F_{v->0} XOR Fv. The
            // node-replacement operator respects path parity, so this
            // identity covers mixed arrival parities too.
            const Bdd g = mgr_.replace_node_with_const(f_, info.node, false);
            if (mgr_.apply_xor(g, fv) == f_) info.is_x_dominator = true;
        }
        // AND/OR decompositions need a uniform arrival parity: even paths
        // see Fv, odd paths see !Fv. With odd parity the replacement
        // constants invert as well (replace(v, c) contributes c ^ parity).
        const bool even_arrivals = po[i] == 0.0;
        const bool odd_arrivals = pe[i] == 0.0;
        if ((even_arrivals || odd_arrivals) && close(through_one, total_one_paths)) {
            const Bdd g =
                mgr_.replace_node_with_const(f_, info.node, even_arrivals);
            const Bdd divisor = even_arrivals ? fv : !fv;
            if (mgr_.apply_and(g, divisor) == f_) {
                info.is_one_dominator = true;
                info.divisor_complemented = odd_arrivals;
            }
        }
        if ((even_arrivals || odd_arrivals) && close(through_zero, total_zero_paths)) {
            const Bdd g =
                mgr_.replace_node_with_const(f_, info.node, !even_arrivals);
            const Bdd divisor = even_arrivals ? fv : !fv;
            if (mgr_.apply_or(g, divisor) == f_) {
                info.is_zero_dominator = true;
                info.divisor_complemented = odd_arrivals;
            }
        }
        has_simple_ |= info.is_x_dominator || info.is_one_dominator ||
                       info.is_zero_dominator;
    }
}

SimpleDecomposition DominatorAnalysis::decompose_at(const NodeDomInfo& info,
                                                    SimpleDecomposition::Op op) {
    SimpleDecomposition out;
    out.op = op;
    const Bdd fv = mgr_.node_function(info.node);
    switch (op) {
        case SimpleDecomposition::Op::kAnd:
            assert(info.is_one_dominator);
            out.divisor = info.divisor_complemented ? !fv : fv;
            out.quotient = mgr_.replace_node_with_const(f_, info.node,
                                                        !info.divisor_complemented);
            assert(mgr_.apply_and(out.quotient, out.divisor) == f_);
            break;
        case SimpleDecomposition::Op::kOr:
            assert(info.is_zero_dominator);
            out.divisor = info.divisor_complemented ? !fv : fv;
            out.quotient = mgr_.replace_node_with_const(f_, info.node,
                                                        info.divisor_complemented);
            assert(mgr_.apply_or(out.quotient, out.divisor) == f_);
            break;
        case SimpleDecomposition::Op::kXor:
            assert(info.is_x_dominator);
            out.divisor = fv;
            out.quotient = mgr_.replace_node_with_const(f_, info.node, false);
            assert(mgr_.apply_xor(out.quotient, out.divisor) == f_);
            break;
    }
    return out;
}

const std::vector<std::size_t>& DominatorAnalysis::node_sizes() {
    if (!sizes_.empty() || dag_.empty()) return sizes_;
    const std::size_t n = dag_.size();
    sizes_.assign(n, 0);

    // Single bottom-up pass: reach[i] is the set of DAG positions reachable
    // from dag_[i] (itself included) as a bitset; a node's function size is
    // the popcount of its row. dag_ is in ascending level order, so
    // children always sit at larger positions and iterating positions in
    // reverse finalizes every child row before its parents need it.
    constexpr std::size_t kBitsetNodeLimit = 16384;
    if (n <= kBitsetNodeLimit) {
        bdd::Manager::NodeMap pos = mgr_.make_node_map();
        for (std::size_t i = 0; i < n; ++i) {
            pos.set(dag_[i], static_cast<std::uint32_t>(i));
        }
        const std::size_t words = (n + 63) / 64;
        std::vector<std::uint64_t> reach(n * words, 0);
        for (std::size_t i = n; i-- > 0;) {
            std::uint64_t* row = &reach[i * words];
            row[i / 64] |= std::uint64_t{1} << (i % 64);
            const Edge reg = bdd::make_edge(dag_[i], false);
            for (const Edge child : {mgr_.edge_then(reg), mgr_.edge_else(reg)}) {
                if (bdd::edge_is_constant(child)) continue;
                const std::uint64_t* crow =
                    &reach[static_cast<std::size_t>(pos.at(bdd::edge_index(child))) * words];
                for (std::size_t w = 0; w < words; ++w) row[w] |= crow[w];
            }
            std::size_t count = 0;
            for (std::size_t w = 0; w < words; ++w) {
                count += static_cast<std::size_t>(std::popcount(row[w]));
            }
            sizes_[i] = count;
        }
    } else {
        // Degenerate giant DAG: per-node stamped DFS. Same exact sizes, no
        // quadratic bit matrix.
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t count = 0;
            mgr_.for_each_node(bdd::make_edge(dag_[i], false),
                               [&count](NodeIndex) { ++count; });
            sizes_[i] = count;
        }
    }
    return sizes_;
}

std::vector<bdd::NodeIndex> DominatorAnalysis::m_dominators(
    int max_count, std::uint32_t min_then_fanin, std::uint32_t min_else_fanin) const {
    struct Candidate {
        bdd::NodeIndex node;
        std::uint32_t connectivity;
    };
    std::vector<Candidate> candidates;
    for (const NodeDomInfo& info : infos_) {
        if (info.is_root) continue;
        // Condition (i): not a simple dominator.
        if (info.is_one_dominator || info.is_zero_dominator || info.is_x_dominator) {
            continue;
        }
        // Condition (ii): reached through then-edges and through else-edges
        // — the Maj(Fa,1,0) / Maj(Fa,0,1) reachability argument. A
        // complemented else arrival serves the same role with Fa taken in
        // the opposite polarity (Theorem 3.2 holds for any Fa), so both
        // else polarities count.
        if (info.then_fanin < min_then_fanin ||
            info.else_fanin_reg + info.else_fanin_comp < min_else_fanin) {
            continue;
        }
        candidates.push_back(
            Candidate{info.node, info.then_fanin + info.else_fanin_reg +
                                     info.else_fanin_comp});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                         return a.connectivity > b.connectivity;
                     });
    std::vector<bdd::NodeIndex> out;
    for (const Candidate& c : candidates) {
        if (static_cast<int>(out.size()) >= max_count) break;
        out.push_back(c.node);
    }
    return out;
}

}  // namespace bdsmaj::decomp
