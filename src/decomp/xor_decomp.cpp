#include "decomp/xor_decomp.hpp"

#include <algorithm>
#include <cassert>

#include "decomp/dominators.hpp"

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;
using bdd::Manager;

struct ScoredSplit {
    XorSplit split;
    std::size_t max_part = 0;
    std::size_t total = 0;
};

ScoredSplit score(Manager& mgr, Bdd m, Bdd k, bool trivial) {
    ScoredSplit s;
    const std::size_t sm = mgr.dag_size(m);
    const std::size_t sk = mgr.dag_size(k);
    s.max_part = std::max(sm, sk);
    s.total = sm + sk;
    s.split = XorSplit{std::move(m), std::move(k), trivial};
    return s;
}

bool better(const ScoredSplit& a, const ScoredSplit& b) {
    if (a.max_part != b.max_part) return a.max_part < b.max_part;
    return a.total < b.total;
}

}  // namespace

XorSplit xor_decompose(Manager& mgr, const Bdd& fx, const XorDecompParams& params) {
    const std::size_t fx_size = mgr.dag_size(fx);
    ScoredSplit best = score(mgr, fx, mgr.zero(), /*trivial=*/true);

    if (fx.is_constant()) return best.split;

    // 1. x-dominator splits: Fx = F_{v->0} XOR Fv (verified in the
    //    analysis), the BDS disjoint XOR decomposition.
    DominatorAnalysis analysis(mgr, fx);
    for (const NodeDomInfo& info : analysis.nodes()) {
        if (!info.is_x_dominator) continue;
        SimpleDecomposition d =
            analysis.decompose_at(info, SimpleDecomposition::Op::kXor);
        ScoredSplit s = score(mgr, std::move(d.quotient), std::move(d.divisor),
                              /*trivial=*/false);
        if (s.total <= static_cast<std::size_t>(
                           params.max_growth * static_cast<double>(fx_size)) &&
            better(s, best)) {
            best = std::move(s);
        }
    }

    // 2. Single-variable fallback: Fx = x XOR (Fx XOR x).
    int tried = 0;
    for (const int var : mgr.support_vars(fx)) {
        if (tried++ >= params.max_var_candidates) break;
        const Bdd x = mgr.var_bdd(var);
        Bdd m = mgr.apply_xor(fx, x);
        ScoredSplit s = score(mgr, std::move(m), x, /*trivial=*/false);
        if (s.total <= static_cast<std::size_t>(
                           params.max_growth * static_cast<double>(fx_size)) &&
            better(s, best)) {
            best = std::move(s);
        }
    }

    assert(mgr.apply_xor(best.split.m, best.split.k) == fx);
    return best.split;
}

}  // namespace bdsmaj::decomp
