#pragma once
// Cone memoization: a process-wide supernode -> GateTape result cache.
//
// Real workloads are massively self-similar — C6288 and the benchgen
// Wallace multipliers are hundreds of copies of the same full-adder cones,
// and a long-lived SynthesisService re-synthesizes identical cones across
// jobs. This module generalizes the NPN exact cache's memoization idea
// from 4-input truth tables to whole supernodes: a canonical signature of
// the cone keys the supernode's position-independent GateTape (plus its
// per-cone EngineStats), so `decompose_network` can skip the
// build-BDD/sift/decompose stage entirely on a hit and replay the cached
// tape through the leaf mapping.
//
// Determinism argument (the reason a hit is BYTE-identical to a cold run):
// the canonical form serializes exactly the sequence of BDD-manager calls
// build_supernode_bdd would issue — material ops (AND/XOR/MAJ/MUX/SOP) in
// cone topological order with operand references and polarities. The
// folds it performs are precisely the cone rewrites that provably leave
// that call sequence unchanged:
//   * NOT/BUF nodes create no BDD nodes (complement edges), so they fold
//     into reference polarity;
//   * NAND/NOR/XNOR complement the result of the same AND/OR/XOR core
//     call, so they fold into an output-polarity bit;
//   * OR(a,b) is implemented as NOT(AND(NOT a, NOT b)) on the shared
//     and_rec core, so OR folds into AND with complemented operands and a
//     complemented output;
//   * XOR's core strips operand complements internally, so operand
//     polarities fold into the output bit;
//   * AND's core (and the OR/AND pair inside MAJ) canonicalizes operand
//     order, so commutative operands are sorted.
// Equal canonical forms therefore drive a (fresh or reset) manager through
// the identical node-construction sequence, leaving the identical manager
// state for sifting — and the decomposer is a deterministic function of
// that state plus EngineParams, so the recorded tape and per-cone stats
// are identical too. Everything else that could change the emitted tape
// (preset and all EngineParams, ManagerParams, the reorder flag) is
// serialized into the key as a config prefix.
//
// The lookup structure is mutex-sharded with a per-shard LRU over a
// process-wide memory budget. The 64-bit simulation hash (bit-parallel
// evaluation of the cone over fixed pseudo-random leaf stimulus) is the
// fast pre-filter — shard selection and hash-bucket placement; equality
// always compares the full canonical byte string, so a simulation-hash
// collision between two different cones can never alias their tapes.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "decomp/engine.hpp"
#include "decomp/partition.hpp"
#include "network/gate_tape.hpp"
#include "network/network.hpp"

namespace bdsmaj::decomp {

/// Cache key of one supernode: the simulation hash (fast pre-filter) and
/// the full canonical serialization (config prefix + folded cone
/// structure), which is what equality compares.
struct ConeKey {
    std::uint64_t sim_hash = 0;
    std::string canonical;
};

/// Cached result of decomposing one cone: the position-independent tape
/// and the per-cone engine stats a cold run would have produced (stored so
/// a hit contributes the identical telemetry; cone_cache_* fields zeroed).
struct ConeCacheValue {
    std::shared_ptr<const net::GateTape> tape;
    EngineStats stats;
};

struct ConeCacheStats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
    long long entries = 0;
    long long bytes = 0;
};

/// Deterministic 64-bit stimulus word of `leaf` in simulation round
/// `round` (kConeSimRounds rounds of 64 patterns each). Public so tests
/// can enumerate the exact pattern set and engineer hash collisions.
[[nodiscard]] std::uint64_t cone_sim_word(int round, std::size_t leaf);
inline constexpr int kConeSimRounds = 2;

/// Serialize every decomposition-relevant knob into the canonical-key
/// prefix: all EngineParams (preset included), all ManagerParams, and the
/// flow's reorder flag. Anything here differing forces a distinct entry.
[[nodiscard]] std::string cone_cache_config_blob(const EngineParams& engine,
                                                 const bdd::ManagerParams& manager,
                                                 bool reorder);

/// Per-worker canonical-key builder. Owns the dense node->reference
/// scratch (O(network) allocated once per worker, reset per supernode) and
/// the simulation buffers; not thread-safe, use one per worker.
class ConeKeyBuilder {
public:
    /// Canonical key of `sn` under `config` (a cone_cache_config_blob).
    /// Throws std::logic_error on a malformed supernode (cone fanin
    /// outside leaves + earlier cone), like build_supernode_bdd does.
    [[nodiscard]] ConeKey build(const net::Network& network, const Supernode& sn,
                                std::string_view config);

private:
    // Resolved reference of a cone value after polarity folding.
    struct Ref {
        std::uint8_t kind = 0;  // 0 const, 1 leaf, 2 material op
        std::uint32_t index = 0;
        bool complemented = false;
    };

    std::vector<std::uint32_t> pos_;  // node id -> dense position + 1
    std::vector<Ref> ref_of_;         // dense position -> resolved ref
    std::vector<std::uint64_t> sim_;  // dense position -> current round word
    std::vector<std::uint64_t> sop_fanin_words_;
};

/// Process-wide, mutex-sharded, memory-budgeted LRU tape cache.
class ConeCache {
public:
    /// The singleton shared by all flows/jobs/threads.
    [[nodiscard]] static ConeCache& instance();

    /// Cached value, or nullptr. A hit refreshes the entry's LRU position.
    [[nodiscard]] std::shared_ptr<const ConeCacheValue> lookup(const ConeKey& key);

    /// Publish a decomposition result. First insert wins: a concurrent
    /// duplicate (two workers cold-decomposing the same cone) is dropped —
    /// both tapes are identical by the determinism argument above, so
    /// which one survives is unobservable.
    void insert(const ConeKey& key, std::shared_ptr<const net::GateTape> tape,
                const EngineStats& stats);

    /// Process-wide byte budget (default 64 MiB). Shrinking evicts
    /// immediately. A budget of 0 effectively disables retention (inserts
    /// are evicted at once) without turning lookups off.
    void set_budget_bytes(std::size_t budget);
    [[nodiscard]] std::size_t budget_bytes() const;

    /// Drop every entry (tests, benchmarks); keeps the hit/miss counters.
    void clear();
    /// Drop every entry and zero the counters.
    void reset_stats();

    [[nodiscard]] ConeCacheStats stats() const;

private:
    ConeCache() = default;

    struct Entry {
        ConeKey key;
        std::shared_ptr<const ConeCacheValue> value;
        std::size_t bytes = 0;
    };
    using LruList = std::list<Entry>;

    // The map refers to the keys stored inside the (address-stable) list
    // nodes. Hashing is the sim-hash pre-filter; equality is the full
    // canonical-form comparison — the no-aliasing guarantee.
    struct KeyPtrHash {
        std::size_t operator()(const ConeKey* k) const noexcept {
            return static_cast<std::size_t>(k->sim_hash *
                                            0x9e3779b97f4a7c15ULL);
        }
    };
    struct KeyPtrEq {
        bool operator()(const ConeKey* a, const ConeKey* b) const noexcept {
            return a->sim_hash == b->sim_hash && a->canonical == b->canonical;
        }
    };

    struct Shard {
        mutable std::mutex mutex;
        LruList lru;  // front = most recently used
        std::unordered_map<const ConeKey*, LruList::iterator, KeyPtrHash, KeyPtrEq> map;
        std::size_t bytes = 0;
    };

    static constexpr std::size_t kShards = 16;

    [[nodiscard]] Shard& shard_of(const ConeKey& key) {
        return shards_[key.sim_hash & (kShards - 1)];
    }
    /// Evict from the tail while the shard exceeds its budget slice.
    /// Caller holds the shard mutex.
    void evict_over_budget(Shard& shard);

    std::array<Shard, kShards> shards_;
    std::atomic<std::size_t> budget_{std::size_t{64} << 20};
    std::atomic<long long> hits_{0};
    std::atomic<long long> misses_{0};
    std::atomic<long long> evictions_{0};
};

}  // namespace bdsmaj::decomp
