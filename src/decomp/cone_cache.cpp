#include "decomp/cone_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "network/sop.hpp"
#include "runtime/fault_inject.hpp"

namespace bdsmaj::decomp {

namespace {

using net::GateKind;
using net::NodeId;

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// Raw little-endian-as-stored bytes: the blob never leaves the process, so
// object representation is a valid (and exhaustive) serialization.
template <typename T>
void append_raw(std::string& out, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
}

void append_str(std::string& out, const std::string& s) {
    append_raw(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

// Canonical-form opcodes. OR/NAND/NOR fold into kOpAnd, XNOR into kOpXor,
// NOT/BUF/constants into reference polarity (see the header's determinism
// argument), so only the manager-call-issuing shapes appear here.
enum : std::uint8_t {
    kOpAnd = 1,
    kOpXor = 2,
    kOpMaj = 3,
    kOpMux = 4,
    kOpSop = 5,
    kOpRoot = 0xff,
};

}  // namespace

std::uint64_t cone_sim_word(int round, std::size_t leaf) {
    return splitmix64((static_cast<std::uint64_t>(static_cast<unsigned>(round)) << 32) ^
                      static_cast<std::uint64_t>(leaf + 1));
}

std::string cone_cache_config_blob(const EngineParams& engine,
                                   const bdd::ManagerParams& manager, bool reorder) {
    std::string out;
    out.reserve(128 + engine.preset.size());
    append_raw(out, std::uint8_t{4});  // blob layout version
    append_str(out, engine.preset);
    append_raw(out, static_cast<std::uint8_t>(engine.use_majority));
    append_raw(out, engine.max_simple_candidates);
    append_raw(out, engine.xor_acceptance_factor);
    append_raw(out, engine.exact_max_support);
    append_raw(out, engine.exact_min_saving);
    append_raw(out, engine.exact_min_saving_wide);
    append_raw(out, engine.exact_sat_budget);
    append_raw(out, engine.exact_sat_max_steps);
    const MajDecompParams& maj = engine.maj;
    append_raw(out, maj.max_candidates);
    append_raw(out, maj.max_iterations);
    append_raw(out, maj.k_local);
    append_raw(out, maj.k_global);
    append_raw(out, maj.min_then_fanin);
    append_raw(out, maj.min_else_fanin);
    append_raw(out, static_cast<std::uint8_t>(maj.use_restrict));
    append_raw(out, maj.xor_params.max_var_candidates);
    append_raw(out, maj.xor_params.max_growth);
    append_raw(out, manager.cache_size_log2);
    append_raw(out, manager.cache_max_size_log2);
    append_raw(out, manager.gc_dead_threshold);
    append_raw(out, manager.sift_max_growth);
    append_raw(out, manager.sift_max_vars);
    append_raw(out, static_cast<std::uint8_t>(manager.sift_lower_bound));
    append_raw(out, static_cast<std::uint8_t>(manager.sift_converge));
    append_raw(out, manager.sift_converge_ratio);
    append_raw(out, manager.sift_max_passes);
    append_raw(out, static_cast<std::uint8_t>(manager.sift_symmetry));
    append_raw(out, engine.symmetric_max_support);
    append_raw(out, engine.symmetric_min_saving);
    append_raw(out, static_cast<std::uint8_t>(reorder));
    // Resource guards change which cones even finish (a guarded run must
    // never hit a tape an unguarded run produced, or cold and warm guarded
    // runs would diverge), so they are part of the key.
    append_raw(out, manager.max_live_nodes);
    append_raw(out, manager.sift_max_swaps);
    return out;
}

ConeKey ConeKeyBuilder::build(const net::Network& network, const Supernode& sn,
                              std::string_view config) {
    if (pos_.size() < network.node_count()) pos_.resize(network.node_count(), 0);
    const std::size_t num_leaves = sn.leaves.size();
    const std::size_t total = num_leaves + sn.cone.size();
    ref_of_.assign(total, Ref{});
    sim_.assign(total * kConeSimRounds, 0);

    // Mirror build_supernode_bdd's ScratchReset: the dense stamps must be
    // cleared on every exit (including the malformed-cone throw) or they
    // would alias unrelated nodes into later supernodes on this worker.
    struct ScratchReset {
        std::vector<std::uint32_t>& pos;
        const Supernode& sn;
        ~ScratchReset() {
            for (const NodeId leaf : sn.leaves) pos[leaf] = 0;
            for (const NodeId id : sn.cone) pos[id] = 0;
        }
    } reset_guard{pos_, sn};

    const auto at = [&](NodeId fanin) -> std::size_t {
        const std::uint32_t p = pos_[fanin];
        if (p == 0) {
            throw std::logic_error("supernode cone references node " +
                                   std::to_string(fanin) +
                                   " outside its leaves/cone");
        }
        return static_cast<std::size_t>(p - 1);
    };

    ConeKey key;
    key.canonical.reserve(config.size() + 16 + sn.cone.size() * 16);
    key.canonical.append(config);
    append_raw(key.canonical, static_cast<std::uint32_t>(num_leaves));

    // (kind, index, complemented) lexicographic: any deterministic order
    // works for commutative operands because the manager cores
    // re-canonicalize operand order themselves.
    const auto ref_less = [](const Ref& a, const Ref& b) {
        if (a.kind != b.kind) return a.kind < b.kind;
        if (a.index != b.index) return a.index < b.index;
        return a.complemented < b.complemented;
    };
    const auto append_ref = [&](const Ref& r) {
        append_raw(key.canonical, r.kind);
        append_raw(key.canonical, r.index);
        append_raw(key.canonical, static_cast<std::uint8_t>(r.complemented));
    };

    for (std::size_t i = 0; i < num_leaves; ++i) {
        assert(pos_[sn.leaves[i]] == 0);
        pos_[sn.leaves[i]] = static_cast<std::uint32_t>(i + 1);
        ref_of_[i] = Ref{1, static_cast<std::uint32_t>(i), false};
        for (int r = 0; r < kConeSimRounds; ++r) {
            sim_[i * kConeSimRounds + r] = cone_sim_word(r, i);
        }
    }

    std::uint32_t num_ops = 0;
    for (std::size_t j = 0; j < sn.cone.size(); ++j) {
        const NodeId id = sn.cone[j];
        const net::Node& n = network.node(id);
        const auto in = [&](std::size_t k) { return at(n.fanins[k]); };
        const auto word = [&](std::size_t p, int r) { return sim_[p * kConeSimRounds + r]; };

        const std::size_t self = num_leaves + j;
        Ref ref{};
        std::uint64_t w[kConeSimRounds] = {};
        const auto emit_op = [&](std::uint8_t opcode) {
            append_raw(key.canonical, opcode);
            ref = Ref{2, num_ops++, false};
        };

        switch (n.kind) {
            case GateKind::kInput:
                assert(false && "inputs cannot be cone-internal");
                ref = Ref{0, 0, false};
                break;
            case GateKind::kConst0:
                ref = Ref{0, 0, false};
                break;
            case GateKind::kConst1:
                ref = Ref{0, 0, true};
                for (auto& x : w) x = ~std::uint64_t{0};
                break;
            case GateKind::kBuf: {
                const std::size_t p = in(0);
                ref = ref_of_[p];
                for (int r = 0; r < kConeSimRounds; ++r) w[r] = word(p, r);
                break;
            }
            case GateKind::kNot: {
                const std::size_t p = in(0);
                ref = ref_of_[p];
                ref.complemented = !ref.complemented;
                for (int r = 0; r < kConeSimRounds; ++r) w[r] = ~word(p, r);
                break;
            }
            case GateKind::kAnd:
            case GateKind::kOr:
            case GateKind::kNand:
            case GateKind::kNor: {
                const std::size_t pa = in(0), pb = in(1);
                Ref a = ref_of_[pa], b = ref_of_[pb];
                // OR/NOR run the AND core on complemented operands
                // (apply_or = !and(!a, !b)); NAND/OR complement the result.
                const bool or_like = n.kind == GateKind::kOr || n.kind == GateKind::kNor;
                const bool out_compl = n.kind == GateKind::kOr || n.kind == GateKind::kNand;
                if (or_like) {
                    a.complemented = !a.complemented;
                    b.complemented = !b.complemented;
                }
                if (ref_less(b, a)) std::swap(a, b);
                emit_op(kOpAnd);
                append_ref(a);
                append_ref(b);
                ref.complemented = out_compl;
                for (int r = 0; r < kConeSimRounds; ++r) {
                    const std::uint64_t x = word(pa, r), y = word(pb, r);
                    std::uint64_t v = or_like ? (x | y) : (x & y);
                    if (n.kind == GateKind::kNand || n.kind == GateKind::kNor) v = ~v;
                    w[r] = v;
                }
                break;
            }
            case GateKind::kXor:
            case GateKind::kXnor: {
                const std::size_t pa = in(0), pb = in(1);
                Ref a = ref_of_[pa], b = ref_of_[pb];
                // The XOR core strips operand complements; they fold into
                // the output polarity along with the XNOR complement.
                bool out_compl = a.complemented != b.complemented;
                if (n.kind == GateKind::kXnor) out_compl = !out_compl;
                a.complemented = false;
                b.complemented = false;
                if (ref_less(b, a)) std::swap(a, b);
                emit_op(kOpXor);
                append_ref(a);
                append_ref(b);
                ref.complemented = out_compl;
                for (int r = 0; r < kConeSimRounds; ++r) {
                    w[r] = word(pa, r) ^ word(pb, r);
                    if (n.kind == GateKind::kXnor) w[r] = ~w[r];
                }
                break;
            }
            case GateKind::kMaj: {
                const std::size_t pa = in(0), pb = in(1), pc = in(2);
                const Ref a = ref_of_[pa];
                Ref b = ref_of_[pb], c = ref_of_[pc];
                // maj(a,b,c) = ite(a, or(b,c), and(b,c)): symmetric in
                // (b,c) only, and operand polarities are material.
                if (ref_less(c, b)) std::swap(b, c);
                emit_op(kOpMaj);
                append_ref(a);
                append_ref(b);
                append_ref(c);
                for (int r = 0; r < kConeSimRounds; ++r) {
                    const std::uint64_t x = word(pa, r), y = word(pb, r), z = word(pc, r);
                    w[r] = (x & y) | (x & z) | (y & z);
                }
                break;
            }
            case GateKind::kMux: {
                const std::size_t ps = in(0), pt = in(1), pe = in(2);
                emit_op(kOpMux);
                append_ref(ref_of_[ps]);
                append_ref(ref_of_[pt]);
                append_ref(ref_of_[pe]);
                for (int r = 0; r < kConeSimRounds; ++r) {
                    const std::uint64_t s = word(ps, r);
                    w[r] = (s & word(pt, r)) | (~s & word(pe, r));
                }
                break;
            }
            case GateKind::kSop: {
                // sop_to_bdd's call sequence is a deterministic function of
                // the cover and the fanin BDDs, so the cover serializes
                // verbatim (no folding) with the fanin refs in order.
                emit_op(kOpSop);
                append_raw(key.canonical, static_cast<std::uint32_t>(n.sop.arity()));
                append_raw(key.canonical, static_cast<std::uint32_t>(n.fanins.size()));
                for (std::size_t k = 0; k < n.fanins.size(); ++k) {
                    append_ref(ref_of_[in(k)]);
                }
                const auto& cubes = n.sop.cubes();
                append_raw(key.canonical, static_cast<std::uint32_t>(cubes.size()));
                for (const net::Cube& cube : cubes) {
                    for (const net::Lit lit : cube.lits) {
                        append_raw(key.canonical, static_cast<std::uint8_t>(lit));
                    }
                }
                for (int r = 0; r < kConeSimRounds; ++r) {
                    sop_fanin_words_.resize(n.fanins.size());
                    for (std::size_t k = 0; k < n.fanins.size(); ++k) {
                        sop_fanin_words_[k] = word(in(k), r);
                    }
                    w[r] = n.sop.eval_words(sop_fanin_words_);
                }
                break;
            }
        }

        assert(pos_[id] == 0);
        pos_[id] = static_cast<std::uint32_t>(self + 1);
        ref_of_[self] = ref;
        for (int r = 0; r < kConeSimRounds; ++r) sim_[self * kConeSimRounds + r] = w[r];
    }

    const std::size_t root_pos = at(sn.root);
    append_raw(key.canonical, std::uint8_t{kOpRoot});
    append_ref(ref_of_[root_pos]);

    std::uint64_t h = splitmix64(0x636f6e65ULL ^ static_cast<std::uint64_t>(num_leaves));
    for (int r = 0; r < kConeSimRounds; ++r) {
        h = splitmix64(h ^ sim_[root_pos * kConeSimRounds + r]);
    }
    key.sim_hash = h;
    return key;
}

ConeCache& ConeCache::instance() {
    static ConeCache cache;
    return cache;
}

std::shared_ptr<const ConeCacheValue> ConeCache::lookup(const ConeKey& key) {
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(&key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
}

void ConeCache::insert(const ConeKey& key, std::shared_ptr<const net::GateTape> tape,
                       const EngineStats& stats) {
    // Chaos site: a throw here unwinds before any shard state is touched,
    // so the cache is never left torn — the job fails, the cache stays
    // consistent for every other job.
    runtime::fault_point(runtime::FaultSite::kConeCacheInsert);
    auto value = std::make_shared<ConeCacheValue>();
    value->tape = std::move(tape);
    value->stats = stats;
    // A hit replays these stats verbatim as the supernode's telemetry; the
    // flow sets the hit/miss counters itself, so they must enter zeroed.
    value->stats.cone_cache_hits = 0;
    value->stats.cone_cache_misses = 0;
    value->stats.cone_cache_evictions = 0;
    value->stats.cone_cache_bytes = 0;

    // Canonical string + tape + list/map node and control-block overhead.
    const std::size_t bytes = key.canonical.size() + value->tape->memory_bytes() +
                              sizeof(Entry) + sizeof(ConeCacheValue) + 128;

    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.find(&key) != shard.map.end()) return;  // first insert wins
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.map.emplace(&shard.lru.front().key, shard.lru.begin());
    shard.bytes += bytes;
    evict_over_budget(shard);
}

void ConeCache::evict_over_budget(Shard& shard) {
    const std::size_t slice = budget_.load(std::memory_order_relaxed) / kShards;
    while (shard.bytes > slice && !shard.lru.empty()) {
        Entry& victim = shard.lru.back();
        shard.map.erase(&victim.key);
        shard.bytes -= victim.bytes;
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

void ConeCache::set_budget_bytes(std::size_t budget) {
    budget_.store(budget, std::memory_order_relaxed);
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        evict_over_budget(shard);
    }
}

std::size_t ConeCache::budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
}

void ConeCache::clear() {
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.map.clear();
        shard.lru.clear();
        shard.bytes = 0;
    }
}

void ConeCache::reset_stats() {
    clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
}

ConeCacheStats ConeCache::stats() const {
    ConeCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        s.entries += static_cast<long long>(shard.lru.size());
        s.bytes += static_cast<long long>(shard.bytes);
    }
    return s;
}

}  // namespace bdsmaj::decomp
