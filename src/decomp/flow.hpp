#pragma once
// The complete BDS-MAJ logic decomposition flow (paper Fig. 3):
//   input network -> partition into supernodes -> per-supernode local BDD
//   (with sifting reorder) -> dominator/majority-driven decomposition ->
//   factoring trees with on-line sharing -> cleaned decomposed network.
//
// `use_majority = false` gives the BDS-PGA baseline of Table I.
//
// The per-supernode stage (local BDD build, sifting, decomposition) is
// embarrassingly parallel: every supernode gets a fresh manager and writes
// its factoring tree to a private GateTape. The tapes are replayed by the
// calling thread, strictly in supernode order, into the shared
// hash-consing builder — pipelined with the decomposition of later
// supernodes (replay of tape i overlaps the decomposition of i+1, with a
// bounded tape window), on the process-wide shared pool
// (runtime::global_pool()). On-line sharing is preserved and the output
// network is byte-identical at any `jobs` setting (see
// docs/performance.md, "Parallel pipeline").

#include <atomic>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "decomp/engine.hpp"
#include "decomp/partition.hpp"
#include "network/cec.hpp"
#include "network/network.hpp"

namespace bdsmaj::decomp {

/// Thrown by decompose_network when its cancellation token fires; the
/// synthesis service maps it to JobStatus::kCancelled (not a failure).
class FlowCancelled : public std::runtime_error {
public:
    FlowCancelled() : std::runtime_error("synthesis flow cancelled") {}
};

/// Thrown by decompose_network at a per-supernode checkpoint once
/// DecompFlowParams::deadline has passed; the synthesis service maps it to
/// JobStatus::kDeadlineExceeded (a terminal status, not a failure).
class DeadlineExceeded : public std::runtime_error {
public:
    DeadlineExceeded() : std::runtime_error("synthesis deadline exceeded") {}
};

/// The recoverable resource-guard exception (see bdd::ManagerParams::
/// max_live_nodes / sift_max_swaps). decompose_network catches it per
/// supernode and retries the cone down the degrade ladder; it only
/// escapes when even the terminal stage trips, which the terminal stage's
/// lifted guards make impossible by construction.
using ResourceExhausted = bdd::ResourceExhausted;

struct DecompFlowParams {
    EngineParams engine;
    PartitionParams partition;
    /// Tuning for the per-supernode BDD managers — in particular the
    /// reordering budget (sift_max_growth / sift_max_vars / sift_converge;
    /// see bdd::ManagerParams). Defaults reproduce the paper presets
    /// byte-for-byte; sift_converge trades decomposition time for smaller
    /// local BDDs and may change (equivalent) output structure.
    bdd::ManagerParams manager;
    /// Sift each supernode's local BDD before decomposing (paper SIV-B).
    bool reorder = true;
    /// Symmetry-aware sifting (detect symmetric variable groups, move them
    /// as blocks): -1 = let the preset decide
    /// (preset_sift_symmetry_default; off for `paper` and the pinned
    /// baselines, on for `symmetry`/`exact-aggressive`/`best-cost`),
    /// 0 = force off, 1 = force on. Resolved once at decompose_network
    /// entry into manager.sift_symmetry, before the cone-cache config blob
    /// is computed.
    int sift_symmetry = -1;
    /// Consult the process-wide canonical cone cache
    /// (decomp/cone_cache.hpp): a supernode whose canonical cone signature
    /// was decomposed before — by this run, an earlier run, or a
    /// concurrent job — replays the cached GateTape instead of building,
    /// sifting and decomposing its local BDD. The output network is
    /// byte-identical either way (the cache key captures everything the
    /// emitted tape depends on); only the cone_cache_* telemetry differs.
    bool cone_cache = true;
    /// Run structural cleanup on the result.
    bool final_cleanup = true;
    /// Worker budget for the per-supernode stage: 1 = serial on the
    /// calling thread, N > 1 = up to N concurrent runners on the shared
    /// process pool (runtime::global_pool()), <= 0 = all hardware
    /// threads. The output network does not depend on this.
    int jobs = 1;
    /// Parallel path only: how many decomposed-but-not-yet-replayed tapes
    /// may exist at once. Replay of supernode i is pipelined with the
    /// decomposition of later supernodes, and this window bounds the gate
    /// IR held in memory; <= 0 picks 2 * workers + 2. The output network
    /// does not depend on this either.
    int replay_window = 0;
    /// Cooperative cancellation token. When non-null and set (by any
    /// thread), decompose_network stops at the next per-supernode
    /// checkpoint — before decomposing or replaying another supernode —
    /// and throws FlowCancelled. Null = not cancellable.
    const std::atomic<bool>* cancel = nullptr;
    /// Absolute hard deadline. Checked at the same per-supernode
    /// checkpoints as `cancel`; once passed, decompose_network throws
    /// DeadlineExceeded. Unset = no deadline (and no clock reads).
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Absolute soft budget. Once passed, remaining supernodes are
    /// decomposed on the degrade ladder below instead of the requested
    /// parameters — the flow finishes with a valid (equivalent, but
    /// cheaper-effort) network rather than dying. Which supernodes land on
    /// the ladder is timing-dependent; EngineStats::degraded_supernodes
    /// counts them. Unset = no budget (and no clock reads).
    std::optional<std::chrono::steady_clock::time_point> soft_budget;
    /// Preset names tried in order for a degraded or guard-tripped
    /// supernode (each stage also clamps sift effort and disables the
    /// exact tiers). "shannon" — plain cofactor expansion with reordering
    /// and resource guards off, which always terminates — is appended as
    /// the terminal stage when missing. Empty = {"paper", "shannon"}.
    /// Only consulted when a soft budget or a resource guard
    /// (manager.max_live_nodes / manager.sift_max_swaps) is configured.
    std::vector<std::string> degrade_ladder;
    /// Equivalence engine for the optional sign-off below (and for callers
    /// that verify externally and want one knob to thread through).
    net::EquivEngine oracle = net::EquivEngine::kAuto;
    /// Verify the decomposed network against the input before returning.
    /// The verdict lands in DecompFlowResult::equivalence; an inequivalent
    /// result (an engine bug) throws std::runtime_error carrying the
    /// counterexample description. With any engine but kSim the sign-off
    /// is exact at every input width.
    bool self_check = false;
};

struct DecompFlowResult {
    net::Network network;
    EngineStats engine_stats;
    int supernode_count = 0;
    double seconds = 0.0;
    /// Oracle verdict when DecompFlowParams::self_check was set (always
    /// `equivalent`, or decompose_network would have thrown).
    std::optional<net::EquivalenceResult> equivalence;
};

/// Decompose `input` with the BDS-MAJ engine. The result is functionally
/// equivalent to the input (tests enforce it on every benchmark).
[[nodiscard]] DecompFlowResult decompose_network(const net::Network& input,
                                                 const DecompFlowParams& params = {});

/// Convenience wrappers for the two Table I configurations.
[[nodiscard]] DecompFlowResult run_bdsmaj(const net::Network& input);
[[nodiscard]] DecompFlowResult run_bdspga(const net::Network& input);

}  // namespace bdsmaj::decomp
