#pragma once
// The complete BDS-MAJ logic decomposition flow (paper Fig. 3):
//   input network -> partition into supernodes -> per-supernode local BDD
//   (with sifting reorder) -> dominator/majority-driven decomposition ->
//   factoring trees with on-line sharing -> cleaned decomposed network.
//
// `use_majority = false` gives the BDS-PGA baseline of Table I.
//
// The per-supernode stage (local BDD build, sifting, decomposition) is
// embarrassingly parallel: every supernode gets a fresh manager and writes
// its factoring tree to a private GateTape. The tapes are then replayed
// serially, in supernode order, into the shared hash-consing builder —
// so on-line sharing is preserved and the output network is byte-identical
// at any `jobs` setting (see docs/performance.md, "Parallel pipeline").

#include <string>

#include "decomp/engine.hpp"
#include "decomp/partition.hpp"
#include "network/network.hpp"

namespace bdsmaj::decomp {

struct DecompFlowParams {
    EngineParams engine;
    PartitionParams partition;
    /// Sift each supernode's local BDD before decomposing (paper SIV-B).
    bool reorder = true;
    /// Run structural cleanup on the result.
    bool final_cleanup = true;
    /// Worker threads for the per-supernode stage: 1 = serial on the
    /// calling thread, N > 1 = a work-stealing pool of N workers, <= 0 =
    /// all hardware threads. The output network does not depend on this.
    int jobs = 1;
};

struct DecompFlowResult {
    net::Network network;
    EngineStats engine_stats;
    int supernode_count = 0;
    double seconds = 0.0;
};

/// Decompose `input` with the BDS-MAJ engine. The result is functionally
/// equivalent to the input (tests enforce it on every benchmark).
[[nodiscard]] DecompFlowResult decompose_network(const net::Network& input,
                                                 const DecompFlowParams& params = {});

/// Convenience wrappers for the two Table I configurations.
[[nodiscard]] DecompFlowResult run_bdsmaj(const net::Network& input);
[[nodiscard]] DecompFlowResult run_bdspga(const net::Network& input);

}  // namespace bdsmaj::decomp
