#include "decomp/exact.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "runtime/fault_inject.hpp"

namespace bdsmaj::decomp {

namespace {

// Truth tables of the four canonical-space input literals.
constexpr std::uint16_t kLit[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};

std::uint16_t op_tt(ExactOp op, std::uint16_t a, std::uint16_t b, std::uint16_t c) {
    switch (op) {
        case ExactOp::kAnd: return a & b;
        case ExactOp::kOr: return a | b;  // wide programs only
        case ExactOp::kXor: return a ^ b;
        case ExactOp::kMaj:
            return static_cast<std::uint16_t>((a & b) | (a & c) | (b & c));
        case ExactOp::kMux:  // a ? b : c
            return static_cast<std::uint16_t>((a & b) | (~a & c));
    }
    return 0;
}

// Truth tables of the six wide canonical-space input literals over 64 bits.
constexpr std::uint64_t kLitW[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

std::uint64_t wide_mask(int num_inputs) {
    return num_inputs >= 6 ? ~0ULL : ((1ULL << (1u << num_inputs)) - 1);
}

std::uint64_t op_tt_w(ExactOp op, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c) {
    switch (op) {
        case ExactOp::kAnd: return a & b;
        case ExactOp::kOr: return a | b;
        case ExactOp::kXor: return a ^ b;
        case ExactOp::kMaj: return (a & b) | (a & c) | (b & c);
        case ExactOp::kMux: return (a & b) | (~a & c);  // a ? b : c
    }
    return 0;
}

// ---------------------------------------------------------------------------
// One-time cost enumeration: minimal tree gate count for every 16-bit
// function, Dijkstra-style by total gate count. NOT is free, so cost is
// complement-invariant; back-pointers record the actual operand functions
// used, and only for the polarity that was directly produced (the other
// polarity reconstructs as the complement).
// ---------------------------------------------------------------------------

struct Back {
    ExactOp op = ExactOp::kAnd;
    bool valid = false;
    std::uint16_t a = 0, b = 0, c = 0;  ///< operand truth tables as used
};

struct CostTable {
    std::array<std::uint8_t, 65536> cost{};
    std::array<Back, 65536> back{};
};

constexpr std::uint8_t kUnreached = 0xff;

const CostTable& cost_table() {
    static const CostTable table = [] {
        CostTable t;
        t.cost.fill(kUnreached);
        int discovered = 0;
        std::vector<std::vector<std::uint16_t>> levels(1);
        const auto seed = [&](std::uint16_t f) {
            if (t.cost[f] != kUnreached) return;
            t.cost[f] = 0;
            t.cost[static_cast<std::uint16_t>(~f)] = 0;
            levels[0].push_back(f);
            discovered += (f == static_cast<std::uint16_t>(~f)) ? 1 : 2;
        };
        seed(0x0000);
        for (const std::uint16_t lit : kLit) seed(lit);

        // Record f (and its free complement) as reachable at cost `c`.
        const auto relax = [&](std::uint16_t f, std::uint8_t c, ExactOp op,
                               std::uint16_t a, std::uint16_t b, std::uint16_t s3) {
            if (t.cost[f] != kUnreached) return;
            t.cost[f] = c;
            t.cost[static_cast<std::uint16_t>(~f)] = c;
            t.back[f] = Back{op, true, a, b, s3};
            levels[c].push_back(f);
            discovered += (f == static_cast<std::uint16_t>(~f)) ? 1 : 2;
        };

        for (std::uint8_t c = 1; discovered < 65536; ++c) {
            assert(c < 16 && "every 4-var function is reachable well before this");
            levels.emplace_back();
            // Partitions (c1, c2) with c1 + c2 == c - 1, cheapest pair
            // products first so the expensive ones mostly early-exit once
            // the table is full.
            std::vector<std::pair<int, int>> parts;
            for (int c1 = 0; c1 <= c - 1; ++c1) parts.emplace_back(c1, c - 1 - c1);
            std::stable_sort(parts.begin(), parts.end(),
                             [&](const auto& x, const auto& y) {
                                 return levels[static_cast<std::size_t>(x.first)].size() *
                                            levels[static_cast<std::size_t>(x.second)].size() <
                                        levels[static_cast<std::size_t>(y.first)].size() *
                                            levels[static_cast<std::size_t>(y.second)].size();
                             });
            for (const auto& [c1, c2] : parts) {
                const auto& la = levels[static_cast<std::size_t>(c1)];
                const auto& lb = levels[static_cast<std::size_t>(c2)];
                for (const std::uint16_t ra : la) {
                    if (discovered == 65536) break;
                    for (const std::uint16_t rb : lb) {
                        if (discovered == 65536) break;
                        // 2-input ops over all operand polarities. XOR needs
                        // only one combo (operand complements flip the
                        // output, which is free); AND's four combos also
                        // cover OR/NAND/NOR via free complements.
                        relax(op_tt(ExactOp::kXor, ra, rb, 0), c, ExactOp::kXor, ra, rb, 0);
                        for (int pa = 0; pa < 2; ++pa) {
                            const auto a = static_cast<std::uint16_t>(pa ? ~ra : ra);
                            for (int pb = 0; pb < 2; ++pb) {
                                const auto b = static_cast<std::uint16_t>(pb ? ~rb : rb);
                                relax(static_cast<std::uint16_t>(a & b), c,
                                      ExactOp::kAnd, a, b, 0);
                                // 3-input gates take one literal operand (the
                                // tractable tree grammar): MAJ(l, a, b) over
                                // both literal polarities, MUX(l, a, b) with
                                // selector polarity covered by the ordered
                                // (ra, rb) iteration.
                                for (const std::uint16_t lit : kLit) {
                                    relax(op_tt(ExactOp::kMaj, lit, a, b), c,
                                          ExactOp::kMaj, lit, a, b);
                                    relax(op_tt(ExactOp::kMaj,
                                                static_cast<std::uint16_t>(~lit), a, b),
                                          c, ExactOp::kMaj,
                                          static_cast<std::uint16_t>(~lit), a, b);
                                    relax(op_tt(ExactOp::kMux, lit, a, b), c,
                                          ExactOp::kMux, lit, a, b);
                                }
                            }
                        }
                    }
                }
            }
        }
        return t;
    }();
    return table;
}

/// Base reference for a cost-0 function: a constant or an input literal
/// (possibly complemented). Returns nullopt for non-base functions.
std::optional<ExactRef> base_ref(std::uint16_t f) {
    if (f == 0x0000) return ExactRef::constant(false);
    if (f == 0xffff) return ExactRef::constant(true);
    for (int i = 0; i < 4; ++i) {
        if (f == kLit[i]) return ExactRef::input(i, false);
        if (f == static_cast<std::uint16_t>(~kLit[i])) return ExactRef::input(i, true);
    }
    return std::nullopt;
}

/// Recursively materialize the program for `f` from the cost table's
/// back-pointers, deduplicating shared sub-functions (the tree-optimal
/// costs reconstruct into a DAG when operands repeat).
ExactRef build_ref(std::uint16_t f, const CostTable& t, ExactStructure& out,
                   std::unordered_map<std::uint16_t, ExactRef>& memo) {
    if (const auto base = base_ref(f)) return *base;
    if (const auto it = memo.find(f); it != memo.end()) return it->second;
    if (const auto it = memo.find(static_cast<std::uint16_t>(~f)); it != memo.end()) {
        return !it->second;
    }
    const Back* bk = &t.back[f];
    bool complement = false;
    if (!bk->valid) {
        bk = &t.back[static_cast<std::uint16_t>(~f)];
        complement = true;
        assert(bk->valid && "one polarity always has a back-pointer");
    }
    ExactGate gate;
    gate.op = bk->op;
    gate.a = build_ref(bk->a, t, out, memo);
    gate.b = build_ref(bk->b, t, out, memo);
    if (bk->op == ExactOp::kMaj || bk->op == ExactOp::kMux) {
        gate.c = build_ref(bk->c, t, out, memo);
    }
    out.gates.push_back(gate);
    const ExactRef ref =
        ExactRef::gate(static_cast<int>(out.gates.size()) - 1, complement);
    memo.emplace(complement ? static_cast<std::uint16_t>(~f) : f,
                 ExactRef{ref.index, false});
    return ref;
}

std::shared_ptr<const ExactStructure> enumerate_structure(std::uint16_t canonical) {
    const CostTable& t = cost_table();
    auto s = std::make_shared<ExactStructure>();
    s->canonical = canonical;
    std::unordered_map<std::uint16_t, ExactRef> memo;
    s->output = build_ref(canonical, t, *s, memo);
    assert(s->eval_tt() == canonical);
    return s;
}

}  // namespace

std::uint16_t ExactStructure::eval_tt() const {
    std::vector<std::uint16_t> value;
    value.reserve(gates.size());
    const auto resolve = [&](const ExactRef& r) -> std::uint16_t {
        std::uint16_t v;
        if (r.is_const()) {
            v = r.complemented ? 0xffff : 0x0000;
            return v;
        }
        v = r.is_input() ? kLit[r.index] : value[static_cast<std::size_t>(r.index - 4)];
        return r.complemented ? static_cast<std::uint16_t>(~v) : v;
    };
    for (const ExactGate& g : gates) {
        value.push_back(op_tt(g.op, resolve(g.a), resolve(g.b), resolve(g.c)));
    }
    return resolve(output);
}

std::uint64_t WideStructure::eval_tt() const {
    const std::uint64_t mask = wide_mask(num_inputs);
    std::vector<std::uint64_t> value;
    value.reserve(gates.size());
    const auto resolve = [&](const WideRef& r) -> std::uint64_t {
        if (r.is_const()) return r.complemented ? mask : 0;
        const std::uint64_t v =
            r.is_input()
                ? (kLitW[r.index] & mask)
                : value[static_cast<std::size_t>(r.index - WideRef::kGateBase)];
        return r.complemented ? (~v & mask) : v;
    };
    for (const WideGate& g : gates) {
        value.push_back(op_tt_w(g.op, resolve(g.a), resolve(g.b), resolve(g.c)) &
                        mask);
    }
    return resolve(output);
}

std::optional<ConeMatch> match_cone(bdd::Manager& mgr, const bdd::Bdd& f,
                                    int max_support) {
    assert(max_support <= 4);
    const std::vector<int> support = mgr.support_vars(f);
    if (static_cast<int>(support.size()) > max_support) return std::nullopt;
    ConeMatch match;
    match.support_size = static_cast<int>(support.size());
    for (int i = 0; i < match.support_size; ++i) {
        match.support[static_cast<std::size_t>(i)] = support[static_cast<std::size_t>(i)];
    }
    std::vector<bool> values(static_cast<std::size_t>(mgr.num_vars()), false);
    for (int m = 0; m < 16; ++m) {
        for (int i = 0; i < match.support_size; ++i) {
            values[static_cast<std::size_t>(support[static_cast<std::size_t>(i)])] =
                ((m >> i) & 1) != 0;
        }
        if (mgr.eval(f, values)) {
            match.tt |= static_cast<std::uint16_t>(1u << m);
        }
    }
    match.canonical = tt::npn_canonical(match.tt, &match.transform);
    return match;
}

net::Signal emit_exact_cone(const ConeMatch& match, const ExactStructure& s,
                            net::GateSink& sink,
                            std::span<const net::Signal> leaves) {
    assert(s.canonical == match.canonical);
    // canonical(y) == f(x) ^ out_neg with y_{perm[v]} = x_v ^ neg_v, so
    // canonical input j binds to the leaf of support position invperm[j].
    std::array<int, 4> invperm{};
    for (int v = 0; v < 4; ++v) {
        invperm[match.transform.permutation[static_cast<std::size_t>(v)]] = v;
    }
    // Inputs resolve lazily: positions beyond the cone's support are never
    // referenced by a minimal structure, and eagerly materializing a
    // constant would emit a gate the replay does not use.
    std::array<net::Signal, 4> input{};
    std::array<bool, 4> input_ready{};
    std::vector<net::Signal> value;
    value.reserve(s.gates.size());
    const auto resolve = [&](const ExactRef& r) -> net::Signal {
        net::Signal v;
        if (r.is_const()) {
            v = sink.constant(r.complemented);
            return v;
        }
        if (r.is_input()) {
            if (!input_ready[r.index]) {
                const int pos = invperm[r.index];
                const bool negated =
                    ((match.transform.input_negation >> pos) & 1) != 0;
                net::Signal leaf;
                if (pos < match.support_size) {
                    const int var = match.support[static_cast<std::size_t>(pos)];
                    leaf = leaves[static_cast<std::size_t>(var)];
                } else {
                    leaf = sink.constant(false);  // padding var; unreachable
                }
                input[r.index] = negated ? !leaf : leaf;
                input_ready[r.index] = true;
            }
            v = input[r.index];
        } else {
            v = value[static_cast<std::size_t>(r.index - 4)];
        }
        return r.complemented ? !v : v;
    };
    for (const ExactGate& g : s.gates) {
        net::Signal out;
        switch (g.op) {
            case ExactOp::kAnd:
                out = sink.build_and(resolve(g.a), resolve(g.b));
                break;
            case ExactOp::kOr:  // wide programs only; kept total for safety
                out = sink.build_or(resolve(g.a), resolve(g.b));
                break;
            case ExactOp::kXor:
                out = sink.build_xor(resolve(g.a), resolve(g.b));
                break;
            case ExactOp::kMaj:
                out = sink.build_maj(resolve(g.a), resolve(g.b), resolve(g.c));
                break;
            case ExactOp::kMux:
                out = sink.build_mux(resolve(g.a), resolve(g.b), resolve(g.c));
                break;
        }
        value.push_back(out);
    }
    const net::Signal canonical_out = resolve(s.output);
    return match.transform.output_negation ? !canonical_out : canonical_out;
}

ExactSynthesisCache& ExactSynthesisCache::instance() {
    static ExactSynthesisCache cache;
    return cache;
}

std::shared_ptr<const ExactStructure> ExactSynthesisCache::lookup(
    std::uint16_t canonical, bool* was_hit) {
    Shard& shard = shards_[canonical % kShards];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(canonical);
        if (it != shard.map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (was_hit != nullptr) *was_hit = true;
            return it->second;
        }
    }
    // Enumerate outside the shard lock (the cost table has its own
    // once-initialization); a racing thread may materialize the same class
    // concurrently — both arrive at the identical program, first insert
    // wins and the duplicate is dropped.
    std::shared_ptr<const ExactStructure> built = enumerate_structure(canonical);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.map.emplace(canonical, std::move(built));
    if (inserted) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        if (was_hit != nullptr) *was_hit = false;
    } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (was_hit != nullptr) *was_hit = true;
    }
    return it->second;
}

bool ExactSynthesisCache::wide_slot(int num_inputs, std::size_t* slot) {
    if (num_inputs < 5 || num_inputs > 6) return false;
    *slot = static_cast<std::size_t>(num_inputs - 5);
    return true;
}

std::shared_ptr<const WideStructure> ExactSynthesisCache::lookup_wide(
    int num_inputs, std::uint64_t canonical) {
    std::size_t slot;
    if (!wide_slot(num_inputs, &slot)) return nullptr;
    std::lock_guard<std::mutex> lock(wide_.mutex);
    const auto it = wide_.map[slot].find(canonical);
    if (it != wide_.map[slot].end()) {
        wide_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    wide_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

std::shared_ptr<const WideStructure> ExactSynthesisCache::insert_wide(
    std::shared_ptr<const WideStructure> s) {
    std::size_t slot;
    if (s == nullptr || !wide_slot(s->num_inputs, &slot)) return nullptr;
    std::lock_guard<std::mutex> lock(wide_.mutex);
    const auto [it, inserted] = wide_.map[slot].emplace(s->canonical, std::move(s));
    if (inserted) wide_.failures[slot].erase(it->first);
    return it->second;
}

bool ExactSynthesisCache::wide_failure_covers(int num_inputs,
                                              std::uint64_t canonical,
                                              long long budget, int max_steps) {
    std::size_t slot;
    if (!wide_slot(num_inputs, &slot)) return false;
    std::lock_guard<std::mutex> lock(wide_.mutex);
    const auto it = wide_.failures[slot].find(canonical);
    if (it == wide_.failures[slot].end()) return false;
    return it->second.budget >= budget && it->second.max_steps >= max_steps;
}

void ExactSynthesisCache::record_wide_failure(int num_inputs,
                                              std::uint64_t canonical,
                                              long long budget, int max_steps) {
    std::size_t slot;
    if (!wide_slot(num_inputs, &slot)) return;
    std::lock_guard<std::mutex> lock(wide_.mutex);
    // Never shadow a success: a program may have been published between
    // this worker's failed attempt and the record call.
    if (wide_.map[slot].contains(canonical)) return;
    WideFailure& f = wide_.failures[slot][canonical];
    f.budget = f.budget > budget ? f.budget : budget;
    f.max_steps = f.max_steps > max_steps ? f.max_steps : max_steps;
}

namespace {

// On-disk exact-cache layout (little-endian as stored; the file is a
// warm-start hint, not an interchange format):
//   "BMXC" magic, u32 version, u32 narrow class count, then per class:
//   u16 canonical, u16 gate count, gates as (op, a, b, c) with each
//   ExactRef as (index, complemented) byte pairs, and the output ref.
// Version 2 appends the SAT-synthesized wide section after the narrow
// entries: u32 wide count, then per class u8 num_inputs, u64 canonical,
// u16 gate count, gates/output in the same (op, refs) shape. Version 1
// files (narrow only) still load.
constexpr char kExactCacheMagic[4] = {'B', 'M', 'X', 'C'};
constexpr std::uint32_t kExactCacheVersion = 2;

void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
    put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
    put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_ref(std::string& out, const ExactRef& r) {
    out.push_back(static_cast<char>(r.index));
    out.push_back(static_cast<char>(r.complemented ? 1 : 0));
}

void put_wref(std::string& out, const WideRef& r) {
    out.push_back(static_cast<char>(r.index));
    out.push_back(static_cast<char>(r.complemented ? 1 : 0));
}

struct ByteReader {
    const std::string& data;
    std::size_t at = 0;
    bool ok = true;

    std::uint8_t u8() {
        if (at >= data.size()) { ok = false; return 0; }
        return static_cast<std::uint8_t>(data[at++]);
    }
    std::uint16_t u16() {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
    }
    std::uint32_t u32() {
        const std::uint32_t lo = u16();
        return lo | (static_cast<std::uint32_t>(u16()) << 16);
    }
    ExactRef ref() {
        ExactRef r;
        r.index = u8();
        r.complemented = u8() != 0;
        return r;
    }
    std::uint64_t u64() {
        const std::uint64_t lo = u32();
        return lo | (static_cast<std::uint64_t>(u32()) << 32);
    }
    WideRef wref() {
        WideRef r;
        r.index = u8();
        r.complemented = u8() != 0;
        return r;
    }
};

/// Structural validity of a loaded ref at gate position `gate_pos`
/// (references may only reach inputs, earlier gates, or a constant).
bool ref_valid(const ExactRef& r, std::size_t gate_pos) {
    if (r.is_const()) return true;
    return r.index < 4 + gate_pos;
}

bool wref_valid(const WideRef& r, int num_inputs, std::size_t gate_pos) {
    if (r.is_const()) return true;
    if (r.is_input()) return r.index < num_inputs;
    return r.index < WideRef::kGateBase + gate_pos;
}

}  // namespace

int ExactSynthesisCache::save_to_file(const std::string& path) const {
    std::vector<std::shared_ptr<const ExactStructure>> entries;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const auto& [canonical, structure] : shard.map) entries.push_back(structure);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a->canonical < b->canonical; });
    std::vector<std::shared_ptr<const WideStructure>> wide_entries;
    {
        std::lock_guard<std::mutex> lock(wide_.mutex);
        for (const auto& per_n : wide_.map) {
            for (const auto& [canonical, structure] : per_n) {
                wide_entries.push_back(structure);
            }
        }
    }
    std::sort(wide_entries.begin(), wide_entries.end(),
              [](const auto& a, const auto& b) {
                  return std::make_pair(a->num_inputs, a->canonical) <
                         std::make_pair(b->num_inputs, b->canonical);
              });

    std::string payload;
    payload.append(kExactCacheMagic, sizeof(kExactCacheMagic));
    put_u32(payload, kExactCacheVersion);
    put_u32(payload, static_cast<std::uint32_t>(entries.size()));
    for (const auto& s : entries) {
        put_u16(payload, s->canonical);
        put_u16(payload, static_cast<std::uint16_t>(s->gates.size()));
        for (const ExactGate& g : s->gates) {
            payload.push_back(static_cast<char>(g.op));
            put_ref(payload, g.a);
            put_ref(payload, g.b);
            put_ref(payload, g.c);
        }
        put_ref(payload, s->output);
    }
    put_u32(payload, static_cast<std::uint32_t>(wide_entries.size()));
    for (const auto& s : wide_entries) {
        payload.push_back(static_cast<char>(s->num_inputs));
        put_u64(payload, s->canonical);
        put_u16(payload, static_cast<std::uint16_t>(s->gates.size()));
        for (const WideGate& g : s->gates) {
            payload.push_back(static_cast<char>(g.op));
            put_wref(payload, g.a);
            put_wref(payload, g.b);
            put_wref(payload, g.c);
        }
        put_wref(payload, s->output);
    }

    // Write-then-rename: readers either see the complete old file or the
    // complete new one, never a torn save.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) return -1;
        out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        if (!out) {
            std::remove(tmp.c_str());
            return -1;
        }
    }
    // Chaos site: a crash "between write and rename" — the throw leaves the
    // complete tmp file behind and the destination untouched, which is
    // exactly the torn-save window the loader must shrug off.
    runtime::fault_point(runtime::FaultSite::kExactCacheIo);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return -1;
    }
    return static_cast<int>(entries.size() + wide_entries.size());
}

int ExactSynthesisCache::load_from_file(const std::string& path) {
    // Chaos site: an IO fault at load time must cost the warm start only.
    runtime::fault_point(runtime::FaultSite::kExactCacheIo);
    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) return 0;
        data.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    ByteReader rd{data};
    char magic[4];
    for (char& c : magic) c = static_cast<char>(rd.u8());
    if (!rd.ok || std::memcmp(magic, kExactCacheMagic, sizeof(magic)) != 0) return 0;
    const std::uint32_t version = rd.u32();
    if (version != 1 && version != kExactCacheVersion) return 0;
    const std::uint32_t count = rd.u32();
    if (!rd.ok) return 0;

    int inserted = 0;
    for (std::uint32_t i = 0; i < count && rd.ok; ++i) {
        auto s = std::make_shared<ExactStructure>();
        s->canonical = rd.u16();
        const std::uint16_t gate_count = rd.u16();
        bool valid = rd.ok;
        s->gates.reserve(gate_count);
        for (std::uint16_t g = 0; g < gate_count; ++g) {
            ExactGate gate;
            const std::uint8_t op = rd.u8();
            gate.op = static_cast<ExactOp>(op);
            gate.a = rd.ref();
            gate.b = rd.ref();
            gate.c = rd.ref();
            valid = valid && rd.ok && op <= static_cast<std::uint8_t>(ExactOp::kMux) &&
                    ref_valid(gate.a, g) && ref_valid(gate.b, g) && ref_valid(gate.c, g);
            s->gates.push_back(gate);
        }
        s->output = rd.ref();
        valid = valid && rd.ok && ref_valid(s->output, s->gates.size());
        // The semantic check: a structure is only trusted if it actually
        // computes the class it claims. This is what makes a corrupted
        // (but well-framed) file unable to poison synthesis results.
        if (!valid || s->eval_tt() != s->canonical) continue;

        Shard& shard = shards_[s->canonical % kShards];
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.map.emplace(s->canonical, std::move(s)).second) ++inserted;
    }
    if (version < 2) return inserted;

    const std::uint32_t wide_count = rd.u32();
    if (!rd.ok) return inserted;
    for (std::uint32_t i = 0; i < wide_count && rd.ok; ++i) {
        auto s = std::make_shared<WideStructure>();
        s->num_inputs = rd.u8();
        s->canonical = rd.u64();
        const std::uint16_t gate_count = rd.u16();
        bool valid = rd.ok && s->num_inputs >= 5 && s->num_inputs <= 6 &&
                     (s->canonical & ~wide_mask(s->num_inputs)) == 0;
        s->gates.reserve(gate_count);
        for (std::uint16_t g = 0; g < gate_count; ++g) {
            WideGate gate;
            const std::uint8_t op = rd.u8();
            gate.op = static_cast<ExactOp>(op);
            gate.a = rd.wref();
            gate.b = rd.wref();
            gate.c = rd.wref();
            valid = valid && rd.ok && op <= static_cast<std::uint8_t>(ExactOp::kOr) &&
                    wref_valid(gate.a, s->num_inputs, g) &&
                    wref_valid(gate.b, s->num_inputs, g) &&
                    wref_valid(gate.c, s->num_inputs, g);
            s->gates.push_back(gate);
        }
        s->output = rd.wref();
        valid = valid && rd.ok && wref_valid(s->output, s->num_inputs, s->gates.size());
        // Same re-validation contract as narrow entries: only programs
        // that really compute their claimed class are trusted.
        if (!valid || s->eval_tt() != s->canonical) continue;

        std::size_t slot;
        if (!wide_slot(s->num_inputs, &slot)) continue;
        std::lock_guard<std::mutex> lock(wide_.mutex);
        if (wide_.map[slot].emplace(s->canonical, std::move(s)).second) ++inserted;
    }
    return inserted;
}

ExactCacheStats ExactSynthesisCache::stats() const {
    ExactCacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.wide_hits = wide_hits_.load(std::memory_order_relaxed);
    out.wide_misses = wide_misses_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.classes_cached += static_cast<int>(shard.map.size());
    }
    {
        std::lock_guard<std::mutex> lock(wide_.mutex);
        for (const auto& per_n : wide_.map) {
            out.wide_classes_cached += static_cast<int>(per_n.size());
        }
        for (const auto& per_n : wide_.failures) {
            out.wide_failures_recorded += static_cast<int>(per_n.size());
        }
    }
    return out;
}

int exact_gate_cost(std::uint16_t tt) {
    return cost_table().cost[tt];
}

}  // namespace bdsmaj::decomp
