#include "decomp/flow.hpp"

#include <cassert>
#include <chrono>
#include <unordered_map>

#include "network/cleanup.hpp"
#include "network/simulate.hpp"

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;
using net::Network;
using net::NodeId;
using net::Signal;

/// Build the local BDD of a supernode: leaves become manager variables in
/// order, cone nodes evaluate bottom-up.
Bdd build_supernode_bdd(bdd::Manager& mgr, const Network& network,
                        const Supernode& sn) {
    std::unordered_map<NodeId, Bdd> value;
    for (std::size_t i = 0; i < sn.leaves.size(); ++i) {
        value.emplace(sn.leaves[i], mgr.var_bdd(static_cast<int>(i)));
    }
    for (const NodeId id : sn.cone) {
        const net::Node& n = network.node(id);
        const auto in = [&](std::size_t k) -> const Bdd& {
            return value.at(n.fanins[k]);
        };
        Bdd result;
        switch (n.kind) {
            case net::GateKind::kInput:
                assert(false && "inputs cannot be cone-internal");
                result = mgr.zero();
                break;
            case net::GateKind::kConst0: result = mgr.zero(); break;
            case net::GateKind::kConst1: result = mgr.one(); break;
            case net::GateKind::kBuf: result = in(0); break;
            case net::GateKind::kNot: result = !in(0); break;
            case net::GateKind::kAnd: result = mgr.apply_and(in(0), in(1)); break;
            case net::GateKind::kOr: result = mgr.apply_or(in(0), in(1)); break;
            case net::GateKind::kNand: result = !mgr.apply_and(in(0), in(1)); break;
            case net::GateKind::kNor: result = !mgr.apply_or(in(0), in(1)); break;
            case net::GateKind::kXor: result = mgr.apply_xor(in(0), in(1)); break;
            case net::GateKind::kXnor: result = mgr.apply_xnor(in(0), in(1)); break;
            case net::GateKind::kMaj: result = mgr.maj(in(0), in(1), in(2)); break;
            case net::GateKind::kMux: result = mgr.ite(in(0), in(1), in(2)); break;
            case net::GateKind::kSop:
                result = net::sop_to_bdd(mgr, n.sop, in);
                break;
        }
        value.insert_or_assign(id, std::move(result));
    }
    return value.at(sn.root);
}

}  // namespace

DecompFlowResult decompose_network(const Network& input, const DecompFlowParams& params) {
    const auto start = std::chrono::steady_clock::now();

    const std::vector<Supernode> supernodes =
        partition_network(input, params.partition);

    Network out(input.model_name());
    net::HashedNetworkBuilder builder(out);
    std::vector<Signal> signal_of(input.node_count(), Signal{});

    for (const NodeId id : input.inputs()) {
        signal_of[id] = Signal{out.add_input(input.node(id).name), false};
    }

    DecompFlowResult result;
    for (const Supernode& sn : supernodes) {
        // Fresh local manager per supernode: the BDS local-BDD policy.
        bdd::Manager mgr(static_cast<int>(sn.leaves.size()));
        const Bdd f = build_supernode_bdd(mgr, input, sn);
        if (params.reorder) mgr.sift();

        std::vector<Signal> leaves;
        leaves.reserve(sn.leaves.size());
        // Variable i of the local manager is leaf i; sifting changes levels
        // but never variable identities, so this binding survives reorder.
        for (const NodeId leaf : sn.leaves) leaves.push_back(signal_of[leaf]);

        BddDecomposer decomposer(mgr, builder, std::move(leaves), params.engine);
        signal_of[sn.root] = decomposer.decompose(f);
        result.engine_stats += decomposer.stats();
    }

    for (const net::OutputPort& po : input.outputs()) {
        out.add_output(po.name, builder.realize(signal_of[po.driver]));
    }

    result.supernode_count = static_cast<int>(supernodes.size());
    result.network = params.final_cleanup ? net::cleanup(out) : std::move(out);
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

DecompFlowResult run_bdsmaj(const Network& input) {
    DecompFlowParams params;
    params.engine.use_majority = true;
    return decompose_network(input, params);
}

DecompFlowResult run_bdspga(const Network& input) {
    DecompFlowParams params;
    params.engine.use_majority = false;
    return decompose_network(input, params);
}

}  // namespace bdsmaj::decomp
