#include "decomp/flow.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bdd/manager_pool.hpp"
#include "decomp/cone_cache.hpp"
#include "network/builder.hpp"
#include "network/cleanup.hpp"
#include "network/gate_tape.hpp"
#include "network/simulate.hpp"
#include "runtime/scheduler.hpp"

namespace bdsmaj::decomp {

namespace {

using bdd::Bdd;
using net::Network;
using net::NodeId;
using net::Signal;

/// Per-worker scratch for dense cone evaluation: node id -> (dense
/// position + 1) within the current supernode, 0 = not in this supernode.
/// Entries are reset after each supernode, so the O(network) allocation
/// happens once per worker, not once per supernode.
struct ConeScratch {
    std::vector<std::uint32_t> pos;
};

/// Build the local BDD of a supernode: leaves become manager variables in
/// order, cone nodes evaluate bottom-up into a dense vector indexed by
/// cone position (this is a per-supernode hot loop; a hash map here cost
/// a lookup per gate input).
Bdd build_supernode_bdd(bdd::Manager& mgr, const Network& network,
                        const Supernode& sn, ConeScratch& scratch) {
    if (scratch.pos.size() < network.node_count()) {
        scratch.pos.resize(network.node_count(), 0);
    }
    const std::size_t num_leaves = sn.leaves.size();
    std::vector<Bdd> value(num_leaves + sn.cone.size());
    // Reset on every exit, including the malformed-supernode throw below:
    // the scratch is reused for later supernodes on this worker, and a
    // stale nonzero entry would alias an unrelated node into their cones.
    // Entries not yet stamped are 0, so the unconditional sweep is safe.
    struct ScratchReset {
        ConeScratch& scratch;
        const Supernode& sn;
        ~ScratchReset() {
            for (const NodeId leaf : sn.leaves) scratch.pos[leaf] = 0;
            for (const NodeId id : sn.cone) scratch.pos[id] = 0;
        }
    } reset_guard{scratch, sn};
    // Position 0 is the "not in this supernode" sentinel; a malformed
    // supernode (cone fanin outside leaves + earlier cone) must stay a
    // clean error in Release builds too, not an out-of-bounds read.
    const auto at = [&](NodeId fanin) -> const Bdd& {
        const std::uint32_t p = scratch.pos[fanin];
        if (p == 0) {
            throw std::logic_error("supernode cone references node " +
                                   std::to_string(fanin) +
                                   " outside its leaves/cone");
        }
        return value[p - 1];
    };
    for (std::size_t i = 0; i < num_leaves; ++i) {
        assert(scratch.pos[sn.leaves[i]] == 0);
        scratch.pos[sn.leaves[i]] = static_cast<std::uint32_t>(i + 1);
        value[i] = mgr.var_bdd(static_cast<int>(i));
    }
    for (std::size_t j = 0; j < sn.cone.size(); ++j) {
        const NodeId id = sn.cone[j];
        const net::Node& n = network.node(id);
        const auto in = [&](std::size_t k) -> const Bdd& { return at(n.fanins[k]); };
        Bdd result;
        switch (n.kind) {
            case net::GateKind::kInput:
                assert(false && "inputs cannot be cone-internal");
                result = mgr.zero();
                break;
            case net::GateKind::kConst0: result = mgr.zero(); break;
            case net::GateKind::kConst1: result = mgr.one(); break;
            case net::GateKind::kBuf: result = in(0); break;
            case net::GateKind::kNot: result = !in(0); break;
            case net::GateKind::kAnd: result = mgr.apply_and(in(0), in(1)); break;
            case net::GateKind::kOr: result = mgr.apply_or(in(0), in(1)); break;
            case net::GateKind::kNand: result = !mgr.apply_and(in(0), in(1)); break;
            case net::GateKind::kNor: result = !mgr.apply_or(in(0), in(1)); break;
            case net::GateKind::kXor: result = mgr.apply_xor(in(0), in(1)); break;
            case net::GateKind::kXnor: result = mgr.apply_xnor(in(0), in(1)); break;
            case net::GateKind::kMaj: result = mgr.maj(in(0), in(1), in(2)); break;
            case net::GateKind::kMux: result = mgr.ite(in(0), in(1), in(2)); break;
            case net::GateKind::kSop:
                result = net::sop_to_bdd(mgr, n.sop, in);
                break;
        }
        assert(scratch.pos[id] == 0);
        scratch.pos[id] = static_cast<std::uint32_t>(num_leaves + j + 1);
        value[num_leaves + j] = std::move(result);
    }
    return at(sn.root);
}

/// Stage 1 of the pipeline, for one supernode: pooled local manager (the
/// BDS local-BDD policy; Manager::reset makes the lease equivalent to a
/// fresh construction while reusing the previous cone's heap blocks),
/// sift, decompose into the supernode's private tape. Runs with no shared
/// mutable state, so any number of these can execute concurrently.
void decompose_supernode_to_tape(const Network& input, const Supernode& sn,
                                 const DecompFlowParams& params,
                                 ConeScratch& scratch, net::GateTape& tape,
                                 EngineStats& stats) {
    bdd::ManagerPool::Lease lease = bdd::ManagerPool::instance().acquire(
        static_cast<int>(sn.leaves.size()), params.manager);
    bdd::Manager& mgr = *lease;
    {
        const Bdd f = build_supernode_bdd(mgr, input, sn, scratch);
        if (params.reorder) mgr.sift();

        std::vector<Signal> leaves;
        leaves.reserve(sn.leaves.size());
        // Variable i of the local manager is leaf i; sifting changes levels
        // but never variable identities, so this binding survives reorder.
        for (std::size_t i = 0; i < sn.leaves.size(); ++i) leaves.push_back(tape.leaf(i));

        BddDecomposer decomposer(mgr, tape, std::move(leaves), params.engine);
        tape.set_root(decomposer.decompose(f));
        stats = decomposer.stats();
        const bdd::ReorderStats& rs = mgr.reorder_stats();
        stats.sift_swaps = static_cast<long long>(rs.swaps);
        stats.sift_fast_swaps = static_cast<long long>(rs.fast_swaps);
        stats.sift_lb_aborts = static_cast<long long>(rs.lb_aborts);
        stats.peak_bdd_nodes = static_cast<long long>(mgr.peak_node_count());
        stats.sift_sym_groups = static_cast<long long>(rs.sym_groups);
        stats.sift_block_swaps = static_cast<long long>(rs.sym_block_swaps);
    }  // every Bdd handle dies here, before the lease returns to the pool
}

/// Per-worker state for the per-supernode stage.
struct WorkerState {
    ConeScratch scratch;
    ConeKeyBuilder keys;
};

/// One rung of the degrade ladder: a full parameter set plus its own
/// cone-cache config blob (tapes depend on every knob, so a degraded cone
/// must never share cache entries with a full-effort one).
struct DegradeStage {
    DecompFlowParams params;
    std::string config;
};

/// Derive a cheaper stage from the requested parameters: the stage's
/// preset, exact tiers disabled, sift effort clamped. The terminal stage
/// additionally turns reordering and the resource guards off, so plain
/// Shannon expansion — linear in the cone's BDD — always terminates.
DecompFlowParams degraded_stage_params(const DecompFlowParams& base,
                                       const std::string& preset, bool terminal) {
    DecompFlowParams p = base;
    p.engine.preset = preset;
    p.engine.exact_sat_budget = 0;
    p.engine.exact_max_support = std::min(p.engine.exact_max_support, 4);
    p.manager.sift_converge = false;
    p.manager.sift_max_growth = std::min(p.manager.sift_max_growth, 1.1);
    p.manager.sift_symmetry = false;
    if (terminal) {
        p.reorder = false;
        p.manager.max_live_nodes = 0;
        p.manager.sift_max_swaps = 0;
    }
    return p;
}

/// Decompose one supernode into a finished (shared, immutable) tape —
/// through the cone cache when enabled. On a hit the cached tape and the
/// cached cold-run stats are returned (with cone_cache_hits = 1); on a
/// miss the freshly recorded tape is published for future lookups. Either
/// way the tape bytes are those a cache-off run would have produced.
[[nodiscard]] std::shared_ptr<const net::GateTape> produce_tape(
        const Network& input, const Supernode& sn, const DecompFlowParams& params,
        const std::string& config, WorkerState& ws, EngineStats& stats) {
    if (!params.cone_cache) {
        auto tape = std::make_shared<net::GateTape>(sn.leaves.size());
        decompose_supernode_to_tape(input, sn, params, ws.scratch, *tape, stats);
        return tape;
    }
    const ConeKey key = ws.keys.build(input, sn, config);
    if (std::shared_ptr<const ConeCacheValue> hit = ConeCache::instance().lookup(key)) {
        stats = hit->stats;
        stats.cone_cache_hits = 1;
        return hit->tape;
    }
    auto tape = std::make_shared<net::GateTape>(sn.leaves.size());
    decompose_supernode_to_tape(input, sn, params, ws.scratch, *tape, stats);
    tape->shrink_to_fit();
    ConeCache::instance().insert(key, tape, stats);
    stats.cone_cache_misses = 1;
    return tape;
}

}  // namespace

DecompFlowResult decompose_network(const Network& input, const DecompFlowParams& orig_params) {
    const auto start = std::chrono::steady_clock::now();

    // Resolve the symmetry-sifting tri-state into the manager knob every
    // supernode worker sees, BEFORE the cone-cache config blob is built —
    // the blob must capture the resolved value, not the tri-state.
    DecompFlowParams params = orig_params;
    params.manager.sift_symmetry =
        params.sift_symmetry < 0
            ? preset_sift_symmetry_default(params.engine.preset)
            : params.sift_symmetry != 0;

    const std::vector<Supernode> supernodes =
        partition_network(input, params.partition);
    const int jobs = runtime::effective_jobs(params.jobs);
    const int workers = runtime::parallel_for_worker_count(supernodes.size(), jobs);

    Network out(input.model_name());
    net::HashedNetworkBuilder builder(out);
    std::vector<Signal> signal_of(input.node_count(), Signal{});
    for (const NodeId id : input.inputs()) {
        signal_of[id] = Signal{out.add_input(input.node(id).name), false};
    }

    DecompFlowResult result;
    std::vector<Signal> leaf_signals;
    const auto replay_tape = [&](const Supernode& sn, const net::GateTape& tape) {
        leaf_signals.clear();
        leaf_signals.reserve(sn.leaves.size());
        for (const NodeId leaf : sn.leaves) leaf_signals.push_back(signal_of[leaf]);
        signal_of[sn.root] = tape.replay(builder, leaf_signals);
    };

    // Both branches drive the builder with the identical call sequence —
    // tape i replayed after tapes [0, i) — so the output network is
    // byte-identical at any worker count.
    const auto cancelled = [&params] {
        return params.cancel != nullptr &&
               params.cancel->load(std::memory_order_relaxed);
    };
    // Per-supernode checkpoint: cancellation, then the hard deadline. With
    // no deadline configured this costs one branch — no clock read.
    const auto checkpoint = [&] {
        if (cancelled()) throw FlowCancelled();
        if (params.deadline &&
            std::chrono::steady_clock::now() >= *params.deadline) {
            throw DeadlineExceeded();
        }
    };

    // One config blob per flow: the canonical-key prefix capturing every
    // knob the emitted tapes depend on.
    const std::string cone_config =
        params.cone_cache
            ? cone_cache_config_blob(params.engine, params.manager, params.reorder)
            : std::string{};
    const long long cone_evictions_before =
        params.cone_cache ? ConeCache::instance().stats().evictions : 0;

    // Graceful degradation: stages are built only when something can
    // trigger them (a soft budget or a resource guard), so the default
    // configuration never touches any of this. degrade_floor is the
    // flow-wide stage every new cone starts at — 0 = full effort; it
    // ratchets to 1 when the soft budget expires. A cone whose stage trips
    // a ResourceExhausted escalates privately past the floor.
    const bool degradable = params.soft_budget.has_value() ||
                            params.manager.max_live_nodes != 0 ||
                            params.manager.sift_max_swaps != 0;
    std::vector<DegradeStage> stages;
    if (degradable) {
        std::vector<std::string> ladder = params.degrade_ladder;
        if (ladder.empty()) ladder.push_back("paper");
        if (ladder.back() != "shannon") ladder.push_back("shannon");
        stages.reserve(ladder.size());
        for (std::size_t s = 0; s < ladder.size(); ++s) {
            DegradeStage stage;
            stage.params = degraded_stage_params(params, ladder[s],
                                                 /*terminal=*/s + 1 == ladder.size());
            // Validates the preset name too (throws on an unknown one
            // before any supernode runs).
            preset_pipeline(ladder[s]);
            stage.config = stage.params.cone_cache
                               ? cone_cache_config_blob(stage.params.engine,
                                                        stage.params.manager,
                                                        stage.params.reorder)
                               : std::string{};
            stages.push_back(std::move(stage));
        }
    }
    std::atomic<int> degrade_floor{0};
    const auto degrade_level = [&]() -> int {
        if (!degradable) return 0;
        int level = degrade_floor.load(std::memory_order_relaxed);
        if (level == 0 && params.soft_budget &&
            std::chrono::steady_clock::now() >= *params.soft_budget) {
            degrade_floor.store(1, std::memory_order_relaxed);
            level = 1;
        }
        return level;
    };
    // produce_tape plus the ladder: start at the flow-wide floor, escalate
    // on ResourceExhausted. InjectedFault and everything else propagate —
    // the ladder absorbs resource-guard trips only.
    const auto produce_staged = [&](const Supernode& sn, WorkerState& ws,
                                    EngineStats& stats)
            -> std::shared_ptr<const net::GateTape> {
        int level = degrade_level();
        long long guard_trips = 0;
        for (;;) {
            const DecompFlowParams& sp =
                level == 0 ? params : stages[static_cast<std::size_t>(level - 1)].params;
            const std::string& cfg =
                level == 0 ? cone_config
                           : stages[static_cast<std::size_t>(level - 1)].config;
            try {
                std::shared_ptr<const net::GateTape> tape =
                    produce_tape(input, sn, sp, cfg, ws, stats);
                // After produce_tape: it overwrites `stats` wholesale (and
                // cached entries must stay degrade-agnostic).
                if (level > 0) ++stats.degraded_supernodes;
                stats.resource_exhausted_cones += guard_trips;
                return tape;
            } catch (const ResourceExhausted&) {
                if (level >= static_cast<int>(stages.size())) throw;
                ++level;
                ++guard_trips;
            }
        }
    };

    if (workers <= 1) {
        // Serial: decompose and replay one supernode at a time, so only
        // one tape is ever live (the batch path below would hold the gate
        // IR of the whole network at once for no parallelism in return).
        WorkerState ws;
        for (const Supernode& sn : supernodes) {
            checkpoint();
            EngineStats stats;
            const std::shared_ptr<const net::GateTape> tape =
                produce_staged(sn, ws, stats);
            replay_tape(sn, *tape);
            result.engine_stats += stats;
        }
    } else {
        // Pipelined: stage 1 (per-supernode {local BDD, sift, decompose}
        // into private tapes) fans out over the shared process pool while
        // THIS thread replays finished tapes strictly in supernode order
        // into the shared hash-consing builder — replay of tape i overlaps
        // the decomposition of i+1. The fixed replay order is what keeps
        // the output byte-identical at any worker count; the window caps
        // how many decomposed-but-unreplayed tapes are held at once, so
        // memory stays bounded instead of holding the gate IR of the
        // whole network.
        const std::size_t n = supernodes.size();
        std::vector<std::shared_ptr<const net::GateTape>> tapes(n);
        std::vector<EngineStats> stats_of(n);
        std::vector<WorkerState> worker_state(static_cast<std::size_t>(workers));
        const std::size_t window =
            params.replay_window > 0
                ? static_cast<std::size_t>(params.replay_window)
                : 2 * static_cast<std::size_t>(workers) + 2;

        std::mutex m;
        std::condition_variable ready_cv;  // replayer waits for tape `replayed`
        std::condition_variable space_cv;  // runners wait for window space
        std::size_t next = 0;              // next supernode to decompose
        std::size_t replayed = 0;          // tapes already merged
        std::vector<std::uint8_t> ready(n, 0);
        std::exception_ptr err;

        const auto decompose_one = [&](std::size_t i, int slot) {
            try {
                // Per-supernode cancellation/deadline checkpoint: stop
                // before starting another cone; the shared error slot
                // aborts the rest of the pipeline exactly like a failure
                // would.
                checkpoint();
                tapes[i] = produce_staged(supernodes[i],
                                          worker_state[static_cast<std::size_t>(slot)],
                                          stats_of[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(m);
                if (!err) err = std::current_exception();
                space_cv.notify_all();
            }
            std::lock_guard<std::mutex> lock(m);
            ready[i] = 1;
            ready_cv.notify_all();
        };

        const std::function<void(int)> runner = [&](int slot) {
            for (;;) {
                std::size_t i;
                {
                    std::unique_lock<std::mutex> lock(m);
                    // Strict <: next - replayed counts in-flight tapes
                    // too, so this is what holds the outstanding gate IR
                    // to at most `window` supernodes.
                    space_cv.wait(lock, [&] {
                        return err != nullptr || next >= n ||
                               next - replayed < window;
                    });
                    if (err != nullptr || next >= n) break;
                    i = next++;
                }
                decompose_one(i, slot);
            }
        };

        runtime::HelperSet helpers(workers - 1, runner);
        // The caller is the replayer — and runner slot 0: when the next
        // tape in order is not ready yet it decomposes a supernode itself
        // instead of idling, so progress never depends on the pool having
        // free workers (decompose_network stays safe to call from inside
        // a pool task).
        {
            std::unique_lock<std::mutex> lock(m);
            while (replayed < n && err == nullptr) {
                if (cancelled()) {
                    err = std::make_exception_ptr(FlowCancelled());
                    space_cv.notify_all();
                    break;
                }
                if (params.deadline &&
                    std::chrono::steady_clock::now() >= *params.deadline) {
                    err = std::make_exception_ptr(DeadlineExceeded());
                    space_cv.notify_all();
                    break;
                }
                if (ready[replayed]) {
                    const std::size_t i = replayed;
                    lock.unlock();
                    try {
                        replay_tape(supernodes[i], *tapes[i]);
                        tapes[i].reset();  // drop this flow's tape reference now
                    } catch (...) {
                        lock.lock();
                        if (!err) err = std::current_exception();
                        space_cv.notify_all();
                        break;
                    }
                    result.engine_stats += stats_of[i];
                    lock.lock();
                    ++replayed;
                    space_cv.notify_all();
                } else if (next < n && next - replayed < window) {
                    const std::size_t i = next++;
                    lock.unlock();
                    decompose_one(i, 0);
                    lock.lock();
                } else {
                    ready_cv.wait(lock, [&] {
                        return ready[replayed] != 0 || err != nullptr;
                    });
                }
            }
        }
        helpers.join();
        if (err) std::rethrow_exception(err);
    }

    if (params.cone_cache) {
        // Flow-level cache telemetry: evictions attributable to this run
        // (approximate under concurrent flows) and the footprint snapshot.
        // Hit/miss counts were accumulated per supernode above.
        const ConeCacheStats cs = ConeCache::instance().stats();
        result.engine_stats.cone_cache_evictions = cs.evictions - cone_evictions_before;
        result.engine_stats.cone_cache_bytes = cs.bytes;
    }

    for (const net::OutputPort& po : input.outputs()) {
        out.add_output(po.name, builder.realize(signal_of[po.driver]));
    }

    result.supernode_count = static_cast<int>(supernodes.size());
    result.network = params.final_cleanup ? net::cleanup(out) : std::move(out);
    if (params.self_check) {
        net::CecParams cec;
        cec.engine = params.oracle;
        net::EquivalenceResult eq = net::check_equivalent(input, result.network, cec);
        if (!eq.equivalent) {
            throw std::runtime_error("decompose_network: self-check failed (engine " +
                                     std::string(net::equiv_engine_name(eq.engine)) +
                                     "): " + eq.reason);
        }
        result.equivalence = std::move(eq);
    }
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

DecompFlowResult run_bdsmaj(const Network& input) {
    DecompFlowParams params;
    params.engine.use_majority = true;
    return decompose_network(input, params);
}

DecompFlowResult run_bdspga(const Network& input) {
    DecompFlowParams params;
    params.engine.use_majority = false;
    return decompose_network(input, params);
}

}  // namespace bdsmaj::decomp
