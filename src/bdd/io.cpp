#include <sstream>
#include <unordered_set>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

// DOT rendering in the style of Fig. 1 of the paper: solid then-edges,
// dashed else-edges, dotted else-edges when complemented; one rank per
// variable level.
std::string Manager::to_dot(std::span<const Bdd> roots,
                            std::span<const std::string> names) {
    std::ostringstream os;
    os << "digraph bdd {\n  rankdir = TB;\n";
    std::unordered_set<NodeIndex> seen;
    std::vector<NodeIndex> stack;
    for (std::size_t i = 0; i < roots.size(); ++i) {
        const Edge e = roots[i].edge();
        const std::string name =
            i < names.size() ? names[i] : "f" + std::to_string(i);
        os << "  \"" << name << "\" [shape=plaintext];\n";
        os << "  \"" << name << "\" -> n" << edge_index(e)
           << (edge_complemented(e) ? " [style=dotted]" : "") << ";\n";
        const NodeIndex idx = edge_index(e);
        if (idx != kTerminalIndex && seen.insert(idx).second) stack.push_back(idx);
    }
    os << "  n" << kTerminalIndex << " [label=\"1\", shape=box];\n";
    while (!stack.empty()) {
        const NodeIndex idx = stack.back();
        stack.pop_back();
        const Node& n = nodes_[idx];
        os << "  n" << idx << " [label=\"x"
           << level_to_var_[n.level] << "\", shape=circle];\n";
        os << "  n" << idx << " -> n" << edge_index(n.hi) << " [style=solid];\n";
        os << "  n" << idx << " -> n" << edge_index(n.lo)
           << (edge_complemented(n.lo) ? " [style=dotted]" : " [style=dashed]")
           << ";\n";
        for (const Edge child : {n.hi, n.lo}) {
            const NodeIndex ci = edge_index(child);
            if (ci != kTerminalIndex && seen.insert(ci).second) stack.push_back(ci);
        }
    }
    os << "}\n";
    return os.str();
}

}  // namespace bdsmaj::bdd
