#include <sstream>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

// DOT rendering in the style of Fig. 1 of the paper: solid then-edges,
// dashed else-edges, dotted else-edges when complemented; one rank per
// variable level.
std::string Manager::to_dot(std::span<const Bdd> roots,
                            std::span<const std::string> names) {
    std::ostringstream os;
    os << "digraph bdd {\n  rankdir = TB;\n";
    // Multi-root stamped traversal (shares the Manager scratch arrays).
    const std::uint32_t gen = begin_traversal();
    std::vector<NodeIndex>& stack = scratch_stack_;
    stack.clear();
    for (std::size_t i = 0; i < roots.size(); ++i) {
        const Edge e = roots[i].edge();
        const std::string name =
            i < names.size() ? names[i] : "f" + std::to_string(i);
        os << "  \"" << name << "\" [shape=plaintext];\n";
        os << "  \"" << name << "\" -> n" << edge_index(e)
           << (edge_complemented(e) ? " [style=dotted]" : "") << ";\n";
        const NodeIndex idx = edge_index(e);
        if (idx != kTerminalIndex && visit_stamp_[idx] != gen) {
            visit_stamp_[idx] = gen;
            stack.push_back(idx);
        }
    }
    os << "  n" << kTerminalIndex << " [label=\"1\", shape=box];\n";
    while (!stack.empty()) {
        const NodeIndex idx = stack.back();
        stack.pop_back();
        const Node& n = nodes_[idx];
        os << "  n" << idx << " [label=\"x"
           << level_to_var_[n.level] << "\", shape=circle];\n";
        os << "  n" << idx << " -> n" << edge_index(n.hi) << " [style=solid];\n";
        os << "  n" << idx << " -> n" << edge_index(n.lo)
           << (edge_complemented(n.lo) ? " [style=dotted]" : " [style=dashed]")
           << ";\n";
        for (const Edge child : {n.hi, n.lo}) {
            const NodeIndex ci = edge_index(child);
            if (ci != kTerminalIndex && visit_stamp_[ci] != gen) {
                visit_stamp_[ci] = gen;
                stack.push_back(ci);
            }
        }
    }
    os << "}\n";
    return os.str();
}

}  // namespace bdsmaj::bdd
