#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bdsmaj::bdd {

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(Manager* mgr, Edge edge) : mgr_(mgr), edge_(edge) {
    // Reference already taken by the Manager factory that produced us.
}

Bdd::Bdd(const Bdd& o) : mgr_(o.mgr_), edge_(o.edge_) {
    if (mgr_ != nullptr) mgr_->inc_ref(edge_);
}

Bdd::Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), edge_(o.edge_) {
    o.mgr_ = nullptr;
    o.edge_ = kEdgeInvalid;
}

Bdd& Bdd::operator=(const Bdd& o) {
    if (this == &o) return *this;
    if (o.mgr_ != nullptr) o.mgr_->inc_ref(o.edge_);
    if (mgr_ != nullptr) mgr_->dec_ref(edge_);
    mgr_ = o.mgr_;
    edge_ = o.edge_;
    return *this;
}

Bdd& Bdd::operator=(Bdd&& o) noexcept {
    if (this == &o) return *this;
    if (mgr_ != nullptr) mgr_->dec_ref(edge_);
    mgr_ = o.mgr_;
    edge_ = o.edge_;
    o.mgr_ = nullptr;
    o.edge_ = kEdgeInvalid;
    return *this;
}

Bdd::~Bdd() {
    if (mgr_ != nullptr) mgr_->dec_ref(edge_);
}

Bdd Bdd::operator!() const {
    assert(valid());
    return mgr_->from_edge(edge_not(edge_));
}

Bdd Bdd::operator&(const Bdd& o) const { return mgr_->apply_and(*this, o); }
Bdd Bdd::operator|(const Bdd& o) const { return mgr_->apply_or(*this, o); }
Bdd Bdd::operator^(const Bdd& o) const { return mgr_->apply_xor(*this, o); }

// ---------------------------------------------------------------------------
// Manager: construction, variables
// ---------------------------------------------------------------------------

Manager::Manager(int num_vars, ManagerParams params) : params_(params) {
    nodes_.reserve(1024);
    Node terminal;
    terminal.level = kTerminalLevel;
    terminal.hi = kEdgeOne;
    terminal.lo = kEdgeOne;
    terminal.ref = 0xffffffffu;  // pinned forever
    nodes_.push_back(terminal);
    cache_.assign(std::size_t{1} << params_.cache_size_log2, CacheEntry{});
    for (int i = 0; i < num_vars; ++i) new_var();
}

Manager::~Manager() = default;

int Manager::new_var() {
    const auto level = static_cast<std::uint32_t>(tables_.size());
    tables_.emplace_back();
    tables_.back().buckets.assign(16, kNil);
    level_live_.push_back(0);
    var_to_level_.push_back(level);
    level_to_var_.push_back(static_cast<std::uint32_t>(var_to_level_.size() - 1));
    return static_cast<int>(var_to_level_.size() - 1);
}

std::vector<int> Manager::current_order() const {
    std::vector<int> order(level_to_var_.size());
    for (std::size_t l = 0; l < level_to_var_.size(); ++l) {
        order[l] = static_cast<int>(level_to_var_[l]);
    }
    return order;
}

Bdd Manager::one() { return from_edge(kEdgeOne); }
Bdd Manager::zero() { return from_edge(kEdgeZero); }

Bdd Manager::var_bdd(int var) {
    if (var < 0 || var >= num_vars()) {
        throw std::out_of_range("Manager::var_bdd: unknown variable");
    }
    const Edge e = make_node(var_to_level_[static_cast<std::size_t>(var)], kEdgeOne, kEdgeZero);
    return from_edge(e);
}

Bdd Manager::nvar_bdd(int var) { return !var_bdd(var); }

Bdd Manager::from_edge(Edge e) {
    assert(e != kEdgeInvalid);
    inc_ref(e);
    return Bdd(this, e);
}

// ---------------------------------------------------------------------------
// Reference counting
// ---------------------------------------------------------------------------

void Manager::inc_ref(Edge e) {
    Node& n = nodes_[edge_index(e)];
    if (n.ref == 0xffffffffu) return;  // saturated / terminal
    if (n.ref == 0) {
        // Resurrection of a dead-but-tabled node.
        --dead_nodes_;
        ++live_nodes_;
        ++level_live_[n.level];
    }
    ++n.ref;
}

void Manager::dec_ref(Edge e) {
    Node& n = nodes_[edge_index(e)];
    if (n.ref == 0xffffffffu) return;
    assert(n.ref > 0);
    --n.ref;
    if (n.ref == 0) {
        ++dead_nodes_;
        --live_nodes_;
        --level_live_[n.level];
    }
}

// ---------------------------------------------------------------------------
// Unique table
// ---------------------------------------------------------------------------

std::size_t Manager::bucket_of(const LevelTable& table, Edge hi, Edge lo) const {
    std::uint64_t key = (static_cast<std::uint64_t>(hi) << 32) | lo;
    key *= 0x9e3779b97f4a7c15ULL;
    key ^= key >> 29;
    return static_cast<std::size_t>(key) & (table.buckets.size() - 1);
}

void Manager::maybe_grow_table(LevelTable& table) {
    if (table.entries < table.buckets.size() * 2) return;
    std::vector<std::uint32_t> old = std::move(table.buckets);
    table.buckets.assign(old.size() * 4, kNil);
    for (std::uint32_t head : old) {
        for (std::uint32_t idx = head; idx != kNil;) {
            const std::uint32_t next = nodes_[idx].next;
            const std::size_t b = bucket_of(table, nodes_[idx].hi, nodes_[idx].lo);
            nodes_[idx].next = table.buckets[b];
            table.buckets[b] = idx;
            idx = next;
        }
    }
}

void Manager::table_insert(std::uint32_t level, NodeIndex idx) {
    LevelTable& table = tables_[level];
    maybe_grow_table(table);
    const std::size_t b = bucket_of(table, nodes_[idx].hi, nodes_[idx].lo);
    nodes_[idx].next = table.buckets[b];
    table.buckets[b] = idx;
    ++table.entries;
}

void Manager::table_remove(std::uint32_t level, NodeIndex idx) {
    LevelTable& table = tables_[level];
    const std::size_t b = bucket_of(table, nodes_[idx].hi, nodes_[idx].lo);
    std::uint32_t* link = &table.buckets[b];
    while (*link != kNil) {
        if (*link == idx) {
            *link = nodes_[idx].next;
            --table.entries;
            return;
        }
        link = &nodes_[*link].next;
    }
    assert(false && "table_remove: node not found");
}

std::uint32_t Manager::alloc_slot() {
    if (free_list_ != kNil) {
        const std::uint32_t idx = free_list_;
        free_list_ = nodes_[idx].next;
        return idx;
    }
    nodes_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

Edge Manager::make_node(std::uint32_t level, Edge hi, Edge lo) {
    assert(level < tables_.size());
    assert(edge_level(hi) > level && edge_level(lo) > level);
    if (hi == lo) return hi;
    bool complement_out = false;
    if (edge_complemented(hi)) {
        // Canonical form: then-edge regular; push complement to the result.
        hi = edge_not(hi);
        lo = edge_not(lo);
        complement_out = true;
    }
    LevelTable& table = tables_[level];
    // Grow before hashing so one bucket computation serves both the lookup
    // and the insert.
    maybe_grow_table(table);
    const std::size_t b = bucket_of(table, hi, lo);
    for (std::uint32_t idx = table.buckets[b]; idx != kNil; idx = nodes_[idx].next) {
        if (nodes_[idx].hi == hi && nodes_[idx].lo == lo) {
            return make_edge(idx, complement_out);
        }
    }
    const std::uint32_t idx = alloc_slot();
    Node& n = nodes_[idx];
    n.level = level;
    n.hi = hi;
    n.lo = lo;
    n.ref = 0;
    inc_ref(hi);
    inc_ref(lo);
    nodes_[idx].next = table.buckets[b];
    table.buckets[b] = idx;
    ++table.entries;
    ++dead_nodes_;  // born dead; parents / handles will reference it
    if (live_nodes_ + dead_nodes_ > peak_nodes_) peak_nodes_ = live_nodes_ + dead_nodes_;
    return make_edge(idx, complement_out);
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

std::size_t Manager::cache_slot(CacheOp op, Edge f, Edge g, Edge h) const {
    std::uint64_t key = static_cast<std::uint64_t>(f) * 0x9e3779b97f4a7c15ULL;
    key ^= static_cast<std::uint64_t>(g) * 0xc2b2ae3d27d4eb4fULL;
    key ^= static_cast<std::uint64_t>(h) * 0x165667b19e3779f9ULL;
    key ^= static_cast<std::uint64_t>(op);
    return static_cast<std::size_t>(key >> 13) & (cache_.size() - 1);
}

bool Manager::cache_probe(std::size_t slot, CacheOp op, Edge f, Edge g, Edge h,
                          Edge* out) const {
    const CacheEntry& e = cache_[slot];
    if (e.op == op && e.f == f && e.g == g && e.h == h && e.result != kEdgeInvalid) {
        *out = e.result;
        ++cache_stats_.hits;
        return true;
    }
    ++cache_stats_.misses;
    return false;
}

void Manager::cache_store(std::size_t slot, CacheOp op, Edge f, Edge g, Edge h,
                          Edge result) {
    CacheEntry& e = cache_[slot];
    ++cache_stats_.inserts;
    if (e.result != kEdgeInvalid && (e.op != op || e.f != f || e.g != g || e.h != h)) {
        ++cache_stats_.collisions;
    }
    e = CacheEntry{f, g, h, result, op};
}

bool Manager::cache_lookup(CacheOp op, Edge f, Edge g, Edge h, Edge* out) const {
    return cache_probe(cache_slot(op, f, g, h), op, f, g, h, out);
}

void Manager::cache_insert(CacheOp op, Edge f, Edge g, Edge h, Edge result) {
    cache_store(cache_slot(op, f, g, h), op, f, g, h, result);
}

void Manager::cache_clear() {
    for (auto& e : cache_) e = CacheEntry{};
}

void Manager::maybe_grow_cache() {
    // Scale the computed table with the live-node population instead of
    // pinning it at its initial size: a table much smaller than the working
    // set thrashes, one much bigger wastes cache_clear() time. Never called
    // while a recursive core is running (slots must stay stable).
    assert(op_depth_ == 0);
    const std::size_t ceiling = std::size_t{1} << params_.cache_max_size_log2;
    std::size_t target = cache_.size();
    while (target < ceiling && live_nodes_ + dead_nodes_ > target) target *= 2;
    if (target == cache_.size()) return;
    std::vector<CacheEntry> old = std::move(cache_);
    cache_.assign(target, CacheEntry{});
    for (const CacheEntry& e : old) {
        if (e.result == kEdgeInvalid) continue;
        cache_[cache_slot(e.op, e.f, e.g, e.h)] = e;
    }
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

void Manager::gc() {
    // Nothing dead: the unique tables and the computed table are both still
    // exact; skip the sweep (and keep the cached results).
    if (dead_nodes_ == 0) return;
    sweep_dead();
    cache_clear();
}

void Manager::sweep_dead() {
    assert(op_depth_ == 0 && "gc during an active operation");
    if (dead_nodes_ == 0) return;
    // Sweep levels top-down: freeing a node can only kill deeper nodes. A
    // level whose table holds exactly its live population has nothing to
    // sweep (dead count per level == entries - live).
    for (std::uint32_t level = 0; level < tables_.size(); ++level) {
        LevelTable& table = tables_[level];
        if (table.entries == level_live_[level]) continue;
        for (auto& head : table.buckets) {
            std::uint32_t* link = &head;
            while (*link != kNil) {
                const std::uint32_t idx = *link;
                Node& n = nodes_[idx];
                if (n.ref == 0) {
                    *link = n.next;
                    --table.entries;
                    dec_ref(n.hi);
                    dec_ref(n.lo);
                    n.level = kTerminalLevel;
                    n.hi = kEdgeInvalid;
                    n.lo = kEdgeInvalid;
                    n.next = free_list_;
                    free_list_ = idx;
                    --dead_nodes_;
                } else {
                    link = &n.next;
                }
            }
        }
    }
}

void Manager::auto_gc_if_needed() {
    if (op_depth_ != 0) return;
    if (dead_nodes_ > params_.gc_dead_threshold) gc();
    maybe_grow_cache();
}

// ---------------------------------------------------------------------------
// Generation-stamped scratch
// ---------------------------------------------------------------------------

std::uint32_t Manager::begin_traversal() {
    if (visit_stamp_.size() < nodes_.size()) visit_stamp_.resize(nodes_.size(), 0);
    if (++traversal_gen_ == 0) {
        std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
        traversal_gen_ = 1;
    }
    return traversal_gen_;
}

Manager::NodeMap Manager::make_node_map() {
    if (map_stamp_.size() < nodes_.size()) {
        map_stamp_.resize(nodes_.size(), 0);
        map_value_.resize(nodes_.size(), 0);
    }
    if (++map_gen_ == 0) {
        std::fill(map_stamp_.begin(), map_stamp_.end(), 0);
        map_gen_ = 1;
    }
    return NodeMap(this, map_gen_);
}

// ---------------------------------------------------------------------------
// Structure access
// ---------------------------------------------------------------------------

std::uint32_t Manager::edge_level(Edge e) const { return nodes_[edge_index(e)].level; }

int Manager::edge_top_var(Edge e) const {
    const std::uint32_t level = edge_level(e);
    return level == kTerminalLevel ? -1 : static_cast<int>(level_to_var_[level]);
}

Edge Manager::edge_then(Edge e) const {
    const Node& n = nodes_[edge_index(e)];
    return edge_complemented(e) ? edge_not(n.hi) : n.hi;
}

Edge Manager::edge_else(Edge e) const {
    const Node& n = nodes_[edge_index(e)];
    return edge_complemented(e) ? edge_not(n.lo) : n.lo;
}

void Manager::cofactors_at(Edge e, std::uint32_t level, Edge* hi, Edge* lo) const {
    if (edge_level(e) != level) {
        *hi = e;
        *lo = e;
        return;
    }
    *hi = edge_then(e);
    *lo = edge_else(e);
}

Bdd Manager::node_function(NodeIndex v) { return from_edge(make_edge(v, false)); }

}  // namespace bdsmaj::bdd
