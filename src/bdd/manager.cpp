#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "runtime/fault_inject.hpp"

namespace bdsmaj::bdd {

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(Manager* mgr, Edge edge) : mgr_(mgr), edge_(edge) {
    // Reference already taken by the Manager factory that produced us.
}

Bdd::Bdd(const Bdd& o) : mgr_(o.mgr_), edge_(o.edge_) {
    if (mgr_ != nullptr) mgr_->inc_ref(edge_);
}

Bdd::Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), edge_(o.edge_) {
    o.mgr_ = nullptr;
    o.edge_ = kEdgeInvalid;
}

Bdd& Bdd::operator=(const Bdd& o) {
    if (this == &o) return *this;
    if (o.mgr_ != nullptr) o.mgr_->inc_ref(o.edge_);
    if (mgr_ != nullptr) mgr_->dec_ref(edge_);
    mgr_ = o.mgr_;
    edge_ = o.edge_;
    return *this;
}

Bdd& Bdd::operator=(Bdd&& o) noexcept {
    if (this == &o) return *this;
    if (mgr_ != nullptr) mgr_->dec_ref(edge_);
    mgr_ = o.mgr_;
    edge_ = o.edge_;
    o.mgr_ = nullptr;
    o.edge_ = kEdgeInvalid;
    return *this;
}

Bdd::~Bdd() {
    if (mgr_ != nullptr) mgr_->dec_ref(edge_);
}

Bdd Bdd::operator!() const {
    assert(valid());
    return mgr_->from_edge(edge_not(edge_));
}

Bdd Bdd::operator&(const Bdd& o) const { return mgr_->apply_and(*this, o); }
Bdd Bdd::operator|(const Bdd& o) const { return mgr_->apply_or(*this, o); }
Bdd Bdd::operator^(const Bdd& o) const { return mgr_->apply_xor(*this, o); }

// ---------------------------------------------------------------------------
// Manager: construction, variables
// ---------------------------------------------------------------------------

Manager::Manager(int num_vars, ManagerParams params) : params_(params) {
    nodes_.reserve(1024);
    aux_.reserve(1024);
    Node terminal;
    terminal.level = kTerminalLevel;
    terminal.hi = kEdgeOne;
    terminal.lo = kEdgeOne;
    nodes_.push_back(terminal);
    NodeAux terminal_aux;
    terminal_aux.ref = 0xffffffffu;  // pinned forever
    aux_.push_back(terminal_aux);
    cache_.assign(std::size_t{1} << params_.cache_size_log2, CacheEntry{});
    for (int i = 0; i < num_vars; ++i) new_var();
}

Manager::~Manager() = default;

void Manager::reset(int num_vars, ManagerParams params) {
    assert(op_depth_ == 0 && "reset during an active operation");
    assert(live_nodes_ == 0 && "reset with outstanding Bdd handles");
    params_ = params;
    // Node store back to just the pinned terminal. Node/NodeAux are
    // trivially destructible, so the shrink is O(1) and the grown capacity
    // — the expensive part of per-supernode construction — is retained.
    nodes_.resize(1);
    aux_.resize(1);
    nodes_[0] = Node{kTerminalLevel, kEdgeOne, kEdgeOne};
    aux_[0] = NodeAux{kNil, 0xffffffffu};
    // Per-level unique tables exactly as new_var() creates them (16
    // buckets): identical initial state keeps the grow schedule — and with
    // it every downstream decision — indistinguishable from a fresh
    // manager's.
    const auto n = static_cast<std::size_t>(num_vars);
    tables_.resize(n);
    for (LevelTable& t : tables_) {
        t.buckets.assign(16, kNil);
        t.entries = 0;
    }
    level_live_.assign(n, 0);
    var_to_level_.resize(n);
    level_to_var_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Identity order: sifting permutes var_to_level_, and flow code
        // binds leaf i to variable i at construction time.
        var_to_level_[i] = static_cast<std::uint32_t>(i);
        level_to_var_[i] = static_cast<std::uint32_t>(i);
    }
    cache_.assign(std::size_t{1} << params_.cache_size_log2, CacheEntry{});
    cache_stats_ = {};
    reorder_stats_ = {};
    free_list_ = kNil;
    live_nodes_ = 0;
    dead_nodes_ = 0;
    peak_nodes_ = 0;
    interact_.clear();
    interact_words_ = 0;
    interact_valid_ = false;
    interact_trusted_ = false;
    sym_parent_.clear();
    sym_valid_ = false;
    cache_tainted_ = false;
    // Generation-stamped scratch survives as-is: stale stamps are from
    // earlier generations and the wrap-around fill in begin_traversal() /
    // make_node_map() already covers counter overflow.
}

int Manager::new_var() {
    const auto level = static_cast<std::uint32_t>(tables_.size());
    tables_.emplace_back();
    tables_.back().buckets.assign(16, kNil);
    level_live_.push_back(0);
    var_to_level_.push_back(level);
    level_to_var_.push_back(static_cast<std::uint32_t>(var_to_level_.size() - 1));
    interact_valid_ = false;  // matrix rows are sized for the old var count
    sym_valid_ = false;       // union-find is sized for the old var count
    return static_cast<int>(var_to_level_.size() - 1);
}

std::vector<int> Manager::current_order() const {
    std::vector<int> order(level_to_var_.size());
    for (std::size_t l = 0; l < level_to_var_.size(); ++l) {
        order[l] = static_cast<int>(level_to_var_[l]);
    }
    return order;
}

Bdd Manager::one() { return from_edge(kEdgeOne); }
Bdd Manager::zero() { return from_edge(kEdgeZero); }

Bdd Manager::var_bdd(int var) {
    if (var < 0 || var >= num_vars()) {
        throw std::out_of_range("Manager::var_bdd: unknown variable");
    }
    const Edge e = make_node(var_to_level_[static_cast<std::size_t>(var)], kEdgeOne, kEdgeZero);
    return from_edge(e);
}

Bdd Manager::nvar_bdd(int var) { return !var_bdd(var); }

Bdd Manager::from_edge(Edge e) {
    assert(e != kEdgeInvalid);
    inc_ref(e);
    return Bdd(this, e);
}

// ---------------------------------------------------------------------------
// Reference counting
// ---------------------------------------------------------------------------

void Manager::inc_ref(Edge e) {
    NodeAux& a = aux_[edge_index(e)];
    if (a.ref == 0xffffffffu) return;  // saturated / terminal
    if (a.ref == 0) {
        // Resurrection of a dead-but-tabled node.
        --dead_nodes_;
        ++live_nodes_;
        ++level_live_[nodes_[edge_index(e)].level];
    }
    ++a.ref;
}

void Manager::dec_ref(Edge e) {
    NodeAux& a = aux_[edge_index(e)];
    if (a.ref == 0xffffffffu) return;
    assert(a.ref > 0);
    --a.ref;
    if (a.ref == 0) {
        ++dead_nodes_;
        --live_nodes_;
        --level_live_[nodes_[edge_index(e)].level];
    }
}

// ---------------------------------------------------------------------------
// Unique table
// ---------------------------------------------------------------------------

std::size_t Manager::bucket_of(const LevelTable& table, Edge hi, Edge lo) const {
    std::uint64_t key = (static_cast<std::uint64_t>(hi) << 32) | lo;
    key *= 0x9e3779b97f4a7c15ULL;
    key ^= key >> 29;
    return static_cast<std::size_t>(key) & (table.buckets.size() - 1);
}

void Manager::maybe_grow_table(LevelTable& table) {
    if (table.entries < table.buckets.size() * 2) return;
    std::vector<std::uint32_t> old = std::move(table.buckets);
    table.buckets.assign(old.size() * 4, kNil);
    for (std::uint32_t head : old) {
        for (std::uint32_t idx = head; idx != kNil;) {
            const std::uint32_t next = aux_[idx].next;
            const std::size_t b = bucket_of(table, nodes_[idx].hi, nodes_[idx].lo);
            aux_[idx].next = table.buckets[b];
            table.buckets[b] = idx;
            idx = next;
        }
    }
}

void Manager::size_empty_table(LevelTable& table, std::size_t expected) {
    assert(table.entries == 0);
    // Target load factor ~1 at the expected population; resizing an empty
    // table is a plain assign, no rehash. Shrinks oversized arrays too, so
    // a level whose population migrated away stops paying for it.
    std::size_t want = 16;
    while (want < expected) want <<= 1;
    if (table.buckets.size() != want) table.buckets.assign(want, kNil);
}

void Manager::table_insert(std::uint32_t level, NodeIndex idx) {
    LevelTable& table = tables_[level];
    maybe_grow_table(table);
    const std::size_t b = bucket_of(table, nodes_[idx].hi, nodes_[idx].lo);
    aux_[idx].next = table.buckets[b];
    table.buckets[b] = idx;
    ++table.entries;
}

void Manager::table_remove(std::uint32_t level, NodeIndex idx) {
    LevelTable& table = tables_[level];
    const std::size_t b = bucket_of(table, nodes_[idx].hi, nodes_[idx].lo);
    std::uint32_t* link = &table.buckets[b];
    while (*link != kNil) {
        if (*link == idx) {
            *link = aux_[idx].next;
            --table.entries;
            return;
        }
        link = &aux_[*link].next;
    }
    assert(false && "table_remove: node not found");
}

std::uint32_t Manager::alloc_slot() {
    if (free_list_ != kNil) {
        const std::uint32_t idx = free_list_;
        free_list_ = aux_[idx].next;
        return idx;
    }
    nodes_.emplace_back();
    aux_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

Edge Manager::make_node(std::uint32_t level, Edge hi, Edge lo) {
    assert(level < tables_.size());
    assert(edge_level(hi) > level && edge_level(lo) > level);
    if (hi == lo) return hi;
    bool complement_out = false;
    if (edge_complemented(hi)) {
        // Canonical form: then-edge regular; push complement to the result.
        hi = edge_not(hi);
        lo = edge_not(lo);
        complement_out = true;
    }
    LevelTable& table = tables_[level];
    // Grow before hashing so one bucket computation serves both the lookup
    // and the insert.
    maybe_grow_table(table);
    const std::size_t b = bucket_of(table, hi, lo);
    for (std::uint32_t idx = table.buckets[b]; idx != kNil; idx = aux_[idx].next) {
        if (nodes_[idx].hi == hi && nodes_[idx].lo == lo) {
            return make_edge(idx, complement_out);
        }
    }
    // Resource guard: refuse to allocate past the configured ceiling. The
    // throw leaves this call without side effects, but callers may be deep
    // inside a recursive core holding temporaries, so the manager is
    // poisoned — only handle destruction is allowed afterwards.
    if (params_.max_live_nodes != 0 &&
        live_nodes_ + dead_nodes_ >= params_.max_live_nodes) {
        poisoned_ = true;
        throw ResourceExhausted("bdd::Manager: max_live_nodes ceiling (" +
                                std::to_string(params_.max_live_nodes) + ") reached");
    }
#if defined(BDSMAJ_FAULT_INJECT)
    try {
        runtime::fault_point(runtime::FaultSite::kManagerAlloc);
    } catch (...) {
        poisoned_ = true;
        throw;
    }
#endif
    const std::uint32_t idx = alloc_slot();
    Node& n = nodes_[idx];
    n.level = level;
    n.hi = hi;
    n.lo = lo;
    aux_[idx].ref = 0;
    inc_ref(hi);
    inc_ref(lo);
    aux_[idx].next = table.buckets[b];
    table.buckets[b] = idx;
    ++table.entries;
    ++dead_nodes_;  // born dead; parents / handles will reference it
    if (live_nodes_ + dead_nodes_ > peak_nodes_) peak_nodes_ = live_nodes_ + dead_nodes_;
    // Keep the interaction matrix current between reorders. During one
    // (interact_trusted_) the update is skipped on purpose: restructuring
    // swaps only recombine existing paths — they can never create a new
    // variable pair — and folding rows here would only blur the tight
    // per-root matrix toward its transitive closure.
    if (interact_valid_ && !interact_trusted_) interaction_add_node(level, hi, lo);
    return make_edge(idx, complement_out);
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

std::size_t Manager::cache_slot(CacheOp op, Edge f, Edge g, Edge h) const {
    std::uint64_t key = static_cast<std::uint64_t>(f) * 0x9e3779b97f4a7c15ULL;
    key ^= static_cast<std::uint64_t>(g) * 0xc2b2ae3d27d4eb4fULL;
    key ^= static_cast<std::uint64_t>(h) * 0x165667b19e3779f9ULL;
    key ^= static_cast<std::uint64_t>(op);
    return static_cast<std::size_t>(key >> 13) & (cache_.size() - 1);
}

bool Manager::cache_probe(std::size_t slot, CacheOp op, Edge f, Edge g, Edge h,
                          Edge* out) const {
    const CacheEntry& e = cache_[slot];
    if (e.op == op && e.f == f && e.g == g && e.h == h && e.result != kEdgeInvalid) {
        *out = e.result;
        ++cache_stats_.hits;
        return true;
    }
    ++cache_stats_.misses;
    return false;
}

void Manager::cache_store(std::size_t slot, CacheOp op, Edge f, Edge g, Edge h,
                          Edge result) {
    CacheEntry& e = cache_[slot];
    ++cache_stats_.inserts;
    if (e.result != kEdgeInvalid && (e.op != op || e.f != f || e.g != g || e.h != h)) {
        ++cache_stats_.collisions;
    }
    e = CacheEntry{f, g, h, result, op};
}

bool Manager::cache_lookup(CacheOp op, Edge f, Edge g, Edge h, Edge* out) const {
    return cache_probe(cache_slot(op, f, g, h), op, f, g, h, out);
}

void Manager::cache_insert(CacheOp op, Edge f, Edge g, Edge h, Edge result) {
    // Only the generalized cofactors funnel through here, and their results
    // depend on the variable order — such entries must not survive a
    // reorder. The hot ITE/AND/XOR cores use cache_store directly; their
    // entries are order-independent (a function's edge is canonical).
    cache_tainted_ = true;
    cache_store(cache_slot(op, f, g, h), op, f, g, h, result);
}

void Manager::cache_clear() {
    for (auto& e : cache_) e = CacheEntry{};
    cache_tainted_ = false;
}

void Manager::cache_clear_after_reorder() {
    if (cache_tainted_) {
        cache_clear();
    } else {
        ++reorder_stats_.cache_clears_avoided;
    }
}

void Manager::maybe_grow_cache() {
    // Scale the computed table with the live-node population instead of
    // pinning it at its initial size: a table much smaller than the working
    // set thrashes, one much bigger wastes cache_clear() time. Never called
    // while a recursive core is running (slots must stay stable).
    assert(op_depth_ == 0);
    const std::size_t ceiling = std::size_t{1} << params_.cache_max_size_log2;
    std::size_t target = cache_.size();
    while (target < ceiling && live_nodes_ + dead_nodes_ > target) target *= 2;
    if (target == cache_.size()) return;
    std::vector<CacheEntry> old = std::move(cache_);
    cache_.assign(target, CacheEntry{});
    for (const CacheEntry& e : old) {
        if (e.result == kEdgeInvalid) continue;
        cache_[cache_slot(e.op, e.f, e.g, e.h)] = e;
    }
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

void Manager::gc() {
    // Nothing dead: the unique tables and the computed table are both still
    // exact; skip the sweep (and keep the cached results).
    if (dead_nodes_ == 0) return;
    sweep_dead();
    cache_clear();
    // Symmetry groups describe the root set as of the last detection; a
    // user-visible collection point is where stale groups are dropped (the
    // intra-sift sweeps keep them: frees never break root symmetry).
    sym_valid_ = false;
}

void Manager::sweep_dead() {
    assert(op_depth_ == 0 && "gc during an active operation");
    if (dead_nodes_ == 0) return;
    // Sweep levels top-down: freeing a node can only kill deeper nodes. A
    // level whose table holds exactly its live population has nothing to
    // sweep (dead count per level == entries - live).
    for (std::uint32_t level = 0; level < tables_.size(); ++level) {
        LevelTable& table = tables_[level];
        if (table.entries == level_live_[level]) continue;
        for (auto& head : table.buckets) {
            std::uint32_t* link = &head;
            while (*link != kNil) {
                const std::uint32_t idx = *link;
                Node& n = nodes_[idx];
                NodeAux& a = aux_[idx];
                if (a.ref == 0) {
                    *link = a.next;
                    --table.entries;
                    dec_ref(n.hi);
                    dec_ref(n.lo);
                    n.level = kTerminalLevel;
                    n.hi = kEdgeInvalid;
                    n.lo = kEdgeInvalid;
                    a.next = free_list_;
                    free_list_ = idx;
                    --dead_nodes_;
                    // Freed slots may be recycled into different functions;
                    // any cache entry still referencing them must not be
                    // probed (callers clear before the next probe).
                    cache_tainted_ = true;
                } else {
                    link = &a.next;
                }
            }
        }
    }
    // Frees only remove variable-pair paths, so the interaction matrix
    // stays a sound over-approximation — but force the next reorder to
    // recompute a tight one rather than sifting against stale pairs.
    interact_valid_ = false;
}

void Manager::auto_gc_if_needed() {
    if (op_depth_ != 0) return;
    if (dead_nodes_ > params_.gc_dead_threshold) gc();
    maybe_grow_cache();
}

// ---------------------------------------------------------------------------
// Variable interaction matrix
//
// The classical per-root matrix: two variables interact when both appear
// in the support of a common root (an externally referenced node, or a
// dead node — the root of a garbage fragment that still constrains which
// label swaps are structurally safe). Any direct edge between an a-node
// and a b-node lies inside some root's DAG, so non-interacting adjacent
// levels can swap by label exchange with no restructuring. Reordering
// never changes root supports and only removes garbage fragments, so a
// matrix computed at reorder entry stays sound for the whole operation.
//
// Between recomputes make_node keeps the invariant
//     row[v]  ⊇  variables below any v-labeled node
// by folding both children's rows into the new node's row (conservative:
// it may only add pairs, never lose one). gc()/new_var() invalidate so the
// next reorder recomputes a tight matrix on demand.
// ---------------------------------------------------------------------------

void Manager::interaction_add_node(std::uint32_t level, Edge hi, Edge lo) {
    const std::size_t v = level_to_var_[level];
    std::uint64_t* row = &interact_[v * interact_words_];
    for (const Edge child : {hi, lo}) {
        const std::uint32_t cl = nodes_[edge_index(child)].level;
        if (cl == kTerminalLevel) continue;
        const std::size_t cv = level_to_var_[cl];
        const std::uint64_t* crow = &interact_[cv * interact_words_];
        for (std::size_t w = 0; w < interact_words_; ++w) row[w] |= crow[w];
        row[cv >> 6] |= std::uint64_t{1} << (cv & 63);
    }
}

void Manager::recompute_interactions() {
    const std::size_t n = var_to_level_.size();
    interact_words_ = (n + 63) / 64;
    interact_.assign(n * interact_words_, 0);
    if (n == 0 || nodes_.size() <= 1) {
        interact_valid_ = true;
        return;
    }
    // Per-node supports, bottom-up (children before parents), plus parent
    // reference counts: the surplus of a node's refcount over its tabled
    // parents is held by external handles, which makes it a root.
    std::vector<std::uint64_t> supp(nodes_.size() * interact_words_, 0);
    std::vector<std::uint32_t> parent_refs(nodes_.size(), 0);
    for (std::size_t l = tables_.size(); l-- > 0;) {
        for (const std::uint32_t head : tables_[l].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                std::uint64_t* row = &supp[idx * interact_words_];
                const std::size_t v = level_to_var_[l];
                row[v >> 6] |= std::uint64_t{1} << (v & 63);
                for (const Edge child : {nodes_[idx].hi, nodes_[idx].lo}) {
                    const NodeIndex c = edge_index(child);
                    if (c == kTerminalIndex) continue;
                    ++parent_refs[c];
                    const std::uint64_t* crow = &supp[c * interact_words_];
                    for (std::size_t w = 0; w < interact_words_; ++w) {
                        row[w] |= crow[w];
                    }
                }
            }
        }
    }
    // Mark all pairs within each root's support: row[v] |= supp(root) for
    // every v in supp(root).
    for (std::size_t l = 0; l < tables_.size(); ++l) {
        for (const std::uint32_t head : tables_[l].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                const std::uint32_t ref = aux_[idx].ref;
                if (ref != 0 && ref <= parent_refs[idx]) continue;  // not a root
                const std::uint64_t* s = &supp[idx * interact_words_];
                for (std::size_t w = 0; w < interact_words_; ++w) {
                    std::uint64_t bits = s[w];
                    while (bits != 0) {
                        const std::size_t v =
                            (w << 6) + static_cast<std::size_t>(
                                           __builtin_ctzll(bits));
                        bits &= bits - 1;
                        std::uint64_t* row = &interact_[v * interact_words_];
                        for (std::size_t k = 0; k < interact_words_; ++k) {
                            row[k] |= s[k];
                        }
                    }
                }
            }
        }
    }
    interact_valid_ = true;
}

bool Manager::vars_interact(int a, int b) {
    if (a == b) return true;
    if (!interact_valid_) recompute_interactions();
    return vars_interact_raw(a, b);
}

// ---------------------------------------------------------------------------
// Structural audit (debug / reorder invariant tests)
// ---------------------------------------------------------------------------

std::string Manager::check_integrity() const {
    if (nodes_.size() != aux_.size()) return ("nodes_/aux_ size mismatch");
    std::vector<std::uint8_t> tabled(nodes_.size(), 0);
    std::size_t live = 0, dead = 0;
    for (std::uint32_t level = 0; level < tables_.size(); ++level) {
        const LevelTable& table = tables_[level];
        std::uint32_t chained = 0, level_live = 0;
        for (const std::uint32_t head : table.buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                if (idx >= nodes_.size()) return ("chain index out of range");
                if (tabled[idx]) return ("node " + std::to_string(idx) +
                                             " chained twice");
                tabled[idx] = 1;
                ++chained;
                const Node& n = nodes_[idx];
                if (n.level != level) {
                    return ("node " + std::to_string(idx) + " at level " +
                                std::to_string(n.level) + " chained in table " +
                                std::to_string(level));
                }
                if (edge_complemented(n.hi)) return ("complemented then-edge");
                if (n.hi == n.lo) return ("redundant node survived");
                for (const Edge child : {n.hi, n.lo}) {
                    const std::uint32_t cl = nodes_[edge_index(child)].level;
                    if (cl <= level) {
                        return ("ordering violation at node " +
                                    std::to_string(idx));
                    }
                    if (interact_valid_ && cl != kTerminalLevel &&
                        !vars_interact_raw(
                            static_cast<int>(level_to_var_[level]),
                            static_cast<int>(level_to_var_[cl]))) {
                        return ("interaction matrix misses pair at node " +
                                    std::to_string(idx));
                    }
                }
                if (aux_[idx].ref > 0) {
                    ++level_live;
                    ++live;
                } else {
                    ++dead;
                }
            }
        }
        if (chained != table.entries) {
            return ("table " + std::to_string(level) + " entries " +
                        std::to_string(table.entries) + " != chained " +
                        std::to_string(chained));
        }
        if (level_live != level_live_[level]) {
            return ("level_live_[" + std::to_string(level) + "] = " +
                        std::to_string(level_live_[level]) + " but census says " +
                        std::to_string(level_live));
        }
    }
    if (live != live_nodes_) return ("live_nodes_ census mismatch");
    if (dead != dead_nodes_) return ("dead_nodes_ census mismatch");
    // Bounded walk: a corrupted free list (cyclic, or linking out of range)
    // must yield a diagnosis, not hang or index out of bounds.
    std::size_t free_count = 0;
    for (std::uint32_t idx = free_list_; idx != kNil; idx = aux_[idx].next) {
        if (idx >= nodes_.size()) return ("free-list index out of range");
        if (tabled[idx]) return ("free-list node also chained in a table");
        if (nodes_[idx].level != kTerminalLevel) {
            return ("free-list node keeps a level");
        }
        if (++free_count > nodes_.size()) {
            return ("free list is cyclic or exceeds the slot count");
        }
    }
    // Every slot is the terminal, tabled, or on the free list.
    if (1 + live + dead + free_count != nodes_.size()) {
        return ("slot accounting mismatch (leaked or double-counted slots)");
    }
    // Symmetry census: when groups are current the union-find must be
    // well-formed (parent <= child, so every chain terminates at its
    // smallest member) and each group must occupy a contiguous run of
    // levels — the invariant block moves rely on.
    if (sym_valid_) {
        if (sym_parent_.size() != var_to_level_.size()) {
            return ("symmetry union-find sized for a different var count");
        }
        for (std::size_t v = 0; v < sym_parent_.size(); ++v) {
            if (sym_parent_[v] > v) {
                return ("symmetry union-find parent above child at var " +
                        std::to_string(v));
            }
        }
        for (std::size_t v = 0; v < sym_parent_.size(); ++v) {
            const std::uint32_t root = sym_find(static_cast<std::uint32_t>(v));
            std::uint32_t lo_level = 0xffffffffu, hi_level = 0, count = 0;
            for (std::size_t u = 0; u < sym_parent_.size(); ++u) {
                if (sym_find(static_cast<std::uint32_t>(u)) != root) continue;
                const std::uint32_t l = var_to_level_[u];
                lo_level = std::min(lo_level, l);
                hi_level = std::max(hi_level, l);
                ++count;
            }
            if (hi_level - lo_level + 1 != count) {
                return ("symmetry group of var " + std::to_string(v) +
                        " is not level-contiguous");
            }
        }
    }
    return {};
}

// ---------------------------------------------------------------------------
// Generation-stamped scratch
// ---------------------------------------------------------------------------

std::uint32_t Manager::begin_traversal() {
    if (visit_stamp_.size() < nodes_.size()) visit_stamp_.resize(nodes_.size(), 0);
    if (++traversal_gen_ == 0) {
        std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
        traversal_gen_ = 1;
    }
    return traversal_gen_;
}

Manager::NodeMap Manager::make_node_map() {
    if (map_stamp_.size() < nodes_.size()) {
        map_stamp_.resize(nodes_.size(), 0);
        map_value_.resize(nodes_.size(), 0);
    }
    if (++map_gen_ == 0) {
        std::fill(map_stamp_.begin(), map_stamp_.end(), 0);
        map_gen_ = 1;
    }
    return NodeMap(this, map_gen_);
}

// ---------------------------------------------------------------------------
// Structure access
// ---------------------------------------------------------------------------

std::uint32_t Manager::edge_level(Edge e) const { return nodes_[edge_index(e)].level; }

int Manager::edge_top_var(Edge e) const {
    const std::uint32_t level = edge_level(e);
    return level == kTerminalLevel ? -1 : static_cast<int>(level_to_var_[level]);
}

Edge Manager::edge_then(Edge e) const {
    const Node& n = nodes_[edge_index(e)];
    return edge_complemented(e) ? edge_not(n.hi) : n.hi;
}

Edge Manager::edge_else(Edge e) const {
    const Node& n = nodes_[edge_index(e)];
    return edge_complemented(e) ? edge_not(n.lo) : n.lo;
}

void Manager::cofactors_at(Edge e, std::uint32_t level, Edge* hi, Edge* lo) const {
    if (edge_level(e) != level) {
        *hi = e;
        *lo = e;
        return;
    }
    *hi = edge_then(e);
    *lo = edge_else(e);
}

Bdd Manager::node_function(NodeIndex v) { return from_edge(make_edge(v, false)); }

}  // namespace bdsmaj::bdd
