#pragma once
// Reduced Ordered Binary Decision Diagram package with complement edges.
//
// The package follows the classical Brace-Rudell-Bryant construction
// [Efficient implementation of a BDD package, DAC'90], which is the design
// the paper assumes of its underlying BDD substrate:
//   * one node store with a unique table per variable level, so that each
//     (level, then, else) triple exists at most once -> canonicity, and
//     functional equivalence is pointer equality;
//   * complement attributes on edges, restricted to else-edges ("only
//     0-edges can be complemented", paper SII-B), halving node count;
//   * a computed table (operation cache) for ITE and the generalized
//     cofactors;
//   * reference counting with deferred garbage collection;
//   * dynamic variable reordering by Rudell sifting, built on an in-place
//     adjacent-level swap that keeps all outstanding handles valid.
//
// Public use goes through the RAII `Bdd` handle. The raw `Edge` layer
// (node indices with a complement bit) is deliberately exposed as an
// expert API because the decomposition engine must walk BDD structure
// (dominator search is defined on nodes and incoming edges).

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace bdsmaj::bdd {

/// A directed edge: node index shifted left once, complement bit in bit 0.
using Edge = std::uint32_t;
using NodeIndex = std::uint32_t;

constexpr NodeIndex kTerminalIndex = 0;
constexpr Edge kEdgeOne = 0;   // terminal, regular
constexpr Edge kEdgeZero = 1;  // terminal, complemented
constexpr Edge kEdgeInvalid = 0xffffffffu;
/// Level of the terminal node; larger than any variable level.
constexpr std::uint32_t kTerminalLevel = 0x7fffffffu;

[[nodiscard]] constexpr NodeIndex edge_index(Edge e) noexcept { return e >> 1; }
[[nodiscard]] constexpr bool edge_complemented(Edge e) noexcept { return (e & 1u) != 0; }
[[nodiscard]] constexpr Edge make_edge(NodeIndex i, bool complement) noexcept {
    return (i << 1) | static_cast<Edge>(complement);
}
[[nodiscard]] constexpr Edge edge_not(Edge e) noexcept { return e ^ 1u; }
[[nodiscard]] constexpr Edge edge_regular(Edge e) noexcept { return e & ~Edge{1}; }
[[nodiscard]] constexpr bool edge_is_constant(Edge e) noexcept {
    return edge_index(e) == kTerminalIndex;
}

class Manager;

/// RAII reference to a BDD function. Copying/destroying maintains the node
/// reference count in the owning Manager. Equality is structural equality
/// of edges, which by canonicity is functional equality.
class Bdd {
public:
    Bdd() = default;
    Bdd(const Bdd& o);
    Bdd(Bdd&& o) noexcept;
    Bdd& operator=(const Bdd& o);
    Bdd& operator=(Bdd&& o) noexcept;
    ~Bdd();

    [[nodiscard]] bool valid() const noexcept { return mgr_ != nullptr; }
    [[nodiscard]] Manager* manager() const noexcept { return mgr_; }
    [[nodiscard]] Edge edge() const noexcept { return edge_; }

    [[nodiscard]] bool is_one() const noexcept { return valid() && edge_ == kEdgeOne; }
    [[nodiscard]] bool is_zero() const noexcept { return valid() && edge_ == kEdgeZero; }
    [[nodiscard]] bool is_constant() const noexcept {
        return valid() && edge_is_constant(edge_);
    }

    /// Complemented copy; O(1) thanks to complement edges.
    [[nodiscard]] Bdd operator!() const;
    [[nodiscard]] Bdd operator&(const Bdd& o) const;
    [[nodiscard]] Bdd operator|(const Bdd& o) const;
    [[nodiscard]] Bdd operator^(const Bdd& o) const;

    friend bool operator==(const Bdd& a, const Bdd& b) noexcept {
        return a.mgr_ == b.mgr_ && a.edge_ == b.edge_;
    }

private:
    friend class Manager;
    Bdd(Manager* mgr, Edge edge);  // takes a fresh reference

    Manager* mgr_ = nullptr;
    Edge edge_ = kEdgeInvalid;
};

/// Recoverable resource-guard violation: a manager hit its configured
/// node-allocation or sift-swap ceiling (ManagerParams::max_live_nodes /
/// sift_max_swaps). The throwing manager is poisoned — internal state may
/// be mid-operation — and must be destroyed, not reused; ManagerPool does
/// this automatically on lease release. Decomposition callers catch it per
/// supernode and retry the cone on a cheaper parameter ladder, so a
/// blow-up costs one cone, not one job.
class ResourceExhausted : public std::runtime_error {
public:
    explicit ResourceExhausted(const std::string& what) : std::runtime_error(what) {}
};

/// Tuning knobs for the manager.
struct ManagerParams {
    std::size_t cache_size_log2 = 10;   ///< initial computed-table entries = 2^k
    std::size_t cache_max_size_log2 = 23;  ///< growth ceiling (2^k entries)
    std::size_t gc_dead_threshold = 1u << 14;  ///< auto-GC when this many dead
    double sift_max_growth = 1.25;      ///< abort a sift direction beyond this
    int sift_max_vars = 1000;           ///< max variables sifted per pass
    /// Abort a sift direction as soon as the frozen-part lower bound proves
    /// no strictly better position can exist in it. Produces the same final
    /// order as exhaustive exploration (tests enforce it); off only for A/B.
    bool sift_lower_bound = true;
    /// Repeat sift passes until a pass improves the live size by less than
    /// sift_converge_ratio (or sift_max_passes is hit). Off = one pass, the
    /// classical Rudell schedule the paper presets are fingerprinted on.
    bool sift_converge = false;
    double sift_converge_ratio = 0.01;
    int sift_max_passes = 10;
    /// Detect pairwise-symmetric variables at each sift pass (candidate
    /// pairs seeded from the interaction matrix, confirmed by the exact
    /// adjacent-level structural check) and move each symmetry group as one
    /// block. Off by default: the `paper` preset is fingerprinted on the
    /// classical per-variable schedule.
    bool sift_symmetry = false;
    /// Ceiling on allocated internal nodes (live + dead-but-tabled). A
    /// make_node that would allocate past it throws ResourceExhausted and
    /// poisons the manager. 0 = unlimited (the default — the guard path
    /// costs one predictable branch per fresh allocation).
    std::size_t max_live_nodes = 0;
    /// Ceiling on adjacent-level swaps (structural + label-only) a single
    /// sift() call may spend; exceeding it throws ResourceExhausted
    /// mid-reorder and poisons the manager. 0 = unlimited.
    std::uint64_t sift_max_swaps = 0;
};

/// Reordering telemetry (monotonic over the manager's lifetime).
struct ReorderStats {
    std::uint64_t swaps = 0;        ///< structural adjacent-level swaps
    std::uint64_t fast_swaps = 0;   ///< label-only swaps (non-interacting / empty)
    std::uint64_t lb_aborts = 0;    ///< sift directions cut by the lower bound
    std::uint64_t lb_saved_swaps = 0;  ///< swaps those aborts provably avoided
    std::uint64_t growth_aborts = 0;   ///< directions cut by sift_max_growth
    std::uint64_t passes = 0;          ///< completed sift passes
    std::uint64_t cache_clears_avoided = 0;  ///< reorders that kept the cache
    std::uint64_t sym_pairs = 0;       ///< adjacent pairs confirmed symmetric
    std::uint64_t sym_groups = 0;      ///< symmetry groups (size >= 2) detected
    std::uint64_t sym_block_swaps = 0; ///< unit exchanges involving a block
};

/// Computed-table telemetry (monotonic over the manager's lifetime).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    /// Inserts that evicted a live (still-valid) entry of a different key.
    std::uint64_t collisions = 0;
    [[nodiscard]] double hit_rate() const noexcept {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class Manager {
public:
    explicit Manager(int num_vars = 0, ManagerParams params = {});
    Manager(const Manager&) = delete;
    Manager& operator=(const Manager&) = delete;
    ~Manager();

    /// Return the manager to the state a freshly constructed
    /// Manager(num_vars, params) would have — empty unique tables with
    /// their initial bucket counts, identity variable order, cleared
    /// computed table at its initial size, zeroed telemetry — while keeping
    /// the node-store / table-vector capacities, which is the point of
    /// pooling (bdd/manager_pool.hpp): a reset manager behaves observably
    /// identically to a fresh one, so pooled reuse cannot change any
    /// decomposition result. All outstanding Bdd handles must have been
    /// released; must not be called from inside an operation. O(num_vars +
    /// initial cache size), independent of how many nodes existed.
    void reset(int num_vars, ManagerParams params = {});

    // ---- Variables -------------------------------------------------------
    [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(var_to_level_.size()); }
    /// Create a new variable at the bottom of the current order.
    int new_var();
    [[nodiscard]] int level_of_var(int var) const { return static_cast<int>(var_to_level_[static_cast<std::size_t>(var)]); }
    [[nodiscard]] int var_at_level(int level) const { return static_cast<int>(level_to_var_[static_cast<std::size_t>(level)]); }
    /// Current variable order, top to bottom.
    [[nodiscard]] std::vector<int> current_order() const;

    // ---- Constants and literals -----------------------------------------
    [[nodiscard]] Bdd one();
    [[nodiscard]] Bdd zero();
    [[nodiscard]] Bdd var_bdd(int var);
    [[nodiscard]] Bdd nvar_bdd(int var);
    [[nodiscard]] Bdd constant(bool value) { return value ? one() : zero(); }

    // ---- Core operations -------------------------------------------------
    [[nodiscard]] Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
    [[nodiscard]] Bdd apply_and(const Bdd& f, const Bdd& g);
    [[nodiscard]] Bdd apply_or(const Bdd& f, const Bdd& g);
    [[nodiscard]] Bdd apply_xor(const Bdd& f, const Bdd& g);
    [[nodiscard]] Bdd apply_xnor(const Bdd& f, const Bdd& g);
    [[nodiscard]] Bdd maj(const Bdd& a, const Bdd& b, const Bdd& c);

    /// Shannon cofactor with respect to a single variable.
    [[nodiscard]] Bdd cofactor(const Bdd& f, int var, bool value);
    /// Existential / universal quantification of one variable.
    [[nodiscard]] Bdd exists(const Bdd& f, int var);
    [[nodiscard]] Bdd forall(const Bdd& f, int var);

    /// Coudert-Berthet-Madre `constrain` generalized cofactor F|c.
    [[nodiscard]] Bdd constrain(const Bdd& f, const Bdd& c);
    /// Coudert-Madre `restrict` generalized cofactor (support-reducing).
    [[nodiscard]] Bdd restrict_to(const Bdd& f, const Bdd& c);

    /// Function with the sub-BDD rooted at (regular) node `v` replaced by a
    /// constant; the redirection used by dominator-based decomposition.
    [[nodiscard]] Bdd replace_node_with_const(const Bdd& f, NodeIndex v, bool value);
    /// Function of the node itself (regular edge), as a handle.
    [[nodiscard]] Bdd node_function(NodeIndex v);

    // ---- Analysis ---------------------------------------------------------
    /// Number of internal nodes in the DAG of f (complement edges ignored).
    [[nodiscard]] std::size_t dag_size(const Bdd& f);
    /// DAG size of the union of several functions (shared nodes counted once).
    [[nodiscard]] std::size_t dag_size(std::span<const Bdd> fs);
    [[nodiscard]] std::vector<int> support_vars(const Bdd& f);
    /// Fraction of satisfying minterms over all num_vars() variables.
    [[nodiscard]] double sat_fraction(const Bdd& f);
    [[nodiscard]] bool eval(const Bdd& f, const std::vector<bool>& values_by_var);

    /// Visit each internal node of f's DAG once (by regular node index), in
    /// the same DFS order for every backend. The visitor must not create or
    /// free nodes, and traversals must not nest. Template form: no
    /// std::function indirection in inner loops.
    template <typename Fn>
    void for_each_node(Edge root, Fn&& fn) {
        const NodeIndex r = edge_index(root);
        if (r == kTerminalIndex) return;
        const std::uint32_t gen = begin_traversal();
        std::vector<NodeIndex>& stack = scratch_stack_;
        stack.clear();
        visit_stamp_[r] = gen;
        stack.push_back(r);
        while (!stack.empty()) {
            const NodeIndex idx = stack.back();
            stack.pop_back();
            fn(idx);
            const Node& n = nodes_[idx];
            const NodeIndex hi = edge_index(n.hi);
            if (hi != kTerminalIndex && visit_stamp_[hi] != gen) {
                visit_stamp_[hi] = gen;
                stack.push_back(hi);
            }
            const NodeIndex lo = edge_index(n.lo);
            if (lo != kTerminalIndex && visit_stamp_[lo] != gen) {
                visit_stamp_[lo] = gen;
                stack.push_back(lo);
            }
        }
    }
    /// Compatibility wrapper over for_each_node.
    void visit_nodes(const Bdd& f, const std::function<void(NodeIndex)>& fn);

    /// Expert API: a generation-stamped per-node uint32 side map, O(1) to
    /// create (no allocation, no clearing; backed by Manager-owned scratch
    /// arrays distinct from the traversal stamps). At most one map is live
    /// at a time; creating a new one invalidates the previous map. Entries
    /// for nodes created after the map was made must not be accessed.
    class NodeMap {
    public:
        void set(NodeIndex i, std::uint32_t v) {
            mgr_->map_stamp_[i] = gen_;
            mgr_->map_value_[i] = v;
        }
        [[nodiscard]] bool contains(NodeIndex i) const {
            return mgr_->map_stamp_[i] == gen_;
        }
        /// Undefined unless contains(i).
        [[nodiscard]] std::uint32_t at(NodeIndex i) const { return mgr_->map_value_[i]; }

    private:
        friend class Manager;
        NodeMap(Manager* mgr, std::uint32_t gen) : mgr_(mgr), gen_(gen) {}
        Manager* mgr_;
        std::uint32_t gen_;
    };
    [[nodiscard]] NodeMap make_node_map();

    // ---- Conversion (test oracle bridge) ----------------------------------
    [[nodiscard]] tt::TruthTable to_truth_table(const Bdd& f, int num_tt_vars);
    [[nodiscard]] Bdd from_truth_table(const tt::TruthTable& tt);

    // ---- Structure access (expert API) -------------------------------------
    [[nodiscard]] Bdd from_edge(Edge e);
    [[nodiscard]] std::uint32_t edge_level(Edge e) const;
    [[nodiscard]] int edge_top_var(Edge e) const;
    /// Then-child of the node under e, with e's complement bit applied.
    [[nodiscard]] Edge edge_then(Edge e) const;
    /// Else-child of the node under e, with e's complement bit applied.
    [[nodiscard]] Edge edge_else(Edge e) const;

    // ---- Maintenance -------------------------------------------------------
    /// Reclaim all dead nodes. Invalidates nothing visible: handles keep
    /// their nodes alive.
    void gc();
    /// Rudell sifting over all variables (interaction-aware, lower-bound
    /// pruned; one pass, or repeated passes with ManagerParams::sift_converge).
    /// Keeps every handle valid.
    void sift();
    /// Swap the variables at `level` and `level+1` (exposed for testing).
    void swap_adjacent_levels(int level);
    /// True when the two variables may appear together on a root-to-terminal
    /// path (conservative). Non-interacting adjacent levels swap by label
    /// exchange only. Recomputes the interaction matrix if it is stale.
    [[nodiscard]] bool vars_interact(int a, int b);
    /// Symmetry groups from the most recent detection (each group sorted by
    /// variable, groups ordered by their smallest member; singletons
    /// omitted). Empty when no detection is current — groups are
    /// invalidated by gc()/new_var()/manual swaps, exactly like the
    /// interaction matrix, and re-detected at every symmetry-enabled sift
    /// pass.
    [[nodiscard]] std::vector<std::vector<int>> symmetry_groups() const;
    /// Run symmetry detection now (collect garbage, refresh the interaction
    /// matrix, sweep all adjacent level pairs) and return the groups found.
    /// Detection is exact for adjacent level pairs on the garbage-free
    /// store; pairs separated by other levels are discovered across sift
    /// passes as blocks become adjacent. Exposed for the symmetry oracle
    /// tests; sift() performs the same detection internally.
    [[nodiscard]] std::vector<std::vector<int>> compute_symmetry_groups();
    [[nodiscard]] std::size_t live_node_count() const noexcept { return live_nodes_; }
    [[nodiscard]] std::size_t peak_node_count() const noexcept { return peak_nodes_; }
    /// True after a resource guard or injected fault threw out of an
    /// internal operation: handles stay destructible (dec_ref is
    /// index-safe), but tables may be mid-restructure, so the manager must
    /// not run further operations, be reset(), or be pooled — destroy it.
    /// ManagerPool::release honors this automatically.
    [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
    /// Computed-table hit/miss/insert/collision counters.
    [[nodiscard]] const CacheStats& cache_stats() const noexcept { return cache_stats_; }
    /// Reordering swap/skip/abort counters.
    [[nodiscard]] const ReorderStats& reorder_stats() const noexcept {
        return reorder_stats_;
    }
    /// Structural audit of the node store: unique-table chain membership and
    /// entry counts, level_live_ census, ordering/canonicity invariants,
    /// free-list hygiene, and (when current) interaction-matrix consistency.
    /// Returns an empty string when everything holds, else a description of
    /// the first violation. Intended for debug builds and the reorder
    /// invariant tests; O(nodes).
    [[nodiscard]] std::string check_integrity() const;
    /// Current computed-table capacity in entries.
    [[nodiscard]] std::size_t cache_capacity() const noexcept { return cache_.size(); }
    /// DOT rendering of one or more roots, for documentation/debugging.
    [[nodiscard]] std::string to_dot(std::span<const Bdd> roots,
                                     std::span<const std::string> names = {});

private:
    friend class Bdd;

    /// Hot node section (12 B): the only fields every recursive core, every
    /// traversal, and every swap restructure reads. Packing them alone puts
    /// ~5 nodes per cache line instead of ~3.
    struct Node {
        std::uint32_t level = kTerminalLevel;
        Edge hi = kEdgeInvalid;  // then-edge; always regular
        Edge lo = kEdgeInvalid;  // else-edge; may be complemented
    };
    /// Cold node section: unique-table chain link and reference count, only
    /// touched by hash-cons lookups, refcounting, and GC. Indexed in
    /// lockstep with nodes_.
    struct NodeAux {
        std::uint32_t next = kNil;  // unique-table chain / free list
        std::uint32_t ref = 0;
    };

    struct LevelTable {
        std::vector<std::uint32_t> buckets;  // heads of chains, kNil = empty
        std::uint32_t entries = 0;
    };

    enum class CacheOp : std::uint8_t { kIte = 1, kConstrain, kRestrict, kReplace,
                                        kAnd, kXor };

    struct CacheEntry {
        Edge f = kEdgeInvalid, g = kEdgeInvalid, h = kEdgeInvalid;
        Edge result = kEdgeInvalid;
        CacheOp op{};
    };

    static constexpr std::uint32_t kNil = 0xffffffffu;

    // Reference counting.
    void inc_ref(Edge e);
    void dec_ref(Edge e);

    // Node construction (normalizes complement attribute; hash-consed).
    Edge make_node(std::uint32_t level, Edge hi, Edge lo);
    std::uint32_t alloc_slot();
    void table_insert(std::uint32_t level, NodeIndex idx);
    void table_remove(std::uint32_t level, NodeIndex idx);
    void maybe_grow_table(LevelTable& table);
    /// Size an (empty) table's bucket array for an expected population:
    /// one pow2 resize instead of doubling through overloaded chains during
    /// swap re-insertion. Only legal when the table has no entries.
    void size_empty_table(LevelTable& table, std::size_t expected);
    [[nodiscard]] std::size_t bucket_of(const LevelTable& table, Edge hi, Edge lo) const;

    // Variable interaction matrix: row v is the bit-set of variables that
    // may appear strictly below a v-labeled node (var-granularity transitive
    // reach over every tabled node, live or dead — a conservative
    // over-approximation of ancestor/descendant variable pairs). Two
    // adjacent levels whose variables do not interact swap by label
    // exchange, with no table evacuation and no node restructuring.
    void recompute_interactions();
    void interaction_add_node(std::uint32_t level, Edge hi, Edge lo);
    [[nodiscard]] bool interaction_bit(int a, int b) const {
        return (interact_[static_cast<std::size_t>(a) * interact_words_ +
                          (static_cast<std::size_t>(b) >> 6)] >>
                (static_cast<std::size_t>(b) & 63)) &
               1u;
    }
    [[nodiscard]] bool vars_interact_raw(int a, int b) const {
        // Rows are directional (reach-below); a symmetric query reads both.
        return interaction_bit(a, b) || interaction_bit(b, a);
    }

    // Computed table. The slot index is computed once per (op, operands)
    // triple and shared between the lookup and the insert; the table never
    // resizes while a recursive core is on the stack, so a slot stays valid
    // across the recursion between the two.
    [[nodiscard]] std::size_t cache_slot(CacheOp op, Edge f, Edge g, Edge h) const;
    [[nodiscard]] bool cache_probe(std::size_t slot, CacheOp op, Edge f, Edge g,
                                   Edge h, Edge* out) const;
    void cache_store(std::size_t slot, CacheOp op, Edge f, Edge g, Edge h, Edge result);
    [[nodiscard]] bool cache_lookup(CacheOp op, Edge f, Edge g, Edge h, Edge* out) const;
    void cache_insert(CacheOp op, Edge f, Edge g, Edge h, Edge result);
    void cache_clear();
    /// Grow the computed table with the live-node count (top level only).
    void maybe_grow_cache();
    /// Free dead nodes without touching the computed table. Callers must
    /// clear the cache before the next cache probe (freed slots may be
    /// recycled, so stale entries could falsely hit).
    void sweep_dead();

    // Traversal scratch.
    std::uint32_t begin_traversal();

    // Recursive cores (no GC may run while these are on the stack).
    Edge ite_rec(Edge f, Edge g, Edge h);
    Edge and_rec(Edge f, Edge g);
    Edge xor_rec(Edge f, Edge g);
    Edge constrain_rec(Edge f, Edge c);
    Edge restrict_rec(Edge f, Edge c);
    Edge replace_rec(Edge f, NodeIndex v, Edge replacement,
                     std::vector<Edge>& memo_reg, std::vector<Edge>& memo_comp,
                     std::vector<NodeIndex>& touched);
    void cofactors_at(Edge e, std::uint32_t level, Edge* hi, Edge* lo) const;

    void auto_gc_if_needed();

    // Sifting internals. Sifting moves "units": a unit is a detected
    // symmetry group (contiguous run of levels) or a single variable. With
    // sift_symmetry off every unit is a singleton and the unit machinery
    // degenerates bit-for-bit to the classical per-variable schedule.
    std::size_t swap_levels_internal(std::uint32_t upper);
    /// Exchange the k-level unit whose top is at `top` with the whole unit
    /// below (above) it; returns the neighbor unit's size in levels.
    int swap_unit_down(int top, int k);
    int swap_unit_up(int top, int k);
    /// Number of levels of the unit containing `level`, extending downward
    /// (upward). 1 unless symmetry groups are current.
    [[nodiscard]] int unit_span_down(int level) const;
    [[nodiscard]] int unit_span_up(int level) const;
    void sift_unit_to(int cur_top, int k, int target_top);
    void sift_pass();

    // Symmetry detection (see symmetry_groups()).
    [[nodiscard]] std::uint32_t sym_find(std::uint32_t v) const;
    void sym_union(std::uint32_t a, std::uint32_t b);
    /// Exact structural check that the variables at `upper` and `upper + 1`
    /// are symmetric in every root. Requires a garbage-free store.
    [[nodiscard]] bool adjacent_symmetric(std::uint32_t upper);
    void detect_symmetries();
    /// Clear the computed table only when it may hold stale entries (a node
    /// slot was freed, or an order-dependent result was cached); pure
    /// reorders keep it warm.
    void cache_clear_after_reorder();

    ManagerParams params_;
    std::vector<Node> nodes_;
    std::vector<NodeAux> aux_;              // cold section, lockstep with nodes_
    std::vector<LevelTable> tables_;        // one per level
    std::vector<std::uint32_t> level_live_; // live nodes per level
    std::vector<std::uint32_t> var_to_level_;
    std::vector<std::uint32_t> level_to_var_;
    std::vector<CacheEntry> cache_;
    mutable CacheStats cache_stats_;
    ReorderStats reorder_stats_;
    std::uint32_t free_list_ = kNil;
    std::size_t live_nodes_ = 0;   // internal nodes with ref > 0
    std::size_t dead_nodes_ = 0;   // internal nodes with ref == 0, still tabled
    std::size_t peak_nodes_ = 0;
    int op_depth_ = 0;  // >0 while a recursive core is running (blocks GC)
    bool poisoned_ = false;  // a guard/fault threw mid-operation; see poisoned()
    /// reorder_stats_ swap total at the current sift()'s entry; the
    /// sift_max_swaps ceiling is per-sift, not lifetime.
    std::uint64_t sift_swap_mark_ = 0;
    /// Throws ResourceExhausted (and poisons) when the current sift() has
    /// spent more than params_.sift_max_swaps swaps. Called at the
    /// unit-swap entry points, where no temporary handles are held.
    void check_sift_budget();

    // Interaction matrix (see recompute_interactions). interact_valid_
    // means the matrix is current; make_node keeps it current while set
    // (two row-ORs per fresh node), gc()/new_var() invalidate so the next
    // reorder recomputes a tight matrix on demand. interact_trusted_ is
    // set for the duration of a reorder operation: swaps only remove
    // variable-pair paths, so the matrix recomputed at reorder entry stays
    // a sound over-approximation throughout even as restructuring creates
    // nodes.
    std::vector<std::uint64_t> interact_;
    std::size_t interact_words_ = 0;  // 64-bit words per matrix row
    bool interact_valid_ = false;
    bool interact_trusted_ = false;
    // Symmetry union-find over variables (parent always <= child, root is
    // the smallest member). sym_valid_ means the groups describe the
    // current roots; invalidated wherever the interaction matrix is
    // (gc()/new_var()) plus manual swap_adjacent_levels, which could split
    // a group's contiguous level run. Wrong or stale groups can only cost
    // sift quality, never correctness: block moves are composed of
    // ordinary verified adjacent swaps.
    std::vector<std::uint32_t> sym_parent_;
    bool sym_valid_ = false;
    // Swap scratch, reused across the tens of thousands of adjacent swaps a
    // sift performs (three vector allocations per swap otherwise).
    std::vector<NodeIndex> swap_xs_;
    std::vector<NodeIndex> swap_ys_;
    std::vector<NodeIndex> swap_restructure_;
    /// True when the computed table may hold entries that a reorder would
    /// invalidate: a node slot was freed since the last clear (results
    /// could resurrect recycled slots), or a constrain/restrict result —
    /// which depends on the variable order — was inserted. ITE/AND/XOR
    /// entries map functions to canonical edges and survive reordering.
    bool cache_tainted_ = false;

    // Generation-stamped scratch (traversals, NodeMap, analysis memos).
    // stamp[i] == generation means "visited/set in the current pass"; a
    // reset is one counter increment, never a clear.
    std::vector<std::uint32_t> visit_stamp_;
    std::vector<NodeIndex> scratch_stack_;
    std::uint32_t traversal_gen_ = 0;
    std::vector<std::uint32_t> map_stamp_;
    std::vector<std::uint32_t> map_value_;
    std::uint32_t map_gen_ = 0;
    std::vector<double> sat_memo_;  // valid where visit_stamp_ matches
};

}  // namespace bdsmaj::bdd
