#pragma once
// Process-wide pool of reusable BDD managers.
//
// The BDS flow gives every supernode a fresh local manager; on real suites
// that is tens of thousands of construct/destruct cycles whose cost is
// dominated by allocating (and then freeing) the node store, the per-level
// unique tables and the computed table. The pool keeps retired managers
// and hands them back through Manager::reset(), which restores the exact
// observable state of a fresh Manager while retaining the grown vector
// capacities — so pooled reuse is a pure allocation-traffic optimization
// and provably cannot change any synthesis result.
//
// Usage is RAII through Lease: acquire() resets an idle manager (or
// constructs one) and the lease returns it on destruction. Thread-safe;
// leases from different threads hand out distinct managers, which is
// exactly the per-worker-manager shape of the parallel supernode pipeline.

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

class ManagerPool {
public:
    /// The singleton shared by all flows/jobs/threads.
    [[nodiscard]] static ManagerPool& instance();

    class Lease {
    public:
        Lease(Lease&& o) noexcept : pool_(o.pool_), mgr_(std::move(o.mgr_)) {
            o.pool_ = nullptr;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        Lease& operator=(Lease&&) = delete;
        ~Lease() {
            if (pool_ != nullptr) pool_->release(std::move(mgr_));
        }

        [[nodiscard]] Manager& operator*() const noexcept { return *mgr_; }
        [[nodiscard]] Manager* operator->() const noexcept { return mgr_.get(); }

    private:
        friend class ManagerPool;
        Lease(ManagerPool* pool, std::unique_ptr<Manager> mgr)
            : pool_(pool), mgr_(std::move(mgr)) {}

        ManagerPool* pool_;
        std::unique_ptr<Manager> mgr_;
    };

    /// A manager in the state Manager(num_vars, params) would construct;
    /// returned to the pool when the lease dies. All Bdd handles into it
    /// must be released before then.
    [[nodiscard]] Lease acquire(int num_vars, const ManagerParams& params);

    /// Cap on retained idle managers; extras are destroyed on release.
    void set_max_idle(std::size_t n);
    [[nodiscard]] std::size_t idle_count() const;
    /// Drop all idle managers (tests; memory pressure).
    void clear();

private:
    ManagerPool() = default;
    void release(std::unique_ptr<Manager> mgr);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Manager>> idle_;
    std::size_t max_idle_ = 64;
};

}  // namespace bdsmaj::bdd
