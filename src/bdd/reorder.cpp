#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

// ---------------------------------------------------------------------------
// In-place adjacent-level swap.
//
// Variables x (upper level u) and y (lower level u+1) exchange positions.
// All node indices stay valid: nodes are rewritten in place, so every
// outstanding handle and every parent edge continues to denote the same
// function. The procedure is the classical one used by reordering BDD
// packages:
//   1. evacuate both levels from their unique tables;
//   2. x-nodes that do not reference level u+1 simply move down;
//   3. x-nodes that do are rewritten in place into y-nodes over fresh
//      (or shared) x-nodes built at level u+1:
//         x ? (y?f11:f10) : (y?f01:f00)   ==   y ? (x?f11:f01) : (x?f10:f00)
//   4. old y-nodes that are still referenced move up, dead ones are freed.
// ---------------------------------------------------------------------------

std::size_t Manager::swap_levels_internal(std::uint32_t upper) {
    const std::uint32_t lower = upper + 1;
    assert(lower < tables_.size());

    auto evacuate = [&](std::uint32_t level) {
        std::vector<NodeIndex> out;
        LevelTable& table = tables_[level];
        for (auto& head : table.buckets) {
            for (std::uint32_t idx = head; idx != kNil;) {
                const std::uint32_t next = nodes_[idx].next;
                out.push_back(idx);
                idx = next;
            }
            head = kNil;
        }
        table.entries = 0;
        return out;
    };

    const std::vector<NodeIndex> xs = evacuate(upper);
    const std::vector<NodeIndex> ys = evacuate(lower);

    auto free_dead_node = [&](NodeIndex idx) {
        // Node is out of every table and has ref == 0.
        dec_ref(nodes_[idx].hi);
        dec_ref(nodes_[idx].lo);
        nodes_[idx].level = kTerminalLevel;
        nodes_[idx].hi = kEdgeInvalid;
        nodes_[idx].lo = kEdgeInvalid;
        nodes_[idx].next = free_list_;
        free_list_ = idx;
        --dead_nodes_;
    };

    // Pass 1: move x-nodes independent of y down to the lower level, so that
    // pass 2's make_node lookups can share them instead of duplicating.
    std::vector<NodeIndex> to_restructure;
    for (const NodeIndex idx : xs) {
        if (nodes_[idx].ref == 0) {
            free_dead_node(idx);
            continue;
        }
        const Edge t = nodes_[idx].hi;
        const Edge e = nodes_[idx].lo;
        if (edge_level(t) != lower && edge_level(e) != lower) {
            --level_live_[upper];
            ++level_live_[lower];
            nodes_[idx].level = lower;
            table_insert(lower, idx);
        } else {
            to_restructure.push_back(idx);
        }
    }

    // Pass 2: rewrite y-dependent x-nodes in place.
    for (const NodeIndex idx : to_restructure) {
        const Edge t = nodes_[idx].hi;  // regular by invariant
        const Edge e = nodes_[idx].lo;
        Edge f11, f10, f01, f00;
        cofactors_at(t, lower, &f11, &f10);
        cofactors_at(e, lower, &f01, &f00);
        // make_node may reallocate nodes_; do not hold references across it.
        const Edge new_hi = make_node(lower, f11, f01);
        const Edge new_lo = make_node(lower, f10, f00);
        assert(!edge_complemented(new_hi));
        assert(new_hi != new_lo);
        inc_ref(new_hi);
        inc_ref(new_lo);
        dec_ref(t);
        dec_ref(e);
        nodes_[idx].hi = new_hi;
        nodes_[idx].lo = new_lo;
        table_insert(upper, idx);  // stays at `upper`, now labeled y
    }

    // Pass 3: relocate surviving y-nodes to the upper level, free dead ones.
    for (const NodeIndex idx : ys) {
        if (nodes_[idx].ref == 0) {
            free_dead_node(idx);
        } else {
            --level_live_[lower];
            ++level_live_[upper];
            nodes_[idx].level = upper;
            table_insert(upper, idx);
        }
    }

    // Pass 4: exchange the variable labels of the two levels.
    std::swap(level_to_var_[upper], level_to_var_[lower]);
    var_to_level_[level_to_var_[upper]] = upper;
    var_to_level_[level_to_var_[lower]] = lower;
    return live_nodes_;
}

void Manager::swap_adjacent_levels(int level) {
    if (level < 0 || level + 1 >= static_cast<int>(tables_.size())) {
        throw std::out_of_range("swap_adjacent_levels: bad level");
    }
    assert(op_depth_ == 0);
    cache_clear();  // cache entries are order-dependent
    swap_levels_internal(static_cast<std::uint32_t>(level));
}

// ---------------------------------------------------------------------------
// Rudell sifting: move each variable through the whole order, keep the best
// position. Variables are processed in decreasing order of their level's
// node count, the standard heuristic.
// ---------------------------------------------------------------------------

void Manager::sift_var_to(int var, int target_level) {
    int cur = level_of_var(var);
    while (cur < target_level) {
        swap_levels_internal(static_cast<std::uint32_t>(cur));
        ++cur;
    }
    while (cur > target_level) {
        swap_levels_internal(static_cast<std::uint32_t>(cur - 1));
        --cur;
    }
}

void Manager::sift() {
    assert(op_depth_ == 0);
    const int num_levels = static_cast<int>(tables_.size());
    if (num_levels < 2) {
        gc();
        return;
    }
    // Start from an exact live census. No operation probes the computed
    // table until sifting finishes, so intermediate collections only sweep;
    // the single cache_clear at the end drops the order-stale (and possibly
    // slot-recycled) entries in one pass.
    sweep_dead();

    std::vector<int> vars(var_to_level_.size());
    for (std::size_t v = 0; v < vars.size(); ++v) vars[v] = static_cast<int>(v);
    std::sort(vars.begin(), vars.end(), [&](int a, int b) {
        return level_live_[var_to_level_[static_cast<std::size_t>(a)]] >
               level_live_[var_to_level_[static_cast<std::size_t>(b)]];
    });
    if (static_cast<int>(vars.size()) > params_.sift_max_vars) {
        vars.resize(static_cast<std::size_t>(params_.sift_max_vars));
    }

    for (const int var : vars) {
        const int start = level_of_var(var);
        std::size_t best_size = live_nodes_;
        int best_level = start;
        int cur = start;

        // Visit the nearer end of the order first: fewer swaps in the common
        // case where the variable does not want to travel far.
        const bool down_first = (num_levels - 1 - start) <= start;
        for (const bool downward : {down_first, !down_first}) {
            if (downward) {
                while (cur + 1 < num_levels) {
                    swap_levels_internal(static_cast<std::uint32_t>(cur));
                    ++cur;
                    if (live_nodes_ < best_size) {
                        best_size = live_nodes_;
                        best_level = cur;
                    } else if (static_cast<double>(live_nodes_) >
                               params_.sift_max_growth * static_cast<double>(best_size)) {
                        break;
                    }
                }
            } else {
                while (cur > 0) {
                    swap_levels_internal(static_cast<std::uint32_t>(cur - 1));
                    --cur;
                    if (live_nodes_ < best_size) {
                        best_size = live_nodes_;
                        best_level = cur;
                    } else if (static_cast<double>(live_nodes_) >
                               params_.sift_max_growth * static_cast<double>(best_size)) {
                        break;
                    }
                }
            }
        }
        sift_var_to(var, best_level);
        if (dead_nodes_ > params_.gc_dead_threshold) sweep_dead();
    }
    sweep_dead();
    cache_clear();  // cache entries are order-dependent (and slots recycle)
}

}  // namespace bdsmaj::bdd
