#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

namespace {

/// Marks the interaction matrix as trusted for the duration of a reorder
/// operation (swaps only remove variable-pair paths, so the matrix
/// recomputed at entry stays a sound over-approximation throughout).
class InteractionTrustGuard {
public:
    explicit InteractionTrustGuard(bool& flag) : flag_(flag) { flag_ = true; }
    ~InteractionTrustGuard() { flag_ = false; }
    InteractionTrustGuard(const InteractionTrustGuard&) = delete;
    InteractionTrustGuard& operator=(const InteractionTrustGuard&) = delete;

private:
    bool& flag_;
};

}  // namespace

// ---------------------------------------------------------------------------
// In-place adjacent-level swap.
//
// Variables x (upper level u) and y (lower level u+1) exchange positions.
// All node indices stay valid: nodes are rewritten in place, so every
// outstanding handle and every parent edge continues to denote the same
// function.
//
// Fast path — label-only exchange. When either level is empty, or the
// interaction matrix proves no x-labeled node can have a y-labeled
// descendant (so in particular no direct u -> u+1 edge exists), no node
// needs restructuring: every node keeps its variable, children, and hash
// key; only its level changes. The two tables and live counts are swapped
// wholesale — no evacuation, no rehashing, no refcount churn, and the
// computed table stays exactly valid (no slot was freed or created).
//
// Slow path — the classical restructuring swap used by reordering BDD
// packages:
//   1. evacuate both levels from their unique tables (and size the empty
//      bucket arrays once for the incoming population, instead of doubling
//      through overloaded chains insert by insert);
//   2. x-nodes that do not reference level u+1 simply move down;
//   3. x-nodes that do are rewritten in place into y-nodes over fresh
//      (or shared) x-nodes built at level u+1:
//         x ? (y?f11:f10) : (y?f01:f00)   ==   y ? (x?f11:f01) : (x?f10:f00)
//   4. old y-nodes that are still referenced move up, dead ones are freed.
// ---------------------------------------------------------------------------

std::size_t Manager::swap_levels_internal(std::uint32_t upper) {
    const std::uint32_t lower = upper + 1;
    assert(lower < tables_.size());

    const int vx = static_cast<int>(level_to_var_[upper]);
    const int vy = static_cast<int>(level_to_var_[lower]);
    bool label_only = tables_[upper].entries == 0 || tables_[lower].entries == 0;
    if (!label_only && interact_trusted_ && !vars_interact_raw(vx, vy)) {
        label_only = true;
#ifndef NDEBUG
        // The matrix is conservative: non-interacting really does mean no
        // node at `upper` reaches into `lower`.
        for (const std::uint32_t head : tables_[upper].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                assert(edge_level(nodes_[idx].hi) != lower &&
                       edge_level(nodes_[idx].lo) != lower);
            }
        }
#endif
    }
    if (label_only) {
        for (const std::uint32_t head : tables_[upper].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                nodes_[idx].level = lower;
            }
        }
        for (const std::uint32_t head : tables_[lower].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                nodes_[idx].level = upper;
            }
        }
        std::swap(tables_[upper], tables_[lower]);
        std::swap(level_live_[upper], level_live_[lower]);
        std::swap(level_to_var_[upper], level_to_var_[lower]);
        var_to_level_[level_to_var_[upper]] = upper;
        var_to_level_[level_to_var_[lower]] = lower;
        ++reorder_stats_.fast_swaps;
        return live_nodes_;
    }

    auto evacuate = [&](std::uint32_t level, std::vector<NodeIndex>& out) {
        out.clear();
        LevelTable& table = tables_[level];
        out.reserve(table.entries);
        for (auto& head : table.buckets) {
            for (std::uint32_t idx = head; idx != kNil;) {
                const std::uint32_t next = aux_[idx].next;
                out.push_back(idx);
                idx = next;
            }
            head = kNil;
        }
        table.entries = 0;
    };

    std::vector<NodeIndex>& xs = swap_xs_;
    std::vector<NodeIndex>& ys = swap_ys_;
    evacuate(upper, xs);
    evacuate(lower, ys);
    // Both tables are about to absorb roughly the other level's population
    // (plus restructuring shares); one sized assign beats doubling through
    // overloaded chains during re-insertion.
    size_empty_table(tables_[upper], xs.size() + ys.size());
    size_empty_table(tables_[lower], xs.size() + ys.size());

    auto free_dead_node = [&](NodeIndex idx) {
        // Node is out of every table and has ref == 0.
        dec_ref(nodes_[idx].hi);
        dec_ref(nodes_[idx].lo);
        nodes_[idx].level = kTerminalLevel;
        nodes_[idx].hi = kEdgeInvalid;
        nodes_[idx].lo = kEdgeInvalid;
        aux_[idx].next = free_list_;
        free_list_ = idx;
        --dead_nodes_;
        cache_tainted_ = true;  // slot may recycle into a different function
    };

    // Pass 1: move x-nodes independent of y down to the lower level, so that
    // pass 2's make_node lookups can share them instead of duplicating.
    std::vector<NodeIndex>& to_restructure = swap_restructure_;
    to_restructure.clear();
    for (const NodeIndex idx : xs) {
        if (aux_[idx].ref == 0) {
            free_dead_node(idx);
            continue;
        }
        const Edge t = nodes_[idx].hi;
        const Edge e = nodes_[idx].lo;
        if (edge_level(t) != lower && edge_level(e) != lower) {
            --level_live_[upper];
            ++level_live_[lower];
            nodes_[idx].level = lower;
            table_insert(lower, idx);
        } else {
            to_restructure.push_back(idx);
        }
    }

    // Pass 2: rewrite y-dependent x-nodes in place.
    for (const NodeIndex idx : to_restructure) {
        const Edge t = nodes_[idx].hi;  // regular by invariant
        const Edge e = nodes_[idx].lo;
        Edge f11, f10, f01, f00;
        cofactors_at(t, lower, &f11, &f10);
        cofactors_at(e, lower, &f01, &f00);
        // make_node may reallocate nodes_; do not hold references across it.
        const Edge new_hi = make_node(lower, f11, f01);
        const Edge new_lo = make_node(lower, f10, f00);
        assert(!edge_complemented(new_hi));
        assert(new_hi != new_lo);
        inc_ref(new_hi);
        inc_ref(new_lo);
        dec_ref(t);
        dec_ref(e);
        nodes_[idx].hi = new_hi;
        nodes_[idx].lo = new_lo;
        table_insert(upper, idx);  // stays at `upper`, now labeled y
    }

    // Pass 3: relocate surviving y-nodes to the upper level, free dead ones.
    for (const NodeIndex idx : ys) {
        if (aux_[idx].ref == 0) {
            free_dead_node(idx);
        } else {
            --level_live_[lower];
            ++level_live_[upper];
            nodes_[idx].level = upper;
            table_insert(upper, idx);
        }
    }

    // Pass 4: exchange the variable labels of the two levels.
    std::swap(level_to_var_[upper], level_to_var_[lower]);
    var_to_level_[level_to_var_[upper]] = upper;
    var_to_level_[level_to_var_[lower]] = lower;
    ++reorder_stats_.swaps;
    return live_nodes_;
}

void Manager::swap_adjacent_levels(int level) {
    if (level < 0 || level + 1 >= static_cast<int>(tables_.size())) {
        throw std::out_of_range("swap_adjacent_levels: bad level");
    }
    assert(op_depth_ == 0);
    if (!interact_valid_) recompute_interactions();
    {
        InteractionTrustGuard trust(interact_trusted_);
        swap_levels_internal(static_cast<std::uint32_t>(level));
    }
    // Cache entries are edge-keyed results of canonical functions, which a
    // swap preserves; only freed slots or order-dependent (constrain /
    // restrict) entries force the wipe.
    cache_clear_after_reorder();
    // A manual swap can split a symmetry group's contiguous level run.
    sym_valid_ = false;
}

// ---------------------------------------------------------------------------
// Variable symmetry detection.
//
// Variables x and y are symmetric when f(x=1,y=0) == f(x=0,y=1) for every
// root. For x at level u and y directly below at u+1, the structural check
// below is exact on a garbage-free store (every tabled node live, so every
// node is reachable from an external handle):
//
//   (1) at every u-node, the exchanged cofactors agree:
//       cofactor(then-edge, y=0) == cofactor(else-edge, y=1);
//   (2) every u+1-node is referenced only from u-nodes — an external
//       handle on a y-node, or a parent above level u, denotes a function
//       that depends on y along some path that never tests x, which breaks
//       the exchange for that root.
//
// Both comparisons are on canonical (complement-folded) edges, so edge
// equality is function equality. Candidate pairs are seeded from the
// interaction matrix: a non-interacting pair shares no root, so some root
// depends on exactly one of the two — asymmetric (or both variables are
// unused, where grouping buys nothing).
//
// Symmetry is transitive (the permutations fixing every root form a group:
// transpositions (xy) and (yz) generate (xz)), so unioning adjacent
// confirmed pairs yields groups any member pair of which is symmetric.
// Groups are purely a placement heuristic — block moves decompose into
// ordinary adjacent swaps, so stale or missed groups can only cost sift
// quality, never correctness.
// ---------------------------------------------------------------------------

std::uint32_t Manager::sym_find(std::uint32_t v) const {
    while (sym_parent_[v] != v) v = sym_parent_[v];
    return v;
}

void Manager::sym_union(std::uint32_t a, std::uint32_t b) {
    const std::uint32_t ra = sym_find(a);
    const std::uint32_t rb = sym_find(b);
    if (ra == rb) return;
    // Rooting at the smaller variable keeps sym_parent_[v] <= v everywhere,
    // which check_integrity() audits.
    sym_parent_[std::max(ra, rb)] = std::min(ra, rb);
}

bool Manager::adjacent_symmetric(std::uint32_t upper) {
    assert(dead_nodes_ == 0 && "symmetry check needs a garbage-free store");
    const std::uint32_t lower = upper + 1;
    const LevelTable& ut = tables_[upper];
    const LevelTable& lt = tables_[lower];
    // One level populated, the other not: some root depends on exactly one
    // of the two variables. (Interaction seeding already filters this.)
    if (ut.entries == 0 || lt.entries == 0) return false;

    // Condition (2): count level-`upper` parent edges per lower node and
    // compare with its refcount; any surplus is an external handle or a
    // parent above `upper`.
    NodeMap parents = make_node_map();
    for (const std::uint32_t head : ut.buckets) {
        for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
            for (const Edge child : {nodes_[idx].hi, nodes_[idx].lo}) {
                if (edge_level(child) != lower) continue;
                const NodeIndex c = edge_index(child);
                parents.set(c, (parents.contains(c) ? parents.at(c) : 0) + 1);
            }
        }
    }
    for (const std::uint32_t head : lt.buckets) {
        for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
            const std::uint32_t cnt = parents.contains(idx) ? parents.at(idx) : 0;
            if (aux_[idx].ref != cnt) return false;
        }
    }

    // Condition (1): f(x=1,y=0) == f(x=0,y=1) at every upper node.
    for (const std::uint32_t head : ut.buckets) {
        for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
            Edge f11, f10, f01, f00;
            cofactors_at(nodes_[idx].hi, lower, &f11, &f10);
            cofactors_at(nodes_[idx].lo, lower, &f01, &f00);
            if (f10 != f01) return false;
        }
    }
    return true;
}

void Manager::detect_symmetries() {
    const std::size_t n = var_to_level_.size();
    sym_parent_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        sym_parent_[v] = static_cast<std::uint32_t>(v);
    }
    for (std::uint32_t u = 0; u + 1 < tables_.size(); ++u) {
        const int vx = static_cast<int>(level_to_var_[u]);
        const int vy = static_cast<int>(level_to_var_[u + 1]);
        if (!vars_interact_raw(vx, vy)) continue;
        if (adjacent_symmetric(u)) {
            sym_union(static_cast<std::uint32_t>(vx),
                      static_cast<std::uint32_t>(vy));
            ++reorder_stats_.sym_pairs;
        }
    }
    sym_valid_ = true;
    std::vector<std::uint8_t> counted(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
        const std::uint32_t root = sym_find(static_cast<std::uint32_t>(v));
        if (root != v && counted[root] == 0) {
            counted[root] = 1;
            ++reorder_stats_.sym_groups;
        }
    }
}

std::vector<std::vector<int>> Manager::symmetry_groups() const {
    std::vector<std::vector<int>> out;
    if (!sym_valid_) return out;
    const std::size_t n = sym_parent_.size();
    std::vector<int> group_of(n, -1);
    for (std::size_t v = 0; v < n; ++v) {
        const auto root = static_cast<std::size_t>(
            sym_find(static_cast<std::uint32_t>(v)));
        if (root == v) continue;
        if (group_of[root] < 0) {
            group_of[root] = static_cast<int>(out.size());
            out.emplace_back();
            out.back().push_back(static_cast<int>(root));
        }
        out[static_cast<std::size_t>(group_of[root])].push_back(
            static_cast<int>(v));
    }
    std::sort(out.begin(), out.end());  // by smallest member
    return out;
}

std::vector<std::vector<int>> Manager::compute_symmetry_groups() {
    assert(op_depth_ == 0);
    gc();  // detection needs the garbage-free store
    if (!interact_valid_) recompute_interactions();
    detect_symmetries();
    return symmetry_groups();
}

// ---------------------------------------------------------------------------
// Rudell sifting: move each variable through the whole order, keep the best
// position. Variables are processed in decreasing order of their level's
// node count, the standard heuristic. Two refinements over the textbook
// loop, both provably order-preserving (the final position of every
// variable is identical to the exhaustive version; tests enforce it):
//
//   * interaction fast path — swaps over runs of non-interacting levels are
//     label-only exchanges inside swap_levels_internal, costing no
//     restructuring and never changing the live size;
//   * lower-bound pruning — each variable's exploration starts from a
//     garbage-free store (sweep_dead; sweeps never touch live structure),
//     after which every node that dies during the exploration is a
//     descendant of an x-node: restructuring dec-refs hit x-children, and
//     cascaded frees only follow descendant edges of nodes that died the
//     same way. Levels whose variables do not interact with x therefore
//     keep their live counts for the whole exploration, so
//         live  -  (live_at_x_level - x_floor)  -  sum of interacting
//                                                  levels' live counts
//     bounds every reachable future size from below (for the downward run
//     only the not-yet-passed levels below can still shrink, which
//     tightens the sum). The moment the bound reaches the best size
//     already found, no further position in the direction can strictly
//     improve, and it is abandoned. The x_floor of 1 is sound because a
//     restructuring swap always leaves at least one live x-labeled node
//     when one existed before (t == e is impossible for a canonical node),
//     and no cascade can kill an x-node (a variable never appears twice on
//     a path).
// ---------------------------------------------------------------------------

// Sifting moves "units": a detected symmetry group occupying a contiguous
// run of k levels, or (the default) a single variable with k == 1. A unit
// never stops strictly inside another unit's span — it steps past whole
// neighbor units — so every group stays contiguous throughout a pass.

int Manager::unit_span_down(int level) const {
    if (!sym_valid_) return 1;
    const std::uint32_t root =
        sym_find(level_to_var_[static_cast<std::size_t>(level)]);
    int span = 1;
    while (level + span < static_cast<int>(level_to_var_.size()) &&
           sym_find(level_to_var_[static_cast<std::size_t>(level + span)]) ==
               root) {
        ++span;
    }
    return span;
}

int Manager::unit_span_up(int level) const {
    if (!sym_valid_) return 1;
    const std::uint32_t root =
        sym_find(level_to_var_[static_cast<std::size_t>(level)]);
    int span = 1;
    while (level - span >= 0 &&
           sym_find(level_to_var_[static_cast<std::size_t>(level - span)]) ==
               root) {
        ++span;
    }
    return span;
}

void Manager::check_sift_budget() {
    if (params_.sift_max_swaps == 0) return;
    const std::uint64_t spent =
        reorder_stats_.swaps + reorder_stats_.fast_swaps - sift_swap_mark_;
    if (spent <= params_.sift_max_swaps) return;
    // Between unit swaps the store is structurally consistent and no
    // temporary handles are held, but the sift is abandoned mid-schedule:
    // poison so the half-reordered manager is destroyed, not pooled.
    poisoned_ = true;
    throw ResourceExhausted("bdd::Manager: sift_max_swaps ceiling (" +
                            std::to_string(params_.sift_max_swaps) + ") reached");
}

int Manager::swap_unit_down(int top, int k) {
    check_sift_budget();
    const int m = unit_span_down(top + k);
    // The whole m-level neighbor unit rises through the block: its j-th
    // member starts at top + k + j and bubbles up to top + j (k adjacent
    // swaps each, label-only wherever the interaction matrix allows).
    for (int j = 0; j < m; ++j) {
        for (int l = top + k + j - 1; l >= top + j; --l) {
            swap_levels_internal(static_cast<std::uint32_t>(l));
        }
    }
    if (k > 1 || m > 1) ++reorder_stats_.sym_block_swaps;
    return m;
}

int Manager::swap_unit_up(int top, int k) {
    check_sift_budget();
    const int m = unit_span_up(top - 1);
    // Mirror image: the neighbor's j-th member counted from its bottom
    // starts at top - 1 - j and descends to top + k - 1 - j.
    for (int j = 0; j < m; ++j) {
        for (int l = top - 1 - j; l <= top + k - 2 - j; ++l) {
            swap_levels_internal(static_cast<std::uint32_t>(l));
        }
    }
    if (k > 1 || m > 1) ++reorder_stats_.sym_block_swaps;
    return m;
}

void Manager::sift_unit_to(int cur_top, int k, int target_top) {
    // Other units keep their relative order while this one travels, so the
    // boundary positions on the way back are exactly those seen on the way
    // out and the steps land on target_top precisely.
    while (cur_top < target_top) cur_top += swap_unit_down(cur_top, k);
    while (cur_top > target_top) cur_top -= swap_unit_up(cur_top, k);
    assert(cur_top == target_top && "unit boundaries must realign");
}

void Manager::sift_pass() {
    const int num_levels = static_cast<int>(tables_.size());
    // Recompute per pass: earlier passes only shrink the pair set, so a
    // fresh matrix is tighter (more fast swaps), never less sound. With
    // symmetry on, sweep first so detection sees the garbage-free store
    // (and the matrix is tight per-root, which makes the seeding exact).
    if (params_.sift_symmetry) sweep_dead();
    recompute_interactions();
    if (params_.sift_symmetry) detect_symmetries();

    // Units: each detected symmetry group moves as one block; every other
    // variable is a singleton. With sift_symmetry off this is exactly the
    // classical per-variable schedule — units are built in variable order
    // and ranked with the same comparator, so even the std::sort
    // permutation is unchanged.
    std::vector<std::vector<int>> units;
    units.reserve(var_to_level_.size());
    if (sym_valid_) {
        std::vector<int> unit_of(var_to_level_.size(), -1);
        for (std::size_t v = 0; v < var_to_level_.size(); ++v) {
            const auto root = static_cast<std::size_t>(
                sym_find(static_cast<std::uint32_t>(v)));
            if (unit_of[root] < 0) {
                unit_of[root] = static_cast<int>(units.size());
                units.emplace_back();
            }
            units[static_cast<std::size_t>(unit_of[root])].push_back(
                static_cast<int>(v));
        }
    } else {
        for (std::size_t v = 0; v < var_to_level_.size(); ++v) {
            units.push_back({static_cast<int>(v)});
        }
    }
    const auto unit_live = [&](const std::vector<int>& unit) {
        std::size_t total = 0;
        for (const int v : unit) {
            total += level_live_[var_to_level_[static_cast<std::size_t>(v)]];
        }
        return total;
    };
    std::vector<int> order(units.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return unit_live(units[static_cast<std::size_t>(a)]) >
               unit_live(units[static_cast<std::size_t>(b)]);
    });
    // Negative caps (possible via CLI/service plumbing) mean "sift nothing",
    // not a SIZE_MAX resize.
    const int max_units = std::max(params_.sift_max_vars, 0);
    if (static_cast<int>(order.size()) > max_units) {
        order.resize(static_cast<std::size_t>(max_units));
    }

    std::vector<int> interacting;  // vars whose levels can change under the unit
    std::vector<std::uint8_t> in_unit(var_to_level_.size(), 0);
    for (const int ui : order) {
        std::vector<int>& members = units[static_cast<std::size_t>(ui)];
        // Garbage-free start: the cascade-containment argument behind the
        // lower bound needs it, and dragging dead nodes through swaps is
        // wasted restructuring anyway. No-op when nothing is dead.
        sweep_dead();
        std::sort(members.begin(), members.end(), [&](int a, int b) {
            return var_to_level_[static_cast<std::size_t>(a)] <
                   var_to_level_[static_cast<std::size_t>(b)];
        });
        const int k = static_cast<int>(members.size());
        int cur_top = level_of_var(members.front());
        assert(level_of_var(members.back()) == cur_top + k - 1 &&
               "symmetry group must be level-contiguous");
        std::size_t best_size = live_nodes_;
        int best_top = cur_top;
        // Shared garbage-free-start accounting for the whole block: each
        // member with live nodes keeps at least one at every position
        // (restructuring swaps never kill a level's last live node, and no
        // cascade can reach a unit member — a variable never appears twice
        // on a path).
        std::size_t unit_floor = 0;
        for (const int v : members) {
            if (level_live_[var_to_level_[static_cast<std::size_t>(v)]] > 0) {
                ++unit_floor;
            }
        }
        interacting.clear();
        if (params_.sift_lower_bound) {
            for (const int v : members) in_unit[static_cast<std::size_t>(v)] = 1;
            for (int v = 0; v < static_cast<int>(var_to_level_.size()); ++v) {
                if (in_unit[static_cast<std::size_t>(v)] != 0) continue;
                for (const int m : members) {
                    if (vars_interact_raw(m, v)) {
                        interacting.push_back(v);
                        break;
                    }
                }
            }
            for (const int v : members) in_unit[static_cast<std::size_t>(v)] = 0;
        }
        // Levels that may still lose nodes: the unit's own (down to
        // unit_floor) and the interacting ones — below only for a downward
        // run (levels already passed sit above the unit and cascades travel
        // strictly down), all of them for an upward run.
        const auto lower_bound_size = [&](bool below_only) {
            std::size_t reducible = 0;
            for (int l = cur_top; l < cur_top + k; ++l) {
                reducible += level_live_[static_cast<std::size_t>(l)];
            }
            reducible -= unit_floor;
            for (const int v : interacting) {
                const std::uint32_t l = var_to_level_[static_cast<std::size_t>(v)];
                if (!below_only || static_cast<int>(l) > cur_top + k - 1) {
                    reducible += level_live_[l];
                }
            }
            return live_nodes_ - reducible;
        };

        // Visit the nearer end of the order first: fewer swaps in the common
        // case where the unit does not want to travel far.
        const bool down_first = (num_levels - k - cur_top) <= cur_top;
        for (const bool downward : {down_first, !down_first}) {
            if (downward) {
                while (cur_top + k < num_levels) {
                    if (params_.sift_lower_bound &&
                        lower_bound_size(/*below_only=*/true) >= best_size) {
                        ++reorder_stats_.lb_aborts;
                        reorder_stats_.lb_saved_swaps +=
                            static_cast<std::uint64_t>(num_levels - k - cur_top) *
                            static_cast<std::uint64_t>(k);
                        break;
                    }
                    cur_top += swap_unit_down(cur_top, k);
                    if (live_nodes_ < best_size) {
                        best_size = live_nodes_;
                        best_top = cur_top;
                    } else if (static_cast<double>(live_nodes_) >
                               params_.sift_max_growth * static_cast<double>(best_size)) {
                        ++reorder_stats_.growth_aborts;
                        break;
                    }
                }
            } else {
                while (cur_top > 0) {
                    if (params_.sift_lower_bound &&
                        lower_bound_size(/*below_only=*/false) >= best_size) {
                        ++reorder_stats_.lb_aborts;
                        reorder_stats_.lb_saved_swaps +=
                            static_cast<std::uint64_t>(cur_top) *
                            static_cast<std::uint64_t>(k);
                        break;
                    }
                    cur_top -= swap_unit_up(cur_top, k);
                    if (live_nodes_ < best_size) {
                        best_size = live_nodes_;
                        best_top = cur_top;
                    } else if (static_cast<double>(live_nodes_) >
                               params_.sift_max_growth * static_cast<double>(best_size)) {
                        ++reorder_stats_.growth_aborts;
                        break;
                    }
                }
            }
        }
        sift_unit_to(cur_top, k, best_top);
        if (dead_nodes_ > params_.gc_dead_threshold) sweep_dead();
    }
    ++reorder_stats_.passes;
}

void Manager::sift() {
    assert(op_depth_ == 0);
    if (tables_.size() < 2) {
        gc();
        return;
    }
    // Start from an exact live census. No operation probes the computed
    // table until sifting finishes, so intermediate collections only sweep;
    // a single conditional cache clear at the end handles freed slots and
    // order-dependent entries in one pass.
    sift_swap_mark_ = reorder_stats_.swaps + reorder_stats_.fast_swaps;
    sweep_dead();
    InteractionTrustGuard trust(interact_trusted_);
    sift_pass();
    if (params_.sift_converge) {
        // Every pass is monotone non-increasing (each variable lands on its
        // best position); stop when a whole pass gains less than the
        // convergence ratio.
        for (int pass = 1; pass < params_.sift_max_passes; ++pass) {
            const std::size_t before = live_nodes_;
            sift_pass();
            assert(live_nodes_ <= before);
            if (static_cast<double>(before - live_nodes_) <
                params_.sift_converge_ratio * static_cast<double>(before)) {
                break;
            }
        }
    }
    sweep_dead();
    cache_clear_after_reorder();
}

}  // namespace bdsmaj::bdd
