#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

namespace {

/// Marks the interaction matrix as trusted for the duration of a reorder
/// operation (swaps only remove variable-pair paths, so the matrix
/// recomputed at entry stays a sound over-approximation throughout).
class InteractionTrustGuard {
public:
    explicit InteractionTrustGuard(bool& flag) : flag_(flag) { flag_ = true; }
    ~InteractionTrustGuard() { flag_ = false; }
    InteractionTrustGuard(const InteractionTrustGuard&) = delete;
    InteractionTrustGuard& operator=(const InteractionTrustGuard&) = delete;

private:
    bool& flag_;
};

}  // namespace

// ---------------------------------------------------------------------------
// In-place adjacent-level swap.
//
// Variables x (upper level u) and y (lower level u+1) exchange positions.
// All node indices stay valid: nodes are rewritten in place, so every
// outstanding handle and every parent edge continues to denote the same
// function.
//
// Fast path — label-only exchange. When either level is empty, or the
// interaction matrix proves no x-labeled node can have a y-labeled
// descendant (so in particular no direct u -> u+1 edge exists), no node
// needs restructuring: every node keeps its variable, children, and hash
// key; only its level changes. The two tables and live counts are swapped
// wholesale — no evacuation, no rehashing, no refcount churn, and the
// computed table stays exactly valid (no slot was freed or created).
//
// Slow path — the classical restructuring swap used by reordering BDD
// packages:
//   1. evacuate both levels from their unique tables (and size the empty
//      bucket arrays once for the incoming population, instead of doubling
//      through overloaded chains insert by insert);
//   2. x-nodes that do not reference level u+1 simply move down;
//   3. x-nodes that do are rewritten in place into y-nodes over fresh
//      (or shared) x-nodes built at level u+1:
//         x ? (y?f11:f10) : (y?f01:f00)   ==   y ? (x?f11:f01) : (x?f10:f00)
//   4. old y-nodes that are still referenced move up, dead ones are freed.
// ---------------------------------------------------------------------------

std::size_t Manager::swap_levels_internal(std::uint32_t upper) {
    const std::uint32_t lower = upper + 1;
    assert(lower < tables_.size());

    const int vx = static_cast<int>(level_to_var_[upper]);
    const int vy = static_cast<int>(level_to_var_[lower]);
    bool label_only = tables_[upper].entries == 0 || tables_[lower].entries == 0;
    if (!label_only && interact_trusted_ && !vars_interact_raw(vx, vy)) {
        label_only = true;
#ifndef NDEBUG
        // The matrix is conservative: non-interacting really does mean no
        // node at `upper` reaches into `lower`.
        for (const std::uint32_t head : tables_[upper].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                assert(edge_level(nodes_[idx].hi) != lower &&
                       edge_level(nodes_[idx].lo) != lower);
            }
        }
#endif
    }
    if (label_only) {
        for (const std::uint32_t head : tables_[upper].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                nodes_[idx].level = lower;
            }
        }
        for (const std::uint32_t head : tables_[lower].buckets) {
            for (std::uint32_t idx = head; idx != kNil; idx = aux_[idx].next) {
                nodes_[idx].level = upper;
            }
        }
        std::swap(tables_[upper], tables_[lower]);
        std::swap(level_live_[upper], level_live_[lower]);
        std::swap(level_to_var_[upper], level_to_var_[lower]);
        var_to_level_[level_to_var_[upper]] = upper;
        var_to_level_[level_to_var_[lower]] = lower;
        ++reorder_stats_.fast_swaps;
        return live_nodes_;
    }

    auto evacuate = [&](std::uint32_t level, std::vector<NodeIndex>& out) {
        out.clear();
        LevelTable& table = tables_[level];
        out.reserve(table.entries);
        for (auto& head : table.buckets) {
            for (std::uint32_t idx = head; idx != kNil;) {
                const std::uint32_t next = aux_[idx].next;
                out.push_back(idx);
                idx = next;
            }
            head = kNil;
        }
        table.entries = 0;
    };

    std::vector<NodeIndex>& xs = swap_xs_;
    std::vector<NodeIndex>& ys = swap_ys_;
    evacuate(upper, xs);
    evacuate(lower, ys);
    // Both tables are about to absorb roughly the other level's population
    // (plus restructuring shares); one sized assign beats doubling through
    // overloaded chains during re-insertion.
    size_empty_table(tables_[upper], xs.size() + ys.size());
    size_empty_table(tables_[lower], xs.size() + ys.size());

    auto free_dead_node = [&](NodeIndex idx) {
        // Node is out of every table and has ref == 0.
        dec_ref(nodes_[idx].hi);
        dec_ref(nodes_[idx].lo);
        nodes_[idx].level = kTerminalLevel;
        nodes_[idx].hi = kEdgeInvalid;
        nodes_[idx].lo = kEdgeInvalid;
        aux_[idx].next = free_list_;
        free_list_ = idx;
        --dead_nodes_;
        cache_tainted_ = true;  // slot may recycle into a different function
    };

    // Pass 1: move x-nodes independent of y down to the lower level, so that
    // pass 2's make_node lookups can share them instead of duplicating.
    std::vector<NodeIndex>& to_restructure = swap_restructure_;
    to_restructure.clear();
    for (const NodeIndex idx : xs) {
        if (aux_[idx].ref == 0) {
            free_dead_node(idx);
            continue;
        }
        const Edge t = nodes_[idx].hi;
        const Edge e = nodes_[idx].lo;
        if (edge_level(t) != lower && edge_level(e) != lower) {
            --level_live_[upper];
            ++level_live_[lower];
            nodes_[idx].level = lower;
            table_insert(lower, idx);
        } else {
            to_restructure.push_back(idx);
        }
    }

    // Pass 2: rewrite y-dependent x-nodes in place.
    for (const NodeIndex idx : to_restructure) {
        const Edge t = nodes_[idx].hi;  // regular by invariant
        const Edge e = nodes_[idx].lo;
        Edge f11, f10, f01, f00;
        cofactors_at(t, lower, &f11, &f10);
        cofactors_at(e, lower, &f01, &f00);
        // make_node may reallocate nodes_; do not hold references across it.
        const Edge new_hi = make_node(lower, f11, f01);
        const Edge new_lo = make_node(lower, f10, f00);
        assert(!edge_complemented(new_hi));
        assert(new_hi != new_lo);
        inc_ref(new_hi);
        inc_ref(new_lo);
        dec_ref(t);
        dec_ref(e);
        nodes_[idx].hi = new_hi;
        nodes_[idx].lo = new_lo;
        table_insert(upper, idx);  // stays at `upper`, now labeled y
    }

    // Pass 3: relocate surviving y-nodes to the upper level, free dead ones.
    for (const NodeIndex idx : ys) {
        if (aux_[idx].ref == 0) {
            free_dead_node(idx);
        } else {
            --level_live_[lower];
            ++level_live_[upper];
            nodes_[idx].level = upper;
            table_insert(upper, idx);
        }
    }

    // Pass 4: exchange the variable labels of the two levels.
    std::swap(level_to_var_[upper], level_to_var_[lower]);
    var_to_level_[level_to_var_[upper]] = upper;
    var_to_level_[level_to_var_[lower]] = lower;
    ++reorder_stats_.swaps;
    return live_nodes_;
}

void Manager::swap_adjacent_levels(int level) {
    if (level < 0 || level + 1 >= static_cast<int>(tables_.size())) {
        throw std::out_of_range("swap_adjacent_levels: bad level");
    }
    assert(op_depth_ == 0);
    if (!interact_valid_) recompute_interactions();
    {
        InteractionTrustGuard trust(interact_trusted_);
        swap_levels_internal(static_cast<std::uint32_t>(level));
    }
    // Cache entries are edge-keyed results of canonical functions, which a
    // swap preserves; only freed slots or order-dependent (constrain /
    // restrict) entries force the wipe.
    cache_clear_after_reorder();
}

// ---------------------------------------------------------------------------
// Rudell sifting: move each variable through the whole order, keep the best
// position. Variables are processed in decreasing order of their level's
// node count, the standard heuristic. Two refinements over the textbook
// loop, both provably order-preserving (the final position of every
// variable is identical to the exhaustive version; tests enforce it):
//
//   * interaction fast path — swaps over runs of non-interacting levels are
//     label-only exchanges inside swap_levels_internal, costing no
//     restructuring and never changing the live size;
//   * lower-bound pruning — each variable's exploration starts from a
//     garbage-free store (sweep_dead; sweeps never touch live structure),
//     after which every node that dies during the exploration is a
//     descendant of an x-node: restructuring dec-refs hit x-children, and
//     cascaded frees only follow descendant edges of nodes that died the
//     same way. Levels whose variables do not interact with x therefore
//     keep their live counts for the whole exploration, so
//         live  -  (live_at_x_level - x_floor)  -  sum of interacting
//                                                  levels' live counts
//     bounds every reachable future size from below (for the downward run
//     only the not-yet-passed levels below can still shrink, which
//     tightens the sum). The moment the bound reaches the best size
//     already found, no further position in the direction can strictly
//     improve, and it is abandoned. The x_floor of 1 is sound because a
//     restructuring swap always leaves at least one live x-labeled node
//     when one existed before (t == e is impossible for a canonical node),
//     and no cascade can kill an x-node (a variable never appears twice on
//     a path).
// ---------------------------------------------------------------------------

void Manager::sift_var_to(int var, int target_level) {
    int cur = level_of_var(var);
    while (cur < target_level) {
        swap_levels_internal(static_cast<std::uint32_t>(cur));
        ++cur;
    }
    while (cur > target_level) {
        swap_levels_internal(static_cast<std::uint32_t>(cur - 1));
        --cur;
    }
}

void Manager::sift_pass() {
    const int num_levels = static_cast<int>(tables_.size());
    // Recompute per pass: earlier passes only shrink the pair set, so a
    // fresh matrix is tighter (more fast swaps), never less sound.
    recompute_interactions();

    std::vector<int> vars(var_to_level_.size());
    std::iota(vars.begin(), vars.end(), 0);
    std::sort(vars.begin(), vars.end(), [&](int a, int b) {
        return level_live_[var_to_level_[static_cast<std::size_t>(a)]] >
               level_live_[var_to_level_[static_cast<std::size_t>(b)]];
    });
    // Negative caps (possible via CLI/service plumbing) mean "sift nothing",
    // not a SIZE_MAX resize.
    const int max_vars = std::max(params_.sift_max_vars, 0);
    if (static_cast<int>(vars.size()) > max_vars) {
        vars.resize(static_cast<std::size_t>(max_vars));
    }

    std::vector<int> interacting;  // vars whose levels can change under x
    for (const int var : vars) {
        // Garbage-free start: the cascade-containment argument behind the
        // lower bound needs it, and dragging dead nodes through swaps is
        // wasted restructuring anyway. No-op when nothing is dead.
        sweep_dead();
        const int start = level_of_var(var);
        std::size_t best_size = live_nodes_;
        int best_level = start;
        int cur = start;
        // A variable with live nodes keeps at least one at every position.
        const std::size_t var_floor =
            level_live_[static_cast<std::size_t>(start)] > 0 ? 1 : 0;
        interacting.clear();
        if (params_.sift_lower_bound) {
            for (int v = 0; v < static_cast<int>(var_to_level_.size()); ++v) {
                if (v != var && vars_interact_raw(var, v)) interacting.push_back(v);
            }
        }
        // Levels that may still lose nodes: x's own (down to var_floor) and
        // the interacting ones — below only for a downward run (levels
        // already passed sit above x and cascades travel strictly down), all
        // of them for an upward run.
        const auto lower_bound_size = [&](bool below_only) {
            std::size_t reducible =
                level_live_[static_cast<std::size_t>(cur)] - var_floor;
            for (const int v : interacting) {
                const std::uint32_t l = var_to_level_[static_cast<std::size_t>(v)];
                if (!below_only || static_cast<int>(l) > cur) {
                    reducible += level_live_[l];
                }
            }
            return live_nodes_ - reducible;
        };

        // Visit the nearer end of the order first: fewer swaps in the common
        // case where the variable does not want to travel far.
        const bool down_first = (num_levels - 1 - start) <= start;
        for (const bool downward : {down_first, !down_first}) {
            if (downward) {
                while (cur + 1 < num_levels) {
                    if (params_.sift_lower_bound &&
                        lower_bound_size(/*below_only=*/true) >= best_size) {
                        ++reorder_stats_.lb_aborts;
                        reorder_stats_.lb_saved_swaps +=
                            static_cast<std::uint64_t>(num_levels - 1 - cur);
                        break;
                    }
                    swap_levels_internal(static_cast<std::uint32_t>(cur));
                    ++cur;
                    if (live_nodes_ < best_size) {
                        best_size = live_nodes_;
                        best_level = cur;
                    } else if (static_cast<double>(live_nodes_) >
                               params_.sift_max_growth * static_cast<double>(best_size)) {
                        ++reorder_stats_.growth_aborts;
                        break;
                    }
                }
            } else {
                while (cur > 0) {
                    if (params_.sift_lower_bound &&
                        lower_bound_size(/*below_only=*/false) >= best_size) {
                        ++reorder_stats_.lb_aborts;
                        reorder_stats_.lb_saved_swaps +=
                            static_cast<std::uint64_t>(cur);
                        break;
                    }
                    swap_levels_internal(static_cast<std::uint32_t>(cur - 1));
                    --cur;
                    if (live_nodes_ < best_size) {
                        best_size = live_nodes_;
                        best_level = cur;
                    } else if (static_cast<double>(live_nodes_) >
                               params_.sift_max_growth * static_cast<double>(best_size)) {
                        ++reorder_stats_.growth_aborts;
                        break;
                    }
                }
            }
        }
        sift_var_to(var, best_level);
        if (dead_nodes_ > params_.gc_dead_threshold) sweep_dead();
    }
    ++reorder_stats_.passes;
}

void Manager::sift() {
    assert(op_depth_ == 0);
    if (tables_.size() < 2) {
        gc();
        return;
    }
    // Start from an exact live census. No operation probes the computed
    // table until sifting finishes, so intermediate collections only sweep;
    // a single conditional cache clear at the end handles freed slots and
    // order-dependent entries in one pass.
    sweep_dead();
    InteractionTrustGuard trust(interact_trusted_);
    sift_pass();
    if (params_.sift_converge) {
        // Every pass is monotone non-increasing (each variable lands on its
        // best position); stop when a whole pass gains less than the
        // convergence ratio.
        for (int pass = 1; pass < params_.sift_max_passes; ++pass) {
            const std::size_t before = live_nodes_;
            sift_pass();
            assert(live_nodes_ <= before);
            if (static_cast<double>(before - live_nodes_) <
                params_.sift_converge_ratio * static_cast<double>(before)) {
                break;
            }
        }
    }
    sweep_dead();
    cache_clear_after_reorder();
}

}  // namespace bdsmaj::bdd
