#include <algorithm>
#include <cassert>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

namespace {

/// RAII guard that marks a recursive core as active, blocking GC.
class OpGuard {
public:
    explicit OpGuard(int& depth) : depth_(depth) { ++depth_; }
    ~OpGuard() { --depth_; }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;

private:
    int& depth_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ITE — the single recursive core all Boolean connectives reduce to.
// ---------------------------------------------------------------------------

Edge Manager::ite_rec(Edge f, Edge g, Edge h) {
    // Terminal cases.
    if (f == kEdgeOne) return g;
    if (f == kEdgeZero) return h;
    if (g == h) return g;
    if (g == kEdgeOne && h == kEdgeZero) return f;
    if (g == kEdgeZero && h == kEdgeOne) return edge_not(f);
    // Standard-triple simplifications: replace arguments equal (or
    // complementary) to f by constants.
    if (g == f) g = kEdgeOne;
    if (g == edge_not(f)) g = kEdgeZero;
    if (h == f) h = kEdgeZero;
    if (h == edge_not(f)) h = kEdgeOne;
    if (g == h) return g;
    if (g == kEdgeOne && h == kEdgeZero) return f;
    if (g == kEdgeZero && h == kEdgeOne) return edge_not(f);
    // Canonicalize for the computed table: f regular...
    if (edge_complemented(f)) {
        f = edge_not(f);
        std::swap(g, h);
    }
    // ...and g regular, pushing the complement to the output.
    bool complement_out = false;
    if (edge_complemented(g)) {
        g = edge_not(g);
        h = edge_not(h);
        complement_out = true;
    }

    // One key computation serves both the lookup and the insert: the table
    // cannot resize while a recursive core is on the stack.
    const std::size_t slot = cache_slot(CacheOp::kIte, f, g, h);
    Edge cached;
    if (cache_probe(slot, CacheOp::kIte, f, g, h, &cached)) {
        return complement_out ? edge_not(cached) : cached;
    }

    const std::uint32_t level =
        std::min({edge_level(f), edge_level(g), edge_level(h)});
    Edge f1, f0, g1, g0, h1, h0;
    cofactors_at(f, level, &f1, &f0);
    cofactors_at(g, level, &g1, &g0);
    cofactors_at(h, level, &h1, &h0);

    const Edge t = ite_rec(f1, g1, h1);
    const Edge e = ite_rec(f0, g0, h0);
    const Edge r = make_node(level, t, e);

    cache_store(slot, CacheOp::kIte, f, g, h, r);
    return complement_out ? edge_not(r) : r;
}

// ---------------------------------------------------------------------------
// Dedicated 2-operand cores. Funnelling AND/XOR through 3-key ITE entries
// wastes computed-table width and forfeits operand canonicalization; the
// specialized forms use CUDD-style normalization (commutative ordering, and
// for XOR complement extraction) so symmetric calls share one entry.
// ---------------------------------------------------------------------------

Edge Manager::and_rec(Edge f, Edge g) {
    if (f == kEdgeOne) return g;
    if (g == kEdgeOne) return f;
    if (f == kEdgeZero || g == kEdgeZero) return kEdgeZero;
    if (f == g) return f;
    if (f == edge_not(g)) return kEdgeZero;
    // Commutative canonicalization: smaller edge first.
    if (f > g) std::swap(f, g);

    const std::size_t slot = cache_slot(CacheOp::kAnd, f, g, kEdgeInvalid);
    Edge cached;
    if (cache_probe(slot, CacheOp::kAnd, f, g, kEdgeInvalid, &cached)) return cached;

    const std::uint32_t level = std::min(edge_level(f), edge_level(g));
    Edge f1, f0, g1, g0;
    cofactors_at(f, level, &f1, &f0);
    cofactors_at(g, level, &g1, &g0);

    const Edge t = and_rec(f1, g1);
    const Edge e = and_rec(f0, g0);
    const Edge r = make_node(level, t, e);

    cache_store(slot, CacheOp::kAnd, f, g, kEdgeInvalid, r);
    return r;
}

Edge Manager::xor_rec(Edge f, Edge g) {
    // Complement normalization: XOR ignores operand polarity up to output
    // complement, so only regular operands ever enter the table.
    const bool complement_out = edge_complemented(f) != edge_complemented(g);
    f = edge_regular(f);
    g = edge_regular(g);
    if (f == g) return complement_out ? kEdgeOne : kEdgeZero;
    if (f == kEdgeOne) std::swap(f, g);  // constant (regular == 1) last
    if (g == kEdgeOne) return complement_out ? f : edge_not(f);
    if (f > g) std::swap(f, g);

    const std::size_t slot = cache_slot(CacheOp::kXor, f, g, kEdgeInvalid);
    Edge cached;
    if (cache_probe(slot, CacheOp::kXor, f, g, kEdgeInvalid, &cached)) {
        return complement_out ? edge_not(cached) : cached;
    }

    const std::uint32_t level = std::min(edge_level(f), edge_level(g));
    Edge f1, f0, g1, g0;
    cofactors_at(f, level, &f1, &f0);
    cofactors_at(g, level, &g1, &g0);

    const Edge t = xor_rec(f1, g1);
    const Edge e = xor_rec(f0, g0);
    const Edge r = make_node(level, t, e);

    cache_store(slot, CacheOp::kXor, f, g, kEdgeInvalid, r);
    return complement_out ? edge_not(r) : r;
}

Bdd Manager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
    assert(f.manager() == this && g.manager() == this && h.manager() == this);
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = ite_rec(f.edge(), g.edge(), h.edge());
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

Bdd Manager::apply_and(const Bdd& f, const Bdd& g) {
    assert(f.manager() == this && g.manager() == this);
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = and_rec(f.edge(), g.edge());
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

Bdd Manager::apply_or(const Bdd& f, const Bdd& g) {
    // De Morgan over the AND core; complement edges make this free.
    assert(f.manager() == this && g.manager() == this);
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = edge_not(and_rec(edge_not(f.edge()), edge_not(g.edge())));
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

Bdd Manager::apply_xor(const Bdd& f, const Bdd& g) {
    assert(f.manager() == this && g.manager() == this);
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = xor_rec(f.edge(), g.edge());
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

Bdd Manager::apply_xnor(const Bdd& f, const Bdd& g) {
    assert(f.manager() == this && g.manager() == this);
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = edge_not(xor_rec(f.edge(), g.edge()));
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

Bdd Manager::maj(const Bdd& a, const Bdd& b, const Bdd& c) {
    assert(a.manager() == this && b.manager() == this && c.manager() == this);
    // Maj(a,b,c) = ITE(a, b|c, b&c); a single ITE keeps the work cached.
    return ite(a, apply_or(b, c), apply_and(b, c));
}

// ---------------------------------------------------------------------------
// Quantification and single-variable cofactors
// ---------------------------------------------------------------------------

Bdd Manager::cofactor(const Bdd& f, int var, bool value) {
    assert(f.manager() == this);
    // Restricting one variable is constrain against the literal.
    return constrain(f, value ? var_bdd(var) : nvar_bdd(var));
}

Bdd Manager::exists(const Bdd& f, int var) {
    return apply_or(cofactor(f, var, false), cofactor(f, var, true));
}

Bdd Manager::forall(const Bdd& f, int var) {
    return apply_and(cofactor(f, var, false), cofactor(f, var, true));
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

std::size_t Manager::dag_size(const Bdd& f) {
    const Bdd fs[] = {f};
    return dag_size(std::span<const Bdd>(fs));
}

std::size_t Manager::dag_size(std::span<const Bdd> fs) {
    // Shared stamped traversal over all roots: one generation, zero
    // allocation after warm-up.
    const std::uint32_t gen = begin_traversal();
    std::vector<NodeIndex>& stack = scratch_stack_;
    stack.clear();
    std::size_t count = 0;
    for (const Bdd& f : fs) {
        assert(f.manager() == this);
        const NodeIndex root = edge_index(f.edge());
        if (root != kTerminalIndex && visit_stamp_[root] != gen) {
            visit_stamp_[root] = gen;
            stack.push_back(root);
            ++count;
        }
    }
    while (!stack.empty()) {
        const NodeIndex idx = stack.back();
        stack.pop_back();
        const Node& n = nodes_[idx];
        const NodeIndex hi = edge_index(n.hi);
        if (hi != kTerminalIndex && visit_stamp_[hi] != gen) {
            visit_stamp_[hi] = gen;
            stack.push_back(hi);
            ++count;
        }
        const NodeIndex lo = edge_index(n.lo);
        if (lo != kTerminalIndex && visit_stamp_[lo] != gen) {
            visit_stamp_[lo] = gen;
            stack.push_back(lo);
            ++count;
        }
    }
    return count;
}

void Manager::visit_nodes(const Bdd& f, const std::function<void(NodeIndex)>& fn) {
    assert(f.manager() == this);
    for_each_node(f.edge(), [&](NodeIndex idx) { fn(idx); });
}

std::vector<int> Manager::support_vars(const Bdd& f) {
    assert(f.manager() == this);
    std::vector<bool> at_level(tables_.size(), false);
    for_each_node(f.edge(), [&](NodeIndex idx) { at_level[nodes_[idx].level] = true; });
    std::vector<int> vars;
    for (std::size_t l = 0; l < at_level.size(); ++l) {
        if (at_level[l]) vars.push_back(static_cast<int>(level_to_var_[l]));
    }
    std::sort(vars.begin(), vars.end());
    return vars;
}

double Manager::sat_fraction(const Bdd& f) {
    assert(f.manager() == this);
    // Fraction of satisfying assignments; level gaps contribute factor 1
    // because both branches of a skipped variable agree. Memo lives in a
    // stamped side array: sat_memo_[i] is valid iff visit_stamp_[i] carries
    // this call's generation.
    const std::uint32_t gen = begin_traversal();
    if (sat_memo_.size() < nodes_.size()) sat_memo_.resize(nodes_.size(), 0.0);
    auto rec = [&](auto&& self, Edge e) -> double {
        if (e == kEdgeOne) return 1.0;
        if (e == kEdgeZero) return 0.0;
        const NodeIndex idx = edge_index(e);
        double frac;
        if (visit_stamp_[idx] == gen) {
            frac = sat_memo_[idx];
        } else {
            frac = 0.5 * self(self, nodes_[idx].hi) + 0.5 * self(self, nodes_[idx].lo);
            visit_stamp_[idx] = gen;
            sat_memo_[idx] = frac;
        }
        return edge_complemented(e) ? 1.0 - frac : frac;
    };
    return rec(rec, f.edge());
}

bool Manager::eval(const Bdd& f, const std::vector<bool>& values_by_var) {
    assert(f.manager() == this);
    Edge e = f.edge();
    bool complement = false;
    while (!edge_is_constant(e)) {
        complement ^= edge_complemented(e);
        const Node& n = nodes_[edge_index(e)];
        const int var = static_cast<int>(level_to_var_[n.level]);
        assert(static_cast<std::size_t>(var) < values_by_var.size());
        e = values_by_var[static_cast<std::size_t>(var)] ? n.hi : n.lo;
    }
    return complement ^ edge_complemented(e) ? false : true;
}

// ---------------------------------------------------------------------------
// Truth-table bridge (test oracle)
// ---------------------------------------------------------------------------

tt::TruthTable Manager::to_truth_table(const Bdd& f, int num_tt_vars) {
    assert(f.manager() == this);
    // Memo: stamped position map into a compact table vector, so repeated
    // calls never rehash and the tables are freed when the call returns.
    NodeMap pos = make_node_map();
    std::vector<tt::TruthTable> memo;
    auto rec = [&](auto&& self, Edge e) -> tt::TruthTable {
        if (e == kEdgeOne) return tt::TruthTable::ones(num_tt_vars);
        if (e == kEdgeZero) return tt::TruthTable::zeros(num_tt_vars);
        const NodeIndex idx = edge_index(e);
        if (!pos.contains(idx)) {
            const Node& n = nodes_[idx];
            const int var = static_cast<int>(level_to_var_[n.level]);
            const tt::TruthTable v = tt::TruthTable::var(num_tt_vars, var);
            tt::TruthTable result = tt::ite(v, self(self, n.hi), self(self, n.lo));
            pos.set(idx, static_cast<std::uint32_t>(memo.size()));
            memo.push_back(std::move(result));
        }
        const tt::TruthTable& cached = memo[pos.at(idx)];
        return edge_complemented(e) ? ~cached : cached;
    };
    return rec(rec, f.edge());
}

Bdd Manager::from_truth_table(const tt::TruthTable& table) {
    while (num_vars() < table.num_vars()) new_var();
    // Shannon-expand in current level order so construction is linear in the
    // result; recursion is over the manager's level sequence.
    auto rec = [&](auto&& self, const tt::TruthTable& t, std::size_t level_pos) -> Edge {
        if (t.is_const0()) return kEdgeZero;
        if (t.is_const1()) return kEdgeOne;
        assert(level_pos < level_to_var_.size());
        const int var = static_cast<int>(level_to_var_[level_pos]);
        if (var >= table.num_vars() || !t.depends_on(var)) {
            return self(self, t, level_pos + 1);
        }
        const Edge hi = self(self, t.cofactor(var, true), level_pos + 1);
        const Edge lo = self(self, t.cofactor(var, false), level_pos + 1);
        return make_node(static_cast<std::uint32_t>(level_pos), hi, lo);
    };
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = rec(rec, table, 0);
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

}  // namespace bdsmaj::bdd
