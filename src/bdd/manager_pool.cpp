#include "bdd/manager_pool.hpp"

namespace bdsmaj::bdd {

ManagerPool& ManagerPool::instance() {
    static ManagerPool pool;
    return pool;
}

ManagerPool::Lease ManagerPool::acquire(int num_vars, const ManagerParams& params) {
    std::unique_ptr<Manager> mgr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!idle_.empty()) {
            mgr = std::move(idle_.back());
            idle_.pop_back();
        }
    }
    if (mgr != nullptr) {
        mgr->reset(num_vars, params);
    } else {
        mgr = std::make_unique<Manager>(num_vars, params);
    }
    return Lease(this, std::move(mgr));
}

void ManagerPool::release(std::unique_ptr<Manager> mgr) {
    // A guard or injected fault threw out of an operation: internal tables
    // may be mid-restructure and reset() would trip its invariants. Destroy
    // instead of pooling — correctness over reuse.
    if (mgr->poisoned()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (idle_.size() < max_idle_) idle_.push_back(std::move(mgr));
    // else: unique_ptr destroys it — the pool is a cap, not a leak.
}

void ManagerPool::set_max_idle(std::size_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    max_idle_ = n;
    if (idle_.size() > max_idle_) idle_.resize(max_idle_);
}

std::size_t ManagerPool::idle_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
}

void ManagerPool::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.clear();
}

}  // namespace bdsmaj::bdd
