#include <cassert>
#include <stdexcept>

#include "bdd/bdd.hpp"

namespace bdsmaj::bdd {

namespace {

class OpGuard {
public:
    explicit OpGuard(int& depth) : depth_(depth) { ++depth_; }
    ~OpGuard() { --depth_; }
    OpGuard(const OpGuard&) = delete;
    OpGuard& operator=(const OpGuard&) = delete;

private:
    int& depth_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Generalized cofactors.
//
// `constrain` (Coudert-Berthet-Madre) and `restrict` (Coudert-Madre) both
// produce a function that agrees with f wherever c holds; the paper's (β)
// phase uses them as the initial H = F|Fa and W = F|!Fa seeds (Eq. 3).
// `restrict` additionally skips c-variables outside supp(f) so it never
// enlarges the support.
// ---------------------------------------------------------------------------

Edge Manager::constrain_rec(Edge f, Edge c) {
    if (c == kEdgeOne || edge_is_constant(f)) return f;
    if (c == kEdgeZero) throw std::invalid_argument("constrain: care set is empty");
    if (f == c) return kEdgeOne;
    if (f == edge_not(c)) return kEdgeZero;

    Edge cached;
    if (cache_lookup(CacheOp::kConstrain, f, c, kEdgeInvalid, &cached)) return cached;

    const std::uint32_t level = std::min(edge_level(f), edge_level(c));
    Edge f1, f0, c1, c0;
    cofactors_at(f, level, &f1, &f0);
    cofactors_at(c, level, &c1, &c0);

    Edge r;
    if (c1 == kEdgeZero) {
        r = constrain_rec(f0, c0);
    } else if (c0 == kEdgeZero) {
        r = constrain_rec(f1, c1);
    } else {
        const Edge t = constrain_rec(f1, c1);
        const Edge e = constrain_rec(f0, c0);
        r = make_node(level, t, e);
    }
    cache_insert(CacheOp::kConstrain, f, c, kEdgeInvalid, r);
    return r;
}

Edge Manager::restrict_rec(Edge f, Edge c) {
    if (c == kEdgeOne || edge_is_constant(f)) return f;
    if (c == kEdgeZero) throw std::invalid_argument("restrict: care set is empty");
    if (f == c) return kEdgeOne;
    if (f == edge_not(c)) return kEdgeZero;

    Edge cached;
    if (cache_lookup(CacheOp::kRestrict, f, c, kEdgeInvalid, &cached)) return cached;

    Edge r;
    if (edge_level(c) < edge_level(f)) {
        // c's top variable is outside supp(f): quantify it out of the care
        // set instead of pulling it into the result.
        const Edge c_or = ite_rec(edge_then(c), kEdgeOne, edge_else(c));
        r = restrict_rec(f, c_or);
    } else {
        const std::uint32_t level = std::min(edge_level(f), edge_level(c));
        Edge f1, f0, c1, c0;
        cofactors_at(f, level, &f1, &f0);
        cofactors_at(c, level, &c1, &c0);
        if (c1 == kEdgeZero) {
            r = restrict_rec(f0, c0);
        } else if (c0 == kEdgeZero) {
            r = restrict_rec(f1, c1);
        } else {
            const Edge t = restrict_rec(f1, c1);
            const Edge e = restrict_rec(f0, c0);
            r = make_node(level, t, e);
        }
    }
    cache_insert(CacheOp::kRestrict, f, c, kEdgeInvalid, r);
    return r;
}

Bdd Manager::constrain(const Bdd& f, const Bdd& c) {
    assert(f.manager() == this && c.manager() == this);
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = constrain_rec(f.edge(), c.edge());
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

Bdd Manager::restrict_to(const Bdd& f, const Bdd& c) {
    assert(f.manager() == this && c.manager() == this);
    Edge r;
    {
        OpGuard guard(op_depth_);
        r = restrict_rec(f.edge(), c.edge());
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

// ---------------------------------------------------------------------------
// Node redirection: F with the sub-function rooted at node v replaced by a
// constant. This realizes the dominator quotients F_{v->0} / F_{v->1} used
// by the 0-/1-/x-dominator decompositions.
// ---------------------------------------------------------------------------

Edge Manager::replace_rec(Edge f, NodeIndex v, Edge replacement,
                          std::vector<Edge>& memo_reg, std::vector<Edge>& memo_comp,
                          std::vector<NodeIndex>& touched) {
    if (edge_is_constant(f)) return f;
    const NodeIndex idx = edge_index(f);
    if (idx == v) return edge_complemented(f) ? edge_not(replacement) : replacement;
    std::vector<Edge>& memo = edge_complemented(f) ? memo_comp : memo_reg;
    if (memo[idx] != kEdgeInvalid) return memo[idx];
    // Copy fields before recursing: make_node may reallocate nodes_.
    const Edge n_hi = nodes_[idx].hi;
    const Edge n_lo = nodes_[idx].lo;
    const std::uint32_t n_level = nodes_[idx].level;
    const Edge t = replace_rec(edge_complemented(f) ? edge_not(n_hi) : n_hi, v,
                               replacement, memo_reg, memo_comp, touched);
    const Edge e = replace_rec(edge_complemented(f) ? edge_not(n_lo) : n_lo, v,
                               replacement, memo_reg, memo_comp, touched);
    const Edge r = make_node(n_level, t, e);
    if (memo_reg[idx] == kEdgeInvalid && memo_comp[idx] == kEdgeInvalid) {
        touched.push_back(idx);
    }
    memo[idx] = r;
    return r;
}

Bdd Manager::replace_node_with_const(const Bdd& f, NodeIndex v, bool value) {
    assert(f.manager() == this);
    assert(v != kTerminalIndex);
    Edge r;
    {
        OpGuard guard(op_depth_);
        // Dense per-call memo tables would cost O(|nodes_|) to clear; use
        // lazily-grown vectors and reset only the touched entries.
        //
        // Multi-manager / multi-thread audit: `thread_local` isolates the
        // scratch between threads, so concurrent calls on different
        // managers (the parallel supernode pipeline: one manager per
        // worker task) never share it. Within one thread the scratch is
        // safe across managers of different sizes because every touched
        // entry is reset to kEdgeInvalid before this function exits —
        // including by exception: make_node can throw (max_live_nodes
        // guard, injected fault), and a stale memo entry surviving into
        // the next manager's call would be returned as a wild edge. The
        // `resize` below only ever grows with fresh kEdgeInvalid entries.
        // What would NOT be safe is re-entrancy (two replace calls live
        // on one thread's stack); replace_rec never calls back into
        // public Manager ops, so that cannot happen.
        static thread_local std::vector<Edge> memo_reg, memo_comp;
        static thread_local std::vector<NodeIndex> touched;
        if (memo_reg.size() < nodes_.size()) {
            memo_reg.resize(nodes_.size(), kEdgeInvalid);
            memo_comp.resize(nodes_.size(), kEdgeInvalid);
        }
        touched.clear();
        struct MemoReset {
            std::vector<Edge>& memo_reg;
            std::vector<Edge>& memo_comp;
            const std::vector<NodeIndex>& touched;
            NodeIndex root;
            ~MemoReset() {
                for (const NodeIndex idx : touched) {
                    memo_reg[idx] = kEdgeInvalid;
                    memo_comp[idx] = kEdgeInvalid;
                }
                // The root itself may be memoized without appearing in
                // `touched` when it was reached only once; clear
                // defensively.
                if (root != kTerminalIndex) {
                    memo_reg[root] = kEdgeInvalid;
                    memo_comp[root] = kEdgeInvalid;
                }
            }
        } memo_reset{memo_reg, memo_comp, touched, edge_index(f.edge())};
        r = replace_rec(f.edge(), v, value ? kEdgeOne : kEdgeZero, memo_reg,
                        memo_comp, touched);
    }
    Bdd out = from_edge(r);
    auto_gc_if_needed();
    return out;
}

}  // namespace bdsmaj::bdd
