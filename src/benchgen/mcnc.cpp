#include "benchgen/mcnc.hpp"

#include <random>

#include "benchgen/arith.hpp"

namespace bdsmaj::benchgen {

namespace {

using net::Network;
using net::NodeId;
using Bus = std::vector<NodeId>;

Bus input_bus(Network& net, const std::string& prefix, int bits) {
    Bus bus;
    for (int i = 0; i < bits; ++i) bus.push_back(net.add_input(prefix + std::to_string(i)));
    return bus;
}

}  // namespace

Network make_alu2() {
    Network net("alu2");
    const Bus a = input_bus(net, "a", 4);
    const Bus b = input_bus(net, "b", 4);
    const NodeId op0 = net.add_input("op0");
    const NodeId op1 = net.add_input("op1");
    // Datapath: 00 add, 01 and, 10 or, 11 xor.
    Bus add_out;
    NodeId carry = net.add_constant(false);
    for (int i = 0; i < 4; ++i) {
        add_out.push_back(net.add_xor(net.add_xor(a[i], b[i]), carry));
        carry = net.add_maj(a[i], b[i], carry);
    }
    Bus result;
    for (int i = 0; i < 4; ++i) {
        const NodeId land = net.add_and(a[i], b[i]);
        const NodeId lor = net.add_or(a[i], b[i]);
        const NodeId lxor = net.add_xor(a[i], b[i]);
        const NodeId logic = net.add_mux(op1, net.add_mux(op0, lxor, lor),
                                         net.add_mux(op0, land, add_out[i]));
        result.push_back(logic);
        net.add_output("y" + std::to_string(i), logic);
    }
    net.add_output("cout", net.add_and(carry, net.add_not(net.add_or(op0, op1))));
    // Zero flag over the selected result.
    NodeId any = result[0];
    for (int i = 1; i < 4; ++i) any = net.add_or(any, result[i]);
    net.add_output("zero", net.add_not(any));
    return net;
}

Network make_c6288() {
    Network net = make_array_multiplier(16);
    net.set_model_name("C6288");
    return net;
}

Network make_c1355() {
    // Single-error-correcting decoder: 32 data bits + 8 syndrome inputs +
    // enable. Eight parity trees recompute check bits; the syndrome selects
    // the bit to flip (two 4->16 decoder halves ANDed, the classical
    // C499/C1355 organization).
    Network net("C1355");
    const Bus data = input_bus(net, "d", 32);
    const Bus check = input_bus(net, "c", 8);
    const NodeId enable = net.add_input("en");

    // Data bit i carries the injective syndrome code (i + 1); check bit k
    // covers the data bits whose code has bit k set. The recomputed parity
    // XOR the transmitted check bits is the syndrome.
    const auto code = [](int i) { return i + 1; };
    Bus syndrome;
    for (int k = 0; k < 8; ++k) {
        NodeId parity = check[k];
        for (int i = 0; i < 32; ++i) {
            if ((code(i) >> k) & 1) parity = net.add_xor(parity, data[i]);
        }
        syndrome.push_back(parity);
    }
    // Decode and correct: bit i flips exactly when the syndrome equals its
    // code (and the decoder is enabled).
    for (int i = 0; i < 32; ++i) {
        NodeId match = enable;
        for (int k = 0; k < 8; ++k) {
            const bool expected = ((code(i) >> k) & 1) != 0;
            match = net.add_and(match,
                                expected ? syndrome[k] : net.add_not(syndrome[k]));
        }
        net.add_output("o" + std::to_string(i), net.add_xor(data[i], match));
    }
    return net;
}

Network make_dalu() {
    // Dedicated ALU: masked operands, 16-bit datapath, 75 inputs total:
    // a[16] b[16] m[16] k[16] op[10] cin.
    Network net("dalu");
    const Bus a = input_bus(net, "a", 16);
    const Bus b = input_bus(net, "b", 16);
    const Bus m = input_bus(net, "m", 16);
    const Bus k = input_bus(net, "k", 16);
    const Bus op = input_bus(net, "op", 10);
    const NodeId cin = net.add_input("cin");

    Bus am, bk;
    for (int i = 0; i < 16; ++i) {
        am.push_back(net.add_and(a[i], m[i]));
        bk.push_back(net.add_and(b[i], k[i]));
    }
    NodeId carry = cin;
    for (int i = 0; i < 16; ++i) {
        const NodeId sum = net.add_xor(net.add_xor(am[i], bk[i]), carry);
        carry = net.add_maj(am[i], bk[i], carry);
        const NodeId land = net.add_and(am[i], bk[i]);
        const NodeId lor = net.add_or(am[i], bk[i]);
        const NodeId lxor = net.add_xor(am[i], bk[i]);
        // Two-level operation select with redundant op lines (dedicated
        // control the way dalu's PLA feeds its datapath).
        const NodeId sel0 = net.add_xor(op[i % 10], op[(i + 3) % 10]);
        const NodeId sel1 = net.add_or(op[(i + 5) % 10], op[(i + 7) % 10]);
        const NodeId logic = net.add_mux(sel1, net.add_mux(sel0, lxor, lor),
                                         net.add_mux(sel0, land, sum));
        net.add_output("y" + std::to_string(i), logic);
    }
    return net;
}

Network make_f51m() {
    // 8-in 8-out arithmetic: low byte of 4x4 multiply-add a*b + a.
    Network net("f51m");
    const Bus a = input_bus(net, "a", 4);
    const Bus b = input_bus(net, "b", 4);
    // 4x4 product.
    std::vector<Bus> rows;
    for (int j = 0; j < 4; ++j) {
        Bus row(8, net.add_constant(false));
        for (int i = 0; i < 4; ++i) row[i + j] = net.add_and(a[i], b[j]);
        rows.push_back(std::move(row));
    }
    Bus acc = rows[0];
    for (int j = 1; j < 4; ++j) {
        Bus sum;
        NodeId carry = net.add_constant(false);
        for (int i = 0; i < 8; ++i) {
            sum.push_back(net.add_xor(net.add_xor(acc[i], rows[j][i]), carry));
            carry = net.add_maj(acc[i], rows[j][i], carry);
        }
        acc = std::move(sum);
    }
    // + a (zero-extended).
    NodeId carry = net.add_constant(false);
    for (int i = 0; i < 8; ++i) {
        const NodeId ai = i < 4 ? a[i] : net.add_constant(false);
        net.add_output("z" + std::to_string(i),
                       net.add_xor(net.add_xor(acc[i], ai), carry));
        carry = net.add_maj(acc[i], ai, carry);
    }
    return net;
}

Network make_random_control(const std::string& name, int inputs, int outputs,
                            int products, std::uint64_t seed) {
    // Realistic control logic rather than irredundant random cubes: a layer
    // of shared predicates (pattern matches, magnitude comparators against
    // constants, parity slices) feeding OR-of-AND output planes. MCNC
    // control circuits share exactly this structure — address decode, state
    // compare, priority resolution — and it is what gives BDD-based
    // collapse something to find.
    std::mt19937_64 rng(seed);
    Network net(name);
    const Bus in = input_bus(net, "i", inputs);

    const auto random_slice = [&](int min_len, int max_len) {
        const int len = min_len + static_cast<int>(rng() % static_cast<unsigned>(
                                                             max_len - min_len + 1));
        const std::size_t start = rng() % in.size();
        Bus slice;
        for (int k = 0; k < len; ++k) slice.push_back(in[(start + k) % in.size()]);
        return slice;
    };

    Bus predicates;
    const int predicate_count = std::max(6, inputs / 3);
    for (int s = 0; s < predicate_count; ++s) {
        switch (rng() % 3) {
            case 0: {
                // Pattern match: slice == random constant.
                const Bus slice = random_slice(3, 6);
                NodeId match = net.add_constant(true);
                for (const NodeId bit : slice) {
                    match = net.add_and(match, (rng() & 1) ? bit : net.add_not(bit));
                }
                predicates.push_back(match);
                break;
            }
            case 1: {
                // Magnitude comparator: slice >= random constant, as the
                // borrow chain of (slice - c).
                const Bus slice = random_slice(3, 6);
                NodeId not_borrow = net.add_constant(true);
                for (const NodeId bit : slice) {
                    if (rng() & 1) {
                        // constant bit 1: borrow unless bit set
                        not_borrow = net.add_and(bit, not_borrow);
                    } else {
                        not_borrow = net.add_or(bit, not_borrow);
                    }
                }
                predicates.push_back(not_borrow);
                break;
            }
            default: {
                // Parity over a short slice.
                const Bus slice = random_slice(2, 4);
                NodeId parity = slice[0];
                for (std::size_t k = 1; k < slice.size(); ++k) {
                    parity = net.add_xor(parity, slice[k]);
                }
                predicates.push_back(parity);
                break;
            }
        }
    }

    for (int o = 0; o < outputs; ++o) {
        NodeId acc = net.add_constant(false);
        for (int p = 0; p < products; ++p) {
            const int lits = 2 + static_cast<int>(rng() % 2);
            NodeId term = net.add_constant(true);
            for (int l = 0; l < lits; ++l) {
                // Terms mix shared predicates with raw literals 2:1.
                NodeId s = (rng() % 3 != 0)
                               ? predicates[rng() % predicates.size()]
                               : in[rng() % in.size()];
                if (rng() & 1) s = net.add_not(s);
                term = net.add_and(term, s);
            }
            acc = net.add_or(acc, term);
        }
        net.add_output("o" + std::to_string(o), acc);
    }
    return net;
}

Network make_apex6() { return make_random_control("apex6", 135, 99, 2, 0xa9e6); }
Network make_vda() { return make_random_control("vda", 17, 39, 4, 0x7da); }
Network make_misex3() { return make_random_control("misex3", 14, 14, 12, 0x3153); }
Network make_seq() { return make_random_control("seq", 41, 35, 18, 0x5e9); }

Network make_bigkey() {
    // Key-mixing circuit: XOR whitening layers with 6-input S-box-style
    // covers between them; 229 inputs (128 data + 100 key + clock-enable),
    // 197 outputs, XOR-rich like the original key encryption circuit.
    std::mt19937_64 rng(0xb19e);
    Network net("bigkey");
    const Bus data = input_bus(net, "d", 128);
    const Bus key = input_bus(net, "k", 100);
    const NodeId en = net.add_input("en");
    Bus state;
    for (int i = 0; i < 128; ++i) {
        state.push_back(net.add_xor(data[i], key[i % 100]));
    }
    // Nonlinear layer: blocks of 4 mixed through MAJ/AND/OR picks.
    Bus mixed;
    for (int i = 0; i < 128; ++i) {
        const NodeId x = state[i];
        const NodeId y = state[(i + 37) % 128];
        const NodeId z = state[(i + 89) % 128];
        switch (rng() % 3) {
            case 0: mixed.push_back(net.add_maj(x, y, z)); break;
            case 1: mixed.push_back(net.add_xor(x, net.add_and(y, z))); break;
            default: mixed.push_back(net.add_xor(net.add_or(x, y), z)); break;
        }
    }
    // Second round over the mixed state.
    Bus round2;
    for (int i = 0; i < 128; ++i) {
        const NodeId x = mixed[i];
        const NodeId y = mixed[(i + 53) % 128];
        const NodeId z = key[(i * 3 + 7) % 100];
        switch (rng() % 3) {
            case 0: round2.push_back(net.add_maj(x, y, net.add_xor(z, mixed[(i + 11) % 128]))); break;
            case 1: round2.push_back(net.add_xor(x, net.add_and(y, z))); break;
            default: round2.push_back(net.add_xor(net.add_or(x, z), y)); break;
        }
    }
    // Output whitening; 197 outputs.
    for (int o = 0; o < 197; ++o) {
        const NodeId w = net.add_xor(round2[o % 128], key[(o * 7 + 13) % 100]);
        net.add_output("o" + std::to_string(o), net.add_and(w, en));
    }
    return net;
}

}  // namespace bdsmaj::benchgen
