#pragma once
// Generators for symmetric-heavy circuits: every output is a totally
// symmetric function of the inputs (parity, ones count, majority vote).
// These are the stress workloads for symmetry-aware reordering — their
// BDDs carry one large symmetry group, so block sifting moves the whole
// group in O(span) swaps where singleton sifting pays O(span * k) — and
// for the SymmetricStrategy's ones-counting MAJ decomposition. They are
// bench/CI circuits only and deliberately NOT part of the paper's
// Table I/II suite (suite.cpp stays pinned to the published rows).

#include "network/network.hpp"

namespace bdsmaj::benchgen {

/// Balanced XOR tree over `inputs` leaves: out = x0 ^ x1 ^ ... (1 output).
[[nodiscard]] net::Network make_parity_tree(int inputs);

/// Ones counter: c = popcount(x0..x_{inputs-1}) as a little-endian bus of
/// ceil(log2(inputs+1)) bits, built from full/half-adder reduction.
[[nodiscard]] net::Network make_ones_counter(int inputs);

/// Majority voter over an odd number of inputs: out = [popcount > inputs/2]
/// (ones counter followed by a threshold comparison against the constant).
[[nodiscard]] net::Network make_voter(int inputs);

}  // namespace bdsmaj::benchgen
