#pragma once
// Generators for the paper's HDL arithmetic benchmarks (Table I/II):
// SQRT 32, Wallace 16, CLA 64, Rev (1/X) 19, Div 18, MAC 16, 4-Op ADD 16,
// plus the multiplier behind C6288. Each generator builds the named
// function structurally; tests verify every one against an integer oracle
// by simulation, so these are the paper's workloads by function (see
// DESIGN.md substitution notes).
//
// Bit i of every bus is the weight-2^i signal, named e.g. "a3".

#include <cstdint>

#include "network/network.hpp"

namespace bdsmaj::benchgen {

/// Ripple-carry adder: a[bits] + b[bits] + cin -> s[bits], cout.
[[nodiscard]] net::Network make_ripple_adder(int bits);
/// Carry-lookahead adder with 4-bit blocks (the paper's CLA 64 bit).
[[nodiscard]] net::Network make_cla_adder(int bits);
/// Four-operand adder via a carry-save tree (the paper's 4-Op ADD 16 bit).
[[nodiscard]] net::Network make_four_operand_adder(int bits);
/// Array multiplier (carry-save rows of full adders: C6288's structure).
[[nodiscard]] net::Network make_array_multiplier(int bits);
/// Wallace-tree multiplier (3:2 compressor tree, CLA final stage).
[[nodiscard]] net::Network make_wallace_multiplier(int bits);
/// Multiply-accumulate: a[bits]*b[bits] + acc[2*bits] (the MAC 16 bit).
[[nodiscard]] net::Network make_mac(int bits);
/// Restoring integer divider: n[bits] / d[bits] -> q[bits], r[bits].
[[nodiscard]] net::Network make_restoring_divider(int bits);
/// Reciprocal 1/X: floor(2^(2*bits-2) / x) truncated to `bits` quotient
/// bits (the Rev (1/X) 19 bit benchmark).
[[nodiscard]] net::Network make_reciprocal(int bits);
/// Integer square root of a 2*root_bits input (SQRT 32 bit: root_bits=16).
[[nodiscard]] net::Network make_sqrt(int root_bits);

}  // namespace bdsmaj::benchgen
