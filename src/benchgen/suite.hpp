#pragma once
// The Table I/II benchmark suite: ten MCNC entries and seven HDL
// arithmetic entries, by the paper's names.

#include <string>
#include <vector>

#include "network/network.hpp"

namespace bdsmaj::benchgen {

struct BenchmarkCase {
    std::string name;   ///< the paper's row label
    bool is_mcnc = true;
    net::Network network;
};

/// All seventeen benchmarks in Table I order. `quick` substitutes reduced
/// bit-widths for the heaviest arithmetic circuits (for fast CI runs); the
/// full suite matches the paper's widths.
[[nodiscard]] std::vector<BenchmarkCase> table_suite(bool quick = false);

/// Single benchmark by its Table I row label (e.g. "C6288", "Div 18 bit").
[[nodiscard]] net::Network benchmark_by_name(const std::string& name, bool quick = false);

/// Row labels in Table I order.
[[nodiscard]] std::vector<std::string> benchmark_names();

}  // namespace bdsmaj::benchgen
