#pragma once
// Proxies for the MCNC benchmarks of Table I/II. The MCNC suite is not
// redistributable here; see DESIGN.md §4 for the substitution policy:
//  * circuits whose function is known are generated exactly by function
//    (C6288 = 16x16 multiplier, C1355 = 32-bit single-error-correcting
//    decoder, alu2/f51m = small arithmetic/logic units);
//  * random-control circuits (apex6, vda, misex3, seq, bigkey) become
//    seeded PLA-style generators with the published I/O counts.

#include "network/network.hpp"

namespace bdsmaj::benchgen {

/// 10-in 6-out 4-bit ALU (add/and/or/xor + carry and zero flags).
[[nodiscard]] net::Network make_alu2();
/// 16x16 array multiplier: the function and structure of C6288.
[[nodiscard]] net::Network make_c6288();
/// 41-in 32-out single-error-correcting decoder (C1355's function class).
[[nodiscard]] net::Network make_c1355();
/// 75-in 16-out dedicated ALU (masked arithmetic/logic unit).
[[nodiscard]] net::Network make_dalu();
/// 8-in 8-out arithmetic block (4x4 multiply-add, f51m's class).
[[nodiscard]] net::Network make_f51m();
/// Seeded PLA-style control-logic proxies with published I/O counts.
[[nodiscard]] net::Network make_apex6();
[[nodiscard]] net::Network make_vda();
[[nodiscard]] net::Network make_misex3();
[[nodiscard]] net::Network make_seq();
/// XOR-mixing key-schedule-style circuit (bigkey's class: 229 in, 197 out).
[[nodiscard]] net::Network make_bigkey();

/// Generic seeded PLA-style control logic generator (exposed for tests and
/// ablations): `products` cubes per output over random input subsets.
[[nodiscard]] net::Network make_random_control(const std::string& name, int inputs,
                                               int outputs, int products,
                                               std::uint64_t seed);

}  // namespace bdsmaj::benchgen
