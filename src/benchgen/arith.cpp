#include "benchgen/arith.hpp"

#include <cassert>
#include <string>
#include <vector>

namespace bdsmaj::benchgen {

namespace {

using net::Network;
using net::NodeId;
using Bus = std::vector<NodeId>;

Bus add_input_bus(Network& net, const std::string& prefix, int bits) {
    Bus bus;
    bus.reserve(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) bus.push_back(net.add_input(prefix + std::to_string(i)));
    return bus;
}

void add_output_bus(Network& net, const std::string& prefix, const Bus& bus) {
    for (std::size_t i = 0; i < bus.size(); ++i) {
        net.add_output(prefix + std::to_string(i), bus[i]);
    }
}

/// Full adder: returns {sum, carry}.
std::pair<NodeId, NodeId> full_adder(Network& net, NodeId a, NodeId b, NodeId c) {
    const NodeId sum = net.add_xor(net.add_xor(a, b), c);
    const NodeId carry = net.add_maj(a, b, c);
    return {sum, carry};
}

/// Ripple sum of equal-width buses; returns {sum bus, carry out}.
std::pair<Bus, NodeId> ripple_sum(Network& net, const Bus& a, const Bus& b, NodeId cin) {
    assert(a.size() == b.size());
    Bus sum;
    NodeId carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
        auto [s, c] = full_adder(net, a[i], b[i], carry);
        sum.push_back(s);
        carry = c;
    }
    return {sum, carry};
}

/// a - b over `bits` via a + ~b + 1; returns {difference, not_borrow}.
/// not_borrow == 1 iff a >= b.
std::pair<Bus, NodeId> subtract(Network& net, const Bus& a, const Bus& b) {
    Bus nb;
    nb.reserve(b.size());
    for (const NodeId bit : b) nb.push_back(net.add_not(bit));
    return ripple_sum(net, a, nb, net.add_constant(true));
}

/// 2:1 bus multiplexer, sel ? t : e.
Bus mux_bus(Network& net, NodeId sel, const Bus& t, const Bus& e) {
    assert(t.size() == e.size());
    Bus out;
    out.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) out.push_back(net.add_mux(sel, t[i], e[i]));
    return out;
}

/// Reduce three addends to two with one layer of full adders (carry-save).
std::pair<Bus, Bus> csa(Network& net, const Bus& x, const Bus& y, const Bus& z) {
    assert(x.size() == y.size() && y.size() == z.size());
    Bus sum, carry;
    carry.push_back(net.add_constant(false));
    for (std::size_t i = 0; i < x.size(); ++i) {
        auto [s, c] = full_adder(net, x[i], y[i], z[i]);
        sum.push_back(s);
        if (i + 1 < x.size()) carry.push_back(c);
    }
    return {sum, carry};
}

Bus zero_extend(Network& net, Bus bus, std::size_t width) {
    while (bus.size() < width) bus.push_back(net.add_constant(false));
    return bus;
}

/// Partial-product matrix of an unsigned multiplier.
std::vector<Bus> partial_products(Network& net, const Bus& a, const Bus& b,
                                  std::size_t out_width) {
    std::vector<Bus> rows;
    for (std::size_t j = 0; j < b.size(); ++j) {
        Bus row(out_width, net.add_constant(false));
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (i + j < out_width) row[i + j] = net.add_and(a[i], b[j]);
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace

Network make_ripple_adder(int bits) {
    Network net("rca" + std::to_string(bits));
    const Bus a = add_input_bus(net, "a", bits);
    const Bus b = add_input_bus(net, "b", bits);
    const NodeId cin = net.add_input("cin");
    auto [sum, carry] = ripple_sum(net, a, b, cin);
    add_output_bus(net, "s", sum);
    net.add_output("cout", carry);
    return net;
}

Network make_cla_adder(int bits) {
    // 4-bit lookahead blocks, block carries rippled through block G/P.
    Network net("cla" + std::to_string(bits));
    const Bus a = add_input_bus(net, "a", bits);
    const Bus b = add_input_bus(net, "b", bits);
    NodeId carry = net.add_input("cin");
    Bus sum;
    for (int base = 0; base < bits; base += 4) {
        const int width = std::min(4, bits - base);
        std::vector<NodeId> g, p;
        for (int i = 0; i < width; ++i) {
            g.push_back(net.add_and(a[base + i], b[base + i]));
            p.push_back(net.add_xor(a[base + i], b[base + i]));
        }
        // Carries inside the block in two-level lookahead form:
        // c_{i+1} = g_i + p_i g_{i-1} + ... + p_i...p_0 c_in.
        std::vector<NodeId> c{carry};
        for (int i = 0; i < width; ++i) {
            NodeId term = net.add_and(p[i], c[i]);
            c.push_back(net.add_or(g[i], term));
        }
        for (int i = 0; i < width; ++i) sum.push_back(net.add_xor(p[i], c[i]));
        carry = c[width];
    }
    add_output_bus(net, "s", sum);
    net.add_output("cout", carry);
    return net;
}

Network make_four_operand_adder(int bits) {
    Network net("add4op" + std::to_string(bits));
    const std::size_t width = static_cast<std::size_t>(bits) + 2;
    Bus x = zero_extend(net, add_input_bus(net, "a", bits), width);
    Bus y = zero_extend(net, add_input_bus(net, "b", bits), width);
    Bus z = zero_extend(net, add_input_bus(net, "c", bits), width);
    Bus w = zero_extend(net, add_input_bus(net, "d", bits), width);
    auto [s1, c1] = csa(net, x, y, z);
    auto [s2, c2] = csa(net, s1, c1, w);
    auto [sum, cout] = ripple_sum(net, s2, c2, net.add_constant(false));
    add_output_bus(net, "s", sum);
    net.add_output("cout", cout);
    return net;
}

Network make_array_multiplier(int bits) {
    // Row-by-row carry-propagate array: the gate structure of C6288.
    Network net("arraymult" + std::to_string(bits));
    const Bus a = add_input_bus(net, "a", bits);
    const Bus b = add_input_bus(net, "b", bits);
    const std::size_t width = 2 * static_cast<std::size_t>(bits);
    const std::vector<Bus> rows = partial_products(net, a, b, width);
    Bus acc = rows[0];
    for (std::size_t j = 1; j < rows.size(); ++j) {
        auto [sum, carry] = ripple_sum(net, acc, rows[j], net.add_constant(false));
        (void)carry;  // width already covers the full product
        acc = std::move(sum);
    }
    add_output_bus(net, "p", acc);
    return net;
}

Network make_wallace_multiplier(int bits) {
    Network net("wallace" + std::to_string(bits));
    const Bus a = add_input_bus(net, "a", bits);
    const Bus b = add_input_bus(net, "b", bits);
    const std::size_t width = 2 * static_cast<std::size_t>(bits);
    std::vector<Bus> addends = partial_products(net, a, b, width);
    // 3:2 compression tree.
    while (addends.size() > 2) {
        std::vector<Bus> next;
        std::size_t i = 0;
        for (; i + 2 < addends.size(); i += 3) {
            auto [s, c] = csa(net, addends[i], addends[i + 1], addends[i + 2]);
            next.push_back(std::move(s));
            next.push_back(std::move(c));
        }
        for (; i < addends.size(); ++i) next.push_back(std::move(addends[i]));
        addends = std::move(next);
    }
    auto [product, carry] = ripple_sum(net, addends[0], addends[1], net.add_constant(false));
    (void)carry;
    add_output_bus(net, "p", product);
    return net;
}

Network make_mac(int bits) {
    Network net("mac" + std::to_string(bits));
    const Bus a = add_input_bus(net, "a", bits);
    const Bus b = add_input_bus(net, "b", bits);
    // One bit wider than the product: a*b + acc reaches 2^(2*bits)+... and
    // the CSA tree discards carries out of the top position.
    const std::size_t width = 2 * static_cast<std::size_t>(bits) + 1;
    const Bus acc = add_input_bus(net, "acc", 2 * bits);
    std::vector<Bus> addends = partial_products(net, a, b, width);
    addends.push_back(zero_extend(net, acc, width));
    while (addends.size() > 2) {
        std::vector<Bus> next;
        std::size_t i = 0;
        for (; i + 2 < addends.size(); i += 3) {
            auto [s, c] = csa(net, addends[i], addends[i + 1], addends[i + 2]);
            next.push_back(std::move(s));
            next.push_back(std::move(c));
        }
        for (; i < addends.size(); ++i) next.push_back(std::move(addends[i]));
        addends = std::move(next);
    }
    auto [sum, carry] = ripple_sum(net, addends[0], addends[1], net.add_constant(false));
    (void)carry;  // total fits in 2*bits+1 bits
    add_output_bus(net, "m", Bus(sum.begin(), sum.end() - 1));
    net.add_output("mcout", sum.back());
    return net;
}

namespace {

/// Shared restoring-division datapath. The dividend may be inputs or
/// constants (for the reciprocal); `divisor` is always an input bus.
/// Produces quotient (dividend width) and final remainder (divisor width).
void restoring_division(Network& net, const Bus& dividend, const Bus& divisor,
                        Bus* quotient, Bus* remainder) {
    const std::size_t rw = divisor.size() + 1;  // remainder width
    Bus r(rw, net.add_constant(false));
    Bus d = zero_extend(net, divisor, rw);
    Bus q(dividend.size(), net.add_constant(false));
    for (std::size_t step = 0; step < dividend.size(); ++step) {
        const std::size_t bit = dividend.size() - 1 - step;
        // r = (r << 1) | dividend[bit]
        Bus shifted;
        shifted.push_back(dividend[bit]);
        for (std::size_t i = 0; i + 1 < rw; ++i) shifted.push_back(r[i]);
        auto [diff, geq] = subtract(net, shifted, d);
        r = mux_bus(net, geq, diff, shifted);
        q[bit] = geq;
    }
    *quotient = std::move(q);
    remainder->assign(r.begin(), r.begin() + static_cast<std::ptrdiff_t>(divisor.size()));
}

}  // namespace

Network make_restoring_divider(int bits) {
    Network net("div" + std::to_string(bits));
    const Bus n = add_input_bus(net, "n", bits);
    const Bus d = add_input_bus(net, "d", bits);
    Bus q, r;
    restoring_division(net, n, d, &q, &r);
    add_output_bus(net, "q", q);
    add_output_bus(net, "r", r);
    return net;
}

Network make_reciprocal(int bits) {
    // floor(2^(2*bits-2) / x): constant dividend 1 << (2*bits-2), x != 0.
    Network net("rev" + std::to_string(bits));
    const Bus x = add_input_bus(net, "x", bits);
    Bus dividend(2 * static_cast<std::size_t>(bits) - 1, net.add_constant(false));
    dividend.back() = net.add_constant(true);
    Bus q, r;
    restoring_division(net, dividend, x, &q, &r);
    // The paper's Rev reports `bits` quotient bits: the low slice.
    Bus out(q.begin(), q.begin() + bits);
    add_output_bus(net, "y", out);
    return net;
}

Network make_sqrt(int root_bits) {
    // Restoring square root: digit recurrence over bit pairs.
    Network net("sqrt" + std::to_string(2 * root_bits));
    const Bus a = add_input_bus(net, "a", 2 * root_bits);
    const std::size_t rw = static_cast<std::size_t>(root_bits) + 2;
    Bus r(rw, net.add_constant(false));
    Bus q;  // root bits, msb-first accumulation; q.size() grows each step
    for (int step = 0; step < root_bits; ++step) {
        const int pair = root_bits - 1 - step;
        // r = (r << 2) | a[2*pair+1 .. 2*pair]
        Bus shifted;
        shifted.push_back(a[static_cast<std::size_t>(2 * pair)]);
        shifted.push_back(a[static_cast<std::size_t>(2 * pair + 1)]);
        for (std::size_t i = 0; i + 2 < rw; ++i) shifted.push_back(r[i]);
        // trial = (q << 2) | 01
        Bus trial(rw, net.add_constant(false));
        trial[0] = net.add_constant(true);
        for (std::size_t i = 0; i < q.size() && i + 2 < rw; ++i) trial[i + 2] = q[i];
        auto [diff, geq] = subtract(net, shifted, trial);
        r = mux_bus(net, geq, diff, shifted);
        // q = (q << 1) | geq   (lsb-first storage: insert at front)
        q.insert(q.begin(), geq);
    }
    add_output_bus(net, "root", q);
    add_output_bus(net, "rem", Bus(r.begin(), r.begin() + root_bits + 1));
    return net;
}

}  // namespace bdsmaj::benchgen
