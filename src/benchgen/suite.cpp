#include "benchgen/suite.hpp"

#include <stdexcept>

#include "benchgen/arith.hpp"
#include "benchgen/mcnc.hpp"

namespace bdsmaj::benchgen {

namespace {

net::Network build(const std::string& name, bool quick) {
    // MCNC rows.
    if (name == "alu2") return make_alu2();
    if (name == "C6288") return quick ? make_array_multiplier(8) : make_c6288();
    if (name == "C1355") return make_c1355();
    if (name == "dalu") return make_dalu();
    if (name == "apex6") return make_apex6();
    if (name == "vda") return make_vda();
    if (name == "f51m") return make_f51m();
    if (name == "misex3") return make_misex3();
    if (name == "seq") return make_seq();
    if (name == "bigkey") return make_bigkey();
    // HDL rows.
    if (name == "SQRT 32 bit") return make_sqrt(quick ? 8 : 16);
    if (name == "Wallace 16 bit") return make_wallace_multiplier(quick ? 8 : 16);
    if (name == "CLA 64 bit") return make_cla_adder(quick ? 16 : 64);
    if (name == "Rev (1/X) 19 bit") return make_reciprocal(quick ? 10 : 19);
    if (name == "Div 18 bit") return make_restoring_divider(quick ? 9 : 18);
    if (name == "MAC 16 bit") return make_mac(quick ? 8 : 16);
    if (name == "4-Op ADD 16 bit") return make_four_operand_adder(quick ? 8 : 16);
    throw std::invalid_argument("unknown benchmark: " + name);
}

}  // namespace

std::vector<std::string> benchmark_names() {
    return {
        "alu2",        "C6288",          "C1355",       "dalu",
        "apex6",       "vda",            "f51m",        "misex3",
        "seq",         "bigkey",         "SQRT 32 bit", "Wallace 16 bit",
        "CLA 64 bit",  "Rev (1/X) 19 bit", "Div 18 bit", "MAC 16 bit",
        "4-Op ADD 16 bit",
    };
}

net::Network benchmark_by_name(const std::string& name, bool quick) {
    return build(name, quick);
}

std::vector<BenchmarkCase> table_suite(bool quick) {
    std::vector<BenchmarkCase> suite;
    int index = 0;
    for (const std::string& name : benchmark_names()) {
        BenchmarkCase bc;
        bc.name = name;
        bc.is_mcnc = index < 10;
        bc.network = build(name, quick);
        suite.push_back(std::move(bc));
        ++index;
    }
    return suite;
}

}  // namespace bdsmaj::benchgen
