#include "benchgen/symm.hpp"

#include <cassert>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace bdsmaj::benchgen {

namespace {

using net::Network;
using net::NodeId;

std::vector<NodeId> add_inputs(Network& net, int count) {
    std::vector<NodeId> xs;
    xs.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) xs.push_back(net.add_input("x" + std::to_string(i)));
    return xs;
}

/// popcount of `xs` as a little-endian bus, by full/half-adder reduction of
/// per-weight buckets (the same ladder the SymmetricStrategy emits, here as
/// a plain structural network).
std::vector<NodeId> count_ones(Network& net, const std::vector<NodeId>& xs) {
    int num_bits = 0;
    while ((1 << num_bits) < static_cast<int>(xs.size()) + 1) ++num_bits;
    std::vector<std::deque<NodeId>> weights(static_cast<std::size_t>(num_bits));
    for (const NodeId x : xs) weights[0].push_back(x);
    std::vector<NodeId> count;
    for (int w = 0; w < num_bits; ++w) {
        std::deque<NodeId>& bucket = weights[static_cast<std::size_t>(w)];
        while (bucket.size() >= 3) {
            const NodeId a = bucket.front();
            bucket.pop_front();
            const NodeId b = bucket.front();
            bucket.pop_front();
            const NodeId c = bucket.front();
            bucket.pop_front();
            bucket.push_back(net.add_xor(net.add_xor(a, b), c));
            if (w + 1 < num_bits) {
                weights[static_cast<std::size_t>(w) + 1].push_back(net.add_maj(a, b, c));
            }
        }
        if (bucket.size() == 2) {
            const NodeId a = bucket.front();
            bucket.pop_front();
            const NodeId b = bucket.front();
            bucket.pop_front();
            bucket.push_back(net.add_xor(a, b));
            if (w + 1 < num_bits) {
                weights[static_cast<std::size_t>(w) + 1].push_back(net.add_and(a, b));
            }
        }
        count.push_back(bucket.empty() ? net.add_constant(false) : bucket.front());
    }
    return count;
}

}  // namespace

Network make_parity_tree(int inputs) {
    assert(inputs >= 1);
    Network net("parity" + std::to_string(inputs));
    std::vector<NodeId> layer = add_inputs(net, inputs);
    // Balanced reduction: pair up, odd wire carries to the next layer.
    while (layer.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            next.push_back(net.add_xor(layer[i], layer[i + 1]));
        }
        if (layer.size() % 2 != 0) next.push_back(layer.back());
        layer = std::move(next);
    }
    net.add_output("p", layer.front());
    return net;
}

Network make_ones_counter(int inputs) {
    assert(inputs >= 1);
    Network net("count" + std::to_string(inputs));
    const std::vector<NodeId> count = count_ones(net, add_inputs(net, inputs));
    for (std::size_t i = 0; i < count.size(); ++i) {
        net.add_output("c" + std::to_string(i), count[i]);
    }
    return net;
}

Network make_voter(int inputs) {
    assert(inputs >= 3 && inputs % 2 == 1 && "a voter needs an odd input count");
    Network net("voter" + std::to_string(inputs));
    const std::vector<NodeId> count = count_ones(net, add_inputs(net, inputs));
    // out = [count >= threshold], threshold = inputs/2 + 1. LSB-to-MSB
    // prefix compare: ge_i answers "low i+1 count bits >= low i+1 threshold
    // bits", the bit being compared always the prefix MSB.
    const int threshold = inputs / 2 + 1;
    NodeId ge = net.add_constant(true);  // empty prefixes are equal
    for (std::size_t i = 0; i < count.size(); ++i) {
        ge = ((threshold >> i) & 1) != 0 ? net.add_and(count[i], ge)
                                         : net.add_or(count[i], ge);
    }
    net.add_output("v", ge);
    return net;
}

}  // namespace bdsmaj::benchgen
