#pragma once
// Conversions between logic networks and AIGs.
//
// network -> AIG: structured gates decompose into hashed ANDs; SOP covers
// enter through their factored form.
//
// AIG -> network: AND nodes become AND gates with polarity tracked by the
// hash-consing builder; the canonical 3-AND XOR/MUX motif is recognized so
// XOR2/XNOR2 cells survive mapping (ABC's mapper recovers XORs through cut
// matching — motif detection is the structural equivalent here). MAJ
// structure is NOT recovered: that blindness is precisely what the paper's
// comparison exercises.

#include "aig/aig.hpp"
#include "network/network.hpp"

namespace bdsmaj::aig {

[[nodiscard]] Aig network_to_aig(const net::Network& network);

struct AigToNetworkOptions {
    bool detect_xor_mux = true;
};

/// Reconstruct a gate network; PI/PO order (and names, taken from `names`)
/// match the AIG's input/output order.
[[nodiscard]] net::Network aig_to_network(const Aig& aig,
                                          const std::vector<std::string>& input_names,
                                          const std::vector<std::string>& output_names,
                                          const AigToNetworkOptions& options = {});

}  // namespace bdsmaj::aig
