#include <algorithm>
#include <queue>

#include "aig/opt.hpp"

namespace bdsmaj::aig {

namespace {

/// Depth of each node in the NEW aig, maintained incrementally.
class LevelTracker {
public:
    int of(const Aig& aig, Lit l) {
        const NodeId n = lit_node(l);
        if (!aig.is_and(n)) return 0;
        if (levels_.size() <= n) levels_.resize(n + 1, -1);
        if (levels_[n] < 0) {
            levels_[n] = 1 + std::max(of(aig, aig.fanin0(n)), of(aig, aig.fanin1(n)));
        }
        return levels_[n];
    }

private:
    std::vector<int> levels_;
};

class Balancer {
public:
    explicit Balancer(const Aig& in)
        : in_(in),
          fanout_(in.fanout_counts()),
          memo_(in.node_count(), kLitInvalid),
          input_pos_(in.node_count(), 0) {}

    Aig run() {
        for (std::size_t i = 0; i < in_.input_count(); ++i) {
            input_map_.push_back(out_.add_input());
        }
        for (std::size_t i = 0; i < in_.inputs().size(); ++i) {
            input_pos_[in_.inputs()[i]] = i;
        }
        for (const Lit po : in_.outputs()) out_.add_output(copy(po));
        return std::move(out_);
    }

private:
    Lit copy(Lit l) {
        const NodeId n = lit_node(l);
        const bool c = lit_complemented(l);
        if (n == kConstNode) return c ? kLitTrue : kLitFalse;
        if (in_.is_input(n)) {
            const auto pos = input_pos_[n];
            return c ? lit_not(input_map_[pos]) : input_map_[pos];
        }
        if (memo_[n] != kLitInvalid) return c ? lit_not(memo_[n]) : memo_[n];

        // Collect the maximal single-fanout AND tree rooted at n; shared or
        // complemented branches become leaves (preserving their sharing).
        std::vector<Lit> leaves;
        std::vector<Lit> stack{in_.fanin0(n), in_.fanin1(n)};
        while (!stack.empty()) {
            const Lit branch = stack.back();
            stack.pop_back();
            const NodeId bn = lit_node(branch);
            if (!lit_complemented(branch) && in_.is_and(bn) && fanout_[bn] == 1) {
                stack.push_back(in_.fanin0(bn));
                stack.push_back(in_.fanin1(bn));
            } else {
                leaves.push_back(branch);
            }
        }
        // Copy leaves, then combine the two shallowest first (minimizes the
        // tree depth like Huffman coding minimizes weighted depth).
        std::vector<Lit> new_leaves;
        new_leaves.reserve(leaves.size());
        for (const Lit leaf : leaves) new_leaves.push_back(copy(leaf));
        const auto deeper = [&](Lit a, Lit b) {
            return levels_.of(out_, a) > levels_.of(out_, b);
        };
        std::priority_queue<Lit, std::vector<Lit>, decltype(deeper)> heap(deeper,
                                                                          new_leaves);
        while (heap.size() > 1) {
            const Lit a = heap.top();
            heap.pop();
            const Lit b = heap.top();
            heap.pop();
            heap.push(out_.land(a, b));
        }
        const Lit result = heap.top();
        memo_[n] = result;
        return c ? lit_not(result) : result;
    }

    const Aig& in_;
    std::vector<std::uint32_t> fanout_;
    Aig out_;
    std::vector<Lit> input_map_;
    std::vector<Lit> memo_;               // by input NodeId; kLitInvalid = unset
    std::vector<std::size_t> input_pos_;  // by input NodeId
    LevelTracker levels_;
};

}  // namespace

Aig balance(const Aig& in) { return Balancer(in).run(); }

}  // namespace bdsmaj::aig
