#include "aig/convert.hpp"

#include <cassert>
#include <stdexcept>

#include "network/builder.hpp"
#include "network/factor.hpp"

namespace bdsmaj::aig {

namespace {

using net::GateKind;
using net::Network;
using net::NodeId;
using net::Signal;

}  // namespace

Aig network_to_aig(const Network& network) {
    Aig aig;
    std::vector<Lit> value(network.node_count(), kLitInvalid);
    for (const NodeId id : network.inputs()) value[id] = aig.add_input();
    for (const NodeId id : network.topo_order()) {
        const net::Node& n = network.node(id);
        const auto in = [&](std::size_t k) { return value[n.fanins[k]]; };
        switch (n.kind) {
            case GateKind::kInput: break;
            case GateKind::kConst0: value[id] = kLitFalse; break;
            case GateKind::kConst1: value[id] = kLitTrue; break;
            case GateKind::kBuf: value[id] = in(0); break;
            case GateKind::kNot: value[id] = lit_not(in(0)); break;
            case GateKind::kAnd: value[id] = aig.land(in(0), in(1)); break;
            case GateKind::kOr: value[id] = aig.lor(in(0), in(1)); break;
            case GateKind::kNand: value[id] = lit_not(aig.land(in(0), in(1))); break;
            case GateKind::kNor: value[id] = lit_not(aig.lor(in(0), in(1))); break;
            case GateKind::kXor: value[id] = aig.lxor(in(0), in(1)); break;
            case GateKind::kXnor: value[id] = lit_not(aig.lxor(in(0), in(1))); break;
            case GateKind::kMaj: value[id] = aig.lmaj(in(0), in(1), in(2)); break;
            case GateKind::kMux: value[id] = aig.lmux(in(0), in(1), in(2)); break;
            case GateKind::kSop: {
                std::vector<Lit> leaves;
                leaves.reserve(n.fanins.size());
                for (const NodeId f : n.fanins) leaves.push_back(value[f]);
                value[id] = net::detail::factor_generic(
                    n.sop.cubes(),
                    [&](std::size_t pos, bool positive) {
                        return positive ? leaves[pos] : lit_not(leaves[pos]);
                    },
                    [&](Lit a, Lit b) { return aig.land(a, b); },
                    [&](Lit a, Lit b) { return aig.lor(a, b); },
                    [](bool v) { return v ? kLitTrue : kLitFalse; });
                break;
            }
        }
    }
    for (const net::OutputPort& po : network.outputs()) {
        if (value[po.driver] == kLitInvalid) {
            throw std::runtime_error("network_to_aig: undriven output");
        }
        aig.add_output(value[po.driver]);
    }
    return aig;
}

Network aig_to_network(const Aig& aig, const std::vector<std::string>& input_names,
                       const std::vector<std::string>& output_names,
                       const AigToNetworkOptions& options) {
    Network out("from_aig");
    net::HashedNetworkBuilder builder(out);
    std::vector<Signal> value(aig.node_count(), Signal{});
    for (std::size_t i = 0; i < aig.input_count(); ++i) {
        const std::string name =
            i < input_names.size() ? input_names[i] : "i" + std::to_string(i);
        value[aig.inputs()[i]] = Signal{out.add_input(name), false};
    }
    const auto sig = [&](Lit l) {
        const Signal s = value[lit_node(l)];
        return lit_complemented(l) ? !s : s;
    };
    for (const NodeId n : aig.reachable_ands()) {
        const Lit f0 = aig.fanin0(n);
        const Lit f1 = aig.fanin1(n);
        if (options.detect_xor_mux && lit_complemented(f0) && lit_complemented(f1)) {
            const NodeId a = lit_node(f0);
            const NodeId b = lit_node(f1);
            if (aig.is_and(a) && aig.is_and(b)) {
                // n = !(p q) & !(r s): when {r,s} ∩ {!p,!q} shares the
                // selector, this is the MUX/XOR motif:
                //   n = !(p q) & !(!p s) = !MUX(p, q, s).
                const Lit p = aig.fanin0(a), q = aig.fanin1(a);
                const Lit r = aig.fanin0(b), s = aig.fanin1(b);
                Lit sel = kLitInvalid, t = kLitInvalid, e = kLitInvalid;
                if (r == lit_not(p)) { sel = p; t = q; e = s; }
                else if (s == lit_not(p)) { sel = p; t = q; e = r; }
                else if (r == lit_not(q)) { sel = q; t = p; e = s; }
                else if (s == lit_not(q)) { sel = q; t = p; e = r; }
                if (sel != kLitInvalid) {
                    value[n] = !builder.build_mux(sig(sel), sig(t), sig(e));
                    continue;
                }
            }
        }
        value[n] = builder.build_and(sig(f0), sig(f1));
    }
    for (std::size_t o = 0; o < aig.outputs().size(); ++o) {
        const std::string name =
            o < output_names.size() ? output_names[o] : "o" + std::to_string(o);
        Signal s;
        const Lit l = aig.outputs()[o];
        if (lit_node(l) == kConstNode) {
            s = builder.constant(lit_complemented(l));
        } else {
            s = sig(l);
        }
        out.add_output(name, builder.realize(s));
    }
    return out;
}

}  // namespace bdsmaj::aig
