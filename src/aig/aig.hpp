#pragma once
// And-Inverter Graph with structural hashing and complement edges: the
// optimization substrate of the "ABC" comparison flow (paper SV, resyn2 +
// ABC mapper). Node 0 is constant false; literals are (node << 1) |
// complement, so negation is free.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace bdsmaj::aig {

using Lit = std::uint32_t;
using NodeId = std::uint32_t;

constexpr NodeId kConstNode = 0;
constexpr Lit kLitFalse = 0;
constexpr Lit kLitTrue = 1;
constexpr Lit kLitInvalid = 0xffffffffu;

[[nodiscard]] constexpr NodeId lit_node(Lit l) noexcept { return l >> 1; }
[[nodiscard]] constexpr bool lit_complemented(Lit l) noexcept { return (l & 1u) != 0; }
[[nodiscard]] constexpr Lit make_lit(NodeId n, bool complement) noexcept {
    return (n << 1) | static_cast<Lit>(complement);
}
[[nodiscard]] constexpr Lit lit_not(Lit l) noexcept { return l ^ 1u; }

class Aig {
public:
    Aig() {
        nodes_.push_back(Node{kLitInvalid, kLitInvalid});  // constant false
    }

    /// Create a primary input; returns its positive literal.
    Lit add_input();
    /// Structurally hashed AND with constant/duplicate folding.
    [[nodiscard]] Lit land(Lit a, Lit b);
    [[nodiscard]] Lit lor(Lit a, Lit b) { return lit_not(land(lit_not(a), lit_not(b))); }
    [[nodiscard]] Lit lxor(Lit a, Lit b);
    [[nodiscard]] Lit lmux(Lit s, Lit t, Lit e);
    [[nodiscard]] Lit lmaj(Lit a, Lit b, Lit c);
    void add_output(Lit l) { outputs_.push_back(l); }

    [[nodiscard]] std::size_t input_count() const noexcept { return inputs_.size(); }
    [[nodiscard]] const std::vector<NodeId>& inputs() const noexcept { return inputs_; }
    [[nodiscard]] const std::vector<Lit>& outputs() const noexcept { return outputs_; }
    [[nodiscard]] std::vector<Lit>& outputs() noexcept { return outputs_; }

    [[nodiscard]] bool is_and(NodeId n) const {
        return nodes_[n].f0 != kLitInvalid && n != kConstNode;
    }
    [[nodiscard]] bool is_input(NodeId n) const {
        return nodes_[n].f0 == kLitInvalid && n != kConstNode;
    }
    [[nodiscard]] Lit fanin0(NodeId n) const { return nodes_[n].f0; }
    [[nodiscard]] Lit fanin1(NodeId n) const { return nodes_[n].f1; }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

    /// Number of AND nodes reachable from the outputs (the ABC size metric).
    [[nodiscard]] std::size_t and_count() const;
    /// Maximum AND-depth over outputs (the ABC level metric).
    [[nodiscard]] int level() const;
    /// AND nodes reachable from the outputs, topologically ordered.
    [[nodiscard]] std::vector<NodeId> reachable_ands() const;
    /// Fanout counts over reachable nodes (outputs count one each).
    [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

    /// 64-way parallel simulation: word per input, word per output.
    [[nodiscard]] std::vector<std::uint64_t> simulate_words(
        const std::vector<std::uint64_t>& input_words) const;

    /// Truth table of a literal over the first `num_vars` inputs.
    [[nodiscard]] tt::TruthTable to_truth_table(Lit l, int num_vars) const;

    /// Rollback support for trial construction (the rewrite pass builds a
    /// candidate, measures its cost, and may undo it). Only AND nodes may
    /// be created between mark and truncate.
    [[nodiscard]] std::size_t mark() const noexcept { return nodes_.size(); }
    void truncate(std::size_t marked_size);

private:
    struct Node {
        Lit f0 = kLitInvalid;
        Lit f1 = kLitInvalid;
    };

    std::vector<Node> nodes_;
    std::vector<NodeId> inputs_;
    std::vector<Lit> outputs_;
    std::unordered_map<std::uint64_t, NodeId> strash_;
};

}  // namespace bdsmaj::aig
