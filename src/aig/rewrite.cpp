#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "aig/opt.hpp"
#include "network/factor.hpp"

namespace bdsmaj::aig {

namespace {

/// Out-of-place cut rewriting. For every AND node of the input we choose
/// between (a) structural re-copy of its fanins plus one AND, and (b)
/// resynthesis of a grown cut's function from its ISOP factored form over
/// the already-copied cut leaves. Option (b) wins when it creates fewer
/// nodes than the node plus its cut-local MFFC would cost — the classical
/// rewriting gain test, evaluated by trial construction with rollback.
class Rewriter {
public:
    Rewriter(const Aig& in, const RewriteParams& params)
        : in_(in), params_(params), fanout_(in.fanout_counts()) {}

    Aig run() {
        for (std::size_t i = 0; i < in_.input_count(); ++i) {
            input_map_.push_back(out_.add_input());
        }
        input_pos_.reserve(in_.inputs().size());
        for (std::size_t i = 0; i < in_.inputs().size(); ++i) {
            input_pos_.emplace(in_.inputs()[i], i);
        }
        for (const Lit po : in_.outputs()) out_.add_output(copy(po));
        return std::move(out_);
    }

private:
    // ---- cut growing -------------------------------------------------------

    /// Grow one cut from node n by repeatedly expanding an AND leaf, with a
    /// strategy-dependent choice of which leaf to expand.
    std::vector<NodeId> grow_cut(NodeId n, int strategy) const {
        std::vector<NodeId> cut{lit_node(in_.fanin0(n)), lit_node(in_.fanin1(n))};
        std::sort(cut.begin(), cut.end());
        cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
        std::vector<NodeId> frozen;
        while (true) {
            // Expandable leaves are AND nodes not yet frozen.
            int pick = -1;
            for (std::size_t i = 0; i < cut.size(); ++i) {
                const std::size_t probe =
                    (i + static_cast<std::size_t>(strategy)) % cut.size();
                if (in_.is_and(cut[probe]) &&
                    std::find(frozen.begin(), frozen.end(), cut[probe]) == frozen.end()) {
                    pick = static_cast<int>(probe);
                    break;
                }
            }
            if (pick < 0) break;
            const NodeId leaf = cut[static_cast<std::size_t>(pick)];
            std::vector<NodeId> next = cut;
            next.erase(next.begin() + pick);
            for (const Lit f : {in_.fanin0(leaf), in_.fanin1(leaf)}) {
                const NodeId fn = lit_node(f);
                if (fn != kConstNode &&
                    std::find(next.begin(), next.end(), fn) == next.end()) {
                    next.push_back(fn);
                }
            }
            if (next.size() > static_cast<std::size_t>(params_.cut_size)) {
                frozen.push_back(leaf);
                continue;
            }
            std::sort(next.begin(), next.end());
            cut = std::move(next);
        }
        return cut;
    }

    /// Internal cone nodes between n (inclusive) and the cut leaves.
    std::vector<NodeId> cone_of(NodeId n, const std::vector<NodeId>& cut) const {
        std::unordered_set<NodeId> leaf_set(cut.begin(), cut.end());
        std::unordered_set<NodeId> seen{n};
        std::vector<NodeId> stack{n};
        std::vector<NodeId> cone;
        while (!stack.empty()) {
            const NodeId v = stack.back();
            stack.pop_back();
            cone.push_back(v);
            for (const Lit f : {in_.fanin0(v), in_.fanin1(v)}) {
                const NodeId fn = lit_node(f);
                if (fn == kConstNode || leaf_set.contains(fn) || seen.contains(fn)) {
                    continue;
                }
                seen.insert(fn);
                stack.push_back(fn);
            }
        }
        std::sort(cone.begin(), cone.end());  // ascending = topological
        return cone;
    }

    /// Number of cone nodes that die when n is replaced: nodes all of whose
    /// fanouts lie inside the removable set (seeded by n itself).
    int mffc_size(NodeId n, const std::vector<NodeId>& cone) const {
        std::unordered_set<NodeId> removable{n};
        bool changed = true;
        while (changed) {
            changed = false;
            for (const NodeId v : cone) {
                if (removable.contains(v)) continue;
                // v is removable if every fanout reference comes from
                // removable nodes. Approximate with counts: all fanouts of v
                // must be cone members that are removable and account for
                // the full fanout count.
                std::uint32_t refs_from_removable = 0;
                for (const NodeId u : cone) {
                    if (!removable.contains(u)) continue;
                    refs_from_removable +=
                        static_cast<std::uint32_t>(lit_node(in_.fanin0(u)) == v) +
                        static_cast<std::uint32_t>(lit_node(in_.fanin1(u)) == v);
                }
                if (refs_from_removable == fanout_[v] && fanout_[v] > 0) {
                    removable.insert(v);
                    changed = true;
                }
            }
        }
        return static_cast<int>(removable.size());
    }

    /// Truth table of n over the ordered cut leaves.
    tt::TruthTable cut_function(NodeId n, const std::vector<NodeId>& cut,
                                const std::vector<NodeId>& cone) const {
        const int k = static_cast<int>(cut.size());
        std::unordered_map<NodeId, tt::TruthTable> value;
        for (int i = 0; i < k; ++i) value.emplace(cut[static_cast<std::size_t>(i)], tt::TruthTable::var(k, i));
        const auto eval = [&](Lit l) {
            const tt::TruthTable& t = value.at(lit_node(l));
            return lit_complemented(l) ? ~t : t;
        };
        for (const NodeId v : cone) {
            if (value.contains(v)) continue;
            value.emplace(v, eval(in_.fanin0(v)) & eval(in_.fanin1(v)));
        }
        return value.at(n);
    }

    /// Build the ISOP factored form of `function` over new-AIG leaf
    /// literals; returns the literal computing it. Datapath circuits repeat
    /// the same cut functions (full adders, carries) thousands of times, so
    /// covers are cached by function.
    Lit build_factored(const tt::TruthTable& function, const std::vector<Lit>& leaves) {
        std::string key = function.to_hex();
        key += ':';
        key += std::to_string(function.num_vars());
        auto [cache_it, fresh] = isop_cache_.try_emplace(std::move(key));
        if (fresh) cache_it->second = net::Sop::isop(function);
        const net::Sop& cover = cache_it->second;
        return net::detail::factor_generic(
            cover.cubes(),
            [&](std::size_t pos, bool positive) {
                return positive ? leaves[pos] : lit_not(leaves[pos]);
            },
            [&](Lit a, Lit b) { return out_.land(a, b); },
            [&](Lit a, Lit b) { return out_.lor(a, b); },
            [](bool value) { return value ? kLitTrue : kLitFalse; });
    }

    // ---- main copy recursion ----------------------------------------------

    Lit copy(Lit l) {
        const NodeId n = lit_node(l);
        const bool c = lit_complemented(l);
        if (n == kConstNode) return c ? kLitTrue : kLitFalse;
        if (in_.is_input(n)) {
            const Lit mapped = input_map_[input_pos_.at(n)];
            return c ? lit_not(mapped) : mapped;
        }
        if (const auto it = memo_.find(n); it != memo_.end()) {
            return c ? lit_not(it->second) : it->second;
        }

        int best_cost = 0;
        bool have_best = false;
        tt::TruthTable best_fn;
        std::vector<Lit> best_leaves;

        for (int strategy = 0; strategy < params_.cut_variants; ++strategy) {
            const std::vector<NodeId> cut = grow_cut(n, strategy);
            if (cut.size() < 2) continue;
            const std::vector<NodeId> cone = cone_of(n, cut);
            const int budget = mffc_size(n, cone);
            // Copy the leaves (permanent: they are almost always needed).
            std::vector<Lit> leaves;
            leaves.reserve(cut.size());
            for (const NodeId leaf : cut) leaves.push_back(copy(make_lit(leaf, false)));
            const tt::TruthTable fn = cut_function(n, cut, cone);
            // Trial build with rollback.
            const std::size_t marked = out_.mark();
            (void)build_factored(fn, leaves);
            const int created = static_cast<int>(out_.mark() - marked);
            const bool acceptable =
                params_.zero_gain ? created <= budget : created < budget;
            if (acceptable && (!have_best || created < best_cost)) {
                have_best = true;
                best_cost = created;
                best_fn = fn;
                best_leaves = leaves;
            }
            out_.truncate(marked);  // candidates are rebuilt at commit time
        }

        Lit result;
        if (have_best) {
            result = build_factored(best_fn, best_leaves);
        } else {
            const Lit f0 = copy(in_.fanin0(n));
            const Lit f1 = copy(in_.fanin1(n));
            result = out_.land(f0, f1);
        }
        memo_.emplace(n, result);
        return c ? lit_not(result) : result;
    }

    const Aig& in_;
    RewriteParams params_;
    std::vector<std::uint32_t> fanout_;
    Aig out_;
    std::vector<Lit> input_map_;
    std::unordered_map<NodeId, std::size_t> input_pos_;
    std::unordered_map<NodeId, Lit> memo_;
    std::unordered_map<std::string, net::Sop> isop_cache_;
};

}  // namespace

Aig rewrite(const Aig& in, const RewriteParams& params) {
    Aig out = Rewriter(in, params).run();
    // MFFC budgets are estimates: a replacement can keep its cone alive
    // through other fanouts. Guarantee monotonicity by falling back to the
    // input when the reachable size grew.
    if (out.and_count() > in.and_count()) return in;
    return out;
}

Aig resyn2(const Aig& in) {
    // balance; rewrite; refactor(=rewrite@8); balance; rewrite -z; balance —
    // the shape of ABC's resyn2 with our pass inventory.
    Aig a = balance(in);
    a = rewrite(a, RewriteParams{4, 3, false});
    a = rewrite(a, RewriteParams{8, 3, false});
    a = balance(a);
    a = rewrite(a, RewriteParams{4, 3, true});
    Aig b = rewrite(a, RewriteParams{4, 3, false});
    if (b.and_count() > a.and_count()) b = std::move(a);
    return balance(b);
}

}  // namespace bdsmaj::aig
