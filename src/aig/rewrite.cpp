#include <algorithm>
#include <unordered_map>

#include "aig/opt.hpp"
#include "network/factor.hpp"

namespace bdsmaj::aig {

namespace {

/// Out-of-place cut rewriting. For every AND node of the input we choose
/// between (a) structural re-copy of its fanins plus one AND, and (b)
/// resynthesis of a grown cut's function from its ISOP factored form over
/// the already-copied cut leaves. Option (b) wins when it creates fewer
/// nodes than the node plus its cut-local MFFC would cost — the classical
/// rewriting gain test, evaluated by trial construction with rollback.
class Rewriter {
public:
    Rewriter(const Aig& in, const RewriteParams& params)
        : in_(in),
          params_(params),
          fanout_(in.fanout_counts()),
          memo_(in.node_count(), kLitInvalid),
          input_pos_(in.node_count(), 0),
          cone_stamp_(in.node_count(), 0),
          aux_stamp_(in.node_count(), 0),
          slot_stamp_(in.node_count(), 0),
          slot_value_(in.node_count(), 0) {}

    Aig run() {
        for (std::size_t i = 0; i < in_.input_count(); ++i) {
            input_map_.push_back(out_.add_input());
        }
        for (std::size_t i = 0; i < in_.inputs().size(); ++i) {
            input_pos_[in_.inputs()[i]] = i;
        }
        for (const Lit po : in_.outputs()) out_.add_output(copy(po));
        return std::move(out_);
    }

private:
    // ---- cut growing -------------------------------------------------------

    /// Grow one cut from node n by repeatedly expanding an AND leaf, with a
    /// strategy-dependent choice of which leaf to expand.
    std::vector<NodeId> grow_cut(NodeId n, int strategy) const {
        std::vector<NodeId> cut{lit_node(in_.fanin0(n)), lit_node(in_.fanin1(n))};
        std::sort(cut.begin(), cut.end());
        cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
        std::vector<NodeId> frozen;
        while (true) {
            // Expandable leaves are AND nodes not yet frozen.
            int pick = -1;
            for (std::size_t i = 0; i < cut.size(); ++i) {
                const std::size_t probe =
                    (i + static_cast<std::size_t>(strategy)) % cut.size();
                if (in_.is_and(cut[probe]) &&
                    std::find(frozen.begin(), frozen.end(), cut[probe]) == frozen.end()) {
                    pick = static_cast<int>(probe);
                    break;
                }
            }
            if (pick < 0) break;
            const NodeId leaf = cut[static_cast<std::size_t>(pick)];
            std::vector<NodeId> next = cut;
            next.erase(next.begin() + pick);
            for (const Lit f : {in_.fanin0(leaf), in_.fanin1(leaf)}) {
                const NodeId fn = lit_node(f);
                if (fn != kConstNode &&
                    std::find(next.begin(), next.end(), fn) == next.end()) {
                    next.push_back(fn);
                }
            }
            if (next.size() > static_cast<std::size_t>(params_.cut_size)) {
                frozen.push_back(leaf);
                continue;
            }
            std::sort(next.begin(), next.end());
            cut = std::move(next);
        }
        return cut;
    }

    /// Internal cone nodes between n (inclusive) and the cut leaves.
    /// Membership tests run on generation-stamped scratch arrays (leaves in
    /// cone_stamp_, visited in aux_stamp_) — no per-call hash sets.
    std::vector<NodeId> cone_of(NodeId n, const std::vector<NodeId>& cut) {
        const std::uint32_t gen = ++gen_;
        for (const NodeId leaf : cut) cone_stamp_[leaf] = gen;
        aux_stamp_[n] = gen;
        std::vector<NodeId> stack{n};
        std::vector<NodeId> cone;
        while (!stack.empty()) {
            const NodeId v = stack.back();
            stack.pop_back();
            cone.push_back(v);
            for (const Lit f : {in_.fanin0(v), in_.fanin1(v)}) {
                const NodeId fn = lit_node(f);
                if (fn == kConstNode || cone_stamp_[fn] == gen ||
                    aux_stamp_[fn] == gen) {
                    continue;
                }
                aux_stamp_[fn] = gen;
                stack.push_back(fn);
            }
        }
        std::sort(cone.begin(), cone.end());  // ascending = topological
        return cone;
    }

    /// Number of cone nodes that die when n is replaced: nodes all of whose
    /// fanouts lie inside the removable set (seeded by n itself). Worklist
    /// propagation over stamped reference counters; reaches the same fixed
    /// point as the naive "rescan the cone until stable" formulation, one
    /// fanin reference at a time instead of O(|cone|^2) per round.
    int mffc_size(NodeId n, const std::vector<NodeId>& cone) {
        const std::uint32_t gen = ++gen_;
        for (const NodeId v : cone) cone_stamp_[v] = gen;
        aux_stamp_[n] = gen;  // aux = removable
        std::vector<NodeId> worklist{n};
        int count = 1;
        while (!worklist.empty()) {
            const NodeId u = worklist.back();
            worklist.pop_back();
            for (const Lit f : {in_.fanin0(u), in_.fanin1(u)}) {
                const NodeId v = lit_node(f);
                if (cone_stamp_[v] != gen || aux_stamp_[v] == gen) continue;
                if (slot_stamp_[v] != gen) {
                    slot_stamp_[v] = gen;
                    slot_value_[v] = 0;
                }
                if (++slot_value_[v] == fanout_[v]) {
                    aux_stamp_[v] = gen;
                    ++count;
                    worklist.push_back(v);
                }
            }
        }
        return count;
    }

    /// Truth table of n over the ordered cut leaves.
    tt::TruthTable cut_function(NodeId n, const std::vector<NodeId>& cut,
                                const std::vector<NodeId>& cone) {
        const int k = static_cast<int>(cut.size());
        const std::uint32_t gen = ++gen_;
        // slot_value_[v] indexes into a dense table vector while stamped.
        std::vector<tt::TruthTable> tables;
        tables.reserve(cut.size() + cone.size());
        for (int i = 0; i < k; ++i) {
            const NodeId leaf = cut[static_cast<std::size_t>(i)];
            slot_stamp_[leaf] = gen;
            slot_value_[leaf] = static_cast<std::uint32_t>(tables.size());
            tables.push_back(tt::TruthTable::var(k, i));
        }
        const auto eval = [&](Lit l) {
            const tt::TruthTable& t = tables[slot_value_[lit_node(l)]];
            return lit_complemented(l) ? ~t : t;
        };
        for (const NodeId v : cone) {
            if (slot_stamp_[v] == gen) continue;
            tt::TruthTable t = eval(in_.fanin0(v)) & eval(in_.fanin1(v));
            slot_stamp_[v] = gen;
            slot_value_[v] = static_cast<std::uint32_t>(tables.size());
            tables.push_back(std::move(t));
        }
        return tables[slot_value_[n]];
    }

    /// A compiled factored form: the factor_generic callback sequence
    /// recorded as a tiny straight-line program over leaf positions.
    /// Datapath circuits repeat the same cut functions (full adders,
    /// carries) thousands of times, and the rewriting gain test builds
    /// every candidate twice (trial + commit); replaying the program skips
    /// the ISOP and divisor search entirely on every repeat.
    struct FactorInstr {
        enum Op : std::uint8_t { kConst0, kConst1, kLit, kAnd, kOr };
        Op op;
        std::uint32_t a = 0;  // kLit: leaf position; kAnd/kOr: operand index
        std::uint32_t b = 0;  // kLit: 1 = positive;  kAnd/kOr: operand index
    };
    struct FactorProgram {
        std::vector<FactorInstr> instrs;
        std::uint32_t result = 0;  // index of the output value
    };

    static FactorProgram compile_factored(const tt::TruthTable& function) {
        const net::Sop cover = net::Sop::isop(function);
        FactorProgram prog;
        const auto emit = [&prog](FactorInstr instr) {
            prog.instrs.push_back(instr);
            return static_cast<std::uint32_t>(prog.instrs.size() - 1);
        };
        prog.result = net::detail::factor_generic(
            cover.cubes(),
            [&](std::size_t pos, bool positive) {
                return emit({FactorInstr::kLit, static_cast<std::uint32_t>(pos),
                             positive ? 1u : 0u});
            },
            [&](std::uint32_t x, std::uint32_t y) {
                return emit({FactorInstr::kAnd, x, y});
            },
            [&](std::uint32_t x, std::uint32_t y) {
                return emit({FactorInstr::kOr, x, y});
            },
            [&](bool value) {
                return emit({value ? FactorInstr::kConst1 : FactorInstr::kConst0});
            });
        return prog;
    }

    Lit build_factored(const tt::TruthTable& function, const std::vector<Lit>& leaves) {
        std::string key = function.to_hex();
        key += ':';
        key += std::to_string(function.num_vars());
        auto [cache_it, fresh] = factor_cache_.try_emplace(std::move(key));
        if (fresh) cache_it->second = compile_factored(function);
        const FactorProgram& prog = cache_it->second;
        values_.resize(prog.instrs.size());
        for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
            const FactorInstr& instr = prog.instrs[i];
            switch (instr.op) {
                case FactorInstr::kConst0: values_[i] = kLitFalse; break;
                case FactorInstr::kConst1: values_[i] = kLitTrue; break;
                case FactorInstr::kLit:
                    values_[i] = instr.b != 0 ? leaves[instr.a] : lit_not(leaves[instr.a]);
                    break;
                case FactorInstr::kAnd:
                    values_[i] = out_.land(values_[instr.a], values_[instr.b]);
                    break;
                case FactorInstr::kOr:
                    values_[i] = out_.lor(values_[instr.a], values_[instr.b]);
                    break;
            }
        }
        return values_[prog.result];
    }

    // ---- main copy recursion ----------------------------------------------

    Lit copy(Lit l) {
        const NodeId n = lit_node(l);
        const bool c = lit_complemented(l);
        if (n == kConstNode) return c ? kLitTrue : kLitFalse;
        if (in_.is_input(n)) {
            const Lit mapped = input_map_[input_pos_[n]];
            return c ? lit_not(mapped) : mapped;
        }
        if (memo_[n] != kLitInvalid) {
            return c ? lit_not(memo_[n]) : memo_[n];
        }

        int best_cost = 0;
        bool have_best = false;
        tt::TruthTable best_fn;
        std::vector<Lit> best_leaves;

        for (int strategy = 0; strategy < params_.cut_variants; ++strategy) {
            const std::vector<NodeId> cut = grow_cut(n, strategy);
            if (cut.size() < 2) continue;
            const std::vector<NodeId> cone = cone_of(n, cut);
            const int budget = mffc_size(n, cone);
            // Copy the leaves (permanent: they are almost always needed).
            std::vector<Lit> leaves;
            leaves.reserve(cut.size());
            for (const NodeId leaf : cut) leaves.push_back(copy(make_lit(leaf, false)));
            const tt::TruthTable fn = cut_function(n, cut, cone);
            // Trial build with rollback.
            const std::size_t marked = out_.mark();
            (void)build_factored(fn, leaves);
            const int created = static_cast<int>(out_.mark() - marked);
            const bool acceptable =
                params_.zero_gain ? created <= budget : created < budget;
            if (acceptable && (!have_best || created < best_cost)) {
                have_best = true;
                best_cost = created;
                best_fn = fn;
                best_leaves = leaves;
            }
            out_.truncate(marked);  // candidates are rebuilt at commit time
        }

        Lit result;
        if (have_best) {
            result = build_factored(best_fn, best_leaves);
        } else {
            const Lit f0 = copy(in_.fanin0(n));
            const Lit f1 = copy(in_.fanin1(n));
            result = out_.land(f0, f1);
        }
        memo_[n] = result;
        return c ? lit_not(result) : result;
    }

    const Aig& in_;
    RewriteParams params_;
    std::vector<std::uint32_t> fanout_;
    Aig out_;
    std::vector<Lit> input_map_;
    std::vector<Lit> memo_;                   // by input NodeId; kLitInvalid = unset
    std::vector<std::size_t> input_pos_;      // by input NodeId
    // Generation-stamped scratch over input NodeIds (see gen_).
    std::vector<std::uint32_t> cone_stamp_;
    std::vector<std::uint32_t> aux_stamp_;
    std::vector<std::uint32_t> slot_stamp_;
    std::vector<std::uint32_t> slot_value_;
    std::uint32_t gen_ = 0;
    std::unordered_map<std::string, FactorProgram> factor_cache_;
    std::vector<Lit> values_;  // replay scratch
};

}  // namespace

Aig rewrite(const Aig& in, const RewriteParams& params) {
    Aig out = Rewriter(in, params).run();
    // MFFC budgets are estimates: a replacement can keep its cone alive
    // through other fanouts. Guarantee monotonicity by falling back to the
    // input when the reachable size grew.
    if (out.and_count() > in.and_count()) return in;
    return out;
}

Aig resyn2(const Aig& in) {
    // balance; rewrite; refactor(=rewrite@8); balance; rewrite -z; balance —
    // the shape of ABC's resyn2 with our pass inventory.
    Aig a = balance(in);
    a = rewrite(a, RewriteParams{4, 3, false});
    a = rewrite(a, RewriteParams{8, 3, false});
    a = balance(a);
    a = rewrite(a, RewriteParams{4, 3, true});
    Aig b = rewrite(a, RewriteParams{4, 3, false});
    if (b.and_count() > a.and_count()) b = std::move(a);
    return balance(b);
}

}  // namespace bdsmaj::aig
