#include "aig/aig.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bdsmaj::aig {

Lit Aig::add_input() {
    nodes_.push_back(Node{kLitInvalid, kLitInvalid});
    const auto id = static_cast<NodeId>(nodes_.size() - 1);
    inputs_.push_back(id);
    return make_lit(id, false);
}

Lit Aig::land(Lit a, Lit b) {
    // Constant and duplicate folding.
    if (a == kLitFalse || b == kLitFalse) return kLitFalse;
    if (a == kLitTrue) return b;
    if (b == kLitTrue) return a;
    if (a == b) return a;
    if (a == lit_not(b)) return kLitFalse;
    if (a > b) std::swap(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (const auto it = strash_.find(key); it != strash_.end()) {
        return make_lit(it->second, false);
    }
    nodes_.push_back(Node{a, b});
    const auto id = static_cast<NodeId>(nodes_.size() - 1);
    strash_.emplace(key, id);
    return make_lit(id, false);
}

Lit Aig::lxor(Lit a, Lit b) {
    // a ^ b = !( !(a !b) & !(!a b) ) — the canonical 3-AND motif that the
    // mapper's pattern detector recognizes.
    return lit_not(land(lit_not(land(a, lit_not(b))), lit_not(land(lit_not(a), b))));
}

Lit Aig::lmux(Lit s, Lit t, Lit e) {
    return lit_not(land(lit_not(land(s, t)), lit_not(land(lit_not(s), e))));
}

Lit Aig::lmaj(Lit a, Lit b, Lit c) {
    return lor(land(a, b), land(c, lor(a, b)));
}

std::vector<NodeId> Aig::reachable_ands() const {
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<NodeId> stack;
    for (const Lit out : outputs_) {
        const NodeId n = lit_node(out);
        if (!seen[n]) {
            seen[n] = true;
            stack.push_back(n);
        }
    }
    while (!stack.empty()) {
        const NodeId n = stack.back();
        stack.pop_back();
        if (!is_and(n)) continue;
        for (const Lit f : {nodes_[n].f0, nodes_[n].f1}) {
            const NodeId c = lit_node(f);
            if (!seen[c]) {
                seen[c] = true;
                stack.push_back(c);
            }
        }
    }
    std::vector<NodeId> ands;
    for (NodeId n = 0; n < nodes_.size(); ++n) {
        if (seen[n] && is_and(n)) ands.push_back(n);
    }
    return ands;  // ascending id = topological (fanins precede nodes)
}

std::size_t Aig::and_count() const { return reachable_ands().size(); }

int Aig::level() const {
    std::vector<int> depth(nodes_.size(), 0);
    for (const NodeId n : reachable_ands()) {
        depth[n] = 1 + std::max(depth[lit_node(nodes_[n].f0)],
                                depth[lit_node(nodes_[n].f1)]);
    }
    int worst = 0;
    for (const Lit out : outputs_) worst = std::max(worst, depth[lit_node(out)]);
    return worst;
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
    std::vector<std::uint32_t> counts(nodes_.size(), 0);
    for (const NodeId n : reachable_ands()) {
        ++counts[lit_node(nodes_[n].f0)];
        ++counts[lit_node(nodes_[n].f1)];
    }
    for (const Lit out : outputs_) ++counts[lit_node(out)];
    return counts;
}

std::vector<std::uint64_t> Aig::simulate_words(
    const std::vector<std::uint64_t>& input_words) const {
    if (input_words.size() != inputs_.size()) {
        throw std::invalid_argument("Aig::simulate_words: stimulus count");
    }
    std::vector<std::uint64_t> value(nodes_.size(), 0);
    for (std::size_t i = 0; i < inputs_.size(); ++i) value[inputs_[i]] = input_words[i];
    const auto eval = [&](Lit l) {
        const std::uint64_t v = value[lit_node(l)];
        return lit_complemented(l) ? ~v : v;
    };
    for (const NodeId n : reachable_ands()) {
        value[n] = eval(nodes_[n].f0) & eval(nodes_[n].f1);
    }
    std::vector<std::uint64_t> out;
    out.reserve(outputs_.size());
    for (const Lit l : outputs_) out.push_back(eval(l));
    return out;
}

void Aig::truncate(std::size_t marked_size) {
    assert(marked_size >= 1 && marked_size <= nodes_.size());
    for (std::size_t n = marked_size; n < nodes_.size(); ++n) {
        assert(is_and(static_cast<NodeId>(n)) && "only ANDs may be rolled back");
        const std::uint64_t key =
            (static_cast<std::uint64_t>(nodes_[n].f0) << 32) | nodes_[n].f1;
        strash_.erase(key);
    }
    nodes_.resize(marked_size);
}

tt::TruthTable Aig::to_truth_table(Lit l, int num_vars) const {
    std::vector<tt::TruthTable> value(nodes_.size());
    value[kConstNode] = tt::TruthTable::zeros(num_vars);
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        value[inputs_[i]] = static_cast<int>(i) < num_vars
                                ? tt::TruthTable::var(num_vars, static_cast<int>(i))
                                : tt::TruthTable::zeros(num_vars);
    }
    const auto eval = [&](Lit lit) {
        const tt::TruthTable& v = value[lit_node(lit)];
        return lit_complemented(lit) ? ~v : v;
    };
    // Evaluate the cone of l; ascending id order is topological.
    for (NodeId n = 0; n < nodes_.size(); ++n) {
        if (is_and(n)) value[n] = eval(nodes_[n].f0) & eval(nodes_[n].f1);
    }
    return eval(l);
}

}  // namespace bdsmaj::aig
