#pragma once
// AIG optimization passes composing the "resyn2"-style script the paper
// uses as its ABC configuration (SV-B1: "ABC resyn2 optimization script").
//
//  * balance  — delay-oriented AND-tree rebalancing (Huffman combining by
//               level), out of place;
//  * rewrite  — cut-based resynthesis: per node, grow small cuts, rebuild
//               the cut function from its ISOP factored form, and keep the
//               variant that creates fewer nodes than re-copying the
//               node's cut-local MFFC (the ABC gain test);
//  * resyn2   — the alternation of the two at cut sizes 4 and 8
//               (the larger cut plays the role of ABC's refactor).
//
// All passes are out-of-place: they produce a new AIG and never mutate the
// input, so every intermediate can be equivalence-checked.

#include "aig/aig.hpp"

namespace bdsmaj::aig {

struct RewriteParams {
    int cut_size = 4;       ///< K of the grown cuts
    int cut_variants = 3;   ///< greedy growth strategies per node
    bool zero_gain = false; ///< accept equal-cost replacements (perturbation)
};

[[nodiscard]] Aig balance(const Aig& in);
[[nodiscard]] Aig rewrite(const Aig& in, const RewriteParams& params = {});
[[nodiscard]] Aig resyn2(const Aig& in);

}  // namespace bdsmaj::aig
