#include "tt/truth_table.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace bdsmaj::tt {
namespace {

constexpr std::uint64_t kVarMasks[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

std::size_t word_count(int num_vars) {
    return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}

}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
    if (num_vars < 0 || num_vars > 20) {
        throw std::invalid_argument("TruthTable: num_vars out of [0,20]");
    }
    words_.assign(word_count(num_vars), 0);
}

void TruthTable::normalize() {
    // For n < 6, replicate the low 2^n-bit block through the whole word so
    // equality is plain vector equality.
    if (num_vars_ >= 6) return;
    const int block = 1 << num_vars_;
    std::uint64_t w = words_[0];
    if (block < 64) {
        w &= (std::uint64_t{1} << block) - 1;
        for (int shift = block; shift < 64; shift <<= 1) w |= w << shift;
    }
    words_[0] = w;
}

TruthTable TruthTable::zeros(int num_vars) { return TruthTable(num_vars); }

TruthTable TruthTable::ones(int num_vars) {
    TruthTable t(num_vars);
    for (auto& w : t.words_) w = ~std::uint64_t{0};
    return t;
}

TruthTable TruthTable::var(int num_vars, int var_index) {
    if (var_index < 0 || var_index >= num_vars) {
        throw std::invalid_argument("TruthTable::var: index out of range");
    }
    TruthTable t(num_vars);
    if (var_index < 6) {
        for (auto& w : t.words_) w = kVarMasks[var_index];
    } else {
        const std::size_t stride = std::size_t{1} << (var_index - 6);
        for (std::size_t i = 0; i < t.words_.size(); ++i) {
            if ((i / stride) & 1) t.words_[i] = ~std::uint64_t{0};
        }
    }
    t.normalize();
    return t;
}

TruthTable TruthTable::random(int num_vars, std::mt19937_64& rng) {
    TruthTable t(num_vars);
    for (auto& w : t.words_) w = rng();
    t.normalize();
    return t;
}

bool TruthTable::get_bit(std::uint64_t minterm) const {
    return (words_[minterm >> 6] >> (minterm & 63)) & 1;
}

void TruthTable::set_bit(std::uint64_t minterm) {
    words_[minterm >> 6] |= std::uint64_t{1} << (minterm & 63);
    normalize();
}

void TruthTable::clear_bit(std::uint64_t minterm) {
    words_[minterm >> 6] &= ~(std::uint64_t{1} << (minterm & 63));
    normalize();
}

void TruthTable::write_bit(std::uint64_t minterm, bool value) {
    if (value) {
        set_bit(minterm);
    } else {
        clear_bit(minterm);
    }
}

bool TruthTable::is_const0() const {
    for (auto w : words_) {
        if (w != 0) return false;
    }
    return true;
}

bool TruthTable::is_const1() const {
    for (auto w : words_) {
        if (w != ~std::uint64_t{0}) return false;
    }
    return true;
}

std::uint64_t TruthTable::count_ones() const {
    if (num_vars_ < 6) {
        const std::uint64_t mask = (std::uint64_t{1} << num_bits()) - 1;
        return static_cast<std::uint64_t>(std::popcount(words_[0] & mask));
    }
    std::uint64_t total = 0;
    for (auto w : words_) total += static_cast<std::uint64_t>(std::popcount(w));
    return total;
}

bool TruthTable::depends_on(int var_index) const {
    return cofactor(var_index, false) != cofactor(var_index, true);
}

std::vector<int> TruthTable::support() const {
    std::vector<int> vars;
    for (int v = 0; v < num_vars_; ++v) {
        if (depends_on(v)) vars.push_back(v);
    }
    return vars;
}

TruthTable TruthTable::cofactor(int var_index, bool value) const {
    TruthTable t = *this;
    if (var_index < 6) {
        const std::uint64_t mask = kVarMasks[var_index];
        const int shift = 1 << var_index;
        for (auto& w : t.words_) {
            if (value) {
                w = (w & mask) | ((w & mask) >> shift);
            } else {
                w = (w & ~mask) | ((w & ~mask) << shift);
            }
        }
    } else {
        const std::size_t stride = std::size_t{1} << (var_index - 6);
        for (std::size_t i = 0; i < t.words_.size(); ++i) {
            const std::size_t base = (i / (2 * stride)) * 2 * stride;
            const std::size_t offset = i % stride;
            t.words_[i] = words_[base + offset + (value ? stride : 0)];
        }
    }
    t.normalize();
    return t;
}

TruthTable TruthTable::swap_vars(int a, int b) const {
    if (a == b) return *this;
    TruthTable t = zeros(num_vars_);
    const std::uint64_t bit_a = std::uint64_t{1} << a;
    const std::uint64_t bit_b = std::uint64_t{1} << b;
    for (std::uint64_t m = 0; m < num_bits(); ++m) {
        std::uint64_t src = m & ~(bit_a | bit_b);
        if (m & bit_a) src |= bit_b;
        if (m & bit_b) src |= bit_a;
        if (get_bit(src)) t.words_[m >> 6] |= std::uint64_t{1} << (m & 63);
    }
    t.normalize();
    return t;
}

TruthTable TruthTable::operator~() const {
    TruthTable t = *this;
    for (auto& w : t.words_) w = ~w;
    t.normalize();
    return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
    assert(num_vars_ == o.num_vars_);
    TruthTable t = *this;
    for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] &= o.words_[i];
    return t;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
    assert(num_vars_ == o.num_vars_);
    TruthTable t = *this;
    for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] |= o.words_[i];
    return t;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
    assert(num_vars_ == o.num_vars_);
    TruthTable t = *this;
    for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] ^= o.words_[i];
    return t;
}

std::string TruthTable::to_hex() const {
    static const char* digits = "0123456789abcdef";
    const std::uint64_t nibbles = num_bits() <= 4 ? 1 : num_bits() / 4;
    std::string s;
    s.reserve(nibbles);
    for (std::uint64_t i = 0; i < nibbles; ++i) {
        const std::uint64_t n = nibbles - 1 - i;
        const std::uint64_t word = words_[n / 16];
        s.push_back(digits[(word >> ((n % 16) * 4)) & 0xf]);
    }
    return s;
}

TruthTable ite(const TruthTable& f, const TruthTable& g, const TruthTable& h) {
    return (f & g) | (~f & h);
}

TruthTable maj3(const TruthTable& a, const TruthTable& b,
                const TruthTable& c) {
    return (a & b) | (b & c) | (a & c);
}

}  // namespace bdsmaj::tt
