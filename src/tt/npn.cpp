#include "tt/npn.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace bdsmaj::tt {
namespace {

constexpr std::uint16_t kVarMask4[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};

std::uint16_t flip_input(std::uint16_t tt, int var) {
    const std::uint16_t mask = kVarMask4[var];
    const int shift = 1 << var;
    return static_cast<std::uint16_t>(((tt & mask) >> shift) |
                                      ((tt & static_cast<std::uint16_t>(~mask))
                                       << shift));
}

std::uint16_t permute_inputs(std::uint16_t tt,
                             const std::array<std::uint8_t, 4>& perm) {
    std::uint16_t out = 0;
    for (int m = 0; m < 16; ++m) {
        if (!((tt >> m) & 1)) continue;
        int dst = 0;
        for (int v = 0; v < 4; ++v) {
            if ((m >> v) & 1) dst |= 1 << perm[v];
        }
        out |= static_cast<std::uint16_t>(1u << dst);
    }
    return out;
}

const std::array<std::array<std::uint8_t, 4>, 24>& all_permutations() {
    static const auto perms = [] {
        std::array<std::array<std::uint8_t, 4>, 24> out{};
        std::array<std::uint8_t, 4> p{0, 1, 2, 3};
        int i = 0;
        do {
            out[i++] = p;
        } while (std::next_permutation(p.begin(), p.end()));
        return out;
    }();
    return perms;
}

}  // namespace

std::uint16_t apply_npn(std::uint16_t tt, const NpnTransform& t) {
    for (int v = 0; v < 4; ++v) {
        if ((t.input_negation >> v) & 1) tt = flip_input(tt, v);
    }
    tt = permute_inputs(tt, t.permutation);
    if (t.output_negation) tt = static_cast<std::uint16_t>(~tt);
    return tt;
}

NpnTransform invert_npn(const NpnTransform& t) {
    NpnTransform inv;
    inv.output_negation = t.output_negation;
    // Forward routes original i -> t.permutation[i]; the inverse routes back.
    for (int v = 0; v < 4; ++v) inv.permutation[t.permutation[v]] = v;
    // Forward negates input i before permuting; after inverting the
    // permutation the negation applies at position t.permutation[i].
    inv.input_negation = 0;
    for (int v = 0; v < 4; ++v) {
        if ((t.input_negation >> v) & 1) {
            inv.input_negation |= static_cast<std::uint8_t>(1 << t.permutation[v]);
        }
    }
    return inv;
}

std::uint16_t npn_canonical(std::uint16_t tt, NpnTransform* transform) {
    std::uint16_t best = 0xffff;
    NpnTransform best_t;
    for (const auto& perm : all_permutations()) {
        for (int neg = 0; neg < 16; ++neg) {
            NpnTransform t;
            t.permutation = perm;
            t.input_negation = static_cast<std::uint8_t>(neg);
            t.output_negation = false;
            std::uint16_t f = apply_npn(tt, t);
            if (f < best) {
                best = f;
                best_t = t;
            }
            f = static_cast<std::uint16_t>(~f);
            if (f < best) {
                best = f;
                best_t = t;
                best_t.output_negation = true;
            }
        }
    }
    if (transform != nullptr) *transform = best_t;
    return best;
}

int npn_class_count() {
    static const int count = [] {
        std::unordered_set<std::uint16_t> classes;
        for (int f = 0; f < 0x10000; ++f) {
            classes.insert(npn_canonical(static_cast<std::uint16_t>(f)));
        }
        return static_cast<int>(classes.size());
    }();
    return count;
}

// ---------------------------------------------------------------------------
// Wide (<= 6 variable) NPN over 64-bit tables.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kVarMask6[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

std::uint64_t table_mask(int n) {
    return n >= 6 ? ~0ULL : ((1ULL << (1u << n)) - 1);
}

std::uint64_t flip_input_w(std::uint64_t tt, int var) {
    const std::uint64_t mask = kVarMask6[var];
    const int shift = 1 << var;
    return ((tt & mask) >> shift) | ((tt & ~mask) << shift);
}

/// Swap adjacent variables `var` and `var + 1` in one shot: minterms where
/// the two bits differ trade places, a distance of 2^var.
std::uint64_t swap_adjacent_w(std::uint64_t tt, int var) {
    const std::uint64_t lo = kVarMask6[var];
    const std::uint64_t hi = kVarMask6[var + 1];
    const int shift = 1 << var;
    const std::uint64_t keep = ~(lo ^ hi);
    return (tt & keep) | ((tt & lo & ~hi) << shift) | ((tt & ~lo & hi) >> shift);
}

/// Steinhaus-Johnson-Trotter sequence of adjacent transpositions visiting
/// all n! permutations: swaps[i] is the lower position of the i-th swap.
const std::vector<int>& sjt_swaps(int n) {
    static std::array<std::vector<int>, 7> memo;
    static std::array<std::once_flag, 7> flags;
    std::call_once(flags[static_cast<std::size_t>(n)], [n] {
        std::vector<int> perm(static_cast<std::size_t>(n));
        std::vector<int> dir(static_cast<std::size_t>(n), -1);
        for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
        std::vector<int> swaps;
        for (;;) {
            // Largest mobile element: points at a smaller neighbor.
            int mi = -1;
            for (int i = 0; i < n; ++i) {
                const int j = i + dir[static_cast<std::size_t>(i)];
                if (j < 0 || j >= n) continue;
                if (perm[static_cast<std::size_t>(i)] <=
                    perm[static_cast<std::size_t>(j)]) continue;
                if (mi < 0 || perm[static_cast<std::size_t>(i)] >
                                  perm[static_cast<std::size_t>(mi)]) {
                    mi = i;
                }
            }
            if (mi < 0) break;
            const int j = mi + dir[static_cast<std::size_t>(mi)];
            swaps.push_back(mi < j ? mi : j);
            std::swap(perm[static_cast<std::size_t>(mi)],
                      perm[static_cast<std::size_t>(j)]);
            std::swap(dir[static_cast<std::size_t>(mi)],
                      dir[static_cast<std::size_t>(j)]);
            const int moved = perm[static_cast<std::size_t>(j)];
            for (int i = 0; i < n; ++i) {
                if (perm[static_cast<std::size_t>(i)] > moved) {
                    dir[static_cast<std::size_t>(i)] =
                        -dir[static_cast<std::size_t>(i)];
                }
            }
        }
        memo[static_cast<std::size_t>(n)] = std::move(swaps);
    });
    return memo[static_cast<std::size_t>(n)];
}

}  // namespace

std::uint64_t apply_npn_w(std::uint64_t tt, int n, const NpnTransformW& t) {
    const std::uint64_t mask = table_mask(n);
    for (int v = 0; v < n; ++v) {
        if ((t.input_negation >> v) & 1) tt = flip_input_w(tt, v) & mask;
    }
    std::uint64_t out = 0;
    for (int m = 0; m < (1 << n); ++m) {
        if (!((tt >> m) & 1)) continue;
        int dst = 0;
        for (int v = 0; v < n; ++v) {
            if ((m >> v) & 1) dst |= 1 << t.permutation[static_cast<std::size_t>(v)];
        }
        out |= 1ULL << dst;
    }
    if (t.output_negation) out = ~out & mask;
    return out;
}

NpnTransformW invert_npn_w(const NpnTransformW& t, int n) {
    NpnTransformW inv;
    inv.output_negation = t.output_negation;
    for (int v = 0; v < n; ++v) {
        inv.permutation[t.permutation[static_cast<std::size_t>(v)]] =
            static_cast<std::uint8_t>(v);
    }
    inv.input_negation = 0;
    for (int v = 0; v < n; ++v) {
        if ((t.input_negation >> v) & 1) {
            inv.input_negation |= static_cast<std::uint8_t>(
                1 << t.permutation[static_cast<std::size_t>(v)]);
        }
    }
    return inv;
}

std::uint64_t npn_canonical_w(std::uint64_t tt, int n, NpnTransformW* transform) {
    const std::uint64_t mask = table_mask(n);
    tt &= mask;
    // Incremental walk: `cur` tracks the table under the current transform;
    // p[pos] is the ORIGINAL variable currently routed to position pos and
    // `neg` the negation mask over original variables. Flipping position j
    // toggles neg bit p[j]; swapping positions j, j+1 swaps p entries.
    std::uint64_t cur = tt;
    std::array<std::uint8_t, 6> p{0, 1, 2, 3, 4, 5};
    std::uint8_t neg = 0;

    std::uint64_t best = ~0ULL;
    std::array<std::uint8_t, 6> best_p = p;
    std::uint8_t best_neg = 0;
    bool best_out = false;

    const auto consider = [&] {
        if (cur < best) {
            best = cur;
            best_p = p;
            best_neg = neg;
            best_out = false;
        }
        const std::uint64_t c = ~cur & mask;
        if (c < best) {
            best = c;
            best_p = p;
            best_neg = neg;
            best_out = true;
        }
    };

    const std::vector<int>& swaps = sjt_swaps(n);
    for (std::size_t pi = 0; pi <= swaps.size(); ++pi) {
        // Gray-coded negation walk: one input flip per candidate.
        consider();
        for (std::uint32_t i = 1; i < (1u << n); ++i) {
            const int pos = std::countr_zero(i);
            cur = flip_input_w(cur, pos) & mask;
            neg ^= static_cast<std::uint8_t>(1 << p[static_cast<std::size_t>(pos)]);
            consider();
        }
        // After 2^n - 1 Gray steps exactly the top position is left flipped.
        cur = flip_input_w(cur, n - 1) & mask;
        neg ^= static_cast<std::uint8_t>(1 << p[static_cast<std::size_t>(n - 1)]);
        if (pi < swaps.size()) {
            const int s = swaps[pi];
            cur = swap_adjacent_w(cur, s) & mask;
            std::swap(p[static_cast<std::size_t>(s)],
                      p[static_cast<std::size_t>(s + 1)]);
        }
    }

    if (transform != nullptr) {
        NpnTransformW t;
        for (int pos = 0; pos < n; ++pos) {
            t.permutation[best_p[static_cast<std::size_t>(pos)]] =
                static_cast<std::uint8_t>(pos);
        }
        t.input_negation = best_neg;
        t.output_negation = best_out;
        *transform = t;
    }
    return best;
}

}  // namespace bdsmaj::tt
