#include "tt/npn.hpp"

#include <algorithm>
#include <unordered_set>

namespace bdsmaj::tt {
namespace {

constexpr std::uint16_t kVarMask4[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};

std::uint16_t flip_input(std::uint16_t tt, int var) {
    const std::uint16_t mask = kVarMask4[var];
    const int shift = 1 << var;
    return static_cast<std::uint16_t>(((tt & mask) >> shift) |
                                      ((tt & static_cast<std::uint16_t>(~mask))
                                       << shift));
}

std::uint16_t permute_inputs(std::uint16_t tt,
                             const std::array<std::uint8_t, 4>& perm) {
    std::uint16_t out = 0;
    for (int m = 0; m < 16; ++m) {
        if (!((tt >> m) & 1)) continue;
        int dst = 0;
        for (int v = 0; v < 4; ++v) {
            if ((m >> v) & 1) dst |= 1 << perm[v];
        }
        out |= static_cast<std::uint16_t>(1u << dst);
    }
    return out;
}

const std::array<std::array<std::uint8_t, 4>, 24>& all_permutations() {
    static const auto perms = [] {
        std::array<std::array<std::uint8_t, 4>, 24> out{};
        std::array<std::uint8_t, 4> p{0, 1, 2, 3};
        int i = 0;
        do {
            out[i++] = p;
        } while (std::next_permutation(p.begin(), p.end()));
        return out;
    }();
    return perms;
}

}  // namespace

std::uint16_t apply_npn(std::uint16_t tt, const NpnTransform& t) {
    for (int v = 0; v < 4; ++v) {
        if ((t.input_negation >> v) & 1) tt = flip_input(tt, v);
    }
    tt = permute_inputs(tt, t.permutation);
    if (t.output_negation) tt = static_cast<std::uint16_t>(~tt);
    return tt;
}

NpnTransform invert_npn(const NpnTransform& t) {
    NpnTransform inv;
    inv.output_negation = t.output_negation;
    // Forward routes original i -> t.permutation[i]; the inverse routes back.
    for (int v = 0; v < 4; ++v) inv.permutation[t.permutation[v]] = v;
    // Forward negates input i before permuting; after inverting the
    // permutation the negation applies at position t.permutation[i].
    inv.input_negation = 0;
    for (int v = 0; v < 4; ++v) {
        if ((t.input_negation >> v) & 1) {
            inv.input_negation |= static_cast<std::uint8_t>(1 << t.permutation[v]);
        }
    }
    return inv;
}

std::uint16_t npn_canonical(std::uint16_t tt, NpnTransform* transform) {
    std::uint16_t best = 0xffff;
    NpnTransform best_t;
    for (const auto& perm : all_permutations()) {
        for (int neg = 0; neg < 16; ++neg) {
            NpnTransform t;
            t.permutation = perm;
            t.input_negation = static_cast<std::uint8_t>(neg);
            t.output_negation = false;
            std::uint16_t f = apply_npn(tt, t);
            if (f < best) {
                best = f;
                best_t = t;
            }
            f = static_cast<std::uint16_t>(~f);
            if (f < best) {
                best = f;
                best_t = t;
                best_t.output_negation = true;
            }
        }
    }
    if (transform != nullptr) *transform = best_t;
    return best;
}

int npn_class_count() {
    static const int count = [] {
        std::unordered_set<std::uint16_t> classes;
        for (int f = 0; f < 0x10000; ++f) {
            classes.insert(npn_canonical(static_cast<std::uint16_t>(f)));
        }
        return static_cast<int>(classes.size());
    }();
    return count;
}

}  // namespace bdsmaj::tt
