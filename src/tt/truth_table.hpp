#pragma once
// Packed truth tables over up to 20 variables.
//
// A TruthTable stores 2^n function values in 64-bit words, with the value
// for input assignment m (variable i = bit i of m) at bit position m. For
// n < 6 only the low 2^n bits of the single word are meaningful; they are
// kept in a replicated-block normal form so that equal functions always
// compare bitwise-equal.
//
// This module is the oracle the rest of the repository is tested against:
// every BDD operation, decomposition theorem, and mapped netlist is checked
// for functional equality through this class.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace bdsmaj::tt {

class TruthTable {
public:
    TruthTable() = default;

    /// Constant-zero function of `num_vars` variables.
    static TruthTable zeros(int num_vars);
    /// Constant-one function of `num_vars` variables.
    static TruthTable ones(int num_vars);
    /// Projection function x_i over `num_vars` variables.
    static TruthTable var(int num_vars, int var_index);
    /// Uniformly random function of `num_vars` variables.
    static TruthTable random(int num_vars, std::mt19937_64& rng);
    /// Build from an arbitrary predicate over input minterms.
    template <typename Fn>
    static TruthTable from_fn(int num_vars, Fn&& fn) {
        TruthTable t = zeros(num_vars);
        for (std::uint64_t m = 0; m < (std::uint64_t{1} << num_vars); ++m) {
            if (fn(m)) t.set_bit(m);
        }
        return t;
    }

    [[nodiscard]] int num_vars() const noexcept { return num_vars_; }
    [[nodiscard]] std::uint64_t num_bits() const noexcept {
        return std::uint64_t{1} << num_vars_;
    }
    [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
        return words_;
    }

    [[nodiscard]] bool get_bit(std::uint64_t minterm) const;
    void set_bit(std::uint64_t minterm);
    void clear_bit(std::uint64_t minterm);
    void write_bit(std::uint64_t minterm, bool value);

    [[nodiscard]] bool is_const0() const;
    [[nodiscard]] bool is_const1() const;
    /// Number of minterms on which the function is 1.
    [[nodiscard]] std::uint64_t count_ones() const;

    /// True iff the function value changes when `var_index` flips.
    [[nodiscard]] bool depends_on(int var_index) const;
    /// Indices of all variables the function depends on.
    [[nodiscard]] std::vector<int> support() const;

    /// Cofactor with variable fixed to the given polarity; arity unchanged.
    [[nodiscard]] TruthTable cofactor(int var_index, bool value) const;
    /// Swap the roles of two variables.
    [[nodiscard]] TruthTable swap_vars(int a, int b) const;

    [[nodiscard]] TruthTable operator~() const;
    [[nodiscard]] TruthTable operator&(const TruthTable& o) const;
    [[nodiscard]] TruthTable operator|(const TruthTable& o) const;
    [[nodiscard]] TruthTable operator^(const TruthTable& o) const;
    bool operator==(const TruthTable& o) const = default;

    /// Low 2^n bits as hex, most significant word first.
    [[nodiscard]] std::string to_hex() const;

private:
    explicit TruthTable(int num_vars);
    void normalize();

    int num_vars_ = 0;
    std::vector<std::uint64_t> words_;
};

/// if-then-else: f ? g : h, computed bitwise.
[[nodiscard]] TruthTable ite(const TruthTable& f, const TruthTable& g,
                             const TruthTable& h);
/// Three-input majority.
[[nodiscard]] TruthTable maj3(const TruthTable& a, const TruthTable& b,
                              const TruthTable& c);

}  // namespace bdsmaj::tt
