#pragma once
// NPN canonicalization of 4-variable functions (16-bit truth tables).
//
// Two functions are NPN-equivalent when one can be obtained from the other
// by Negating inputs, Permuting inputs, and/or Negating the output. The AIG
// cut-rewriting pass matches 4-input cuts against a precomputed library of
// optimal structures indexed by NPN class, so it needs a fast exact
// canonicalizer plus the transform that maps a function onto its class
// representative (and back).

#include <array>
#include <cstdint>

namespace bdsmaj::tt {

/// One N/P/N transform on a 4-variable function: first complement the
/// inputs selected by `input_negation`, then route original input i to
/// position `permutation[i]`, then optionally complement the output.
struct NpnTransform {
    std::array<std::uint8_t, 4> permutation{0, 1, 2, 3};
    std::uint8_t input_negation = 0;
    bool output_negation = false;
};

/// Apply `t` to a 16-bit truth table.
[[nodiscard]] std::uint16_t apply_npn(std::uint16_t tt, const NpnTransform& t);

/// Transform that undoes `t` (apply_npn(apply_npn(f, t), inverse) == f).
[[nodiscard]] NpnTransform invert_npn(const NpnTransform& t);

/// Exact NPN-canonical representative of `tt` (minimum 16-bit value over
/// all 768 transforms). When `transform` is non-null it receives a
/// transform such that apply_npn(tt, *transform) == canonical(tt).
[[nodiscard]] std::uint16_t npn_canonical(std::uint16_t tt,
                                          NpnTransform* transform = nullptr);

/// Number of distinct NPN classes over 4 variables (222); exposed for tests.
[[nodiscard]] int npn_class_count();

}  // namespace bdsmaj::tt
