#pragma once
// NPN canonicalization of 4-variable functions (16-bit truth tables).
//
// Two functions are NPN-equivalent when one can be obtained from the other
// by Negating inputs, Permuting inputs, and/or Negating the output. The AIG
// cut-rewriting pass matches 4-input cuts against a precomputed library of
// optimal structures indexed by NPN class, so it needs a fast exact
// canonicalizer plus the transform that maps a function onto its class
// representative (and back).

#include <array>
#include <cstdint>

namespace bdsmaj::tt {

/// One N/P/N transform on a 4-variable function: first complement the
/// inputs selected by `input_negation`, then route original input i to
/// position `permutation[i]`, then optionally complement the output.
struct NpnTransform {
    std::array<std::uint8_t, 4> permutation{0, 1, 2, 3};
    std::uint8_t input_negation = 0;
    bool output_negation = false;
};

/// Apply `t` to a 16-bit truth table.
[[nodiscard]] std::uint16_t apply_npn(std::uint16_t tt, const NpnTransform& t);

/// Transform that undoes `t` (apply_npn(apply_npn(f, t), inverse) == f).
[[nodiscard]] NpnTransform invert_npn(const NpnTransform& t);

/// Exact NPN-canonical representative of `tt` (minimum 16-bit value over
/// all 768 transforms). When `transform` is non-null it receives a
/// transform such that apply_npn(tt, *transform) == canonical(tt).
[[nodiscard]] std::uint16_t npn_canonical(std::uint16_t tt,
                                          NpnTransform* transform = nullptr);

/// Number of distinct NPN classes over 4 variables (222); exposed for tests.
[[nodiscard]] int npn_class_count();

// ---------------------------------------------------------------------------
// Wide NPN: up to 6 variables over 64-bit truth tables (low 2^n bits hold
// the function; the rest must be zero for n < 6). The SAT-based exact
// backend canonicalizes 5-6-var cone truth tables through these before
// synthesizing or probing the class cache — n = 6 has 6! * 2^6 * 2 = 92160
// transforms, so the canonicalizer walks them incrementally (adjacent
// transpositions + Gray-coded negations, O(1) table updates per step)
// instead of applying each transform from scratch.
// ---------------------------------------------------------------------------

/// One N/P/N transform on an n-variable function (n <= 6), same semantics
/// as NpnTransform: complement inputs in `input_negation`, route original
/// input i to position `permutation[i]`, optionally complement the output.
/// Entries at positions >= n are identity and ignored.
struct NpnTransformW {
    std::array<std::uint8_t, 6> permutation{0, 1, 2, 3, 4, 5};
    std::uint8_t input_negation = 0;
    bool output_negation = false;
};

/// Apply `t` to a truth table over `n` variables (1 <= n <= 6).
[[nodiscard]] std::uint64_t apply_npn_w(std::uint64_t tt, int n,
                                        const NpnTransformW& t);

/// Transform that undoes `t` over `n` variables.
[[nodiscard]] NpnTransformW invert_npn_w(const NpnTransformW& t, int n);

/// Exact NPN-canonical representative of the n-variable `tt` (minimum
/// 64-bit value over all n! * 2^n * 2 transforms). When `transform` is
/// non-null it receives a transform with apply_npn_w(tt, n, *transform)
/// == canonical.
[[nodiscard]] std::uint64_t npn_canonical_w(std::uint64_t tt, int n,
                                            NpnTransformW* transform = nullptr);

}  // namespace bdsmaj::tt
