#pragma once
// The four synthesis flows compared in Table II, each from input network to
// mapped netlist over the same CMOS 22 nm cell library:
//
//   * BDS-MAJ : partition -> BDD decomposition with majority (this paper)
//               -> direct MAJ/XOR/XNOR cell assignment + NAND/NOR/INV cover
//   * BDS-PGA : same engine without the majority stage (Table I baseline)
//   * ABC     : AIG + resyn2-style script + motif-detecting mapper
//   * DC      : commercial-style proxy — best-of multiple recipes at high
//               area effort (see DESIGN.md §4 for the substitution rationale)

#include <string>

#include "decomp/flow.hpp"
#include "mapping/mapper.hpp"
#include "network/network.hpp"

namespace bdsmaj::flows {

struct SynthesisResult {
    std::string flow_name;
    net::Network optimized;           ///< technology-independent result
    net::NetworkStats optimized_stats;
    mapping::MappedResult mapped;
    double optimize_seconds = 0.0;
    decomp::EngineStats engine_stats;  ///< BDS flows only
};

/// The library shared by all flows (paper SV-B1).
[[nodiscard]] const mapping::CellLibrary& default_library();

[[nodiscard]] SynthesisResult flow_bdsmaj(const net::Network& input);
[[nodiscard]] SynthesisResult flow_bdspga(const net::Network& input);
[[nodiscard]] SynthesisResult flow_abc(const net::Network& input);
[[nodiscard]] SynthesisResult flow_dc(const net::Network& input);

/// All four, in Table II column order.
[[nodiscard]] std::vector<SynthesisResult> run_all_flows(const net::Network& input);

}  // namespace bdsmaj::flows
