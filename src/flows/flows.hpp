#pragma once
// The four synthesis flows compared in Table II, each from input network to
// mapped netlist over the same CMOS 22 nm cell library:
//
//   * BDS-MAJ : partition -> BDD decomposition with majority (this paper)
//               -> direct MAJ/XOR/XNOR cell assignment + NAND/NOR/INV cover
//   * BDS-PGA : same engine without the majority stage (Table I baseline)
//   * ABC     : AIG + resyn2-style script + motif-detecting mapper
//   * DC      : commercial-style proxy — best-of multiple recipes at high
//               area effort (see DESIGN.md §4 for the substitution rationale)

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "decomp/flow.hpp"
#include "mapping/mapper.hpp"
#include "network/cec.hpp"
#include "network/network.hpp"

namespace bdsmaj::flows {

/// Per-run knobs shared by the flow entry points.
struct FlowOptions {
    /// Worker budget for the supernode pipeline (DecompFlowParams::jobs
    /// semantics: 1 = serial, <= 0 = all hardware threads); the result
    /// does not depend on it.
    int jobs = 1;
    /// Decomposition strategy preset for the BDS flows (see
    /// decomp::preset_catalog()); "paper" reproduces the published ladder
    /// byte-for-byte. ABC/DC ignore it.
    std::string preset = "paper";
    /// Per-supernode BDD manager tuning (reordering budget: sift growth
    /// bound, converging sift, variable cap). Defaults keep the preset
    /// fingerprints; ABC/DC ignore it.
    bdd::ManagerParams manager{};
    /// Exact-cone effort overrides for the BDS flows; negative = keep the
    /// EngineParams default. exact_max_support caps the exact strategy's
    /// cone width (4 = enumerated classes only, 5-6 engage the SAT
    /// backend); exact_sat_budget is its per-class conflict budget (0
    /// disables SAT synthesis); exact_sat_max_steps the longest chain
    /// tried. ABC/DC ignore all three.
    int exact_max_support = -1;
    long long exact_sat_budget = -1;
    int exact_sat_max_steps = -1;
    /// Symmetry-aware sifting for the BDS flows
    /// (DecompFlowParams::sift_symmetry tri-state): -1 = preset decides,
    /// 0 = force off, 1 = force on. ABC/DC ignore it.
    int sift_symmetry = -1;
    /// Consult the process-wide canonical cone cache in the BDS flows
    /// (DecompFlowParams::cone_cache): repeated cones — within a circuit,
    /// across circuits, across jobs — replay cached GateTapes instead of
    /// re-decomposing. Results are byte-identical either way; the budget
    /// knob lives on decomp::ConeCache::instance(). ABC/DC ignore it.
    bool cone_cache = true;
    /// Cooperative cancellation token, checked between supernodes inside
    /// the BDS decomposition (decomp::FlowCancelled propagates out) and
    /// between circuits in run_suite. Null = not cancellable.
    const std::atomic<bool>* cancel = nullptr;
    /// Absolute hard deadline (DecompFlowParams::deadline semantics):
    /// checked at the per-supernode checkpoints of the BDS flows and at
    /// every flow boundary in run_all_flows; once passed,
    /// decomp::DeadlineExceeded propagates out. The ABC/DC passes
    /// themselves are not interruptible. Unset = no deadline.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Absolute soft budget (DecompFlowParams::soft_budget): once passed,
    /// the BDS flows degrade remaining supernodes down `degrade_ladder`
    /// instead of failing; EngineStats::degraded_supernodes counts them.
    std::optional<std::chrono::steady_clock::time_point> soft_budget;
    /// Degrade-ladder preset names (DecompFlowParams::degrade_ladder);
    /// empty = {"paper", "shannon"}.
    std::vector<std::string> degrade_ladder;
    /// Equivalence engine for the sign-off below.
    net::EquivEngine oracle = net::EquivEngine::kAuto;
    /// Verify each flow's optimized network AND mapped netlist against the
    /// input before returning (all four flows, not just BDS). The mapped
    /// verdict lands in SynthesisResult::equivalence; an inequivalent
    /// result throws std::runtime_error with the counterexample. Exact at
    /// any input width for every engine but kSim.
    bool verify = false;
};

struct SynthesisResult {
    std::string flow_name;
    net::Network optimized;           ///< technology-independent result
    net::NetworkStats optimized_stats;
    mapping::MappedResult mapped;
    double optimize_seconds = 0.0;
    decomp::EngineStats engine_stats;  ///< BDS flows only
    /// Oracle verdict for input vs mapped netlist when FlowOptions::verify
    /// was set (always `equivalent`, or the flow would have thrown);
    /// `verify_seconds` is the total sign-off time (both checks).
    std::optional<net::EquivalenceResult> equivalence;
    double verify_seconds = 0.0;
};

/// The library shared by all flows (paper SV-B1).
[[nodiscard]] const mapping::CellLibrary& default_library();

/// The sign-off behind FlowOptions::verify, exposed for callers that run
/// flows without options (the service's single-flow ABC/DC jobs, the
/// CLI): verifies `result.optimized` and `result.mapped.netlist` against
/// `input` with the chosen oracle, throws std::runtime_error carrying the
/// counterexample on mismatch, and records the mapped verdict (plus the
/// sign-off wall time) in the result.
void verify_synthesis_result(const net::Network& input, SynthesisResult& result,
                             net::EquivEngine oracle = net::EquivEngine::kAuto);

/// Flow-name decoration for non-default presets ("BDS-MAJ" ->
/// "BDS-MAJ(exact-aggressive)"); shared by the flows and the CLI so the
/// two never drift.
[[nodiscard]] std::string decorated_flow_name(std::string base,
                                              const std::string& preset);

/// The BDS flows honor FlowOptions (worker budget, strategy preset,
/// cancellation); the result depends only on the preset. ABC and DC are
/// serial and preset-independent. The int overloads keep the historical
/// jobs-only call sites working.
[[nodiscard]] SynthesisResult flow_bdsmaj(const net::Network& input,
                                          const FlowOptions& options);
[[nodiscard]] SynthesisResult flow_bdspga(const net::Network& input,
                                          const FlowOptions& options);
[[nodiscard]] SynthesisResult flow_bdsmaj(const net::Network& input, int jobs = 1);
[[nodiscard]] SynthesisResult flow_bdspga(const net::Network& input, int jobs = 1);
[[nodiscard]] SynthesisResult flow_abc(const net::Network& input);
[[nodiscard]] SynthesisResult flow_dc(const net::Network& input);

/// All four, in Table II column order. `jobs` is the BDS flows' worker
/// budget; the results are identical at any setting.
[[nodiscard]] std::vector<SynthesisResult> run_all_flows(const net::Network& input,
                                                         const FlowOptions& options);
[[nodiscard]] std::vector<SynthesisResult> run_all_flows(const net::Network& input,
                                                         int jobs = 1);

/// Batched suite synthesis: run_all_flows over every input, fanned out
/// across up to `jobs` runners on the shared process pool
/// (runtime::global_pool(); 1 = serial on the calling thread, <= 0 = all
/// hardware threads). Entry i of the result is run_all_flows(inputs[i])
/// — networks are independent, so the outputs are identical at any job
/// count; only wall-clock changes. This is what the Table I/II sweeps and
/// the bench harness use to push whole benchmark suites through the
/// pipeline concurrently. For an admission-controlled asynchronous
/// version returning futures, see flows::SynthesisService
/// (flows/service.hpp).
[[nodiscard]] std::vector<std::vector<SynthesisResult>> run_suite(
    const std::vector<net::Network>& inputs, int jobs = 1);
[[nodiscard]] std::vector<std::vector<SynthesisResult>> run_suite(
    const std::vector<net::Network>& inputs, const FlowOptions& options);

}  // namespace bdsmaj::flows
