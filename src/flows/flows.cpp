#include "flows/flows.hpp"

#include <chrono>

#include "aig/convert.hpp"
#include "aig/opt.hpp"
#include "network/cleanup.hpp"
#include "runtime/scheduler.hpp"

namespace bdsmaj::flows {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

SynthesisResult from_decomposition(std::string name, const net::Network& input,
                                   bool use_majority, int jobs) {
    const auto start = Clock::now();
    decomp::DecompFlowParams params;
    params.engine.use_majority = use_majority;
    params.jobs = jobs;
    decomp::DecompFlowResult d = decomp::decompose_network(input, params);
    SynthesisResult result;
    result.flow_name = std::move(name);
    result.engine_stats = d.engine_stats;
    result.optimized = std::move(d.network);
    result.optimized_stats = result.optimized.stats();
    result.optimize_seconds = seconds_since(start);
    result.mapped = mapping::map_network(result.optimized, default_library());
    return result;
}

}  // namespace

const mapping::CellLibrary& default_library() {
    static const mapping::CellLibrary lib = mapping::CellLibrary::cmos22nm();
    return lib;
}

SynthesisResult flow_bdsmaj(const net::Network& input, int jobs) {
    return from_decomposition("BDS-MAJ", input, /*use_majority=*/true, jobs);
}

SynthesisResult flow_bdspga(const net::Network& input, int jobs) {
    return from_decomposition("BDS-PGA", input, /*use_majority=*/false, jobs);
}

SynthesisResult flow_abc(const net::Network& input) {
    const auto start = Clock::now();
    SynthesisResult result;
    result.flow_name = "ABC";
    aig::Aig a = aig::network_to_aig(net::cleanup(input));
    a = aig::resyn2(a);
    std::vector<std::string> in_names, out_names;
    for (const net::NodeId id : input.inputs()) in_names.push_back(input.node(id).name);
    for (const net::OutputPort& po : input.outputs()) out_names.push_back(po.name);
    // The paper's point about standard mappers is that they hide XOR/MAJ
    // structure (SV-B1); the faithful ABC configuration therefore maps the
    // plain AIG without structural motif recovery. The DC proxy, modeling
    // the stronger commercial tool, keeps recovery on.
    aig::AigToNetworkOptions map_options;
    map_options.detect_xor_mux = false;
    result.optimized =
        net::cleanup(aig::aig_to_network(a, in_names, out_names, map_options));
    result.optimized_stats = result.optimized.stats();
    result.optimize_seconds = seconds_since(start);
    result.mapped = mapping::map_network(result.optimized, default_library());
    return result;
}

std::vector<SynthesisResult> run_all_flows(const net::Network& input, int jobs) {
    return {flow_bdsmaj(input, jobs), flow_bdspga(input, jobs), flow_abc(input),
            flow_dc(input)};
}

std::vector<std::vector<SynthesisResult>> run_suite(
    const std::vector<net::Network>& inputs, int jobs) {
    std::vector<std::vector<SynthesisResult>> results(inputs.size());
    runtime::parallel_for(inputs.size(), runtime::effective_jobs(jobs),
                          [&](std::size_t i, int /*worker*/) {
                              results[i] = run_all_flows(inputs[i]);
                          });
    return results;
}

}  // namespace bdsmaj::flows
