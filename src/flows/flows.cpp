#include "flows/flows.hpp"

#include <chrono>
#include <stdexcept>

#include "aig/convert.hpp"
#include "aig/opt.hpp"
#include "network/cleanup.hpp"
#include "runtime/scheduler.hpp"

namespace bdsmaj::flows {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void verify_synthesis_result(const net::Network& input, SynthesisResult& result,
                             net::EquivEngine oracle) {
    const auto start = Clock::now();
    net::CecParams cec;
    cec.engine = oracle;
    for (const net::Network* stage :
         {&result.optimized, &result.mapped.netlist}) {
        net::EquivalenceResult eq = net::check_equivalent(input, *stage, cec);
        if (!eq.equivalent) {
            throw std::runtime_error(
                result.flow_name + ": verification failed (engine " +
                net::equiv_engine_name(eq.engine) + "): " + eq.reason);
        }
        result.equivalence = std::move(eq);
    }
    result.verify_seconds = seconds_since(start);
}

namespace {

SynthesisResult from_decomposition(std::string name, const net::Network& input,
                                   bool use_majority, const FlowOptions& options) {
    const auto start = Clock::now();
    decomp::DecompFlowParams params;
    params.engine.use_majority = use_majority;
    params.engine.preset = options.preset;
    if (options.exact_max_support >= 0) {
        params.engine.exact_max_support = options.exact_max_support;
    }
    if (options.exact_sat_budget >= 0) {
        params.engine.exact_sat_budget = options.exact_sat_budget;
    }
    if (options.exact_sat_max_steps >= 0) {
        params.engine.exact_sat_max_steps = options.exact_sat_max_steps;
    }
    params.manager = options.manager;
    params.sift_symmetry = options.sift_symmetry;
    params.cone_cache = options.cone_cache;
    params.jobs = options.jobs;
    params.cancel = options.cancel;
    params.deadline = options.deadline;
    params.soft_budget = options.soft_budget;
    params.degrade_ladder = options.degrade_ladder;
    decomp::DecompFlowResult d = decomp::decompose_network(input, params);
    SynthesisResult result;
    // Non-default presets surface in the flow name so multi-preset sweeps
    // stay tellable apart in logs and CLI output.
    result.flow_name = decorated_flow_name(std::move(name), options.preset);
    result.engine_stats = d.engine_stats;
    result.optimized = std::move(d.network);
    result.optimized_stats = result.optimized.stats();
    result.optimize_seconds = seconds_since(start);
    result.mapped = mapping::map_network(result.optimized, default_library());
    if (options.verify) verify_synthesis_result(input, result, options.oracle);
    return result;
}

}  // namespace

const mapping::CellLibrary& default_library() {
    static const mapping::CellLibrary lib = mapping::CellLibrary::cmos22nm();
    return lib;
}

SynthesisResult flow_bdsmaj(const net::Network& input, const FlowOptions& options) {
    return from_decomposition("BDS-MAJ", input, /*use_majority=*/true, options);
}

SynthesisResult flow_bdspga(const net::Network& input, const FlowOptions& options) {
    return from_decomposition("BDS-PGA", input, /*use_majority=*/false, options);
}

SynthesisResult flow_bdsmaj(const net::Network& input, int jobs) {
    return flow_bdsmaj(input, FlowOptions{.jobs = jobs});
}

SynthesisResult flow_bdspga(const net::Network& input, int jobs) {
    return flow_bdspga(input, FlowOptions{.jobs = jobs});
}

SynthesisResult flow_abc(const net::Network& input) {
    const auto start = Clock::now();
    SynthesisResult result;
    result.flow_name = "ABC";
    aig::Aig a = aig::network_to_aig(net::cleanup(input));
    a = aig::resyn2(a);
    std::vector<std::string> in_names, out_names;
    for (const net::NodeId id : input.inputs()) in_names.push_back(input.node(id).name);
    for (const net::OutputPort& po : input.outputs()) out_names.push_back(po.name);
    // The paper's point about standard mappers is that they hide XOR/MAJ
    // structure (SV-B1); the faithful ABC configuration therefore maps the
    // plain AIG without structural motif recovery. The DC proxy, modeling
    // the stronger commercial tool, keeps recovery on.
    aig::AigToNetworkOptions map_options;
    map_options.detect_xor_mux = false;
    result.optimized =
        net::cleanup(aig::aig_to_network(a, in_names, out_names, map_options));
    result.optimized_stats = result.optimized.stats();
    result.optimize_seconds = seconds_since(start);
    result.mapped = mapping::map_network(result.optimized, default_library());
    return result;
}

std::string decorated_flow_name(std::string base, const std::string& preset) {
    if (preset != "paper") base += "(" + preset + ")";
    return base;
}

std::vector<SynthesisResult> run_all_flows(const net::Network& input,
                                           const FlowOptions& options) {
    // The BDS flows checkpoint internally (between supernodes); the ABC
    // and DC passes are not interruptible, so check the token — and the
    // hard deadline — at every flow boundary to keep "all"-flow jobs
    // responsive to cancel() and shed-on-deadline.
    const auto checkpoint = [&options] {
        if (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed)) {
            throw decomp::FlowCancelled();
        }
        if (options.deadline && Clock::now() >= *options.deadline) {
            throw decomp::DeadlineExceeded();
        }
    };
    std::vector<SynthesisResult> out;
    out.push_back(flow_bdsmaj(input, options));
    out.push_back(flow_bdspga(input, options));
    checkpoint();
    out.push_back(flow_abc(input));
    checkpoint();
    out.push_back(flow_dc(input));
    if (options.verify) {
        // The BDS flows signed off inside from_decomposition; ABC and DC
        // take no options, so their sign-off happens here.
        verify_synthesis_result(input, out[2], options.oracle);
        checkpoint();
        verify_synthesis_result(input, out[3], options.oracle);
    }
    return out;
}

std::vector<SynthesisResult> run_all_flows(const net::Network& input, int jobs) {
    return run_all_flows(input, FlowOptions{.jobs = jobs});
}

std::vector<std::vector<SynthesisResult>> run_suite(
    const std::vector<net::Network>& inputs, const FlowOptions& options) {
    std::vector<std::vector<SynthesisResult>> results(inputs.size());
    FlowOptions per_circuit = options;
    per_circuit.jobs = 1;  // the budget fans out across circuits instead
    runtime::parallel_for(inputs.size(), runtime::effective_jobs(options.jobs),
                          [&](std::size_t i, int /*worker*/) {
                              // Between-circuit cancellation checkpoint; the
                              // per-supernode checkpoints inside the BDS
                              // decompositions cover long single circuits.
                              if (options.cancel != nullptr &&
                                  options.cancel->load(std::memory_order_relaxed)) {
                                  throw decomp::FlowCancelled();
                              }
                              results[i] = run_all_flows(inputs[i], per_circuit);
                          });
    return results;
}

std::vector<std::vector<SynthesisResult>> run_suite(
    const std::vector<net::Network>& inputs, int jobs) {
    return run_suite(inputs, FlowOptions{.jobs = jobs});
}

}  // namespace bdsmaj::flows
