#include "flows/service.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

namespace bdsmaj::flows {

namespace {

using Clock = std::chrono::steady_clock;

enum class FlowSel { kAll, kBdsMaj, kBdsPga, kAbc, kDc };

FlowSel parse_flow(const std::string& name) {
    if (name == "all") return FlowSel::kAll;
    if (name == "bdsmaj") return FlowSel::kBdsMaj;
    if (name == "bdspga") return FlowSel::kBdsPga;
    if (name == "abc") return FlowSel::kAbc;
    if (name == "dc") return FlowSel::kDc;
    throw std::invalid_argument("SynthesisService: unknown flow \"" + name + "\"");
}

std::vector<SynthesisResult> run_flows_one(const net::Network& input, FlowSel sel,
                                           int jobs) {
    switch (sel) {
        case FlowSel::kAll: return run_all_flows(input, jobs);
        case FlowSel::kBdsMaj: return {flow_bdsmaj(input, jobs)};
        case FlowSel::kBdsPga: return {flow_bdspga(input, jobs)};
        case FlowSel::kAbc: return {flow_abc(input)};
        case FlowSel::kDc: return {flow_dc(input)};
    }
    return {};
}

}  // namespace

struct SynthesisService::Job {
    JobId id = 0;
    std::vector<net::Network> inputs;
    SynthesisJobParams params;
    std::promise<FlowResult> promise;
};

SynthesisService::SynthesisService(const ServiceParams& params)
    : pool_(params.pool != nullptr ? *params.pool : runtime::global_pool()),
      max_concurrent_(params.max_concurrent_jobs > 0 ? params.max_concurrent_jobs
                                                     : pool_.size()),
      paused_(params.start_paused) {}

SynthesisService::~SynthesisService() {
    std::unique_lock<std::mutex> lock(mutex_);
    // Cancel everything still queued, then wait for the running jobs —
    // their pool tasks capture `this` and must not outlive it. The pool
    // itself is untouched.
    for (const std::shared_ptr<Job>& job : queue_) {
        ++cancelled_;
        job->promise.set_value(FlowResult{job->id, JobStatus::kCancelled, {}, 0.0});
    }
    queue_.clear();
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

SynthesisService::Submission SynthesisService::enqueue(
    std::vector<net::Network> inputs, const SynthesisJobParams& params) {
    auto job = std::make_shared<Job>();
    job->inputs = std::move(inputs);
    job->params = params;
    Submission submission;
    submission.result = job->promise.get_future();
    std::lock_guard<std::mutex> lock(mutex_);
    job->id = ++next_id_;
    submission.id = job->id;
    queue_.push_back(std::move(job));
    pump_locked();
    return submission;
}

SynthesisService::Submission SynthesisService::submit(
    net::Network input, const SynthesisJobParams& params) {
    std::vector<net::Network> inputs;
    inputs.push_back(std::move(input));
    return enqueue(std::move(inputs), params);
}

SynthesisService::Submission SynthesisService::submit_suite(
    std::vector<net::Network> inputs, const SynthesisJobParams& params) {
    return enqueue(std::move(inputs), params);
}

void SynthesisService::pump_locked() {
    while (!paused_ && running_ < max_concurrent_ && !queue_.empty()) {
        std::shared_ptr<Job> job = queue_.front();
        queue_.pop_front();
        ++running_;
        ++inflight_;
        pool_.submit([this, job] { execute(job); });
    }
}

void SynthesisService::execute(const std::shared_ptr<Job>& job) {
    const auto start = Clock::now();
    FlowResult out;
    out.job_id = job->id;
    out.status = JobStatus::kCompleted;
    std::exception_ptr error;
    long networks = 0;
    long gates = 0;
    double area = 0.0;
    try {
        const FlowSel sel = parse_flow(job->params.flow);
        out.results.resize(job->inputs.size());
        if (job->inputs.size() <= 1) {
            // Single network: the whole budget goes to supernode-level
            // parallelism inside the pipelined flow.
            for (std::size_t i = 0; i < job->inputs.size(); ++i) {
                out.results[i] = run_flows_one(job->inputs[i], sel, job->params.jobs);
            }
        } else {
            // Suite: the budget fans out across circuits; each circuit
            // runs its flows serially, exactly like flows::run_suite.
            runtime::parallel_for(
                job->inputs.size(), runtime::effective_jobs(job->params.jobs),
                [&](std::size_t i, int /*worker*/) {
                    out.results[i] = run_flows_one(job->inputs[i], sel, 1);
                });
        }
        out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
        for (const std::vector<SynthesisResult>& per_input : out.results) {
            for (const SynthesisResult& r : per_input) {
                ++networks;
                gates += r.mapped.gate_count;
                area += r.mapped.area_um2;
            }
        }
    } catch (...) {
        error = std::current_exception();
    }
    {
        // Counters update before the promise resolves, so a caller that
        // observed the future ready sees the job in stats() too.
        std::lock_guard<std::mutex> lock(mutex_);
        --running_;
        if (error) {
            ++failed_;
        } else {
            ++completed_;
            networks_synthesized_ += networks;
            mapped_gates_ += gates;
            mapped_area_um2_ += area;
        }
        pump_locked();
        --inflight_;
        idle_cv_.notify_all();
    }
    // Last action, outside the lock and without touching `this`: the
    // service may be destroyed as soon as inflight_ hit zero.
    if (error) {
        job->promise.set_exception(error);
    } else {
        job->promise.set_value(std::move(out));
    }
}

bool SynthesisService::cancel(JobId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if ((*it)->id != id) continue;
        const std::shared_ptr<Job> job = *it;
        queue_.erase(it);
        ++cancelled_;
        idle_cv_.notify_all();  // the queue may just have drained
        job->promise.set_value(FlowResult{job->id, JobStatus::kCancelled, {}, 0.0});
        return true;
    }
    return false;
}

void SynthesisService::pause() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void SynthesisService::resume() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    pump_locked();
}

void SynthesisService::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

ServiceStats SynthesisService::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceStats s;
    s.queued = static_cast<int>(queue_.size());
    s.running = running_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.failed = failed_;
    s.networks_synthesized = networks_synthesized_;
    s.mapped_gates = mapped_gates_;
    s.mapped_area_um2 = mapped_area_um2_;
    return s;
}

}  // namespace bdsmaj::flows
