#include "flows/service.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "decomp/cone_cache.hpp"
#include "decomp/exact.hpp"
#include "runtime/fault_inject.hpp"

namespace bdsmaj::flows {

namespace {

using Clock = std::chrono::steady_clock;

enum class FlowSel { kAll, kBdsMaj, kBdsPga, kAbc, kDc };

FlowSel parse_flow(const std::string& name) {
    if (name == "all") return FlowSel::kAll;
    if (name == "bdsmaj") return FlowSel::kBdsMaj;
    if (name == "bdspga") return FlowSel::kBdsPga;
    if (name == "abc") return FlowSel::kAbc;
    if (name == "dc") return FlowSel::kDc;
    throw std::invalid_argument("SynthesisService: unknown flow \"" + name + "\"");
}

std::vector<SynthesisResult> run_flows_one(const net::Network& input, FlowSel sel,
                                           const FlowOptions& options) {
    // ABC/DC take no options; their sign-off (run_all_flows does it for
    // the "all" case, from_decomposition for the BDS flows) happens here.
    const auto signed_off = [&](SynthesisResult r) {
        if (options.verify) verify_synthesis_result(input, r, options.oracle);
        return std::vector<SynthesisResult>{std::move(r)};
    };
    switch (sel) {
        case FlowSel::kAll: return run_all_flows(input, options);
        case FlowSel::kBdsMaj: return {flow_bdsmaj(input, options)};
        case FlowSel::kBdsPga: return {flow_bdspga(input, options)};
        case FlowSel::kAbc: return signed_off(flow_abc(input));
        case FlowSel::kDc: return signed_off(flow_dc(input));
    }
    return {};
}

}  // namespace

struct SynthesisService::Job {
    JobId id = 0;
    std::vector<net::Network> inputs;
    SynthesisJobParams params;
    std::promise<FlowResult> promise;
    /// Cooperative cancellation token; shared with the flow layer while
    /// the job runs. Heap-shared so cancel() can fire after execute()
    /// already copied the pointer.
    std::atomic<bool> cancel_requested{false};
    std::uint64_t start_order = FlowResult::kNoStartOrder;
    /// Absolute deadline/soft-budget instants, fixed at submission (queue
    /// wait counts against both). has_* false = not configured.
    bool has_deadline = false;
    bool has_soft_budget = false;
    Clock::time_point deadline{};
    Clock::time_point soft_budget{};
};

/// The FlowResult of a job that never ran (cancelled while queued, or shed
/// because its deadline passed before dispatch).
static FlowResult unstarted_result(std::uint64_t id, JobStatus status) {
    FlowResult out;
    out.job_id = id;
    out.status = status;
    return out;
}

SynthesisService::SynthesisService(const ServiceParams& params)
    : pool_(params.pool != nullptr ? *params.pool : runtime::global_pool()),
      max_concurrent_(params.max_concurrent_jobs > 0 ? params.max_concurrent_jobs
                                                     : pool_.size()),
      paused_(params.start_paused) {}

SynthesisService::~SynthesisService() {
    std::unique_lock<std::mutex> lock(mutex_);
    // Cancel everything still queued and request cooperative stops of the
    // running jobs, then wait for them — their pool tasks capture `this`
    // and must not outlive it. The pool itself is untouched.
    for (std::deque<std::shared_ptr<Job>>* lane : {&queue_high_, &queue_}) {
        for (const std::shared_ptr<Job>& job : *lane) {
            ++cancelled_;
            job->promise.set_value(unstarted_result(job->id, JobStatus::kCancelled));
        }
        lane->clear();
    }
    for (auto& [id, job] : running_jobs_) {
        job->cancel_requested.store(true, std::memory_order_relaxed);
    }
    idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

SynthesisService::Submission SynthesisService::enqueue(
    std::vector<net::Network> inputs, const SynthesisJobParams& params) {
    auto job = std::make_shared<Job>();
    job->inputs = std::move(inputs);
    job->params = params;
    // Deadline and soft budget become absolute here: time spent queued is
    // the admission controller's to spend, so it counts. One clock read,
    // only when either knob is set.
    if (params.deadline_ms > 0.0 || params.soft_budget_ms > 0.0) {
        const Clock::time_point now = Clock::now();
        if (params.deadline_ms > 0.0) {
            job->has_deadline = true;
            job->deadline =
                now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(params.deadline_ms));
        }
        if (params.soft_budget_ms > 0.0) {
            job->has_soft_budget = true;
            job->soft_budget = now + std::chrono::duration_cast<Clock::duration>(
                                         std::chrono::duration<double, std::milli>(
                                             params.soft_budget_ms));
        }
    }
    Submission submission;
    submission.result = job->promise.get_future();
    std::lock_guard<std::mutex> lock(mutex_);
    job->id = ++next_id_;
    submission.id = job->id;
    (params.priority == JobPriority::kHigh ? queue_high_ : queue_)
        .push_back(std::move(job));
    pump_locked();
    return submission;
}

SynthesisService::Submission SynthesisService::submit(
    net::Network input, const SynthesisJobParams& params) {
    std::vector<net::Network> inputs;
    inputs.push_back(std::move(input));
    return enqueue(std::move(inputs), params);
}

SynthesisService::Submission SynthesisService::submit_suite(
    std::vector<net::Network> inputs, const SynthesisJobParams& params) {
    return enqueue(std::move(inputs), params);
}

void SynthesisService::pump_locked() {
    while (!paused_ && running_ < max_concurrent_ &&
           (!queue_high_.empty() || !queue_.empty())) {
        // The high lane drains completely before the normal lane is
        // considered. Within a lane: earliest-deadline-first over the jobs
        // that have deadlines, then FIFO over the deadline-less ones —
        // plain FIFO (and zero clock reads) when no queued job carries a
        // deadline, which keeps the default path byte-identical.
        std::deque<std::shared_ptr<Job>>& lane =
            queue_high_.empty() ? queue_ : queue_high_;
        std::size_t pick = 0;
        bool pick_has_deadline = lane[0]->has_deadline;
        for (std::size_t i = 1; i < lane.size(); ++i) {
            if (!lane[i]->has_deadline) continue;
            if (!pick_has_deadline || lane[i]->deadline < lane[pick]->deadline) {
                pick = i;
                pick_has_deadline = true;
            }
        }
        std::shared_ptr<Job> job = lane[pick];
        lane.erase(lane.begin() + static_cast<std::ptrdiff_t>(pick));
        if (pick_has_deadline && Clock::now() >= job->deadline) {
            // Admission-time shedding: the job cannot start before its
            // deadline, so it never runs — terminal status, no start
            // order, no pool task.
            ++deadline_exceeded_;
            idle_cv_.notify_all();  // the queue may just have drained
            job->promise.set_value(
                unstarted_result(job->id, JobStatus::kDeadlineExceeded));
            continue;
        }
        job->start_order = next_start_order_++;
        running_jobs_.emplace(job->id, job);
        ++running_;
        ++inflight_;
        pool_.submit([this, job] { execute(job); });
    }
}

void SynthesisService::execute(const std::shared_ptr<Job>& job) {
    const auto start = Clock::now();
    FlowResult out;
    out.job_id = job->id;
    out.status = JobStatus::kCompleted;
    out.start_order = job->start_order;
    std::exception_ptr error;
    long networks = 0;
    long gates = 0;
    double area = 0.0;
    long long sym_cones = 0;
    try {
        // Chaos site: a fault here exercises the job-level containment —
        // inside the try, so the promise is still fulfilled (kFailed path)
        // and the service counters stay consistent.
        runtime::fault_point(runtime::FaultSite::kWorkerTaskEntry);
        const FlowSel sel = parse_flow(job->params.flow);
        FlowOptions options;
        options.jobs = job->params.jobs;
        options.preset = job->params.preset;
        options.manager = job->params.manager;
        options.sift_symmetry = job->params.sift_symmetry;
        options.exact_max_support = job->params.exact_max_support;
        options.exact_sat_budget = job->params.exact_sat_budget;
        options.exact_sat_max_steps = job->params.exact_sat_max_steps;
        options.cone_cache = job->params.cone_cache;
        options.cancel = &job->cancel_requested;
        options.oracle = job->params.oracle;
        options.verify = job->params.verify;
        if (job->has_deadline) options.deadline = job->deadline;
        if (job->has_soft_budget) options.soft_budget = job->soft_budget;
        options.degrade_ladder = job->params.degrade_ladder;
        out.results.resize(job->inputs.size());
        if (job->inputs.size() <= 1) {
            // Single network: the whole budget goes to supernode-level
            // parallelism inside the pipelined flow.
            for (std::size_t i = 0; i < job->inputs.size(); ++i) {
                out.results[i] = run_flows_one(job->inputs[i], sel, options);
            }
        } else {
            // Suite: the budget fans out across circuits; each circuit
            // runs its flows serially, exactly like flows::run_suite.
            FlowOptions per_circuit = options;
            per_circuit.jobs = 1;
            runtime::parallel_for(
                job->inputs.size(), runtime::effective_jobs(job->params.jobs),
                [&](std::size_t i, int /*worker*/) {
                    // Between-circuit cancellation checkpoint (the flows
                    // also check between supernodes).
                    if (job->cancel_requested.load(std::memory_order_relaxed)) {
                        throw decomp::FlowCancelled();
                    }
                    out.results[i] = run_flows_one(job->inputs[i], sel, per_circuit);
                });
        }
        out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
        for (const std::vector<SynthesisResult>& per_input : out.results) {
            for (const SynthesisResult& r : per_input) {
                ++networks;
                gates += r.mapped.gate_count;
                area += r.mapped.area_um2;
                sym_cones += r.engine_stats.symmetric_steps;
                out.degraded_supernodes += r.engine_stats.degraded_supernodes;
            }
        }
    } catch (const decomp::FlowCancelled&) {
        out.status = JobStatus::kCancelled;
        out.results.clear();
        out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    } catch (const decomp::DeadlineExceeded&) {
        out.status = JobStatus::kDeadlineExceeded;
        out.results.clear();
        out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    } catch (...) {
        error = std::current_exception();
    }
    {
        // Counters update before the promise resolves, so a caller that
        // observed the future ready sees the job in stats() too.
        std::lock_guard<std::mutex> lock(mutex_);
        --running_;
        running_jobs_.erase(job->id);
        if (error) {
            ++failed_;
        } else if (out.status == JobStatus::kCancelled) {
            ++cancelled_;
        } else if (out.status == JobStatus::kDeadlineExceeded) {
            ++deadline_exceeded_;
        } else {
            ++completed_;
            networks_synthesized_ += networks;
            mapped_gates_ += gates;
            mapped_area_um2_ += area;
            symmetric_cones_served_ += sym_cones;
            degraded_supernodes_ += out.degraded_supernodes;
        }
        pump_locked();
        --inflight_;
        idle_cv_.notify_all();
    }
    // Last action, outside the lock and without touching `this`: the
    // service may be destroyed as soon as inflight_ hit zero.
    if (error) {
        job->promise.set_exception(error);
    } else {
        job->promise.set_value(std::move(out));
    }
}

bool SynthesisService::cancel(JobId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::deque<std::shared_ptr<Job>>* lane : {&queue_high_, &queue_}) {
        for (auto it = lane->begin(); it != lane->end(); ++it) {
            if ((*it)->id != id) continue;
            const std::shared_ptr<Job> job = *it;
            lane->erase(it);
            ++cancelled_;
            idle_cv_.notify_all();  // the queue may just have drained
            job->promise.set_value(unstarted_result(job->id, JobStatus::kCancelled));
            return true;
        }
    }
    // Running: request a cooperative stop; the flow observes the token at
    // its next checkpoint and the job resolves as kCancelled then.
    const auto it = running_jobs_.find(id);
    if (it != running_jobs_.end()) {
        it->second->cancel_requested.store(true, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void SynthesisService::pause() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void SynthesisService::resume() {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    pump_locked();
}

void SynthesisService::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] {
        return queue_.empty() && queue_high_.empty() && inflight_ == 0;
    });
}

bool SynthesisService::wait_idle_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    return idle_cv_.wait_for(lock, timeout, [this] {
        return queue_.empty() && queue_high_.empty() && inflight_ == 0;
    });
}

ServiceStats SynthesisService::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceStats s;
    s.queued = static_cast<int>(queue_.size() + queue_high_.size());
    s.queued_high = static_cast<int>(queue_high_.size());
    s.running = running_;
    s.completed = completed_;
    s.cancelled = cancelled_;
    s.failed = failed_;
    s.deadline_exceeded = deadline_exceeded_;
    s.degraded_supernodes = degraded_supernodes_;
    s.networks_synthesized = networks_synthesized_;
    s.mapped_gates = mapped_gates_;
    s.mapped_area_um2 = mapped_area_um2_;
    s.symmetric_cones_served = symmetric_cones_served_;
    const decomp::ConeCacheStats cone = decomp::ConeCache::instance().stats();
    s.cone_cache_hits = cone.hits;
    s.cone_cache_misses = cone.misses;
    s.cone_cache_evictions = cone.evictions;
    s.cone_cache_entries = cone.entries;
    s.cone_cache_bytes = cone.bytes;
    const decomp::ExactCacheStats exact = decomp::ExactSynthesisCache::instance().stats();
    s.exact_cache_hits = static_cast<long long>(exact.hits);
    s.exact_cache_misses = static_cast<long long>(exact.misses);
    s.exact_cache_classes = exact.classes_cached;
    return s;
}

}  // namespace bdsmaj::flows
