#pragma once
// SynthesisService: the asynchronous, admission-controlled front door to
// the synthesis flows — the serving shape of the BDS-MAJ pipeline.
//
// Callers submit jobs (one network, or a whole benchmark suite) and get a
// std::future<FlowResult> back immediately. Jobs wait in two priority
// lanes (kHigh drains before kNormal; FIFO within a lane); at most
// `max_concurrent_jobs` run at once, each as one task on the shared
// process pool (runtime::global_pool() unless a pool is injected). Inside
// a job, the per-job `jobs` budget bounds how many pool runners the job
// may occupy — supernode-level parallelism for single-network jobs,
// circuit-level for suites — so one heavy job cannot starve the queue.
//
// Because every layer below (parallel_for, the pipelined tape replay) is
// caller-participating, a job always makes progress on the pool thread
// that runs it even when the pool is saturated: admission control is the
// only queueing point, and there is no nested-parallelism deadlock.
//
// Results are byte-identical to serial runs: a job computes exactly
// run_all_flows(input, jobs) (or the single requested flow), and those are
// deterministic at any budget. tests/flows/service_test.cpp pins BLIF
// text, gate counts, and simulation signatures against jobs=1 serial runs.
//
// Lifecycle: cancel(id) removes a still-queued job immediately, and
// requests cooperative cancellation of a running one — the job's token is
// set and the flow stops at its next checkpoint (between supernodes
// inside a BDS decomposition, between the flows of an "all" job, between
// circuits in a suite; the ABC/DC passes themselves are not
// interruptible); either way the future yields status kCancelled. pause() holds admission (queued
// jobs stay queued; running ones finish) and resume() releases it — the
// drain/maintenance switch, also what makes cancellation deterministic to
// test. The destructor cancels everything still queued, requests
// cancellation of running jobs, and waits for them; the shared pool is
// untouched and immediately reusable.

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <unordered_map>
#include <vector>

#include "flows/flows.hpp"
#include "runtime/scheduler.hpp"

namespace bdsmaj::flows {

enum class JobStatus {
    kQueued,
    kRunning,
    kCompleted,
    kCancelled,
    kFailed,
    /// Terminal: the job missed its deadline — shed at dispatch time
    /// (never ran; start_order is kNoStartOrder) or stopped at an in-flight
    /// checkpoint once the deadline passed. Not a failure: the future
    /// yields a FlowResult, not an exception.
    kDeadlineExceeded,
};

/// Admission lane: kHigh jobs always dispatch before kNormal ones;
/// within a lane admission stays FIFO.
enum class JobPriority { kNormal, kHigh };

struct SynthesisJobParams {
    /// Worker budget for this job on the shared pool: supernode-level for
    /// a single-network job, circuit-level for a suite job. 1 = the job
    /// runs serially on its pool task, <= 0 = all hardware threads. Never
    /// changes the result.
    int jobs = 1;
    /// "all" (the four Table II flows), or one of "bdsmaj", "bdspga",
    /// "abc", "dc". An unknown name fails the job; the error surfaces on
    /// the future.
    std::string flow = "all";
    /// Decomposition strategy preset for the BDS flows (see
    /// decomp::preset_catalog()). An unknown name fails the job.
    std::string preset = "paper";
    /// Per-supernode BDD manager tuning for the BDS flows (reordering
    /// budget; see bdd::ManagerParams). Defaults keep preset fingerprints.
    bdd::ManagerParams manager;
    /// Symmetry-aware sifting tri-state for the BDS flows (FlowOptions
    /// semantics: -1 = preset decides, 0 = off, 1 = on).
    int sift_symmetry = -1;
    /// Exact-cone effort overrides (FlowOptions semantics: negative =
    /// engine default; see flows.hpp).
    int exact_max_support = -1;
    long long exact_sat_budget = -1;
    int exact_sat_max_steps = -1;
    /// Consult the process-wide canonical cone cache in the BDS flows
    /// (FlowOptions::cone_cache): cones repeated across this job's
    /// circuits — and across jobs for the service lifetime — replay
    /// cached tapes. Never changes results, only wall time.
    bool cone_cache = true;
    JobPriority priority = JobPriority::kNormal;
    /// Relative hard deadline in milliseconds, measured from submission
    /// (queue wait counts). Jobs whose deadline has already passed when
    /// they would dispatch are shed without running; a running job stops
    /// at its next flow checkpoint once the deadline passes. Either way
    /// the future yields status kDeadlineExceeded. Within a priority
    /// lane, jobs with deadlines dispatch earliest-deadline-first ahead
    /// of deadline-less jobs (which stay FIFO among themselves).
    /// <= 0 = no deadline.
    double deadline_ms = 0.0;
    /// Relative soft budget in milliseconds, measured from submission.
    /// Once spent, the BDS flows degrade remaining supernodes down
    /// `degrade_ladder` (cheaper presets, exact tiers off, sift clamped,
    /// terminal plain-Shannon stage) instead of failing: the job still
    /// completes with a valid, equivalent network, and
    /// FlowResult::degraded_supernodes counts the cheapened cones.
    /// <= 0 = no soft budget.
    double soft_budget_ms = 0.0;
    /// Degrade-ladder preset names (FlowOptions::degrade_ladder); empty =
    /// {"paper", "shannon"}. Also engaged per cone by the resource guards
    /// in `manager` (max_live_nodes / sift_max_swaps).
    std::vector<std::string> degrade_ladder;
    /// Equivalence engine for the optional sign-off below.
    net::EquivEngine oracle = net::EquivEngine::kAuto;
    /// Verify every produced network (optimized + mapped, all requested
    /// flows) against its input inside the job. A verification failure
    /// fails the job (status kFailed; the error surfaces on the future) —
    /// the service never hands out an unverified wrong network. Verdicts
    /// land in SynthesisResult::equivalence.
    bool verify = false;
};

struct FlowResult {
    std::uint64_t job_id = 0;
    /// kCompleted, kCancelled, or kDeadlineExceeded (failures surface as
    /// the future's exception instead).
    JobStatus status = JobStatus::kCompleted;
    /// Per input, the requested flows in Table II column order ("all") or
    /// the single requested flow. Empty for cancelled/shed jobs.
    std::vector<std::vector<SynthesisResult>> results;
    /// Supernodes served by a degrade-ladder stage (soft budget expired or
    /// a resource guard tripped), aggregated over `results`. 0 whenever no
    /// budget/guard was configured.
    long long degraded_supernodes = 0;
    double seconds = 0.0;  ///< wall time of the job body (not queue wait)
    /// 0-based dispatch sequence across the service lifetime: the order
    /// jobs actually started running (what the priority lanes decide).
    /// Meaningless (kNoStartOrder) for jobs cancelled while queued.
    std::uint64_t start_order = kNoStartOrder;

    static constexpr std::uint64_t kNoStartOrder = ~std::uint64_t{0};
};

struct ServiceStats {
    int queued = 0;      ///< both lanes, not yet running
    int queued_high = 0; ///< the kHigh-lane subset of `queued`
    int running = 0;
    int completed = 0;
    int cancelled = 0;   ///< queued removals + cooperatively stopped runs
    int failed = 0;
    /// Jobs shed at dispatch or stopped in flight because their deadline
    /// passed (terminal status kDeadlineExceeded).
    int deadline_exceeded = 0;
    /// Supernodes served by a degrade-ladder stage across completed jobs
    /// (FlowResult::degraded_supernodes aggregate).
    long long degraded_supernodes = 0;
    long networks_synthesized = 0;  ///< flow results across completed jobs
    long mapped_gates = 0;          ///< aggregate over those results
    double mapped_area_um2 = 0.0;
    /// Cones served as ones-counting symmetric networks across completed
    /// jobs (EngineStats::symmetric_steps aggregate).
    long long symmetric_cones_served = 0;
    // Process-wide memoization snapshots (the caches outlive any one
    // service, so these count all activity since process start — the warm
    // state the NEXT job benefits from, not a per-service delta).
    long long cone_cache_hits = 0;
    long long cone_cache_misses = 0;
    long long cone_cache_evictions = 0;
    long long cone_cache_entries = 0;
    long long cone_cache_bytes = 0;
    long long exact_cache_hits = 0;
    long long exact_cache_misses = 0;
    int exact_cache_classes = 0;
};

struct ServiceParams {
    /// Jobs allowed to run concurrently; <= 0 means the pool thread count.
    int max_concurrent_jobs = 0;
    /// Pool to run on; nullptr = runtime::global_pool(). An injected pool
    /// must outlive the service.
    runtime::ThreadPool* pool = nullptr;
    /// Start with admission held (see pause()).
    bool start_paused = false;
};

class SynthesisService {
public:
    using JobId = std::uint64_t;

    struct Submission {
        JobId id = 0;
        std::future<FlowResult> result;
    };

    explicit SynthesisService(const ServiceParams& params = {});
    ~SynthesisService();
    SynthesisService(const SynthesisService&) = delete;
    SynthesisService& operator=(const SynthesisService&) = delete;

    /// Queue one network. FIFO admission; the future is fulfilled when the
    /// job completes (or is cancelled), or carries the job's exception.
    [[nodiscard]] Submission submit(net::Network input,
                                    const SynthesisJobParams& params = {});

    /// Queue a whole suite as one job: entry i of FlowResult::results is
    /// the flows of inputs[i], identical to a serial run over the suite.
    [[nodiscard]] Submission submit_suite(std::vector<net::Network> inputs,
                                          const SynthesisJobParams& params = {});

    /// Cancel a job. Still-queued jobs are removed immediately (their
    /// future yields status kCancelled at once). Running jobs get their
    /// cancellation token set and stop cooperatively at the next flow
    /// checkpoint — the future then yields kCancelled, unless the job
    /// outraced the request and completed. Returns false only when the
    /// job is already finished or unknown.
    bool cancel(JobId id);

    /// Hold admission: running jobs finish, queued jobs stay queued until
    /// resume(). Idempotent.
    void pause();
    void resume();

    /// Block until no job is queued or running.
    ///
    /// Paused-wait contract: with admission paused and jobs still queued,
    /// nothing will ever dispatch them, so this blocks until some other
    /// thread calls resume() (or cancels every queued job). A paused,
    /// non-empty service with no such thread makes wait_idle() wait
    /// forever by design — use wait_idle_for() when that is a reachable
    /// state.
    void wait_idle();

    /// Bounded wait_idle(): returns true once no job is queued or running,
    /// false if the timeout expires first. This is the chaos-suite (and
    /// shutdown-watchdog) primitive: under fault injection or a paused
    /// queue, "did the service drain within T" is a checkable property
    /// where wait_idle() would hang.
    [[nodiscard]] bool wait_idle_for(std::chrono::milliseconds timeout);

    [[nodiscard]] ServiceStats stats() const;

private:
    struct Job;

    Submission enqueue(std::vector<net::Network> inputs,
                       const SynthesisJobParams& params);
    void pump_locked();
    void execute(const std::shared_ptr<Job>& job);

    runtime::ThreadPool& pool_;
    const int max_concurrent_;

    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;
    std::deque<std::shared_ptr<Job>> queue_;       ///< kNormal lane
    std::deque<std::shared_ptr<Job>> queue_high_;  ///< kHigh lane
    /// Running jobs by id, for cooperative cancellation of in-flight work.
    std::unordered_map<JobId, std::shared_ptr<Job>> running_jobs_;
    JobId next_id_ = 0;
    std::uint64_t next_start_order_ = 0;
    int running_ = 0;
    int inflight_ = 0;  ///< dispatched pool tasks still touching `this`
    bool paused_ = false;
    int completed_ = 0;
    int cancelled_ = 0;
    int failed_ = 0;
    int deadline_exceeded_ = 0;
    long long degraded_supernodes_ = 0;
    long networks_synthesized_ = 0;
    long mapped_gates_ = 0;
    double mapped_area_um2_ = 0.0;
    long long symmetric_cones_served_ = 0;
};

}  // namespace bdsmaj::flows
