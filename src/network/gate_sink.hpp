#pragma once
// Gate emission interface: the contract between the decomposition engine
// and whatever consumes its factoring trees.
//
// The engine's recursion is driven purely by BDD structure — it combines
// the Signals a sink hands back but never inspects them. That makes the
// sink swappable: `HashedNetworkBuilder` emits gates directly into the
// shared hash-consed network (the classic serial path), while `GateTape`
// records the call sequence into a position-independent IR that a worker
// thread can fill in isolation and the flow can replay serially later.
// The node-id space inside a Signal is therefore sink-defined; Signals
// from different sinks must not be mixed.

#include <cstdint>

namespace bdsmaj::net {

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = 0xffffffffu;

/// A sink-defined node reference with an optional pending complement.
/// For `HashedNetworkBuilder` the node is a network NodeId; for `GateTape`
/// it is a tape-local id. Complement stays symbolic until a sink
/// materializes it.
struct Signal {
    NodeId node = kNoNode;
    bool complemented = false;

    [[nodiscard]] Signal operator!() const { return Signal{node, !complemented}; }
    bool operator==(const Signal&) const = default;
    bool operator<(const Signal& o) const {
        return node != o.node ? node < o.node : complemented < o.complemented;
    }
};

/// Abstract gate sink. Implementations must be deterministic functions of
/// the call sequence: replaying the same sequence of calls (with equal
/// operand Signals) must produce the same results. That property is what
/// lets `GateTape::replay` reproduce a direct-emission run bit-for-bit.
class GateSink {
public:
    virtual ~GateSink() = default;

    [[nodiscard]] virtual Signal constant(bool value) = 0;
    [[nodiscard]] virtual Signal build_and(Signal a, Signal b) = 0;
    [[nodiscard]] virtual Signal build_or(Signal a, Signal b) = 0;
    [[nodiscard]] virtual Signal build_xor(Signal a, Signal b) = 0;
    [[nodiscard]] virtual Signal build_maj(Signal a, Signal b, Signal c) = 0;
    /// (select, then, else); sinks may expand or simplify.
    [[nodiscard]] virtual Signal build_mux(Signal s, Signal t, Signal e) = 0;

    [[nodiscard]] Signal build_xnor(Signal a, Signal b) { return !build_xor(a, b); }
};

}  // namespace bdsmaj::net
