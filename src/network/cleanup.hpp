#pragma once
// Structural network cleanup: constant propagation, inverter-pair and
// buffer elimination, structural hashing of identical gates, and dead-node
// sweep. Every flow runs this after restructuring so that Table I node
// counts measure logic, not construction debris.

#include "network/network.hpp"

namespace bdsmaj::net {

/// Rebuild the network applying local simplification rules until none fire.
[[nodiscard]] Network cleanup(const Network& in);

}  // namespace bdsmaj::net
