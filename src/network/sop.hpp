#pragma once
// Single-output sum-of-products covers, the local node functions of
// BLIF-style logic networks (one `.names` block each).

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace bdsmaj::net {

/// Literal polarity inside a cube, in BLIF notation order.
enum class Lit : std::uint8_t {
    kNeg = 0,   ///< '0' : complemented literal
    kPos = 1,   ///< '1' : positive literal
    kDash = 2,  ///< '-' : variable absent from the cube
};

/// One product term over `arity` positions.
struct Cube {
    std::vector<Lit> lits;

    [[nodiscard]] std::size_t arity() const noexcept { return lits.size(); }
    [[nodiscard]] int literal_count() const;
    [[nodiscard]] std::string to_string() const;
    bool operator==(const Cube&) const = default;
};

/// A cover: OR of cubes over a fixed arity. An empty cover is constant 0;
/// a cover containing the all-dash cube is constant 1.
class Sop {
public:
    Sop() = default;
    explicit Sop(std::size_t arity) : arity_(arity) {}

    static Sop constant(bool value, std::size_t arity = 0);
    /// Single-cube cover from a BLIF pattern like "1-0".
    static Sop from_pattern(const std::string& pattern);
    /// The single positive (or negative) literal of variable `pos`.
    static Sop literal(std::size_t arity, std::size_t pos, bool positive);
    /// Exact cover synthesized from a truth table via Minato-Morreale ISOP.
    static Sop isop(const tt::TruthTable& on_set);

    void add_cube(Cube cube);
    void add_pattern(const std::string& pattern);

    [[nodiscard]] std::size_t arity() const noexcept { return arity_; }
    [[nodiscard]] const std::vector<Cube>& cubes() const noexcept { return cubes_; }
    [[nodiscard]] bool is_const0() const noexcept { return cubes_.empty(); }
    [[nodiscard]] bool is_const1() const;
    [[nodiscard]] int literal_count() const;

    /// Evaluate on one input combination (bit i of `input` = fanin i).
    [[nodiscard]] bool eval(std::uint64_t input) const;
    /// 64 parallel evaluations; `fanin_words[i]` carries fanin i.
    [[nodiscard]] std::uint64_t eval_words(const std::vector<std::uint64_t>& fanin_words) const;
    /// Truth table over `arity` variables (var i = fanin i).
    [[nodiscard]] tt::TruthTable to_truth_table() const;

    /// BLIF `.names` body lines (cube pattern + " 1").
    [[nodiscard]] std::string to_blif_body() const;

    bool operator==(const Sop&) const = default;

private:
    std::size_t arity_ = 0;
    std::vector<Cube> cubes_;
};

}  // namespace bdsmaj::net
