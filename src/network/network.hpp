#pragma once
// Combinational Boolean logic network: the BLIF-level representation that
// the synthesis flows consume and produce. A node is either a primary
// input, a constant, a structured gate (AND/OR/XOR/XNOR/MAJ/MUX/NOT/BUF),
// or an arbitrary single-output SOP (a `.names` block). Primary outputs
// are named references to driver nodes.
//
// Structured gate kinds exist because the paper's flows exchange networks
// whose nodes are decomposition results (factoring-tree operators) and
// because Table I reports per-operator node counts.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

// NodeId / kNoNode / Signal live in gate_sink.hpp so the emission
// interface has no dependency on the network container.
#include "network/gate_sink.hpp"
#include "network/sop.hpp"

namespace bdsmaj::net {

enum class GateKind : std::uint8_t {
    kInput,
    kConst0,
    kConst1,
    kBuf,   // 1 fanin
    kNot,   // 1 fanin
    kAnd,   // 2 fanins
    kOr,    // 2 fanins
    kNand,  // 2 fanins
    kNor,   // 2 fanins
    kXor,   // 2 fanins
    kXnor,  // 2 fanins
    kMaj,   // 3 fanins
    kMux,   // 3 fanins: (select, then, else)
    kSop,   // n fanins with an attached cover
};

[[nodiscard]] const char* gate_kind_name(GateKind kind);
[[nodiscard]] int gate_kind_arity(GateKind kind);  // -1 for kSop

struct Node {
    GateKind kind = GateKind::kInput;
    std::vector<NodeId> fanins;
    Sop sop;           // meaningful only for kSop
    std::string name;  // optional; auto-generated on output when empty
};

struct OutputPort {
    std::string name;
    NodeId driver = kNoNode;
};

/// Aggregate per-operator counts: the unit of comparison in Table I.
struct NetworkStats {
    int inputs = 0;
    int outputs = 0;
    int and_nodes = 0;
    int or_nodes = 0;
    int xor_nodes = 0;
    int xnor_nodes = 0;
    int maj_nodes = 0;
    int mux_nodes = 0;
    int not_nodes = 0;
    int sop_nodes = 0;
    int other_nodes = 0;  // buf/const
    /// Total decomposition node count in the paper's sense: every logic
    /// operator node (inverters and buffers excluded, as in BDS).
    [[nodiscard]] int total() const {
        return and_nodes + or_nodes + xor_nodes + xnor_nodes + maj_nodes +
               mux_nodes + sop_nodes;
    }
};

class Network {
public:
    Network() = default;
    explicit Network(std::string model_name) : model_name_(std::move(model_name)) {}

    // ---- Construction -----------------------------------------------------
    NodeId add_input(const std::string& name);
    NodeId add_constant(bool value);
    NodeId add_gate(GateKind kind, const std::vector<NodeId>& fanins,
                    const std::string& name = {});
    NodeId add_sop(const std::vector<NodeId>& fanins, Sop sop,
                   const std::string& name = {});
    void add_output(const std::string& name, NodeId driver);

    // Convenience binary/unary builders.
    NodeId add_and(NodeId a, NodeId b) { return add_gate(GateKind::kAnd, {a, b}); }
    NodeId add_or(NodeId a, NodeId b) { return add_gate(GateKind::kOr, {a, b}); }
    NodeId add_xor(NodeId a, NodeId b) { return add_gate(GateKind::kXor, {a, b}); }
    NodeId add_xnor(NodeId a, NodeId b) { return add_gate(GateKind::kXnor, {a, b}); }
    NodeId add_not(NodeId a) { return add_gate(GateKind::kNot, {a}); }
    NodeId add_maj(NodeId a, NodeId b, NodeId c) {
        return add_gate(GateKind::kMaj, {a, b, c});
    }
    NodeId add_mux(NodeId sel, NodeId then_in, NodeId else_in) {
        return add_gate(GateKind::kMux, {sel, then_in, else_in});
    }

    // ---- Access ------------------------------------------------------------
    [[nodiscard]] const std::string& model_name() const noexcept { return model_name_; }
    void set_model_name(std::string name) { model_name_ = std::move(name); }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
    [[nodiscard]] Node& node(NodeId id) { return nodes_.at(id); }
    [[nodiscard]] const std::vector<NodeId>& inputs() const noexcept { return inputs_; }
    [[nodiscard]] const std::vector<OutputPort>& outputs() const noexcept { return outputs_; }
    [[nodiscard]] std::vector<OutputPort>& outputs() noexcept { return outputs_; }

    /// Name of a node, generating "n<id>" when unset.
    [[nodiscard]] std::string node_name(NodeId id) const;
    /// Find an input node by name.
    [[nodiscard]] std::optional<NodeId> find_input(const std::string& name) const;

    // ---- Analysis ----------------------------------------------------------
    /// Topological order over all nodes reachable from outputs (inputs first).
    [[nodiscard]] std::vector<NodeId> topo_order() const;
    /// Fanout count per node, counting output ports as one fanout each.
    [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;
    [[nodiscard]] NetworkStats stats() const;
    /// Maximum logic depth (inputs at depth 0; inverters/buffers count 0).
    [[nodiscard]] int logic_depth() const;

private:
    std::string model_name_ = "network";
    std::vector<Node> nodes_;
    std::vector<NodeId> inputs_;
    std::vector<OutputPort> outputs_;
};

}  // namespace bdsmaj::net
