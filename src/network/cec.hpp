#pragma once
// Simulation-guided combinational equivalence checking (CEC).
//
// The exact sign-off oracle behind check_equivalent(): bit-parallel random
// simulation refutes cheap mismatches first; what survives is proven with
// per-output CNF miters over the in-repo CDCL solver (sat/solver.hpp).
// Before touching the output miters, internal nodes of both networks are
// grouped into candidate-equivalence classes by their simulation
// signatures (fraiging-lite) and the candidates are discharged with
// bounded SAT queries in topological order; every proven equality becomes
// a unit-forced cut-point in the shared CNF, which is what makes
// multiplier-sized miters tractable — decomposition preserves supernode
// boundary functions, so the two networks are riddled with internal
// equivalences the signatures find.
//
// Every inequivalence verdict carries a concrete counterexample extracted
// from the SAT model (or the failing simulation word) and is re-verified
// by single-pattern simulation before it reaches the caller.

#include <cstdint>

#include "network/simulate.hpp"

namespace bdsmaj::net {

/// Tuning knobs for the CEC oracle. The defaults are what every flow and
/// test uses; the bench harness varies `engine` only.
struct CecParams {
    EquivEngine engine = EquivEngine::kAuto;
    /// Plain random-simulation refutation rounds (64 patterns each) run
    /// before any proof work.
    int sim_rounds = 64;
    /// Signature rounds used to build candidate-equivalence classes for
    /// the SAT engine (64 patterns each; counterexample patterns from
    /// failed candidate proofs are appended as extra rounds).
    int signature_rounds = 4;
    std::uint64_t seed = 0x5eed;
    /// kAuto proves with a global BDD when the input count is at most
    /// this, and with the SAT miter sweep above it.
    int bdd_input_limit = 20;
    /// Learn internal equivalences as cut-points before the output miters.
    /// Off = plain per-output miter SAT (reference mode for testing).
    bool fraig = true;
    /// Conflict budget per internal candidate query; exhausted candidates
    /// are skipped (never unsound). <= 0 means unbounded.
    std::int64_t internal_conflict_limit = 2000;
    /// Conflict budget per output miter; 0/negative = unbounded (output
    /// proofs are the actual sign-off and must not silently give up —
    /// exhausting a positive budget here throws).
    std::int64_t output_conflict_limit = 0;
};

/// Observability counters filled by the SAT engine (zeros for bdd/sim).
struct CecStats {
    std::uint64_t sim_rounds = 0;           ///< total simulation rounds run
    std::uint64_t candidate_pairs = 0;      ///< internal equalities attempted
    std::uint64_t proved_internal = 0;      ///< ... proven and forced as cut-points
    std::uint64_t refuted_internal = 0;     ///< ... refuted by a SAT model
    std::uint64_t unknown_internal = 0;     ///< ... skipped on conflict budget
    std::uint64_t sat_calls = 0;            ///< total solver queries
    std::uint64_t conflicts = 0;            ///< total solver conflicts
};

/// SAT miter equivalence proof (exact at any input count). Networks are
/// matched positionally on inputs and outputs. `params.engine` is ignored.
[[nodiscard]] EquivalenceResult sat_equivalent(const Network& a, const Network& b,
                                               const CecParams& params = {},
                                               CecStats* stats = nullptr);

/// Engine-selectable equivalence oracle.
///   kAuto : random simulation, then BDD (inputs <= bdd_input_limit) or SAT.
///   kBdd  : random simulation, then the BDD proof regardless of width.
///   kSat  : random simulation, then the SAT miter sweep.
///   kSim  : random simulation only — agreement is NOT exact.
/// Except under kSim, the returned verdict always has `exact == true`.
[[nodiscard]] EquivalenceResult check_equivalent(const Network& a, const Network& b,
                                                 const CecParams& params,
                                                 CecStats* stats = nullptr);

}  // namespace bdsmaj::net
