#pragma once
// GateTape: the recording GateSink behind the parallel synthesis pipeline.
//
// A worker decomposing one supernode writes its factoring tree into a tape
// instead of the shared hash-consed builder. Tape Signals live in a
// tape-local id space — leaf placeholders, a constant, and the results of
// earlier tape operations — so recording needs no shared mutable state and
// no knowledge of where the supernode's leaves will end up in the output
// network. The flow then replays the tapes serially, in supernode order,
// into the real builder.
//
// Determinism contract: `replay` re-issues exactly the call sequence the
// engine made while recording, with leaf placeholders substituted by the
// caller's real signals. Because the engine never branches on the Signals
// a sink returns, replaying into a `HashedNetworkBuilder` produces the
// same network a direct-emission run would have produced — on-line
// sharing, constant folding and all — at any worker-thread count.
//
// Tape-local id layout (for a tape over L leaves):
//   [0, L)   leaf placeholders, in leaf order;
//   L        the constant; the Signal's complement bit selects the value
//            (so replay can materialize exactly the polarity requested);
//   L+1+k    the result of tape operation k.

#include <cstdint>
#include <span>
#include <vector>

#include "network/gate_sink.hpp"

namespace bdsmaj::net {

class GateTape final : public GateSink {
public:
    explicit GateTape(std::size_t num_leaves) : num_leaves_(num_leaves) {}

    /// Placeholder signal of leaf `i`; pass these as the decomposer leaves.
    [[nodiscard]] Signal leaf(std::size_t i) const {
        return Signal{static_cast<NodeId>(i), false};
    }
    [[nodiscard]] std::size_t num_leaves() const noexcept { return num_leaves_; }
    /// Number of recorded operations.
    [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

    [[nodiscard]] Signal constant(bool value) override;
    [[nodiscard]] Signal build_and(Signal a, Signal b) override;
    [[nodiscard]] Signal build_or(Signal a, Signal b) override;
    [[nodiscard]] Signal build_xor(Signal a, Signal b) override;
    [[nodiscard]] Signal build_maj(Signal a, Signal b, Signal c) override;
    [[nodiscard]] Signal build_mux(Signal s, Signal t, Signal e) override;

    /// The tape-local signal computing the recorded function's root.
    void set_root(Signal s) { root_ = s; }
    [[nodiscard]] Signal root() const noexcept { return root_; }

    /// Re-issue the recorded calls into `sink`, substituting `leaves[i]`
    /// for leaf placeholder i, and return the sink-space signal of root().
    /// `leaves.size()` must equal num_leaves().
    [[nodiscard]] Signal replay(GateSink& sink, std::span<const Signal> leaves) const;

    /// Heap footprint of the recorded ops (capacity, not size): what a
    /// memory-budgeted cache holding this tape should account for.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return ops_.capacity() * sizeof(Entry);
    }
    /// Drop the recording head-room before publishing the tape into a
    /// long-lived cache.
    void shrink_to_fit() { ops_.shrink_to_fit(); }

private:
    enum class Op : std::uint8_t { kAnd, kOr, kXor, kMaj, kMux };

    struct Entry {
        Op op;
        Signal a, b, c;  // tape-local operands; c unused for 2-input ops
    };

    Signal record(Op op, Signal a, Signal b, Signal c);

    std::size_t num_leaves_;
    std::vector<Entry> ops_;
    Signal root_{};
};

}  // namespace bdsmaj::net
