#pragma once
// BLIF reader/writer for combinational networks (.model/.inputs/.outputs/
// .names/.end, with '\' line continuations). This is the interchange format
// of the MCNC benchmark suite the paper evaluates on.

#include <string>

#include "network/network.hpp"

namespace bdsmaj::net {

/// Parse a BLIF document. Only combinational constructs are accepted;
/// `.latch`, `.subckt` and `.gate` raise std::runtime_error.
[[nodiscard]] Network parse_blif(const std::string& text);

/// Serialize to BLIF. Structured gates are emitted as equivalent `.names`
/// covers so any BLIF consumer can read the result.
[[nodiscard]] std::string write_blif(const Network& network);

/// File helpers.
[[nodiscard]] Network read_blif_file(const std::string& path);
void write_blif_file(const Network& network, const std::string& path);

}  // namespace bdsmaj::net
