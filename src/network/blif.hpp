#pragma once
// BLIF reader/writer for combinational networks (.model/.inputs/.outputs/
// .names/.end, with '\' line continuations). This is the interchange format
// of the MCNC benchmark suite the paper evaluates on.

#include <stdexcept>
#include <string>

#include "network/network.hpp"

namespace bdsmaj::net {

/// Malformed-BLIF diagnostic. Every parse failure — truncated file,
/// undeclared signal, duplicate driver/input/output, cube arity mismatch,
/// bad cube characters, unsupported constructs — raises this with the
/// 1-based source line it was detected on (the first physical line of a
/// '\'-continued logical line), never UB or an assert.
class ParseError : public std::runtime_error {
public:
    ParseError(int line, const std::string& message)
        : std::runtime_error("blif line " + std::to_string(line) + ": " + message),
          line_(line) {}
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    int line_;
};

/// Parse a BLIF document. Only combinational constructs are accepted;
/// `.latch`, `.subckt` and `.gate` — and any malformed input — raise
/// ParseError carrying the offending line number.
[[nodiscard]] Network parse_blif(const std::string& text);

/// Serialize to BLIF. Structured gates are emitted as equivalent `.names`
/// covers so any BLIF consumer can read the result.
[[nodiscard]] std::string write_blif(const Network& network);

/// File helpers.
[[nodiscard]] Network read_blif_file(const std::string& path);
void write_blif_file(const Network& network, const std::string& path);

}  // namespace bdsmaj::net
