#include "network/builder.hpp"

#include <algorithm>

namespace bdsmaj::net {

Signal HashedNetworkBuilder::constant(bool value) {
    if (const_node_[value] == kNoNode) const_node_[value] = net_.add_constant(value);
    return Signal{const_node_[value], false};
}

bool HashedNetworkBuilder::is_const(const Signal& s, bool value) const {
    if (s.node == kNoNode) return false;
    const GateKind k = net_.node(s.node).kind;
    if (k != GateKind::kConst0 && k != GateKind::kConst1) return false;
    return ((k == GateKind::kConst1) != s.complemented) == value;
}

bool HashedNetworkBuilder::is_any_const(const Signal& s) const {
    return is_const(s, false) || is_const(s, true);
}

NodeId HashedNetworkBuilder::realize(Signal s) {
    if (!s.complemented) return s.node;
    auto [it, fresh] = inverter_cache_.try_emplace(s.node, kNoNode);
    if (fresh) {
        const GateKind k = net_.node(s.node).kind;
        if (k == GateKind::kConst0 || k == GateKind::kConst1) {
            it->second = constant(k == GateKind::kConst0).node;
        } else if (k == GateKind::kXor || k == GateKind::kXnor) {
            // The complement of an XOR is the dual gate over the same
            // fanins; this is how XNOR nodes appear in decomposed networks.
            const GateKind dual =
                k == GateKind::kXor ? GateKind::kXnor : GateKind::kXor;
            it->second = hashed_gate(dual, net_.node(s.node).fanins).node;
        } else {
            it->second = net_.add_not(s.node);
        }
    }
    return it->second;
}

Signal HashedNetworkBuilder::hashed_gate(GateKind kind, std::vector<NodeId> fanins) {
    if (kind == GateKind::kAnd || kind == GateKind::kOr || kind == GateKind::kXor ||
        kind == GateKind::kXnor || kind == GateKind::kNand || kind == GateKind::kNor ||
        kind == GateKind::kMaj) {
        std::sort(fanins.begin(), fanins.end());
    }
    const auto key = std::make_pair(kind, fanins);
    auto [it, fresh] = gate_cache_.try_emplace(key, kNoNode);
    if (fresh) it->second = net_.add_gate(kind, fanins);
    return Signal{it->second, false};
}

Signal HashedNetworkBuilder::build_and(Signal a, Signal b) {
    if (is_const(a, false) || is_const(b, false)) return constant(false);
    if (is_const(a, true)) return b;
    if (is_const(b, true)) return a;
    if (a == b) return a;
    if (a.node == b.node) return constant(false);  // a & !a
    return hashed_gate(GateKind::kAnd, {realize(a), realize(b)});
}

Signal HashedNetworkBuilder::build_or(Signal a, Signal b) {
    if (is_const(a, true) || is_const(b, true)) return constant(true);
    if (is_const(a, false)) return b;
    if (is_const(b, false)) return a;
    if (a == b) return a;
    if (a.node == b.node) return constant(true);  // a | !a
    return hashed_gate(GateKind::kOr, {realize(a), realize(b)});
}

Signal HashedNetworkBuilder::build_xor(Signal a, Signal b) {
    // Complements fold into the output polarity.
    bool complement_out = a.complemented != b.complemented;
    a.complemented = false;
    b.complemented = false;
    if (is_const(a, false)) return Signal{b.node, complement_out};
    if (is_const(b, false)) return Signal{a.node, complement_out};
    if (is_const(a, true)) return Signal{b.node, !complement_out};
    if (is_const(b, true)) return Signal{a.node, !complement_out};
    if (a.node == b.node) return constant(complement_out);
    Signal r = hashed_gate(GateKind::kXor, {realize(a), realize(b)});
    r.complemented = complement_out;
    return r;
}

Signal HashedNetworkBuilder::build_maj(Signal a, Signal b, Signal c) {
    if (a == b || a == c) return a;
    if (b == c) return b;
    // Two equal nodes with opposite polarity: majority reduces to the third.
    if (a.node == b.node) return c;
    if (a.node == c.node) return b;
    if (b.node == c.node) return a;
    if (is_const(c, false)) return build_and(a, b);
    if (is_const(c, true)) return build_or(a, b);
    if (is_const(b, false)) return build_and(a, c);
    if (is_const(b, true)) return build_or(a, c);
    if (is_const(a, false)) return build_and(b, c);
    if (is_const(a, true)) return build_or(b, c);
    // Self-duality: normalize so at most one input is complemented.
    const int complemented_inputs = static_cast<int>(a.complemented) +
                                    static_cast<int>(b.complemented) +
                                    static_cast<int>(c.complemented);
    bool complement_out = false;
    if (complemented_inputs >= 2) {
        a = !a;
        b = !b;
        c = !c;
        complement_out = true;
    }
    Signal r = hashed_gate(GateKind::kMaj, {realize(a), realize(b), realize(c)});
    r.complemented = complement_out;
    return r;
}

Signal HashedNetworkBuilder::build_mux(Signal s, Signal t, Signal e) {
    if (is_const(s, true)) return t;
    if (is_const(s, false)) return e;
    if (t == e) return t;
    if (s.complemented) {
        std::swap(t, e);
        s.complemented = false;
    }
    if (is_const(t, true) && is_const(e, false)) return s;
    if (is_const(t, false) && is_const(e, true)) return !s;
    if (is_const(t, true)) return build_or(s, e);
    if (is_const(t, false)) return build_and(!s, e);
    if (is_const(e, false)) return build_and(s, t);
    if (is_const(e, true)) return build_or(!s, t);
    if (t.node == e.node) {
        // t == !e here (t == e was handled), so MUX(s, !e, e) = s XOR e.
        return build_xor(s, e);
    }
    // Expand: (s & t) | (!s & e), staying in the AND/OR/NOT alphabet.
    return build_or(build_and(s, t), build_and(!s, e));
}

Signal HashedNetworkBuilder::build_sop(const std::vector<Signal>& fanins, const Sop& sop) {
    if (sop.is_const0()) return constant(false);
    if (sop.is_const1()) return constant(true);
    std::vector<NodeId> realized;
    realized.reserve(fanins.size());
    std::string cover_key;
    for (const Signal& s : fanins) realized.push_back(realize(s));
    for (const Cube& c : sop.cubes()) {
        cover_key += c.to_string();
        cover_key += '|';
    }
    const auto key = std::make_pair(realized, cover_key);
    auto [it, fresh] = sop_cache_.try_emplace(key, kNoNode);
    if (fresh) it->second = net_.add_sop(realized, sop);
    return Signal{it->second, false};
}

}  // namespace bdsmaj::net
