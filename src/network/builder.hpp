#pragma once
// Hash-consing network construction with polarity-tracking signals.
//
// A Signal is (node, complement); inverters stay symbolic until a polarity
// must be materialized, so chains of complements cancel for free. Gates are
// structurally hashed: building the same gate twice returns the same node.
// This is the mechanism behind the BDS factoring-tree "on-line logic
// sharing" (paper SIV-C): the decomposition engine emits its trees through
// this builder, and equal subtrees — within or across supernodes — unify.
//
// Local simplification rules (constant folding, duplicate-input collapse,
// MAJ self-duality normalization, MUX degeneration) fire during build, so
// clients never create foldable gates.

#include <map>

#include "network/gate_sink.hpp"
#include "network/network.hpp"

namespace bdsmaj::net {

/// The direct-emission GateSink: Signals carry NodeIds of `net`.
class HashedNetworkBuilder final : public GateSink {
public:
    /// The builder appends to `net`; `net` must outlive the builder.
    explicit HashedNetworkBuilder(Network& net) : net_(net) {}

    [[nodiscard]] Network& network() noexcept { return net_; }

    [[nodiscard]] Signal constant(bool value) override;
    [[nodiscard]] bool is_const(const Signal& s, bool value) const;
    [[nodiscard]] bool is_any_const(const Signal& s) const;

    [[nodiscard]] Signal build_and(Signal a, Signal b) override;
    [[nodiscard]] Signal build_or(Signal a, Signal b) override;
    [[nodiscard]] Signal build_xor(Signal a, Signal b) override;
    [[nodiscard]] Signal build_maj(Signal a, Signal b, Signal c) override;
    /// MUX is expanded to OR(AND(s,t), AND(!s,e)) when it does not simplify,
    /// keeping decomposed networks within the Table I operator alphabet.
    [[nodiscard]] Signal build_mux(Signal s, Signal t, Signal e) override;
    /// Hash-consed SOP node over realized fanins.
    [[nodiscard]] Signal build_sop(const std::vector<Signal>& fanins, const Sop& sop);

    /// Materialize the polarity: emits (and caches) a NOT gate if needed.
    NodeId realize(Signal s);

private:
    Signal hashed_gate(GateKind kind, std::vector<NodeId> fanins);

    Network& net_;
    std::map<std::pair<GateKind, std::vector<NodeId>>, NodeId> gate_cache_;
    std::map<std::pair<std::vector<NodeId>, std::string>, NodeId> sop_cache_;
    std::map<NodeId, NodeId> inverter_cache_;
    NodeId const_node_[2] = {kNoNode, kNoNode};
};

}  // namespace bdsmaj::net
