#include "network/sop.hpp"

#include <cassert>
#include <stdexcept>

namespace bdsmaj::net {

int Cube::literal_count() const {
    int count = 0;
    for (const Lit l : lits) {
        if (l != Lit::kDash) ++count;
    }
    return count;
}

std::string Cube::to_string() const {
    std::string s;
    s.reserve(lits.size());
    for (const Lit l : lits) {
        s.push_back(l == Lit::kPos ? '1' : (l == Lit::kNeg ? '0' : '-'));
    }
    return s;
}

Sop Sop::constant(bool value, std::size_t arity) {
    Sop sop(arity);
    if (value) sop.add_cube(Cube{std::vector<Lit>(arity, Lit::kDash)});
    return sop;
}

Sop Sop::from_pattern(const std::string& pattern) {
    Sop sop(pattern.size());
    sop.add_pattern(pattern);
    return sop;
}

Sop Sop::literal(std::size_t arity, std::size_t pos, bool positive) {
    assert(pos < arity);
    Cube cube{std::vector<Lit>(arity, Lit::kDash)};
    cube.lits[pos] = positive ? Lit::kPos : Lit::kNeg;
    Sop sop(arity);
    sop.add_cube(std::move(cube));
    return sop;
}

void Sop::add_cube(Cube cube) {
    if (cube.lits.size() != arity_) {
        throw std::invalid_argument("Sop::add_cube: arity mismatch");
    }
    cubes_.push_back(std::move(cube));
}

void Sop::add_pattern(const std::string& pattern) {
    Cube cube;
    cube.lits.reserve(pattern.size());
    for (const char ch : pattern) {
        switch (ch) {
            case '0': cube.lits.push_back(Lit::kNeg); break;
            case '1': cube.lits.push_back(Lit::kPos); break;
            case '-': cube.lits.push_back(Lit::kDash); break;
            default: throw std::invalid_argument("Sop: bad cube character");
        }
    }
    add_cube(std::move(cube));
}

bool Sop::is_const1() const {
    for (const Cube& c : cubes_) {
        if (c.literal_count() == 0) return true;
    }
    return false;
}

int Sop::literal_count() const {
    int count = 0;
    for (const Cube& c : cubes_) count += c.literal_count();
    return count;
}

bool Sop::eval(std::uint64_t input) const {
    for (const Cube& c : cubes_) {
        bool match = true;
        for (std::size_t i = 0; i < c.lits.size() && match; ++i) {
            const bool bit = (input >> i) & 1;
            if (c.lits[i] == Lit::kPos && !bit) match = false;
            if (c.lits[i] == Lit::kNeg && bit) match = false;
        }
        if (match) return true;
    }
    return false;
}

std::uint64_t Sop::eval_words(const std::vector<std::uint64_t>& fanin_words) const {
    assert(fanin_words.size() == arity_);
    std::uint64_t out = 0;
    for (const Cube& c : cubes_) {
        std::uint64_t term = ~std::uint64_t{0};
        for (std::size_t i = 0; i < c.lits.size(); ++i) {
            if (c.lits[i] == Lit::kPos) term &= fanin_words[i];
            if (c.lits[i] == Lit::kNeg) term &= ~fanin_words[i];
        }
        out |= term;
    }
    return out;
}

tt::TruthTable Sop::to_truth_table() const {
    // Word-parallel: AND together projection tables per cube instead of
    // evaluating every cube on every minterm bit by bit.
    const int n = static_cast<int>(arity_);
    tt::TruthTable out = tt::TruthTable::zeros(n);
    for (const Cube& c : cubes_) {
        tt::TruthTable term = tt::TruthTable::ones(n);
        for (std::size_t i = 0; i < c.lits.size(); ++i) {
            if (c.lits[i] == Lit::kDash) continue;
            const tt::TruthTable v = tt::TruthTable::var(n, static_cast<int>(i));
            term = c.lits[i] == Lit::kPos ? (term & v) : (term & ~v);
        }
        out = out | term;
    }
    return out;
}

std::string Sop::to_blif_body() const {
    std::string out;
    for (const Cube& c : cubes_) {
        if (arity_ == 0) {
            out += "1\n";  // constant-1 node
        } else {
            out += c.to_string();
            out += " 1\n";
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Minato-Morreale irredundant SOP from a truth table, recursing on the
// lowest-index support variable. With on-set == don't-care-free off-set
// complement, this yields an exact, usually compact cover.
// ---------------------------------------------------------------------------

namespace {

using tt::TruthTable;

/// A cover under construction together with the truth table of the
/// function it computes. Threading the table through the recursion keeps
/// the "what is already covered" question word-parallel; the previous
/// formulation re-evaluated every cover cube on every minterm
/// (Sop::eval per bit) at every recursion level, which dominated the
/// whole AIG rewriting pipeline.
struct IsopPart {
    Sop sop;
    TruthTable covered;
};

IsopPart isop_rec(const TruthTable& on_lower, const TruthTable& on_upper, int var,
                  std::size_t arity) {
    const int n = on_lower.num_vars();
    // Invariant: on_lower <= care function <= on_upper (as sets).
    if (on_upper.is_const0()) return {Sop(arity), TruthTable::zeros(n)};
    if (on_lower.is_const1()) {
        return {Sop::constant(true, arity), TruthTable::ones(n)};
    }
    // Find the splitting variable: the highest variable either bound
    // depends on, at or below `var`.
    int split = -1;
    for (int v = var; v >= 0; --v) {
        if (on_lower.depends_on(v) || on_upper.depends_on(v)) {
            split = v;
            break;
        }
    }
    if (split < 0) {
        // Neither bound depends on anything: constant interval; on_upper is
        // not 0 so we may cover everything with the empty cube.
        return {Sop::constant(true, arity), TruthTable::ones(n)};
    }

    const TruthTable l0 = on_lower.cofactor(split, false);
    const TruthTable l1 = on_lower.cofactor(split, true);
    const TruthTable u0 = on_upper.cofactor(split, false);
    const TruthTable u1 = on_upper.cofactor(split, true);

    // Minterms that must be covered with the negative (resp. positive)
    // literal of `split`.
    IsopPart cover0 = isop_rec(l0 & ~u1, u0, split - 1, arity);
    IsopPart cover1 = isop_rec(l1 & ~u0, u1, split - 1, arity);

    // Remaining on-set must be covered without a `split` literal.
    const TruthTable rest_lower = (l0 & ~cover0.covered) | (l1 & ~cover1.covered);
    IsopPart cover_dash = isop_rec(rest_lower, u0 & u1, split - 1, arity);

    Sop out(arity);
    for (const Cube& c : cover0.sop.cubes()) {
        Cube cube = c;
        cube.lits[static_cast<std::size_t>(split)] = Lit::kNeg;
        out.add_cube(std::move(cube));
    }
    for (const Cube& c : cover1.sop.cubes()) {
        Cube cube = c;
        cube.lits[static_cast<std::size_t>(split)] = Lit::kPos;
        out.add_cube(std::move(cube));
    }
    for (const Cube& c : cover_dash.sop.cubes()) out.add_cube(c);
    const TruthTable vs = TruthTable::var(n, split);
    TruthTable covered =
        (~vs & cover0.covered) | (vs & cover1.covered) | cover_dash.covered;
    return {std::move(out), std::move(covered)};
}

}  // namespace

Sop Sop::isop(const tt::TruthTable& on_set) {
    const auto arity = static_cast<std::size_t>(on_set.num_vars());
    return isop_rec(on_set, on_set, on_set.num_vars() - 1, arity).sop;
}

}  // namespace bdsmaj::net
