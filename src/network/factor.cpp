#include "network/factor.hpp"

#include <algorithm>
#include <cassert>

namespace bdsmaj::net {

namespace detail {

bool most_frequent_literal_generic(const std::vector<Cube>& cubes,
                                   GenericLitRef* out) {
    if (cubes.empty()) return false;
    // Flat per-position counters; the scan order (position ascending,
    // negative polarity before positive) matches the ordered-map iteration
    // this replaces, so ties resolve identically.
    const std::size_t arity = cubes.front().lits.size();
    std::vector<int> neg_counts(arity, 0), pos_counts(arity, 0);
    for (const Cube& c : cubes) {
        for (std::size_t i = 0; i < c.lits.size(); ++i) {
            if (c.lits[i] == Lit::kPos) {
                ++pos_counts[i];
            } else if (c.lits[i] == Lit::kNeg) {
                ++neg_counts[i];
            }
        }
    }
    int best = 1;
    for (std::size_t i = 0; i < arity; ++i) {
        if (neg_counts[i] > best) {
            best = neg_counts[i];
            *out = GenericLitRef{i, false};
        }
        if (pos_counts[i] > best) {
            best = pos_counts[i];
            *out = GenericLitRef{i, true};
        }
    }
    return best > 1;
}

}  // namespace detail

int factored_literal_count(const Sop& sop) {
    // Cost carrier: number of literal leaves in the factored tree.
    struct Cost {
        int literals;
    };
    const Cost total = detail::factor_generic(
        sop.cubes(), [](std::size_t, bool) { return Cost{1}; },
        [](Cost a, Cost b) { return Cost{a.literals + b.literals}; },
        [](Cost a, Cost b) { return Cost{a.literals + b.literals}; },
        [](bool) { return Cost{0}; });
    return total.literals;
}

NodeId synthesize_sop(Network& net, const std::vector<NodeId>& fanins, const Sop& sop) {
    assert(sop.arity() == fanins.size());
    // Cache inverters so repeated negative literals share one NOT gate.
    std::vector<NodeId> inverted(fanins.size(), kNoNode);
    return detail::factor_generic(
        sop.cubes(),
        [&](std::size_t pos, bool positive) {
            if (positive) return fanins[pos];
            if (inverted[pos] == kNoNode) inverted[pos] = net.add_not(fanins[pos]);
            return inverted[pos];
        },
        [&](NodeId a, NodeId b) { return net.add_and(a, b); },
        [&](NodeId a, NodeId b) { return net.add_or(a, b); },
        [&](bool value) { return net.add_constant(value); });
}

Network factor_network(const Network& in) {
    Network out(in.model_name());
    std::vector<NodeId> map(in.node_count(), kNoNode);
    for (const NodeId id : in.topo_order()) {
        const Node& n = in.node(id);
        if (n.kind == GateKind::kInput) {
            map[id] = out.add_input(n.name);
            continue;
        }
        std::vector<NodeId> fanins;
        fanins.reserve(n.fanins.size());
        for (const NodeId f : n.fanins) fanins.push_back(map[f]);
        if (n.kind == GateKind::kSop) {
            map[id] = synthesize_sop(out, fanins, n.sop);
        } else if (n.kind == GateKind::kConst0 || n.kind == GateKind::kConst1) {
            map[id] = out.add_constant(n.kind == GateKind::kConst1);
        } else {
            map[id] = out.add_gate(n.kind, fanins, n.name);
        }
    }
    for (const OutputPort& po : in.outputs()) {
        out.add_output(po.name, map[po.driver]);
    }
    return out;
}

}  // namespace bdsmaj::net
