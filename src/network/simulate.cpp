#include "network/simulate.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace bdsmaj::net {

const char* equiv_engine_name(EquivEngine engine) {
    switch (engine) {
        case EquivEngine::kAuto: return "auto";
        case EquivEngine::kBdd: return "bdd";
        case EquivEngine::kSat: return "sat";
        case EquivEngine::kSim: return "sim";
    }
    return "?";
}

EquivEngine parse_equiv_engine(const std::string& name) {
    if (name == "auto") return EquivEngine::kAuto;
    if (name == "bdd") return EquivEngine::kBdd;
    if (name == "sat") return EquivEngine::kSat;
    if (name == "sim") return EquivEngine::kSim;
    throw std::invalid_argument("unknown equivalence engine \"" + name +
                                "\" (expected auto|bdd|sat|sim)");
}

std::string describe_counterexample(const Network& a, int output_index,
                                    const std::vector<bool>& pattern,
                                    bool value_a, bool value_b) {
    std::ostringstream os;
    os << "output " << a.outputs()[static_cast<std::size_t>(output_index)].name
       << " (index " << output_index << ") differs: a=" << (value_a ? 1 : 0)
       << " b=" << (value_b ? 1 : 0) << " under";
    constexpr std::size_t kMaxListed = 48;
    for (std::size_t i = 0; i < pattern.size() && i < kMaxListed; ++i) {
        os << ' ' << a.node(a.inputs()[i]).name << '=' << (pattern[i] ? 1 : 0);
    }
    if (pattern.size() > kMaxListed) {
        os << " ... (" << pattern.size() - kMaxListed << " more)";
    }
    return os.str();
}

EquivalenceResult verified_counterexample(const Network& a, const Network& b,
                                          int output_index,
                                          std::vector<bool> pattern,
                                          const char* origin,
                                          EquivEngine engine) {
    // Sign the witness by single-pattern re-simulation of both networks:
    // whatever engine produced it, the verdict the caller sees is backed
    // by the reference simulator.
    const std::vector<bool> va = simulate(a, pattern);
    const std::vector<bool> vb = simulate(b, pattern);
    const std::size_t o = static_cast<std::size_t>(output_index);
    if (va[o] == vb[o]) {
        throw std::logic_error(std::string("equivalence checker bug: ") + origin +
                               " counterexample failed re-simulation");
    }
    EquivalenceResult r;
    r.equivalent = false;
    r.exact = true;
    r.engine = engine;
    r.failing_output = output_index;
    r.reason = describe_counterexample(a, output_index, pattern, va[o], vb[o]);
    r.counterexample = std::move(pattern);
    return r;
}

namespace {

EquivalenceResult shape_mismatch(std::string reason, EquivEngine engine) {
    EquivalenceResult r;
    r.equivalent = false;
    r.exact = true;  // structural: no input pattern needed
    r.engine = engine;
    r.reason = std::move(reason);
    return r;
}

}  // namespace

void simulate_words_into(const Network& network, const std::vector<NodeId>& order,
                         const std::vector<std::uint64_t>& pi_words,
                         std::vector<std::uint64_t>& value,
                         std::vector<std::uint64_t>& fanin_words) {
    value.assign(network.node_count(), 0);
    for (std::size_t i = 0; i < pi_words.size(); ++i) {
        value[network.inputs()[i]] = pi_words[i];
    }
    for (const NodeId id : order) {
        const Node& n = network.node(id);
        const auto in = [&](std::size_t k) { return value[n.fanins[k]]; };
        switch (n.kind) {
            case GateKind::kInput: break;
            case GateKind::kConst0: value[id] = 0; break;
            case GateKind::kConst1: value[id] = ~std::uint64_t{0}; break;
            case GateKind::kBuf: value[id] = in(0); break;
            case GateKind::kNot: value[id] = ~in(0); break;
            case GateKind::kAnd: value[id] = in(0) & in(1); break;
            case GateKind::kOr: value[id] = in(0) | in(1); break;
            case GateKind::kNand: value[id] = ~(in(0) & in(1)); break;
            case GateKind::kNor: value[id] = ~(in(0) | in(1)); break;
            case GateKind::kXor: value[id] = in(0) ^ in(1); break;
            case GateKind::kXnor: value[id] = ~(in(0) ^ in(1)); break;
            case GateKind::kMaj:
                value[id] = (in(0) & in(1)) | (in(1) & in(2)) | (in(0) & in(2));
                break;
            case GateKind::kMux:
                value[id] = (in(0) & in(1)) | (~in(0) & in(2));
                break;
            case GateKind::kSop: {
                fanin_words.clear();
                for (const NodeId f : n.fanins) fanin_words.push_back(value[f]);
                value[id] = n.sop.eval_words(fanin_words);
                break;
            }
        }
    }
}

std::vector<std::uint64_t> simulate_words(const Network& network,
                                          const std::vector<std::uint64_t>& pi_words) {
    if (pi_words.size() != network.inputs().size()) {
        throw std::invalid_argument("simulate_words: stimulus count != PI count");
    }
    const std::vector<NodeId> order = network.topo_order();
    std::vector<std::uint64_t> value, fanin_words;
    simulate_words_into(network, order, pi_words, value, fanin_words);
    std::vector<std::uint64_t> out;
    out.reserve(network.outputs().size());
    for (const OutputPort& po : network.outputs()) out.push_back(value[po.driver]);
    return out;
}

std::vector<bool> simulate(const Network& network, const std::vector<bool>& pi_values) {
    std::vector<std::uint64_t> words(pi_values.size());
    for (std::size_t i = 0; i < pi_values.size(); ++i) {
        words[i] = pi_values[i] ? ~std::uint64_t{0} : 0;
    }
    const std::vector<std::uint64_t> out_words = simulate_words(network, words);
    std::vector<bool> out(out_words.size());
    for (std::size_t i = 0; i < out_words.size(); ++i) out[i] = (out_words[i] & 1) != 0;
    return out;
}

EquivalenceResult random_equivalent(const Network& a, const Network& b, int rounds,
                                    std::uint64_t seed) {
    if (a.inputs().size() != b.inputs().size()) {
        return shape_mismatch("input counts differ", EquivEngine::kSim);
    }
    if (a.outputs().size() != b.outputs().size()) {
        return shape_mismatch("output counts differ", EquivEngine::kSim);
    }
    std::mt19937_64 rng(seed);
    std::vector<std::uint64_t> stimulus(a.inputs().size());
    // Hoisted out of the round loop: the topological orders and the value
    // buffers; outputs are compared in place.
    const std::vector<NodeId> order_a = a.topo_order();
    const std::vector<NodeId> order_b = b.topo_order();
    std::vector<std::uint64_t> value_a, value_b, fanin_words;
    for (int round = 0; round < rounds; ++round) {
        for (auto& w : stimulus) w = rng();
        simulate_words_into(a, order_a, stimulus, value_a, fanin_words);
        simulate_words_into(b, order_b, stimulus, value_b, fanin_words);
        for (std::size_t o = 0; o < a.outputs().size(); ++o) {
            const std::uint64_t diff = value_a[a.outputs()[o].driver] ^
                                       value_b[b.outputs()[o].driver];
            if (diff != 0) {
                const int bit = std::countr_zero(diff);
                std::vector<bool> pattern(stimulus.size());
                for (std::size_t i = 0; i < stimulus.size(); ++i) {
                    pattern[i] = ((stimulus[i] >> bit) & 1) != 0;
                }
                return verified_counterexample(a, b, static_cast<int>(o),
                                               std::move(pattern), "simulation",
                                               EquivEngine::kSim);
            }
        }
    }
    EquivalenceResult r;
    r.equivalent = true;
    r.exact = false;  // sampled agreement only — never a proof
    r.engine = EquivEngine::kSim;
    return r;
}

std::vector<bdd::Bdd> network_to_bdds(const Network& network, bdd::Manager& mgr) {
    while (mgr.num_vars() < static_cast<int>(network.inputs().size())) {
        (void)mgr.new_var();
    }
    std::vector<bdd::Bdd> value(network.node_count());
    for (std::size_t i = 0; i < network.inputs().size(); ++i) {
        value[network.inputs()[i]] = mgr.var_bdd(static_cast<int>(i));
    }
    for (const NodeId id : network.topo_order()) {
        const Node& n = network.node(id);
        const auto in = [&](std::size_t k) -> const bdd::Bdd& {
            return value[n.fanins[k]];
        };
        switch (n.kind) {
            case GateKind::kInput: break;
            case GateKind::kConst0: value[id] = mgr.zero(); break;
            case GateKind::kConst1: value[id] = mgr.one(); break;
            case GateKind::kBuf: value[id] = in(0); break;
            case GateKind::kNot: value[id] = !in(0); break;
            case GateKind::kAnd: value[id] = mgr.apply_and(in(0), in(1)); break;
            case GateKind::kOr: value[id] = mgr.apply_or(in(0), in(1)); break;
            case GateKind::kNand: value[id] = !mgr.apply_and(in(0), in(1)); break;
            case GateKind::kNor: value[id] = !mgr.apply_or(in(0), in(1)); break;
            case GateKind::kXor: value[id] = mgr.apply_xor(in(0), in(1)); break;
            case GateKind::kXnor: value[id] = mgr.apply_xnor(in(0), in(1)); break;
            case GateKind::kMaj: value[id] = mgr.maj(in(0), in(1), in(2)); break;
            case GateKind::kMux: value[id] = mgr.ite(in(0), in(1), in(2)); break;
            case GateKind::kSop:
                value[id] = sop_to_bdd(mgr, n.sop, in);
                break;
        }
    }
    std::vector<bdd::Bdd> outs;
    outs.reserve(network.outputs().size());
    for (const OutputPort& po : network.outputs()) outs.push_back(value[po.driver]);
    return outs;
}

EquivalenceResult bdd_equivalent(const Network& a, const Network& b) {
    if (a.inputs().size() != b.inputs().size()) {
        return shape_mismatch("input counts differ", EquivEngine::kBdd);
    }
    if (a.outputs().size() != b.outputs().size()) {
        return shape_mismatch("output counts differ", EquivEngine::kBdd);
    }
    bdd::Manager mgr(static_cast<int>(a.inputs().size()));
    const std::vector<bdd::Bdd> fa = network_to_bdds(a, mgr);
    const std::vector<bdd::Bdd> fb = network_to_bdds(b, mgr);
    for (std::size_t o = 0; o < fa.size(); ++o) {
        if (!(fa[o] == fb[o])) {
            // Walk the difference function down to a satisfying minterm:
            // at each variable take any cofactor that stays satisfiable.
            bdd::Bdd diff = mgr.apply_xor(fa[o], fb[o]);
            std::vector<bool> pattern(a.inputs().size(), false);
            for (int v = 0; v < static_cast<int>(a.inputs().size()); ++v) {
                const bdd::Bdd lo = mgr.cofactor(diff, v, false);
                if (!(lo == mgr.zero())) {
                    pattern[static_cast<std::size_t>(v)] = false;
                    diff = lo;
                } else {
                    pattern[static_cast<std::size_t>(v)] = true;
                    diff = mgr.cofactor(diff, v, true);
                }
            }
            return verified_counterexample(a, b, static_cast<int>(o),
                                           std::move(pattern), "BDD",
                                           EquivEngine::kBdd);
        }
    }
    EquivalenceResult r;
    r.equivalent = true;
    r.exact = true;
    r.engine = EquivEngine::kBdd;
    return r;
}

}  // namespace bdsmaj::net
