#pragma once
// Structural Verilog writer for networks and mapped netlists, so results
// flow into standard downstream tooling (simulators, P&R). Mapped netlists
// are emitted as cell instantiations against the library cell names;
// unmapped networks as assign statements over Verilog operators.

#include <string>

#include "mapping/library.hpp"
#include "network/network.hpp"

namespace bdsmaj::net {

/// Behavioral-structural form: one `assign` per logic node.
[[nodiscard]] std::string write_verilog(const Network& network);

/// Gate-level form: one cell instance per node, using the library's cell
/// names (INV, NAND2, ...). Requires the network to contain only library
/// kinds plus inputs/constants/buffers.
[[nodiscard]] std::string write_verilog_netlist(const Network& netlist,
                                                const mapping::CellLibrary& lib);

}  // namespace bdsmaj::net
