#include "network/blif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace bdsmaj::net {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token) tokens.push_back(token);
    return tokens;
}

/// A logical line plus the 1-based number of its first physical line, so
/// every diagnostic can point at the source even through continuations.
struct LogicalLine {
    std::string text;
    int line = 0;
};

/// Logical lines: '\' continuations joined, comments ('#') stripped.
std::vector<LogicalLine> logical_lines(const std::string& text) {
    std::vector<LogicalLine> lines;
    std::string current;
    int current_start = 0;
    int physical = 0;
    std::istringstream is(text);
    std::string raw;
    while (std::getline(is, raw)) {
        ++physical;
        if (const auto hash = raw.find('#'); hash != std::string::npos) {
            raw.erase(hash);
        }
        while (!raw.empty() && (raw.back() == '\r' || raw.back() == ' ' || raw.back() == '\t')) {
            raw.pop_back();
        }
        if (current.empty()) current_start = physical;
        if (!raw.empty() && raw.back() == '\\') {
            raw.pop_back();
            current += raw;
            current += ' ';
            continue;
        }
        current += raw;
        if (!current.empty()) lines.push_back({current, current_start});
        current.clear();
    }
    if (!current.empty()) {
        // The file ended while a '\' continuation was still open — a
        // truncated document. Refusing it beats silently parsing half a
        // directive.
        throw ParseError(current_start,
                         "truncated file: '\\' continuation at end of input");
    }
    return lines;
}

struct PendingNames {
    std::vector<std::string> signals;  // fanin names + output name last
    std::vector<std::pair<std::string, char>> cubes;  // pattern -> output value
    int line = 0;  // the .names directive's source line
};

}  // namespace

Network parse_blif(const std::string& text) {
    Network network;
    std::unordered_map<std::string, NodeId> by_name;
    std::unordered_set<std::string> driven;  // .names targets seen so far
    std::vector<PendingNames> pending;
    PendingNames* open_block = nullptr;
    std::vector<std::pair<std::string, int>> output_names;  // name, line
    std::unordered_set<std::string> declared_outputs;
    bool saw_model = false;

    for (const LogicalLine& logical : logical_lines(text)) {
        const std::vector<std::string> tokens = tokenize(logical.text);
        if (tokens.empty()) continue;
        const int line = logical.line;
        const std::string& head = tokens.front();
        if (head[0] == '.') {
            open_block = nullptr;
            if (head == ".model") {
                if (saw_model) throw ParseError(line, "multiple .model directives");
                saw_model = true;
                if (tokens.size() > 1) network.set_model_name(tokens[1]);
            } else if (head == ".inputs") {
                for (std::size_t i = 1; i < tokens.size(); ++i) {
                    if (by_name.contains(tokens[i])) {
                        throw ParseError(line, "duplicate input declaration '" +
                                                   tokens[i] + "'");
                    }
                    by_name[tokens[i]] = network.add_input(tokens[i]);
                }
            } else if (head == ".outputs") {
                for (std::size_t i = 1; i < tokens.size(); ++i) {
                    if (!declared_outputs.insert(tokens[i]).second) {
                        throw ParseError(line, "duplicate output declaration '" +
                                                   tokens[i] + "'");
                    }
                    output_names.emplace_back(tokens[i], line);
                }
            } else if (head == ".names") {
                if (tokens.size() < 2) {
                    throw ParseError(line, ".names without signals");
                }
                const std::string& target = tokens.back();
                if (by_name.contains(target)) {
                    throw ParseError(line, ".names redefines primary input '" +
                                               target + "'");
                }
                if (!driven.insert(target).second) {
                    throw ParseError(line, "duplicate driver for signal '" +
                                               target + "'");
                }
                pending.emplace_back();
                pending.back().signals.assign(tokens.begin() + 1, tokens.end());
                pending.back().line = line;
                open_block = &pending.back();
            } else if (head == ".end") {
                break;
            } else if (head == ".latch" || head == ".subckt" || head == ".gate" ||
                       head == ".mlatch") {
                throw ParseError(line, "sequential/hierarchical construct " +
                                           head + " not supported");
            }
            // Other dot-directives (.default_input_arrival etc.) are ignored.
            continue;
        }
        if (open_block == nullptr) {
            throw ParseError(line, "cube line outside .names: " + logical.text);
        }
        if (open_block->signals.size() == 1) {
            // Constant node: the line is just the output value.
            if (tokens.size() != 1 || (tokens[0] != "1" && tokens[0] != "0")) {
                throw ParseError(line, "bad constant line: " + logical.text);
            }
            open_block->cubes.emplace_back("", tokens[0][0]);
        } else {
            if (tokens.size() != 2 || tokens[1].size() != 1 ||
                (tokens[1][0] != '0' && tokens[1][0] != '1')) {
                throw ParseError(line, "bad cube line: " + logical.text);
            }
            const std::size_t arity = open_block->signals.size() - 1;
            if (tokens[0].size() != arity) {
                throw ParseError(line, "cube '" + tokens[0] + "' has " +
                                           std::to_string(tokens[0].size()) +
                                           " literals for a " +
                                           std::to_string(arity) +
                                           "-input .names block");
            }
            for (const char c : tokens[0]) {
                if (c != '0' && c != '1' && c != '-') {
                    throw ParseError(line, "bad cube character '" +
                                               std::string(1, c) +
                                               "' in: " + logical.text);
                }
            }
            open_block->cubes.emplace_back(tokens[0], tokens[1][0]);
        }
    }

    // Materialize .names blocks in dependency order; blocks may reference
    // later blocks, so iterate until all are placed.
    std::vector<bool> placed(pending.size(), false);
    std::size_t remaining = pending.size();
    bool progress = true;
    while (remaining > 0 && progress) {
        progress = false;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (placed[i]) continue;
            const PendingNames& block = pending[i];
            bool ready = true;
            for (std::size_t s = 0; s + 1 < block.signals.size(); ++s) {
                if (!by_name.contains(block.signals[s])) {
                    ready = false;
                    break;
                }
            }
            if (!ready) continue;
            const std::size_t arity = block.signals.size() - 1;
            std::vector<NodeId> fanins;
            fanins.reserve(arity);
            for (std::size_t s = 0; s < arity; ++s) fanins.push_back(by_name[block.signals[s]]);

            // BLIF covers may be written in the off-set phase (output 0):
            // build the on-set, complementing if needed.
            char phase = '1';
            for (const auto& [pattern, value] : block.cubes) phase = value;
            Sop cover(arity);
            for (const auto& [pattern, value] : block.cubes) {
                if (value != phase) {
                    throw ParseError(block.line, "mixed-phase cover for " +
                                                     block.signals.back());
                }
                if (arity == 0) {
                    cover = Sop::constant(true, 0);
                } else {
                    cover.add_pattern(pattern);
                }
            }
            NodeId id;
            if (block.cubes.empty()) {
                id = network.add_constant(false);
            } else if (phase == '0') {
                // Off-set cover: on-set = complement.
                const tt::TruthTable on = ~cover.to_truth_table();
                id = network.add_sop(fanins, Sop::isop(on), block.signals.back());
            } else {
                id = network.add_sop(fanins, std::move(cover), block.signals.back());
            }
            network.node(id).name = block.signals.back();
            by_name[block.signals.back()] = id;
            placed[i] = true;
            --remaining;
            progress = true;
        }
    }
    if (remaining > 0) {
        // Name the exact problem: a fanin that no .inputs/.names ever
        // declares is a typo or a truncated file; if every missing fanin
        // is itself a (stuck) .names target, the blocks form a cycle.
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (placed[i]) continue;
            const PendingNames& block = pending[i];
            for (std::size_t s = 0; s + 1 < block.signals.size(); ++s) {
                if (!by_name.contains(block.signals[s]) &&
                    !driven.contains(block.signals[s])) {
                    throw ParseError(block.line, "undeclared signal '" +
                                                     block.signals[s] +
                                                     "' in .names block for '" +
                                                     block.signals.back() + "'");
                }
            }
        }
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (!placed[i]) {
                throw ParseError(pending[i].line,
                                 "combinational cycle through signal '" +
                                     pending[i].signals.back() + "'");
            }
        }
    }

    for (const auto& [name, line] : output_names) {
        const auto it = by_name.find(name);
        if (it == by_name.end()) {
            throw ParseError(line, "undriven output " + name);
        }
        network.add_output(name, it->second);
    }
    return network;
}

std::string write_blif(const Network& network) {
    std::ostringstream os;
    os << ".model " << network.model_name() << "\n.inputs";
    for (const NodeId id : network.inputs()) os << ' ' << network.node_name(id);
    os << "\n.outputs";
    for (const OutputPort& po : network.outputs()) os << ' ' << po.name;
    os << '\n';

    // Emit every non-input node as a .names block over its fanins.
    auto emit_cover = [&](const Node& n, const std::string& out_name) {
        os << ".names";
        for (const NodeId f : n.fanins) os << ' ' << network.node_name(f);
        os << ' ' << out_name << '\n';
        switch (n.kind) {
            case GateKind::kConst0: break;  // empty cover = 0
            case GateKind::kConst1: os << "1\n"; break;
            case GateKind::kBuf: os << "1 1\n"; break;
            case GateKind::kNot: os << "0 1\n"; break;
            case GateKind::kAnd: os << "11 1\n"; break;
            case GateKind::kOr: os << "1- 1\n-1 1\n"; break;
            case GateKind::kNand: os << "0- 1\n-0 1\n"; break;
            case GateKind::kNor: os << "00 1\n"; break;
            case GateKind::kXor: os << "10 1\n01 1\n"; break;
            case GateKind::kXnor: os << "11 1\n00 1\n"; break;
            case GateKind::kMaj: os << "11- 1\n1-1 1\n-11 1\n"; break;
            case GateKind::kMux: os << "11- 1\n0-1 1\n"; break;
            case GateKind::kSop: os << n.sop.to_blif_body(); break;
            case GateKind::kInput: break;
        }
    };

    for (const NodeId id : network.topo_order()) {
        const Node& n = network.node(id);
        if (n.kind == GateKind::kInput) continue;
        emit_cover(n, network.node_name(id));
    }
    // Output ports whose name differs from the driver need a buffer block.
    for (const OutputPort& po : network.outputs()) {
        if (network.node_name(po.driver) != po.name) {
            os << ".names " << network.node_name(po.driver) << ' ' << po.name
               << "\n1 1\n";
        }
    }
    os << ".end\n";
    return os.str();
}

Network read_blif_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_blif(ss.str());
}

void write_blif_file(const Network& network, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << write_blif(network);
}

}  // namespace bdsmaj::net
