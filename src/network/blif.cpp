#include "network/blif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace bdsmaj::net {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string token;
    while (is >> token) tokens.push_back(token);
    return tokens;
}

/// Logical lines: '\' continuations joined, comments ('#') stripped.
std::vector<std::string> logical_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string current;
    std::istringstream is(text);
    std::string raw;
    while (std::getline(is, raw)) {
        if (const auto hash = raw.find('#'); hash != std::string::npos) {
            raw.erase(hash);
        }
        while (!raw.empty() && (raw.back() == '\r' || raw.back() == ' ' || raw.back() == '\t')) {
            raw.pop_back();
        }
        if (!raw.empty() && raw.back() == '\\') {
            raw.pop_back();
            current += raw;
            current += ' ';
            continue;
        }
        current += raw;
        if (!current.empty()) lines.push_back(current);
        current.clear();
    }
    if (!current.empty()) lines.push_back(current);
    return lines;
}

struct PendingNames {
    std::vector<std::string> signals;  // fanin names + output name last
    std::vector<std::pair<std::string, char>> cubes;  // pattern -> output value
};

}  // namespace

Network parse_blif(const std::string& text) {
    Network network;
    std::unordered_map<std::string, NodeId> by_name;
    std::vector<PendingNames> pending;
    PendingNames* open_block = nullptr;
    std::vector<std::string> output_names;
    bool saw_model = false;

    for (const std::string& line : logical_lines(text)) {
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty()) continue;
        const std::string& head = tokens.front();
        if (head[0] == '.') {
            open_block = nullptr;
            if (head == ".model") {
                if (saw_model) throw std::runtime_error("blif: multiple .model");
                saw_model = true;
                if (tokens.size() > 1) network.set_model_name(tokens[1]);
            } else if (head == ".inputs") {
                for (std::size_t i = 1; i < tokens.size(); ++i) {
                    by_name[tokens[i]] = network.add_input(tokens[i]);
                }
            } else if (head == ".outputs") {
                output_names.insert(output_names.end(), tokens.begin() + 1, tokens.end());
            } else if (head == ".names") {
                pending.emplace_back();
                pending.back().signals.assign(tokens.begin() + 1, tokens.end());
                if (pending.back().signals.empty()) {
                    throw std::runtime_error("blif: .names without signals");
                }
                open_block = &pending.back();
            } else if (head == ".end") {
                break;
            } else if (head == ".latch" || head == ".subckt" || head == ".gate" ||
                       head == ".mlatch") {
                throw std::runtime_error("blif: sequential/hierarchical construct " +
                                         head + " not supported");
            }
            // Other dot-directives (.default_input_arrival etc.) are ignored.
            continue;
        }
        if (open_block == nullptr) {
            throw std::runtime_error("blif: cube line outside .names: " + line);
        }
        if (open_block->signals.size() == 1) {
            // Constant node: the line is just the output value.
            if (tokens.size() != 1 || (tokens[0] != "1" && tokens[0] != "0")) {
                throw std::runtime_error("blif: bad constant line: " + line);
            }
            open_block->cubes.emplace_back("", tokens[0][0]);
        } else {
            if (tokens.size() != 2 || tokens[1].size() != 1) {
                throw std::runtime_error("blif: bad cube line: " + line);
            }
            open_block->cubes.emplace_back(tokens[0], tokens[1][0]);
        }
    }

    // Materialize .names blocks in dependency order; blocks may reference
    // later blocks, so iterate until all are placed.
    std::vector<bool> placed(pending.size(), false);
    std::size_t remaining = pending.size();
    bool progress = true;
    while (remaining > 0 && progress) {
        progress = false;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (placed[i]) continue;
            const PendingNames& block = pending[i];
            bool ready = true;
            for (std::size_t s = 0; s + 1 < block.signals.size(); ++s) {
                if (!by_name.contains(block.signals[s])) {
                    ready = false;
                    break;
                }
            }
            if (!ready) continue;
            const std::size_t arity = block.signals.size() - 1;
            std::vector<NodeId> fanins;
            fanins.reserve(arity);
            for (std::size_t s = 0; s < arity; ++s) fanins.push_back(by_name[block.signals[s]]);

            // BLIF covers may be written in the off-set phase (output 0):
            // build the on-set, complementing if needed.
            char phase = '1';
            for (const auto& [pattern, value] : block.cubes) phase = value;
            Sop cover(arity);
            for (const auto& [pattern, value] : block.cubes) {
                if (value != phase) {
                    throw std::runtime_error("blif: mixed-phase cover for " +
                                             block.signals.back());
                }
                if (arity == 0) {
                    cover = Sop::constant(true, 0);
                } else {
                    cover.add_pattern(pattern);
                }
            }
            NodeId id;
            if (block.cubes.empty()) {
                id = network.add_constant(false);
            } else if (phase == '0') {
                // Off-set cover: on-set = complement.
                const tt::TruthTable on = ~cover.to_truth_table();
                id = network.add_sop(fanins, Sop::isop(on), block.signals.back());
            } else {
                id = network.add_sop(fanins, std::move(cover), block.signals.back());
            }
            network.node(id).name = block.signals.back();
            by_name[block.signals.back()] = id;
            placed[i] = true;
            --remaining;
            progress = true;
        }
    }
    if (remaining > 0) {
        throw std::runtime_error("blif: unresolved signal dependencies (cycle or typo)");
    }

    for (const std::string& name : output_names) {
        const auto it = by_name.find(name);
        if (it == by_name.end()) {
            throw std::runtime_error("blif: undriven output " + name);
        }
        network.add_output(name, it->second);
    }
    return network;
}

std::string write_blif(const Network& network) {
    std::ostringstream os;
    os << ".model " << network.model_name() << "\n.inputs";
    for (const NodeId id : network.inputs()) os << ' ' << network.node_name(id);
    os << "\n.outputs";
    for (const OutputPort& po : network.outputs()) os << ' ' << po.name;
    os << '\n';

    // Emit every non-input node as a .names block over its fanins.
    auto emit_cover = [&](const Node& n, const std::string& out_name) {
        os << ".names";
        for (const NodeId f : n.fanins) os << ' ' << network.node_name(f);
        os << ' ' << out_name << '\n';
        switch (n.kind) {
            case GateKind::kConst0: break;  // empty cover = 0
            case GateKind::kConst1: os << "1\n"; break;
            case GateKind::kBuf: os << "1 1\n"; break;
            case GateKind::kNot: os << "0 1\n"; break;
            case GateKind::kAnd: os << "11 1\n"; break;
            case GateKind::kOr: os << "1- 1\n-1 1\n"; break;
            case GateKind::kNand: os << "0- 1\n-0 1\n"; break;
            case GateKind::kNor: os << "00 1\n"; break;
            case GateKind::kXor: os << "10 1\n01 1\n"; break;
            case GateKind::kXnor: os << "11 1\n00 1\n"; break;
            case GateKind::kMaj: os << "11- 1\n1-1 1\n-11 1\n"; break;
            case GateKind::kMux: os << "11- 1\n0-1 1\n"; break;
            case GateKind::kSop: os << n.sop.to_blif_body(); break;
            case GateKind::kInput: break;
        }
    };

    for (const NodeId id : network.topo_order()) {
        const Node& n = network.node(id);
        if (n.kind == GateKind::kInput) continue;
        emit_cover(n, network.node_name(id));
    }
    // Output ports whose name differs from the driver need a buffer block.
    for (const OutputPort& po : network.outputs()) {
        if (network.node_name(po.driver) != po.name) {
            os << ".names " << network.node_name(po.driver) << ' ' << po.name
               << "\n1 1\n";
        }
    }
    os << ".end\n";
    return os.str();
}

Network read_blif_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse_blif(ss.str());
}

void write_blif_file(const Network& network, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << write_blif(network);
}

}  // namespace bdsmaj::net
