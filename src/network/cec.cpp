#include "network/cec.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "sat/cnf.hpp"

namespace bdsmaj::net {

namespace {

EquivalenceResult structural_mismatch(std::string reason, EquivEngine engine) {
    EquivalenceResult r;
    r.equivalent = false;
    r.exact = true;
    r.engine = engine;
    r.reason = std::move(reason);
    return r;
}

/// Topological level of every node (inputs/constants = 0). Candidate
/// queries run in merged level order so a node's proof can lean on
/// cut-points already forced in its transitive fanin.
std::vector<int> node_levels(const Network& network, const std::vector<NodeId>& order) {
    std::vector<int> level(network.node_count(), 0);
    for (const NodeId id : order) {
        const Node& n = network.node(id);
        int l = 0;
        for (const NodeId f : n.fanins) l = std::max(l, level[f] + 1);
        level[id] = l;
    }
    return level;
}

std::uint64_t hash_words(const std::vector<std::uint64_t>& words) {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const std::uint64_t w : words) {
        h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
}

/// The fraiging state for one sat_equivalent() call.
struct Fraig {
    const Network& a;
    const Network& b;
    const CecParams& params;
    CecStats& stats;

    sat::Solver solver;
    sat::TseitinEncoder enc{solver};
    std::vector<sat::Lit> pi_lits;
    std::vector<sat::Lit> lits_a, lits_b;  ///< per-node literal (kUndefLit = unreachable)

    std::vector<NodeId> order_a, order_b;
    /// Merged candidate schedule: (level, network flag, node id).
    struct Slot {
        int level;
        bool in_b;
        NodeId id;
    };
    std::vector<Slot> schedule;

    /// Base random stimulus, regenerated identically each pass:
    /// base_stim[round][pi]. Counterexample patterns from refuted
    /// candidates accumulate in `extra_patterns` and are packed into
    /// additional 64-pattern rounds.
    std::vector<std::vector<std::uint64_t>> base_stim;
    std::vector<std::vector<bool>> extra_patterns;

    /// Per-pass signatures: sig(node) = one word per simulated round.
    std::vector<std::vector<std::uint64_t>> sig_a, sig_b;

    explicit Fraig(const Network& a_in, const Network& b_in, const CecParams& p,
                   CecStats& s)
        : a(a_in), b(b_in), params(p), stats(s) {
        lits_a.clear();
        std::vector<sat::Lit> outs_a = enc.encode(a, pi_lits, &lits_a);
        std::vector<sat::Lit> outs_b = enc.encode(b, pi_lits, &lits_b);
        out_a_ = std::move(outs_a);
        out_b_ = std::move(outs_b);

        order_a = a.topo_order();
        order_b = b.topo_order();
        const std::vector<int> level_a = node_levels(a, order_a);
        const std::vector<int> level_b = node_levels(b, order_b);
        for (const NodeId id : order_a) {
            if (a.node(id).kind == GateKind::kInput) continue;
            if (lits_a[id] == sat::kUndefLit) continue;
            schedule.push_back({level_a[id], false, id});
        }
        for (const NodeId id : order_b) {
            if (b.node(id).kind == GateKind::kInput) continue;
            if (lits_b[id] == sat::kUndefLit) continue;
            schedule.push_back({level_b[id], true, id});
        }
        std::stable_sort(schedule.begin(), schedule.end(),
                         [](const Slot& x, const Slot& y) { return x.level < y.level; });

        const int rounds = std::max(1, params.signature_rounds);
        std::mt19937_64 rng(params.seed ^ 0xf7a19ULL);
        base_stim.resize(static_cast<std::size_t>(rounds));
        for (auto& round : base_stim) {
            round.resize(a.inputs().size());
            for (auto& w : round) w = rng();
        }
    }

    [[nodiscard]] const std::vector<sat::Lit>& outputs_a() const { return out_a_; }
    [[nodiscard]] const std::vector<sat::Lit>& outputs_b() const { return out_b_; }

    /// Recompute every node's signature over the base rounds plus the
    /// accumulated counterexample patterns.
    void resimulate() {
        std::vector<std::vector<std::uint64_t>> stim = base_stim;
        for (std::size_t at = 0; at < extra_patterns.size(); at += 64) {
            std::vector<std::uint64_t> round(a.inputs().size(), 0);
            for (std::size_t k = 0; k < 64 && at + k < extra_patterns.size(); ++k) {
                const std::vector<bool>& pat = extra_patterns[at + k];
                for (std::size_t i = 0; i < pat.size(); ++i) {
                    if (pat[i]) round[i] |= std::uint64_t{1} << k;
                }
            }
            stim.push_back(std::move(round));
        }
        stats.sim_rounds += stim.size();

        sig_a.assign(a.node_count(), {});
        sig_b.assign(b.node_count(), {});
        std::vector<std::uint64_t> value, fanin_words;
        for (const std::vector<std::uint64_t>& round : stim) {
            simulate_words_into(a, order_a, round, value, fanin_words);
            for (std::size_t id = 0; id < a.node_count(); ++id) sig_a[id].push_back(value[id]);
            simulate_words_into(b, order_b, round, value, fanin_words);
            for (std::size_t id = 0; id < b.node_count(); ++id) sig_b[id].push_back(value[id]);
        }
    }

    /// Extract the primary-input pattern of the current SAT model.
    [[nodiscard]] std::vector<bool> model_pattern() const {
        std::vector<bool> pattern(pi_lits.size());
        for (std::size_t i = 0; i < pi_lits.size(); ++i) {
            pattern[i] = solver.model_true(pi_lits[i]);
        }
        return pattern;
    }

    /// One fraiging pass: bucket nodes by canonical signature and try to
    /// prove each candidate equal to an earlier member of its bucket.
    /// Returns the number of candidates refuted (their counterexamples are
    /// now in extra_patterns, so the next pass separates them).
    int fraig_pass() {
        struct Entry {
            std::uint64_t hash;
            const std::vector<std::uint64_t>* sig;  ///< canonical = sig ^ flip
            bool flip;
            sat::Lit lit;  ///< canonical literal (already polarity-adjusted)
        };
        std::unordered_map<std::uint64_t, std::vector<Entry>> buckets;
        buckets.reserve(schedule.size());

        // Seed with the constant-false function so constant nodes (and
        // nodes the stimulus proves constant) collapse onto the shared
        // constant literal.
        const std::size_t rounds = sig_a.empty() ? sig_b[0].size() : sig_a[0].size();
        const std::vector<std::uint64_t> zero_sig(rounds, 0);
        const std::uint64_t zero_hash = hash_words(zero_sig);
        buckets[zero_hash].push_back(Entry{zero_hash, &zero_sig, false, enc.constant(false)});

        const auto canonical_equal = [](const Entry& e, const std::vector<std::uint64_t>& s,
                                        bool flip) {
            for (std::size_t r = 0; r < s.size(); ++r) {
                const std::uint64_t lhs = flip ? ~s[r] : s[r];
                const std::uint64_t rhs = e.flip ? ~(*e.sig)[r] : (*e.sig)[r];
                if (lhs != rhs) return false;
            }
            return true;
        };

        int refuted = 0;
        std::vector<std::uint64_t> canon;  // scratch for hashing
        for (const Slot& slot : schedule) {
            const std::vector<std::uint64_t>& sig = slot.in_b ? sig_b[slot.id] : sig_a[slot.id];
            const sat::Lit raw = slot.in_b ? lits_b[slot.id] : lits_a[slot.id];
            const bool flip = (sig[0] & 1) != 0;
            const sat::Lit lit = raw ^ flip;
            canon.resize(sig.size());
            for (std::size_t r = 0; r < sig.size(); ++r) canon[r] = flip ? ~sig[r] : sig[r];
            const std::uint64_t h = hash_words(canon);

            std::vector<Entry>& bucket = buckets[h];
            bool merged = false;
            for (const Entry& e : bucket) {
                if (!canonical_equal(e, sig, flip)) continue;
                if (e.lit == lit) {
                    merged = true;  // structurally the same literal already
                    break;
                }
                ++stats.candidate_pairs;
                // Prove lit == e.lit: t <-> lit XOR e.lit, then ask for t.
                const sat::Lit t = enc.encode_xor(lit, e.lit);
                ++stats.sat_calls;
                const sat::SolveResult res =
                    solver.solve({t}, params.internal_conflict_limit);
                if (res == sat::SolveResult::kUnsat) {
                    (void)solver.add_clause(~t);  // cut-point: equality now forced
                    ++stats.proved_internal;
                    merged = true;
                    break;
                }
                if (res == sat::SolveResult::kSat) {
                    extra_patterns.push_back(model_pattern());
                    ++stats.refuted_internal;
                    ++refuted;
                } else {
                    ++stats.unknown_internal;
                }
                break;  // one attempt per pass; signatures re-separate refuted pairs
            }
            if (!merged) {
                bucket.push_back(Entry{h, &sig, flip, lit});
            }
        }
        return refuted;
    }

private:
    std::vector<sat::Lit> out_a_, out_b_;
};

}  // namespace

EquivalenceResult sat_equivalent(const Network& a, const Network& b,
                                 const CecParams& params, CecStats* stats) {
    if (a.inputs().size() != b.inputs().size()) {
        return structural_mismatch("input counts differ", EquivEngine::kSat);
    }
    if (a.outputs().size() != b.outputs().size()) {
        return structural_mismatch("output counts differ", EquivEngine::kSat);
    }
    CecStats local_stats;
    CecStats& st = stats != nullptr ? *stats : local_stats;

    Fraig fraig(a, b, params, st);
    if (params.fraig) {
        // Learn internal cut-points until a pass stops refuting candidates
        // (each refutation adds a distinguishing pattern, so passes strictly
        // shrink the candidate classes; the cap is a safety net only).
        constexpr int kMaxPasses = 8;
        for (int pass = 0; pass < kMaxPasses; ++pass) {
            fraig.resimulate();
            if (fraig.fraig_pass() == 0) break;
        }
    }

    // Per-output miters: each output pair must be UNSAT-different.
    for (std::size_t o = 0; o < fraig.outputs_a().size(); ++o) {
        const sat::Lit m =
            fraig.enc.encode_xor(fraig.outputs_a()[o], fraig.outputs_b()[o]);
        ++st.sat_calls;
        const sat::SolveResult res =
            fraig.solver.solve({m}, params.output_conflict_limit);
        if (res == sat::SolveResult::kSat) {
            st.conflicts = fraig.solver.stats().conflicts;
            return verified_counterexample(a, b, static_cast<int>(o),
                                           fraig.model_pattern(), "SAT",
                                           EquivEngine::kSat);
        }
        if (res == sat::SolveResult::kUnknown) {
            throw std::runtime_error(
                "sat_equivalent: output miter exhausted its conflict budget "
                "(raise output_conflict_limit; sign-off must not be silently "
                "incomplete)");
        }
        (void)fraig.solver.add_clause(~m);  // outputs proven equal: keep as unit
    }
    st.conflicts = fraig.solver.stats().conflicts;

    EquivalenceResult r;
    r.equivalent = true;
    r.exact = true;
    r.engine = EquivEngine::kSat;
    return r;
}

EquivalenceResult check_equivalent(const Network& a, const Network& b,
                                   const CecParams& params, CecStats* stats) {
    // Fast refutation first: bit-parallel random simulation catches the
    // overwhelming majority of real bugs before any proof machinery runs.
    const int rounds = std::max(1, params.sim_rounds);
    EquivalenceResult sim = random_equivalent(a, b, rounds, params.seed);
    if (!sim.equivalent) return sim;  // exact: structural or re-verified cex
    if (params.engine == EquivEngine::kSim) return sim;  // sampled, exact=false

    switch (params.engine) {
        case EquivEngine::kBdd:
            return bdd_equivalent(a, b);
        case EquivEngine::kSat:
            return sat_equivalent(a, b, params, stats);
        case EquivEngine::kAuto:
        default:
            if (static_cast<int>(a.inputs().size()) <= params.bdd_input_limit) {
                return bdd_equivalent(a, b);
            }
            return sat_equivalent(a, b, params, stats);
    }
}

EquivalenceResult check_equivalent(const Network& a, const Network& b,
                                   int bdd_input_limit, int random_rounds,
                                   std::uint64_t seed) {
    CecParams params;
    params.engine = EquivEngine::kAuto;
    params.sim_rounds = random_rounds;
    params.seed = seed;
    params.bdd_input_limit = bdd_input_limit;
    return check_equivalent(a, b, params);
}

}  // namespace bdsmaj::net
