#include "network/gate_tape.hpp"

#include <cassert>

namespace bdsmaj::net {

Signal GateTape::constant(bool value) {
    return Signal{static_cast<NodeId>(num_leaves_), value};
}

Signal GateTape::record(Op op, Signal a, Signal b, Signal c) {
    const NodeId id = static_cast<NodeId>(num_leaves_ + 1 + ops_.size());
    ops_.push_back(Entry{op, a, b, c});
    return Signal{id, false};
}

Signal GateTape::build_and(Signal a, Signal b) { return record(Op::kAnd, a, b, {}); }
Signal GateTape::build_or(Signal a, Signal b) { return record(Op::kOr, a, b, {}); }
Signal GateTape::build_xor(Signal a, Signal b) { return record(Op::kXor, a, b, {}); }
Signal GateTape::build_maj(Signal a, Signal b, Signal c) {
    return record(Op::kMaj, a, b, c);
}
Signal GateTape::build_mux(Signal s, Signal t, Signal e) {
    return record(Op::kMux, s, t, e);
}

Signal GateTape::replay(GateSink& sink, std::span<const Signal> leaves) const {
    assert(leaves.size() == num_leaves_);
    // value[k] is the sink-space signal of tape op k, regular polarity.
    std::vector<Signal> value(ops_.size());
    const auto resolve = [&](Signal s) -> Signal {
        const std::size_t idx = s.node;
        if (idx < num_leaves_) {
            return s.complemented ? !leaves[idx] : leaves[idx];
        }
        if (idx == num_leaves_) {
            // The complement bit IS the constant's value (see header); the
            // sink materializes exactly the polarity the engine asked for.
            return sink.constant(s.complemented);
        }
        const Signal r = value[idx - num_leaves_ - 1];
        return s.complemented ? !r : r;
    };
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        const Entry& e = ops_[k];
        switch (e.op) {
            case Op::kAnd:
                value[k] = sink.build_and(resolve(e.a), resolve(e.b));
                break;
            case Op::kOr:
                value[k] = sink.build_or(resolve(e.a), resolve(e.b));
                break;
            case Op::kXor:
                value[k] = sink.build_xor(resolve(e.a), resolve(e.b));
                break;
            case Op::kMaj:
                value[k] = sink.build_maj(resolve(e.a), resolve(e.b), resolve(e.c));
                break;
            case Op::kMux:
                value[k] = sink.build_mux(resolve(e.a), resolve(e.b), resolve(e.c));
                break;
        }
    }
    return resolve(root_);
}

}  // namespace bdsmaj::net
