#pragma once
// Network simulation and equivalence checking.
//
// Three complementary engines:
//   * 64-way bit-parallel random simulation (fast falsification on any size)
//   * exact equivalence through shared-manager BDD construction (tiny
//     input counts only — the global BDD of a multiplier is intrinsically
//     exponential)
//   * the simulation-guided SAT oracle (network/cec.hpp): CNF miters over
//     an in-repo CDCL solver, exact at any input count — the default
//     sign-off used by every flow, test, and bench in this repo.

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/network.hpp"

namespace bdsmaj::net {

/// Build the BDD of an SOP node over fanin functions supplied by
/// `fanin(i)`. The cube terms are combined by balanced pairwise OR
/// reduction: a sequential accumulator repeats work proportional to the
/// growing intermediate BDD once per cube, pairwise reduction keeps the
/// operands small. Shared by the equivalence checker and the supernode
/// BDD builder.
template <typename FaninFn>
[[nodiscard]] bdd::Bdd sop_to_bdd(bdd::Manager& mgr, const Sop& sop,
                                  FaninFn&& fanin) {
    std::vector<bdd::Bdd> terms;
    terms.reserve(sop.cubes().size());
    for (const Cube& cube : sop.cubes()) {
        bdd::Bdd term = mgr.one();
        for (std::size_t i = 0; i < cube.lits.size(); ++i) {
            if (cube.lits[i] == Lit::kDash) continue;
            const bdd::Bdd& fi = fanin(i);
            term = mgr.apply_and(term, cube.lits[i] == Lit::kPos ? fi : !fi);
        }
        terms.push_back(std::move(term));
    }
    while (terms.size() > 1) {
        std::vector<bdd::Bdd> next;
        next.reserve(terms.size() / 2 + 1);
        for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
            next.push_back(mgr.apply_or(terms[i], terms[i + 1]));
        }
        if (terms.size() % 2 == 1) next.push_back(std::move(terms.back()));
        terms = std::move(next);
    }
    return terms.empty() ? mgr.zero() : std::move(terms[0]);
}

/// One 64-pattern simulation: `pi_words[i]` is the stimulus of input i
/// (bit k = pattern k); returns one word per output port.
[[nodiscard]] std::vector<std::uint64_t> simulate_words(
    const Network& network, const std::vector<std::uint64_t>& pi_words);

/// Simulation core over a precomputed topological order, writing every
/// node's 64-pattern word into a caller-owned buffer (indexed by NodeId).
/// Multi-round callers — the random equivalence check and the SAT
/// checker's signature rounds — hoist the order and the buffers out of
/// their loops. `fanin_words` is reusable SOP-evaluation scratch.
void simulate_words_into(const Network& network, const std::vector<NodeId>& order,
                         const std::vector<std::uint64_t>& pi_words,
                         std::vector<std::uint64_t>& value,
                         std::vector<std::uint64_t>& fanin_words);

/// Single-pattern convenience wrapper.
[[nodiscard]] std::vector<bool> simulate(const Network& network,
                                         const std::vector<bool>& pi_values);

/// Equivalence-checking engine. kAuto refutes by simulation first, then
/// proves with a BDD on tiny input counts and the SAT miter sweep
/// everywhere else; kSim alone never *proves* anything (exact stays
/// false on agreement).
enum class EquivEngine : std::uint8_t { kAuto, kBdd, kSat, kSim };

[[nodiscard]] const char* equiv_engine_name(EquivEngine engine);
/// Parse "auto" / "bdd" / "sat" / "sim"; throws std::invalid_argument.
[[nodiscard]] EquivEngine parse_equiv_engine(const std::string& name);

/// Result of an equivalence query.
struct EquivalenceResult {
    bool equivalent = false;
    /// True when the verdict is a proof: an exhaustive BDD/SAT argument,
    /// or a concrete re-simulated counterexample. False means the verdict
    /// is only sampled (random simulation agreed) — callers asserting
    /// sign-off must check this, not just `equivalent`.
    bool exact = false;
    /// Engine that produced the verdict (never kAuto).
    EquivEngine engine = EquivEngine::kSim;
    std::string reason;  // human-readable mismatch description
    /// On inequivalence with a known witness: the failing primary-input
    /// assignment (positionally indexed) and the differing output port.
    std::vector<bool> counterexample;
    int failing_output = -1;
};

/// Random simulation with `rounds` x 64 patterns. Inputs/outputs are
/// matched positionally; PI and PO counts must agree. A mismatch comes
/// with a re-verified counterexample pattern (exact refutation);
/// agreement is only sampled (exact = false).
[[nodiscard]] EquivalenceResult random_equivalent(const Network& a,
                                                  const Network& b, int rounds,
                                                  std::uint64_t seed);

/// Exact equivalence by building both networks' output BDDs in one manager.
/// Practical only for tiny input counts on these benchmark classes (the
/// multiplier BDD is exponential); inequivalence comes with a
/// counterexample pattern extracted from the difference BDD.
[[nodiscard]] EquivalenceResult bdd_equivalent(const Network& a, const Network& b);

/// The default exact sign-off: simulation for fast refutation, then a BDD
/// proof when the input count is at most `bdd_input_limit` and the SAT
/// miter sweep (network/cec.hpp) above it. Exact at ANY input count — the
/// historical silent downgrade to random-only verdicts on wide circuits
/// is gone; the result's `exact` flag is always true. Implemented in
/// network/cec.cpp; an engine-selectable overload lives in cec.hpp.
[[nodiscard]] EquivalenceResult check_equivalent(const Network& a, const Network& b,
                                                 int bdd_input_limit = 20,
                                                 int random_rounds = 64,
                                                 std::uint64_t seed = 0x5eed);

/// Build the BDD of every output of `network` in `mgr`, using manager
/// variable i for primary input i. Exposed because flows construct global
/// BDDs for verification and for the DC-proxy collapse.
[[nodiscard]] std::vector<bdd::Bdd> network_to_bdds(const Network& network,
                                                    bdd::Manager& mgr);

/// Shared by all engines: turn a witness pattern into a refutation
/// verdict, re-verifying it by single-pattern simulation of both networks
/// first (throws std::logic_error if the engine's witness does not
/// actually distinguish them — a checker bug, never a user error).
[[nodiscard]] EquivalenceResult verified_counterexample(
    const Network& a, const Network& b, int output_index,
    std::vector<bool> pattern, const char* origin, EquivEngine engine);

/// Human-readable description of a failing pattern (used in `reason`).
[[nodiscard]] std::string describe_counterexample(const Network& a, int output_index,
                                                  const std::vector<bool>& pattern,
                                                  bool value_a, bool value_b);

}  // namespace bdsmaj::net
