#pragma once
// Network simulation and equivalence checking.
//
// Two complementary engines:
//   * 64-way bit-parallel random simulation (fast falsification on any size)
//   * exact equivalence through shared-manager BDD construction (networks
//     with a moderate number of inputs), which every flow in this repo uses
//     as its final functional sign-off.

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/network.hpp"

namespace bdsmaj::net {

/// Build the BDD of an SOP node over fanin functions supplied by
/// `fanin(i)`. The cube terms are combined by balanced pairwise OR
/// reduction: a sequential accumulator repeats work proportional to the
/// growing intermediate BDD once per cube, pairwise reduction keeps the
/// operands small. Shared by the equivalence checker and the supernode
/// BDD builder.
template <typename FaninFn>
[[nodiscard]] bdd::Bdd sop_to_bdd(bdd::Manager& mgr, const Sop& sop,
                                  FaninFn&& fanin) {
    std::vector<bdd::Bdd> terms;
    terms.reserve(sop.cubes().size());
    for (const Cube& cube : sop.cubes()) {
        bdd::Bdd term = mgr.one();
        for (std::size_t i = 0; i < cube.lits.size(); ++i) {
            if (cube.lits[i] == Lit::kDash) continue;
            const bdd::Bdd& fi = fanin(i);
            term = mgr.apply_and(term, cube.lits[i] == Lit::kPos ? fi : !fi);
        }
        terms.push_back(std::move(term));
    }
    while (terms.size() > 1) {
        std::vector<bdd::Bdd> next;
        next.reserve(terms.size() / 2 + 1);
        for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
            next.push_back(mgr.apply_or(terms[i], terms[i + 1]));
        }
        if (terms.size() % 2 == 1) next.push_back(std::move(terms.back()));
        terms = std::move(next);
    }
    return terms.empty() ? mgr.zero() : std::move(terms[0]);
}

/// One 64-pattern simulation: `pi_words[i]` is the stimulus of input i
/// (bit k = pattern k); returns one word per output port.
[[nodiscard]] std::vector<std::uint64_t> simulate_words(
    const Network& network, const std::vector<std::uint64_t>& pi_words);

/// Single-pattern convenience wrapper.
[[nodiscard]] std::vector<bool> simulate(const Network& network,
                                         const std::vector<bool>& pi_values);

/// Result of an equivalence query.
struct EquivalenceResult {
    bool equivalent = false;
    std::string reason;  // human-readable mismatch description
};

/// Random simulation with `rounds` x 64 patterns. Inputs/outputs are
/// matched positionally; PI and PO counts must agree.
[[nodiscard]] EquivalenceResult random_equivalent(const Network& a,
                                                  const Network& b, int rounds,
                                                  std::uint64_t seed);

/// Exact equivalence by building both networks' output BDDs in one manager.
/// Practical up to a few tens of inputs on these benchmark classes.
[[nodiscard]] EquivalenceResult bdd_equivalent(const Network& a, const Network& b);

/// Exact when the input count permits, random fallback otherwise: the
/// default sign-off used by tests and flows.
[[nodiscard]] EquivalenceResult check_equivalent(const Network& a, const Network& b,
                                                 int exact_input_limit = 26,
                                                 int random_rounds = 64,
                                                 std::uint64_t seed = 0x5eed);

/// Build the BDD of every output of `network` in `mgr`, using manager
/// variable i for primary input i. Exposed because flows construct global
/// BDDs for verification and for the DC-proxy collapse.
[[nodiscard]] std::vector<bdd::Bdd> network_to_bdds(const Network& network,
                                                    bdd::Manager& mgr);

}  // namespace bdsmaj::net
