#pragma once
// Algebraic factoring: rewrite SOP covers as AND/OR/NOT gate trees.
//
// BDS keeps decomposition results in factoring trees and periodically
// re-expresses covers in factored form; the AIG refactor pass and the
// BLIF-ingest path also need covers as gate logic. The divisor search is
// the classical "quick factor": divide by the most frequent literal.

#include <cassert>
#include <vector>

#include "network/network.hpp"

namespace bdsmaj::net {

namespace detail {

/// A literal identified by (position, polarity) — shared with the header
/// template below.
struct GenericLitRef {
    std::size_t pos;
    bool positive;
};

/// Find a literal occurring in at least two cubes; prefer the most
/// frequent (the "quick factor" divisor choice). Returns false when none
/// exists.
bool most_frequent_literal_generic(const std::vector<Cube>& cubes,
                                   GenericLitRef* out);

/// Recursive factoring over a cube list; emits gates through callbacks so
/// the same walk serves both costing and synthesis.
template <typename MakeLit, typename MakeAnd, typename MakeOr, typename MakeConst>
auto factor_generic(std::vector<Cube> cubes, const MakeLit& make_lit,
                const MakeAnd& make_and, const MakeOr& make_or,
                const MakeConst& make_const)
    -> decltype(make_const(false)) {
    using R = decltype(make_const(false));
    if (cubes.empty()) return make_const(false);
    // Constant-1 cube?
    for (const Cube& c : cubes) {
        if (c.literal_count() == 0) return make_const(true);
    }
    if (cubes.size() == 1) {
        // Single product: balanced AND tree over its literals.
        std::vector<R> terms;
        for (std::size_t i = 0; i < cubes[0].lits.size(); ++i) {
            if (cubes[0].lits[i] == Lit::kDash) continue;
            terms.push_back(make_lit(i, cubes[0].lits[i] == Lit::kPos));
        }
        assert(!terms.empty());
        while (terms.size() > 1) {
            std::vector<R> next;
            for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
                next.push_back(make_and(terms[i], terms[i + 1]));
            }
            if (terms.size() % 2 == 1) next.push_back(terms.back());
            terms = std::move(next);
        }
        return terms[0];
    }
    GenericLitRef divisor{};
    if (!most_frequent_literal_generic(cubes, &divisor)) {
        // No shared literal: balanced OR over the cubes' AND trees.
        std::vector<R> terms;
        for (const Cube& c : cubes) {
            terms.push_back(factor_generic(std::vector<Cube>{c}, make_lit, make_and,
                                       make_or, make_const));
        }
        while (terms.size() > 1) {
            std::vector<R> next;
            for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
                next.push_back(make_or(terms[i], terms[i + 1]));
            }
            if (terms.size() % 2 == 1) next.push_back(terms.back());
            terms = std::move(next);
        }
        return terms[0];
    }
    // Divide: sop = L * quotient + remainder.
    std::vector<Cube> quotient, remainder;
    const Lit match = divisor.positive ? Lit::kPos : Lit::kNeg;
    for (Cube& c : cubes) {
        if (c.lits[divisor.pos] == match) {
            c.lits[divisor.pos] = Lit::kDash;
            quotient.push_back(std::move(c));
        } else {
            remainder.push_back(std::move(c));
        }
    }
    const R lit = make_lit(divisor.pos, divisor.positive);
    const R q = factor_generic(std::move(quotient), make_lit, make_and, make_or, make_const);
    const R left = make_and(lit, q);
    if (remainder.empty()) return left;
    const R right =
        factor_generic(std::move(remainder), make_lit, make_and, make_or, make_const);
    return make_or(left, right);
}

}  // namespace detail


/// Number of literals in the factored form of `sop` (a proxy for the gate
/// cost of the cover, used by refactoring gain functions).
[[nodiscard]] int factored_literal_count(const Sop& sop);

/// Synthesize `sop` over `fanins` into `net` as a tree of AND/OR/NOT
/// gates; returns the root node.
NodeId synthesize_sop(Network& net, const std::vector<NodeId>& fanins, const Sop& sop);

/// Replace every SOP node of `in` with factored gates; structured gates
/// pass through unchanged.
[[nodiscard]] Network factor_network(const Network& in);

}  // namespace bdsmaj::net
