#include "network/cleanup.hpp"

#include <cassert>

#include "network/builder.hpp"
#include "tt/truth_table.hpp"

namespace bdsmaj::net {

namespace {

/// One cleanup rebuild pass over the hash-consing builder. Gate
/// simplification lives in HashedNetworkBuilder; this pass adds SOP
/// constant-folding and dead-cone removal (only reachable nodes rebuild).
class Rebuilder {
public:
    explicit Rebuilder(const Network& in)
        : in_(in), out_(in.model_name()), builder_(out_) {}

    Network run() {
        map_.assign(in_.node_count(), Signal{});
        for (const NodeId id : in_.topo_order()) visit(id);
        for (const OutputPort& po : in_.outputs()) {
            out_.add_output(po.name, builder_.realize(map_[po.driver]));
        }
        return std::move(out_);
    }

private:
    void visit(NodeId id) {
        const Node& n = in_.node(id);
        const auto sig = [&](std::size_t k) { return map_[n.fanins[k]]; };
        switch (n.kind) {
            case GateKind::kInput:
                map_[id] = Signal{out_.add_input(n.name), false};
                break;
            case GateKind::kConst0: map_[id] = builder_.constant(false); break;
            case GateKind::kConst1: map_[id] = builder_.constant(true); break;
            case GateKind::kBuf: map_[id] = sig(0); break;
            case GateKind::kNot: map_[id] = !sig(0); break;
            case GateKind::kAnd: map_[id] = builder_.build_and(sig(0), sig(1)); break;
            case GateKind::kOr: map_[id] = builder_.build_or(sig(0), sig(1)); break;
            case GateKind::kNand: map_[id] = !builder_.build_and(sig(0), sig(1)); break;
            case GateKind::kNor: map_[id] = !builder_.build_or(sig(0), sig(1)); break;
            case GateKind::kXor: map_[id] = builder_.build_xor(sig(0), sig(1)); break;
            case GateKind::kXnor: map_[id] = builder_.build_xnor(sig(0), sig(1)); break;
            case GateKind::kMaj:
                map_[id] = builder_.build_maj(sig(0), sig(1), sig(2));
                break;
            case GateKind::kMux:
                map_[id] = builder_.build_mux(sig(0), sig(1), sig(2));
                break;
            case GateKind::kSop: visit_sop(id, n); break;
        }
    }

    void visit_sop(NodeId id, const Node& n) {
        // Fold constant fanins into the cover when the arity is small
        // enough for a truth-table rebuild; otherwise keep the cover as is.
        bool any_const = false;
        for (const NodeId f : n.fanins) {
            if (builder_.is_any_const(map_[f])) {
                any_const = true;
                break;
            }
        }
        if (any_const && n.fanins.size() <= 16) {
            tt::TruthTable table = n.sop.to_truth_table();
            const int arity = static_cast<int>(n.fanins.size());
            for (int i = 0; i < arity; ++i) {
                const Signal s = map_[n.fanins[static_cast<std::size_t>(i)]];
                if (builder_.is_const(s, false)) table = table.cofactor(i, false);
                if (builder_.is_const(s, true)) table = table.cofactor(i, true);
            }
            if (table.is_const0()) {
                map_[id] = builder_.constant(false);
                return;
            }
            if (table.is_const1()) {
                map_[id] = builder_.constant(true);
                return;
            }
            // Keep only live fanins, compacting variable positions.
            std::vector<int> live_positions;
            for (int i = 0; i < arity; ++i) {
                if (table.depends_on(i)) live_positions.push_back(i);
            }
            tt::TruthTable packed =
                tt::TruthTable::zeros(static_cast<int>(live_positions.size()));
            for (std::uint64_t m = 0; m < packed.num_bits(); ++m) {
                std::uint64_t full = 0;
                for (std::size_t k = 0; k < live_positions.size(); ++k) {
                    if ((m >> k) & 1) full |= std::uint64_t{1} << live_positions[k];
                }
                packed.write_bit(m, table.get_bit(full));
            }
            std::vector<Signal> live;
            live.reserve(live_positions.size());
            for (const int pos : live_positions) {
                live.push_back(map_[n.fanins[static_cast<std::size_t>(pos)]]);
            }
            map_[id] = builder_.build_sop(live, Sop::isop(packed));
            return;
        }
        std::vector<Signal> fanins;
        fanins.reserve(n.fanins.size());
        for (const NodeId f : n.fanins) fanins.push_back(map_[f]);
        map_[id] = builder_.build_sop(fanins, n.sop);
    }

    const Network& in_;
    Network out_;
    HashedNetworkBuilder builder_;
    std::vector<Signal> map_;
};

}  // namespace

Network cleanup(const Network& in) {
    return Rebuilder(in).run();
}

}  // namespace bdsmaj::net
