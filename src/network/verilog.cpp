#include "network/verilog.hpp"

#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace bdsmaj::net {

namespace {

/// Verilog identifiers: letters, digits, _, $; must not start with a digit.
std::string sanitize(const std::string& name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '$';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), 'n');
    return out;
}

class NameTable {
public:
    explicit NameTable(const Network& net) : net_(net) {}

    const std::string& of(NodeId id) {
        auto it = names_.find(id);
        if (it != names_.end()) return it->second;
        std::string base = sanitize(net_.node_name(id));
        std::string candidate = base;
        int suffix = 0;
        while (used_.contains(candidate)) candidate = base + "_" + std::to_string(++suffix);
        used_.insert(candidate);
        return names_.emplace(id, std::move(candidate)).first->second;
    }

private:
    const Network& net_;
    std::unordered_map<NodeId, std::string> names_;
    std::unordered_set<std::string> used_;
};

void write_header(std::ostringstream& os, const Network& net, NameTable& names) {
    os << "module " << sanitize(net.model_name()) << " (";
    bool first = true;
    for (const NodeId id : net.inputs()) {
        os << (first ? "" : ", ") << names.of(id);
        first = false;
    }
    for (const OutputPort& po : net.outputs()) {
        os << (first ? "" : ", ") << sanitize(po.name) << "_o";
        first = false;
    }
    os << ");\n";
    for (const NodeId id : net.inputs()) os << "  input " << names.of(id) << ";\n";
    for (const OutputPort& po : net.outputs()) {
        os << "  output " << sanitize(po.name) << "_o;\n";
    }
}

}  // namespace

std::string write_verilog(const Network& network) {
    std::ostringstream os;
    NameTable names(network);
    write_header(os, network, names);
    for (const NodeId id : network.topo_order()) {
        const Node& n = network.node(id);
        if (n.kind == GateKind::kInput) continue;
        os << "  wire " << names.of(id) << ";\n";
    }
    for (const NodeId id : network.topo_order()) {
        const Node& n = network.node(id);
        const auto in = [&](std::size_t k) { return names.of(n.fanins[k]); };
        switch (n.kind) {
            case GateKind::kInput: continue;
            case GateKind::kConst0:
                os << "  assign " << names.of(id) << " = 1'b0;\n";
                break;
            case GateKind::kConst1:
                os << "  assign " << names.of(id) << " = 1'b1;\n";
                break;
            case GateKind::kBuf:
                os << "  assign " << names.of(id) << " = " << in(0) << ";\n";
                break;
            case GateKind::kNot:
                os << "  assign " << names.of(id) << " = ~" << in(0) << ";\n";
                break;
            case GateKind::kAnd:
                os << "  assign " << names.of(id) << " = " << in(0) << " & " << in(1) << ";\n";
                break;
            case GateKind::kOr:
                os << "  assign " << names.of(id) << " = " << in(0) << " | " << in(1) << ";\n";
                break;
            case GateKind::kNand:
                os << "  assign " << names.of(id) << " = ~(" << in(0) << " & " << in(1) << ");\n";
                break;
            case GateKind::kNor:
                os << "  assign " << names.of(id) << " = ~(" << in(0) << " | " << in(1) << ");\n";
                break;
            case GateKind::kXor:
                os << "  assign " << names.of(id) << " = " << in(0) << " ^ " << in(1) << ";\n";
                break;
            case GateKind::kXnor:
                os << "  assign " << names.of(id) << " = ~(" << in(0) << " ^ " << in(1) << ");\n";
                break;
            case GateKind::kMaj:
                os << "  assign " << names.of(id) << " = (" << in(0) << " & " << in(1)
                   << ") | (" << in(1) << " & " << in(2) << ") | (" << in(0) << " & "
                   << in(2) << ");\n";
                break;
            case GateKind::kMux:
                os << "  assign " << names.of(id) << " = " << in(0) << " ? " << in(1)
                   << " : " << in(2) << ";\n";
                break;
            case GateKind::kSop: {
                os << "  assign " << names.of(id) << " = ";
                if (n.sop.is_const0()) {
                    os << "1'b0";
                } else {
                    bool first_cube = true;
                    for (const Cube& cube : n.sop.cubes()) {
                        os << (first_cube ? "" : " | ");
                        first_cube = false;
                        if (cube.literal_count() == 0) {
                            os << "1'b1";
                            continue;
                        }
                        os << "(";
                        bool first_lit = true;
                        for (std::size_t i = 0; i < cube.lits.size(); ++i) {
                            if (cube.lits[i] == Lit::kDash) continue;
                            os << (first_lit ? "" : " & ")
                               << (cube.lits[i] == Lit::kNeg ? "~" : "") << in(i);
                            first_lit = false;
                        }
                        os << ")";
                    }
                }
                os << ";\n";
                break;
            }
        }
    }
    for (const OutputPort& po : network.outputs()) {
        os << "  assign " << sanitize(po.name) << "_o = " << names.of(po.driver)
           << ";\n";
    }
    os << "endmodule\n";
    return os.str();
}

std::string write_verilog_netlist(const Network& netlist,
                                  const mapping::CellLibrary& lib) {
    std::ostringstream os;
    NameTable names(netlist);
    write_header(os, netlist, names);
    for (const NodeId id : netlist.topo_order()) {
        const Node& n = netlist.node(id);
        if (n.kind == GateKind::kInput) continue;
        os << "  wire " << names.of(id) << ";\n";
    }
    int instance = 0;
    for (const NodeId id : netlist.topo_order()) {
        const Node& n = netlist.node(id);
        switch (n.kind) {
            case GateKind::kInput: continue;
            case GateKind::kConst0:
                os << "  assign " << names.of(id) << " = 1'b0;\n";
                continue;
            case GateKind::kConst1:
                os << "  assign " << names.of(id) << " = 1'b1;\n";
                continue;
            case GateKind::kBuf:
                os << "  assign " << names.of(id) << " = " << names.of(n.fanins[0])
                   << ";\n";
                continue;
            default: break;
        }
        if (!lib.has_cell_for(n.kind)) {
            throw std::invalid_argument(
                std::string("write_verilog_netlist: no cell for ") +
                gate_kind_name(n.kind));
        }
        const mapping::Cell& cell = lib.cell_for(n.kind);
        os << "  " << cell.name << " u" << instance++ << " (.Y(" << names.of(id) << ")";
        static const char* pins[] = {"A", "B", "C"};
        for (std::size_t k = 0; k < n.fanins.size(); ++k) {
            os << ", ." << pins[k] << "(" << names.of(n.fanins[k]) << ")";
        }
        os << ");\n";
    }
    for (const OutputPort& po : netlist.outputs()) {
        os << "  assign " << sanitize(po.name) << "_o = " << names.of(po.driver)
           << ";\n";
    }
    os << "endmodule\n";
    return os.str();
}

}  // namespace bdsmaj::net
