#include "network/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bdsmaj::net {

const char* gate_kind_name(GateKind kind) {
    switch (kind) {
        case GateKind::kInput: return "input";
        case GateKind::kConst0: return "const0";
        case GateKind::kConst1: return "const1";
        case GateKind::kBuf: return "buf";
        case GateKind::kNot: return "not";
        case GateKind::kAnd: return "and";
        case GateKind::kOr: return "or";
        case GateKind::kNand: return "nand";
        case GateKind::kNor: return "nor";
        case GateKind::kXor: return "xor";
        case GateKind::kXnor: return "xnor";
        case GateKind::kMaj: return "maj";
        case GateKind::kMux: return "mux";
        case GateKind::kSop: return "sop";
    }
    return "?";
}

int gate_kind_arity(GateKind kind) {
    switch (kind) {
        case GateKind::kInput:
        case GateKind::kConst0:
        case GateKind::kConst1: return 0;
        case GateKind::kBuf:
        case GateKind::kNot: return 1;
        case GateKind::kAnd:
        case GateKind::kOr:
        case GateKind::kNand:
        case GateKind::kNor:
        case GateKind::kXor:
        case GateKind::kXnor: return 2;
        case GateKind::kMaj:
        case GateKind::kMux: return 3;
        case GateKind::kSop: return -1;
    }
    return -1;
}

NodeId Network::add_input(const std::string& name) {
    Node n;
    n.kind = GateKind::kInput;
    n.name = name;
    nodes_.push_back(std::move(n));
    const auto id = static_cast<NodeId>(nodes_.size() - 1);
    inputs_.push_back(id);
    return id;
}

NodeId Network::add_constant(bool value) {
    Node n;
    n.kind = value ? GateKind::kConst1 : GateKind::kConst0;
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Network::add_gate(GateKind kind, const std::vector<NodeId>& fanins,
                         const std::string& name) {
    const int arity = gate_kind_arity(kind);
    if (arity < 0 || static_cast<std::size_t>(arity) != fanins.size()) {
        throw std::invalid_argument(std::string("add_gate: bad arity for ") +
                                    gate_kind_name(kind));
    }
    for (const NodeId f : fanins) {
        if (f >= nodes_.size()) throw std::out_of_range("add_gate: unknown fanin");
    }
    Node n;
    n.kind = kind;
    n.fanins = fanins;
    n.name = name;
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Network::add_sop(const std::vector<NodeId>& fanins, Sop sop,
                        const std::string& name) {
    if (sop.arity() != fanins.size()) {
        throw std::invalid_argument("add_sop: cover arity != fanin count");
    }
    for (const NodeId f : fanins) {
        if (f >= nodes_.size()) throw std::out_of_range("add_sop: unknown fanin");
    }
    Node n;
    n.kind = GateKind::kSop;
    n.fanins = fanins;
    n.sop = std::move(sop);
    n.name = name;
    nodes_.push_back(std::move(n));
    return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::add_output(const std::string& name, NodeId driver) {
    if (driver >= nodes_.size()) throw std::out_of_range("add_output: unknown driver");
    outputs_.push_back(OutputPort{name, driver});
}

std::string Network::node_name(NodeId id) const {
    const Node& n = nodes_.at(id);
    if (!n.name.empty()) return n.name;
    return "n" + std::to_string(id);
}

std::optional<NodeId> Network::find_input(const std::string& name) const {
    for (const NodeId id : inputs_) {
        if (nodes_[id].name == name) return id;
    }
    return std::nullopt;
}

std::vector<NodeId> Network::topo_order() const {
    // Fanins always have smaller ids than their gate (enforced at
    // construction), so the network is acyclic and ascending id order is a
    // topological order; restrict it to nodes reachable from the outputs,
    // plus all primary inputs.
    std::vector<bool> reachable(nodes_.size(), false);
    std::vector<NodeId> stack;
    for (const OutputPort& po : outputs_) {
        if (!reachable[po.driver]) {
            reachable[po.driver] = true;
            stack.push_back(po.driver);
        }
    }
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        for (const NodeId f : nodes_[id].fanins) {
            if (!reachable[f]) {
                reachable[f] = true;
                stack.push_back(f);
            }
        }
    }
    for (const NodeId id : inputs_) reachable[id] = true;
    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (reachable[id]) order.push_back(id);
    }
    return order;
}

std::vector<std::uint32_t> Network::fanout_counts() const {
    std::vector<std::uint32_t> counts(nodes_.size(), 0);
    for (const Node& n : nodes_) {
        for (const NodeId f : n.fanins) ++counts[f];
    }
    for (const OutputPort& po : outputs_) ++counts[po.driver];
    return counts;
}

NetworkStats Network::stats() const {
    NetworkStats s;
    s.inputs = static_cast<int>(inputs_.size());
    s.outputs = static_cast<int>(outputs_.size());
    for (const NodeId id : topo_order()) {
        switch (nodes_[id].kind) {
            case GateKind::kAnd:
            case GateKind::kNand: ++s.and_nodes; break;
            case GateKind::kOr:
            case GateKind::kNor: ++s.or_nodes; break;
            case GateKind::kXor: ++s.xor_nodes; break;
            case GateKind::kXnor: ++s.xnor_nodes; break;
            case GateKind::kMaj: ++s.maj_nodes; break;
            case GateKind::kMux: ++s.mux_nodes; break;
            case GateKind::kNot: ++s.not_nodes; break;
            case GateKind::kSop: ++s.sop_nodes; break;
            case GateKind::kBuf:
            case GateKind::kConst0:
            case GateKind::kConst1: ++s.other_nodes; break;
            case GateKind::kInput: break;
        }
    }
    return s;
}

int Network::logic_depth() const {
    std::vector<int> depth(nodes_.size(), 0);
    int max_depth = 0;
    for (const NodeId id : topo_order()) {
        const Node& n = nodes_[id];
        int d = 0;
        for (const NodeId f : n.fanins) d = std::max(d, depth[f]);
        const bool transparent = n.kind == GateKind::kNot ||
                                 n.kind == GateKind::kBuf ||
                                 n.kind == GateKind::kInput ||
                                 n.kind == GateKind::kConst0 ||
                                 n.kind == GateKind::kConst1;
        depth[id] = d + (transparent ? 0 : 1);
        max_depth = std::max(max_depth, depth[id]);
    }
    return max_depth;
}

}  // namespace bdsmaj::net
