// Design Compiler proxy (see DESIGN.md §4).
//
// The paper compares against Synopsys DC with `compile -area -effort high`.
// DC is closed source; the proxy models a strong conventional flow by
// running several unrelated recipes at higher effort and keeping the best
// mapped area — the multi-recipe, area-effort behaviour commercial tools
// exhibit — while staying majority-blind like DC's 2013 mapper:
//   1. an extended AIG script (resyn2 twice, extra zero-gain perturbation);
//   2. the BDD decomposition flow without majority support;
//   3. the AIG script applied on top of recipe 2's result.

#include <chrono>

#include "aig/convert.hpp"
#include "aig/opt.hpp"
#include "flows/flows.hpp"
#include "network/cleanup.hpp"

namespace bdsmaj::flows {

namespace {

net::Network run_aig_script(const net::Network& input, int repeats) {
    aig::Aig a = aig::network_to_aig(net::cleanup(input));
    for (int i = 0; i < repeats; ++i) a = aig::resyn2(a);
    std::vector<std::string> in_names, out_names;
    for (const net::NodeId id : input.inputs()) in_names.push_back(input.node(id).name);
    for (const net::OutputPort& po : input.outputs()) out_names.push_back(po.name);
    return net::cleanup(aig::aig_to_network(a, in_names, out_names));
}

}  // namespace

SynthesisResult flow_dc(const net::Network& input) {
    const auto start = std::chrono::steady_clock::now();
    SynthesisResult result;
    result.flow_name = "DC";

    std::vector<net::Network> candidates;
    candidates.push_back(run_aig_script(input, 1));
    candidates.push_back(run_aig_script(input, 2));
    {
        decomp::DecompFlowParams params;
        params.engine.use_majority = false;
        decomp::DecompFlowResult d = decomp::decompose_network(input, params);
        candidates.push_back(run_aig_script(d.network, 1));
        candidates.push_back(std::move(d.network));
    }

    bool first = true;
    for (net::Network& candidate : candidates) {
        mapping::MappedResult mapped =
            mapping::map_network(candidate, default_library());
        if (first || mapped.area_um2 < result.mapped.area_um2) {
            result.mapped = std::move(mapped);
            result.optimized = std::move(candidate);
            first = false;
        }
    }
    result.optimized_stats = result.optimized.stats();
    result.optimize_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

}  // namespace bdsmaj::flows
