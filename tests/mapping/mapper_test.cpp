#include "mapping/mapper.hpp"

#include <gtest/gtest.h>

#include <random>

#include "mapping/timing.hpp"
#include "network/simulate.hpp"
#include "tt/truth_table.hpp"

namespace bdsmaj::mapping {
namespace {

using net::GateKind;
using net::Network;
using net::NodeId;

const CellLibrary& lib() {
    static const CellLibrary l = CellLibrary::cmos22nm();
    return l;
}

bool is_library_netlist(const Network& netlist) {
    for (const NodeId id : netlist.topo_order()) {
        switch (netlist.node(id).kind) {
            case GateKind::kInput:
            case GateKind::kConst0:
            case GateKind::kConst1:
            case GateKind::kNot:
            case GateKind::kNand:
            case GateKind::kNor:
            case GateKind::kXor:
            case GateKind::kXnor:
            case GateKind::kMaj:
                break;
            default:
                return false;
        }
    }
    return true;
}

TEST(Library, SixCellsWithSaneMonotoneCosts) {
    const CellLibrary& l = lib();
    EXPECT_EQ(l.cells().size(), 6u);
    const Cell& inv = l.cell_for(GateKind::kNot);
    const Cell& nand2 = l.cell_for(GateKind::kNand);
    const Cell& xor2 = l.cell_for(GateKind::kXor);
    const Cell& maj3 = l.cell_for(GateKind::kMaj);
    EXPECT_LT(inv.area_um2, nand2.area_um2);
    EXPECT_LT(nand2.area_um2, xor2.area_um2);
    EXPECT_LT(xor2.area_um2, maj3.area_um2);
    EXPECT_LT(inv.intrinsic_ns, maj3.intrinsic_ns);
    EXPECT_FALSE(l.has_cell_for(GateKind::kAnd));
    EXPECT_THROW((void)l.cell_for(GateKind::kAnd), std::out_of_range);
}

TEST(Mapper, MajXorXnorAssignedDirectly) {
    Network net;
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    net.add_output("m", net.add_maj(a, b, c));
    net.add_output("x", net.add_xor(a, b));
    net.add_output("n", net.add_xnor(b, c));
    const MappedResult r = map_network(net, lib());
    EXPECT_TRUE(is_library_netlist(r.netlist));
    EXPECT_TRUE(net::check_equivalent(net, r.netlist).equivalent);
    const auto s = r.netlist.stats();
    EXPECT_EQ(s.maj_nodes, 1);
    EXPECT_EQ(s.xor_nodes + s.xnor_nodes, 2);
    EXPECT_EQ(r.gate_count, 3) << "no inverter should be needed";
}

TEST(Mapper, AndBecomesNandPlusPolarity) {
    Network net;
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    net.add_output("y", net.add_and(a, b));
    const MappedResult r = map_network(net, lib());
    EXPECT_TRUE(net::check_equivalent(net, r.netlist).equivalent);
    const auto s = r.netlist.stats();
    EXPECT_EQ(s.and_nodes, 1);  // the NAND (stats bucket AND family)
    EXPECT_EQ(s.not_nodes, 1);  // output polarity inverter
    EXPECT_EQ(r.gate_count, 2);
}

TEST(Mapper, BubblePushingAvoidsInverterChains) {
    // y = !(!(a&b) & !(c&d)) = (a&b) | (c&d): NAND(NAND,NAND) needs exactly
    // 3 NAND cells and zero inverters.
    Network net;
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    const NodeId d = net.add_input("d");
    net.add_output("y", net.add_or(net.add_and(a, b), net.add_and(c, d)));
    const MappedResult r = map_network(net, lib());
    EXPECT_TRUE(net::check_equivalent(net, r.netlist).equivalent);
    EXPECT_EQ(r.gate_count, 3);
    EXPECT_EQ(r.netlist.stats().not_nodes, 0);
}

TEST(Mapper, XorPolarityFoldsIntoXnorCell) {
    Network net;
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    net.add_output("y", net.add_xor(net.add_not(a), b));
    const MappedResult r = map_network(net, lib());
    EXPECT_TRUE(net::check_equivalent(net, r.netlist).equivalent);
    EXPECT_EQ(r.gate_count, 1);
    EXPECT_EQ(r.netlist.stats().xnor_nodes, 1);
}

TEST(Mapper, MajSelfDualityAbsorbsBubbles) {
    // Maj(!a, !b, !c) = !Maj(a,b,c): one MAJ3 + one INV beats three INVs.
    Network net;
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    net.add_output("y",
                   net.add_maj(net.add_not(a), net.add_not(b), net.add_not(c)));
    const MappedResult r = map_network(net, lib());
    EXPECT_TRUE(net::check_equivalent(net, r.netlist).equivalent);
    EXPECT_EQ(r.netlist.stats().maj_nodes, 1);
    EXPECT_LE(r.gate_count, 2);
}

TEST(Mapper, AreaAndCountAccounting) {
    Network net;
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    net.add_output("y", net.add_xor(a, b));
    net.add_output("z", net.add_and(a, b));
    const MappedResult r = map_network(net, lib());
    const double expected = lib().cell_for(GateKind::kXor).area_um2 +
                            lib().cell_for(GateKind::kNand).area_um2 +
                            lib().cell_for(GateKind::kNot).area_um2;
    EXPECT_NEAR(r.area_um2, expected, 1e-12);
    EXPECT_EQ(r.gate_count, 3);
}

TEST(Mapper, SopInputsAreMappable) {
    std::mt19937_64 rng(1501);
    Network net;
    std::vector<NodeId> ins;
    for (int i = 0; i < 6; ++i) ins.push_back(net.add_input("i" + std::to_string(i)));
    for (int o = 0; o < 3; ++o) {
        const tt::TruthTable f = tt::TruthTable::random(6, rng);
        net.add_output("o" + std::to_string(o),
                       net.add_sop(ins, net::Sop::isop(f), ""));
    }
    const MappedResult r = map_network(net, lib());
    EXPECT_TRUE(is_library_netlist(r.netlist));
    EXPECT_TRUE(net::check_equivalent(net, r.netlist).equivalent);
}

TEST(Timing, DelayGrowsWithDepthAndLoad) {
    // A chain of XORs: delay must increase per stage; a high-fanout driver
    // must be slower than a fanout-1 driver.
    Network chain;
    NodeId x = chain.add_input("x");
    const NodeId y = chain.add_input("y");
    for (int i = 0; i < 8; ++i) x = chain.add_xor(x, y);
    chain.add_output("o", x);
    const MappedResult r8 = map_network(chain, lib());

    Network short_chain;
    NodeId s = short_chain.add_input("x");
    const NodeId t = short_chain.add_input("y");
    for (int i = 0; i < 2; ++i) s = short_chain.add_xor(s, t);
    short_chain.add_output("o", s);
    const MappedResult r2 = map_network(short_chain, lib());
    EXPECT_GT(r8.delay_ns, r2.delay_ns);

    // Load dependence.
    Network fanout;
    const NodeId a = fanout.add_input("a");
    const NodeId b = fanout.add_input("b");
    const NodeId g = fanout.add_xor(a, b);
    for (int i = 0; i < 6; ++i) {
        fanout.add_output("o" + std::to_string(i), fanout.add_xor(g, b));
    }
    const MappedResult rf = map_network(fanout, lib());
    Network single;
    const NodeId a2 = single.add_input("a");
    const NodeId b2 = single.add_input("b");
    single.add_output("o", single.add_xor(single.add_xor(a2, b2), b2));
    const MappedResult rs = map_network(single, lib());
    EXPECT_GT(rf.delay_ns, rs.delay_ns);
}

TEST(Timing, ConstantsAndWiresAreFree) {
    Network net;
    const NodeId a = net.add_input("a");
    net.add_output("w", a);
    net.add_output("c", net.add_constant(true));
    const MappedResult r = map_network(net, lib());
    EXPECT_EQ(r.gate_count, 0);
    EXPECT_EQ(r.delay_ns, 0.0);
    EXPECT_EQ(r.area_um2, 0.0);
}

TEST(Mapper, RandomNetworksStayEquivalent) {
    std::mt19937_64 rng(1601);
    for (int trial = 0; trial < 10; ++trial) {
        Network net;
        std::vector<NodeId> pool;
        for (int i = 0; i < 7; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
        for (int g = 0; g < 50; ++g) {
            const auto pick = [&] { return pool[rng() % pool.size()]; };
            switch (rng() % 7) {
                case 0: pool.push_back(net.add_and(pick(), pick())); break;
                case 1: pool.push_back(net.add_or(pick(), pick())); break;
                case 2: pool.push_back(net.add_xor(pick(), pick())); break;
                case 3: pool.push_back(net.add_xnor(pick(), pick())); break;
                case 4: pool.push_back(net.add_not(pick())); break;
                case 5: pool.push_back(net.add_maj(pick(), pick(), pick())); break;
                default: pool.push_back(net.add_mux(pick(), pick(), pick())); break;
            }
        }
        for (int o = 0; o < 4; ++o) {
            net.add_output("o" + std::to_string(o),
                           pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
        }
        const MappedResult r = map_network(net, lib());
        ASSERT_TRUE(is_library_netlist(r.netlist)) << "trial " << trial;
        ASSERT_TRUE(net::check_equivalent(net, r.netlist).equivalent)
            << "trial " << trial;
    }
}

}  // namespace
}  // namespace bdsmaj::mapping
