// Determinism of the parallel supernode pipeline: decompose_network must
// produce byte-identical results at any worker-thread count. Tapes are
// built in parallel but replayed serially in supernode order, so the
// output network — node ids, gate counts, everything down to the BLIF
// text — cannot depend on scheduling.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "decomp/flow.hpp"
#include "network/blif.hpp"
#include "network/simulate.hpp"

namespace bdsmaj::decomp {
namespace {

using net::Network;

/// 64-bit FNV-1a over the outputs of a few deterministic bit-parallel
/// simulation rounds: a cheap functional signature of the network.
std::uint64_t simulation_signature(const Network& net) {
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto mix = [&hash](std::uint64_t w) {
        for (int b = 0; b < 8; ++b) {
            hash ^= (w >> (8 * b)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    };
    std::uint64_t state = 0x5eed5eed5eed5eedull;
    const auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int round = 0; round < 4; ++round) {
        std::vector<std::uint64_t> pi(net.inputs().size());
        for (auto& w : pi) w = next();
        for (const std::uint64_t w : net::simulate_words(net, pi)) mix(w);
    }
    return hash;
}

struct Fingerprint {
    std::string blif;
    int total_gates = 0;
    int maj_gates = 0;
    std::uint64_t signature = 0;

    bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint_at(const Network& input, int jobs, bool use_majority) {
    DecompFlowParams params;
    params.engine.use_majority = use_majority;
    params.jobs = jobs;
    const DecompFlowResult r = decompose_network(input, params);
    const net::NetworkStats s = r.network.stats();
    return Fingerprint{net::write_blif(r.network), s.total(), s.maj_nodes,
                       simulation_signature(r.network)};
}

TEST(ParallelFlow, McncSuiteIsDeterministicAcrossJobCounts) {
    // The ISSUE's contract: gate counts and simulation signatures — and,
    // stronger, the whole BLIF text — identical for jobs = 1, 2, 8 on the
    // MCNC suite.
    for (const benchgen::BenchmarkCase& bc : benchgen::table_suite(/*quick=*/true)) {
        if (!bc.is_mcnc) continue;
        const Fingerprint serial = fingerprint_at(bc.network, 1, true);
        for (const int jobs : {2, 8}) {
            const Fingerprint parallel = fingerprint_at(bc.network, jobs, true);
            EXPECT_EQ(serial.total_gates, parallel.total_gates)
                << bc.name << " jobs=" << jobs;
            EXPECT_EQ(serial.maj_gates, parallel.maj_gates)
                << bc.name << " jobs=" << jobs;
            EXPECT_EQ(serial.signature, parallel.signature)
                << bc.name << " jobs=" << jobs;
            ASSERT_EQ(serial.blif, parallel.blif)
                << bc.name << ": output network drifted at jobs=" << jobs;
        }
    }
}

TEST(ParallelFlow, TightReplayWindowIsStillByteIdentical) {
    // The pipelined replay bounds decomposed-but-unreplayed tapes with a
    // window; even the tightest window (1) — which forces maximal
    // blocking between decomposers and the replayer — must not change a
    // byte of the output.
    const Network input = benchgen::benchmark_by_name("C6288", /*quick=*/true);
    const Fingerprint serial = fingerprint_at(input, 1, true);
    for (const int window : {1, 3}) {
        DecompFlowParams params;
        params.jobs = 8;
        params.replay_window = window;
        const DecompFlowResult r = decompose_network(input, params);
        const net::NetworkStats s = r.network.stats();
        EXPECT_EQ(serial.total_gates, s.total()) << "window " << window;
        ASSERT_EQ(serial.blif, net::write_blif(r.network)) << "window " << window;
    }
}

TEST(ParallelFlow, BdsPgaModeIsDeterministicToo) {
    const Network input = benchgen::benchmark_by_name("C1355", /*quick=*/true);
    const Fingerprint serial = fingerprint_at(input, 1, false);
    const Fingerprint parallel = fingerprint_at(input, 8, false);
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFlow, HardwareJobsSettingIsDeterministic) {
    // jobs <= 0 resolves to all hardware threads; output must still match.
    const Network input = benchgen::benchmark_by_name("f51m", /*quick=*/true);
    const Fingerprint serial = fingerprint_at(input, 1, true);
    const Fingerprint hw = fingerprint_at(input, 0, true);
    EXPECT_EQ(serial, hw);
}

TEST(ParallelFlow, ParallelResultIsEquivalentToInput) {
    // Determinism is necessary but not sufficient — the jobs=8 result must
    // also still compute the input function.
    for (const char* name : {"dalu", "apex6"}) {
        const Network input = benchgen::benchmark_by_name(name, /*quick=*/true);
        DecompFlowParams params;
        params.jobs = 8;
        const DecompFlowResult r = decompose_network(input, params);
        EXPECT_TRUE(net::check_equivalent(input, r.network).equivalent) << name;
    }
}

TEST(ParallelFlow, EngineStatsMatchAcrossJobCounts) {
    const Network input = benchgen::benchmark_by_name("C6288", /*quick=*/true);
    DecompFlowParams p1, p8;
    p8.jobs = 8;
    const DecompFlowResult r1 = decompose_network(input, p1);
    const DecompFlowResult r8 = decompose_network(input, p8);
    EXPECT_EQ(r1.supernode_count, r8.supernode_count);
    EXPECT_EQ(r1.engine_stats.and_steps, r8.engine_stats.and_steps);
    EXPECT_EQ(r1.engine_stats.or_steps, r8.engine_stats.or_steps);
    EXPECT_EQ(r1.engine_stats.xor_steps, r8.engine_stats.xor_steps);
    EXPECT_EQ(r1.engine_stats.maj_steps, r8.engine_stats.maj_steps);
    EXPECT_EQ(r1.engine_stats.mux_steps, r8.engine_stats.mux_steps);
    EXPECT_EQ(r1.engine_stats.maj_attempts, r8.engine_stats.maj_attempts);
    EXPECT_EQ(r1.engine_stats.maj_rejected, r8.engine_stats.maj_rejected);
    EXPECT_EQ(r1.engine_stats.literal_leaves, r8.engine_stats.literal_leaves);
}

}  // namespace
}  // namespace bdsmaj::decomp
