#include "decomp/engine.hpp"

#include <gtest/gtest.h>

#include <random>

#include "network/builder.hpp"
#include "network/simulate.hpp"
#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using bdd::Bdd;
using bdd::Manager;
using net::Signal;
using tt::TruthTable;

/// Decompose `f` into a fresh network and return (network, root signal).
struct DecomposedFunction {
    net::Network network;
    EngineStats stats;
};

DecomposedFunction decompose_to_network(Manager& mgr, const Bdd& f, int n,
                                        const EngineParams& params = {}) {
    DecomposedFunction out;
    net::HashedNetworkBuilder builder(out.network);
    std::vector<Signal> leaves;
    for (int i = 0; i < n; ++i) {
        leaves.push_back(Signal{out.network.add_input("x" + std::to_string(i)), false});
    }
    BddDecomposer decomposer(mgr, builder, leaves, params);
    const Signal root = decomposer.decompose(f);
    out.network.add_output("f", builder.realize(root));
    out.stats = decomposer.stats();
    return out;
}

/// The sign-off: simulate the decomposed network on all minterms against
/// the BDD oracle.
void expect_equivalent(Manager& mgr, const Bdd& f, const net::Network& network, int n) {
    const TruthTable expected = mgr.to_truth_table(f, n);
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
        std::vector<bool> input;
        for (int i = 0; i < n; ++i) input.push_back((m >> i) & 1);
        ASSERT_EQ(simulate(network, input)[0], expected.get_bit(m)) << "minterm " << m;
    }
}

TEST(Engine, ConstantsAndLiterals) {
    Manager mgr(2);
    {
        const auto d = decompose_to_network(mgr, mgr.one(), 2);
        expect_equivalent(mgr, mgr.one(), d.network, 2);
        EXPECT_EQ(d.network.stats().total(), 0);
    }
    {
        const auto d = decompose_to_network(mgr, !mgr.var_bdd(1), 2);
        expect_equivalent(mgr, !mgr.var_bdd(1), d.network, 2);
        EXPECT_EQ(d.network.stats().total(), 0) << "a literal needs no gate";
        EXPECT_EQ(d.stats.literal_leaves, 1);
    }
}

TEST(Engine, MajorityOfLiteralsBecomesOneMajGate) {
    Manager mgr(3);
    const Bdd f = mgr.maj(mgr.var_bdd(0), mgr.var_bdd(1), mgr.var_bdd(2));
    const auto d = decompose_to_network(mgr, f, 3);
    expect_equivalent(mgr, f, d.network, 3);
    EXPECT_EQ(d.stats.maj_steps, 1);
    EXPECT_EQ(d.network.stats().maj_nodes, 1);
    EXPECT_EQ(d.network.stats().total(), 1) << "exactly Maj(a,b,c)";
}

TEST(Engine, BdsPgaBaselineNeverEmitsMaj) {
    std::mt19937_64 rng(1201);
    EngineParams params;
    params.use_majority = false;
    for (int trial = 0; trial < 10; ++trial) {
        Manager mgr(5);
        const Bdd f = mgr.from_truth_table(TruthTable::random(5, rng));
        const auto d = decompose_to_network(mgr, f, 5, params);
        expect_equivalent(mgr, f, d.network, 5);
        EXPECT_EQ(d.stats.maj_steps, 0);
        EXPECT_EQ(d.network.stats().maj_nodes, 0);
    }
}

TEST(Engine, AndDecompositionViaDominator) {
    Manager mgr(4);
    const Bdd f = mgr.var_bdd(0) & (mgr.var_bdd(1) | (mgr.var_bdd(2) & mgr.var_bdd(3)));
    const auto d = decompose_to_network(mgr, f, 4);
    expect_equivalent(mgr, f, d.network, 4);
    EXPECT_GT(d.stats.and_steps + d.stats.or_steps, 0);
    EXPECT_EQ(d.stats.mux_steps, 0) << "AND/OR structure needs no Shannon fallback";
}

TEST(Engine, XorChainDecomposesWithXorSteps) {
    Manager mgr(6);
    Bdd f = mgr.zero();
    for (int v = 0; v < 6; ++v) f = f ^ mgr.var_bdd(v);
    const auto d = decompose_to_network(mgr, f, 6);
    expect_equivalent(mgr, f, d.network, 6);
    EXPECT_GT(d.stats.xor_steps, 0);
    const auto s = d.network.stats();
    EXPECT_EQ(s.and_nodes + s.or_nodes + s.maj_nodes, 0)
        << "parity must stay within the XOR alphabet";
}

class EngineRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineRandomTest, RandomFunctionsDecomposeCorrectlyBothModes) {
    const int n = GetParam();
    std::mt19937_64 rng(1301 + n);
    for (const bool use_maj : {true, false}) {
        EngineParams params;
        params.use_majority = use_maj;
        for (int trial = 0; trial < 10; ++trial) {
            Manager mgr(n);
            const Bdd f = mgr.from_truth_table(TruthTable::random(n, rng));
            const auto d = decompose_to_network(mgr, f, n, params);
            expect_equivalent(mgr, f, d.network, n);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineRandomTest, ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Engine, SharedSubfunctionsShareGatesAcrossCalls) {
    // Two functions sharing the (a&b) cone, decomposed through one
    // decomposer: memoization + hash-consing must build the cone once.
    Manager mgr(4);
    net::Network network;
    net::HashedNetworkBuilder builder(network);
    std::vector<Signal> leaves;
    for (int i = 0; i < 4; ++i) {
        leaves.push_back(Signal{network.add_input("x" + std::to_string(i)), false});
    }
    BddDecomposer decomposer(mgr, builder, leaves, EngineParams{});
    const Bdd ab = mgr.var_bdd(0) & mgr.var_bdd(1);
    const Bdd f1 = ab ^ mgr.var_bdd(2);
    const Bdd f2 = ab | mgr.var_bdd(3);
    network.add_output("f1", builder.realize(decomposer.decompose(f1)));
    network.add_output("f2", builder.realize(decomposer.decompose(f2)));
    const TruthTable e1 = mgr.to_truth_table(f1, 4);
    const TruthTable e2 = mgr.to_truth_table(f2, 4);
    for (std::uint64_t m = 0; m < 16; ++m) {
        std::vector<bool> input;
        for (int i = 0; i < 4; ++i) input.push_back((m >> i) & 1);
        const auto out = simulate(network, input);
        ASSERT_EQ(out[0], e1.get_bit(m));
        ASSERT_EQ(out[1], e2.get_bit(m));
    }
    int and_gates = 0;
    for (const net::NodeId id : network.topo_order()) {
        if (network.node(id).kind == net::GateKind::kAnd) ++and_gates;
    }
    // (a&b) once, plus one AND realizing f2's OR: no duplicated cone.
    EXPECT_LE(and_gates, 2);
}

TEST(Engine, ComplementedDivisorDominatorsAreFound) {
    // f = !(a&b) & c: the regular edge is (a&b) | !c, whose OR-dominator
    // divisor arrives complemented. The engine must still avoid Shannon.
    Manager mgr(3);
    const Bdd ab = mgr.var_bdd(0) & mgr.var_bdd(1);
    const Bdd f = ab ^ (ab | mgr.var_bdd(2));  // == !(a&b) & c
    const auto d = decompose_to_network(mgr, f, 3);
    expect_equivalent(mgr, f, d.network, 3);
    EXPECT_EQ(d.stats.mux_steps, 0) << "AND/OR structure, no Shannon fallback";
    EXPECT_LE(d.network.stats().total(), 2);
}

TEST(Engine, MemoizationServesRepeatedCalls) {
    Manager mgr(4);
    net::Network network;
    net::HashedNetworkBuilder builder(network);
    std::vector<Signal> leaves;
    for (int i = 0; i < 4; ++i) {
        leaves.push_back(Signal{network.add_input("x" + std::to_string(i)), false});
    }
    BddDecomposer decomposer(mgr, builder, leaves, EngineParams{});
    const Bdd f = (mgr.var_bdd(0) & mgr.var_bdd(1)) | mgr.var_bdd(2);
    const Signal s1 = decomposer.decompose(f);
    const Signal s2 = decomposer.decompose(f);
    EXPECT_EQ(s1, s2) << "second call must hit the memo";
    const Signal s3 = decomposer.decompose(!f);
    EXPECT_EQ(s3, !s1) << "complement handled by polarity, not new gates";
}

TEST(Engine, DatapathShapeProducesMajNodes) {
    // A 3-bit ripple-carry: the carry functions are nested majorities; the
    // BDS-MAJ engine must find MAJ decompositions on them.
    Manager mgr(7);
    const Bdd a0 = mgr.var_bdd(0), b0 = mgr.var_bdd(1);
    const Bdd a1 = mgr.var_bdd(2), b1 = mgr.var_bdd(3);
    const Bdd a2 = mgr.var_bdd(4), b2 = mgr.var_bdd(5);
    const Bdd cin = mgr.var_bdd(6);
    const Bdd c1 = mgr.maj(a0, b0, cin);
    const Bdd c2 = mgr.maj(a1, b1, c1);
    const Bdd c3 = mgr.maj(a2, b2, c2);
    const auto d = decompose_to_network(mgr, c3, 7);
    expect_equivalent(mgr, c3, d.network, 7);
    EXPECT_GE(d.stats.maj_steps, 2) << "nested majority carries";
}

}  // namespace
}  // namespace bdsmaj::decomp
