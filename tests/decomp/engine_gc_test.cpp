// Regression test: the decomposer memoizes results by raw BDD edge; those
// functions must stay referenced, because garbage collection reuses node
// slots and a dangling memo key would silently alias a different function.
// (Found on the 16-leaf supernodes of the Wallace multiplier: only managers
// that actually cross the GC threshold expose it.)

#include <gtest/gtest.h>

#include <random>

#include "decomp/engine.hpp"
#include "network/builder.hpp"
#include "network/simulate.hpp"
#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using bdd::Bdd;
using tt::TruthTable;

TEST(EngineGc, AggressiveCollectionDoesNotAliasMemoEntries) {
    std::mt19937_64 rng(0x6c);
    for (int trial = 0; trial < 6; ++trial) {
        bdd::ManagerParams params;
        params.gc_dead_threshold = 8;  // collect almost constantly
        const int n = 10;
        bdd::Manager mgr(n, params);
        const TruthTable oracle = TruthTable::random(n, rng);
        const Bdd f = mgr.from_truth_table(oracle);

        net::Network network;
        net::HashedNetworkBuilder builder(network);
        std::vector<net::Signal> leaves;
        for (int i = 0; i < n; ++i) {
            leaves.push_back({network.add_input("x" + std::to_string(i)), false});
        }
        BddDecomposer decomposer(mgr, builder, leaves, EngineParams{});
        network.add_output("f", builder.realize(decomposer.decompose(f)));

        for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); m += 7) {
            std::vector<bool> input;
            for (int i = 0; i < n; ++i) input.push_back((m >> i) & 1);
            ASSERT_EQ(simulate(network, input)[0], oracle.get_bit(m))
                << "trial " << trial << " minterm " << m;
        }
    }
}

TEST(EngineGc, ManySequentialDecompositionsShareOneManager) {
    // Multiple functions decomposed through one decomposer while GC churns:
    // memo entries from earlier calls must remain valid for later ones.
    bdd::ManagerParams params;
    params.gc_dead_threshold = 16;
    const int n = 8;
    bdd::Manager mgr(n, params);
    std::mt19937_64 rng(0x6d);

    net::Network network;
    net::HashedNetworkBuilder builder(network);
    std::vector<net::Signal> leaves;
    for (int i = 0; i < n; ++i) {
        leaves.push_back({network.add_input("x" + std::to_string(i)), false});
    }
    BddDecomposer decomposer(mgr, builder, leaves, EngineParams{});

    std::vector<TruthTable> oracles;
    for (int k = 0; k < 8; ++k) {
        oracles.push_back(TruthTable::random(n, rng));
        const Bdd f = mgr.from_truth_table(oracles.back());
        network.add_output("f" + std::to_string(k),
                           builder.realize(decomposer.decompose(f)));
    }
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); m += 5) {
        std::vector<bool> input;
        for (int i = 0; i < n; ++i) input.push_back((m >> i) & 1);
        const auto out = simulate(network, input);
        for (std::size_t k = 0; k < oracles.size(); ++k) {
            ASSERT_EQ(out[k], oracles[k].get_bit(m)) << "output " << k;
        }
    }
}

}  // namespace
}  // namespace bdsmaj::decomp
