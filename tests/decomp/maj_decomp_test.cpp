// Property tests for the paper's Theorems 3.1-3.4 and Algorithm 1.

#include "decomp/maj_decomp.hpp"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using bdd::Bdd;
using bdd::Manager;
using tt::TruthTable;

// Theorem 3.2/3.3: for ANY function F and ANY candidate Fa, the (β)
// construction is a valid majority decomposition.
class ConstructionTest : public ::testing::TestWithParam<int> {};

TEST_P(ConstructionTest, ArbitraryFaYieldsValidDecomposition) {
    const int n = GetParam();
    std::mt19937_64 rng(1101 + n);
    Manager mgr(n);
    for (int trial = 0; trial < 25; ++trial) {
        const Bdd f = mgr.from_truth_table(TruthTable::random(n, rng));
        const Bdd fa = mgr.from_truth_table(TruthTable::random(n, rng));
        for (const bool use_restrict : {true, false}) {
            const MajDecomposition d = construct_majority(mgr, f, fa, use_restrict);
            EXPECT_EQ(mgr.maj(d.fa, d.fb, d.fc), f)
                << "n=" << n << " trial=" << trial << " restrict=" << use_restrict;
            EXPECT_EQ(d.fa, fa);
        }
    }
}

TEST_P(ConstructionTest, ConstantAndExtremeFa) {
    const int n = GetParam();
    std::mt19937_64 rng(1103 + n);
    Manager mgr(n);
    const Bdd f = mgr.from_truth_table(TruthTable::random(n, rng));
    for (const Bdd& fa : {mgr.zero(), mgr.one(), f, !f}) {
        const MajDecomposition d = construct_majority(mgr, f, fa);
        EXPECT_EQ(mgr.maj(d.fa, d.fb, d.fc), f);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConstructionTest, ::testing::Values(2, 3, 4, 6, 8));

TEST(Construction, PaperExample) {
    // F = ab+bc+ac with Fa = a gives H = b+c, W = bc, and after the ITE
    // construction Fb = b+c, Fc = bc (SIII-C example).
    Manager mgr(3);
    const Bdd a = mgr.var_bdd(0), b = mgr.var_bdd(1), c = mgr.var_bdd(2);
    const Bdd f = mgr.maj(a, b, c);
    const MajDecomposition d = construct_majority(mgr, f, a);
    EXPECT_EQ(d.fb, b | c);
    EXPECT_EQ(d.fc, b & c);
    EXPECT_EQ(mgr.maj(d.fa, d.fb, d.fc), f);
}

// Theorem 3.4: balancing preserves the decomposition.
TEST(Balancing, PreservesValidityOnRandomFunctions) {
    std::mt19937_64 rng(1107);
    for (int n : {3, 4, 6}) {
        Manager mgr(n);
        for (int trial = 0; trial < 15; ++trial) {
            const Bdd f = mgr.from_truth_table(TruthTable::random(n, rng));
            const Bdd fa = mgr.from_truth_table(TruthTable::random(n, rng));
            MajDecomposition d = construct_majority(mgr, f, fa);
            for (int iter = 0; iter < 5; ++iter) {
                if (!balance_majority_once(mgr, f, d)) break;
                ASSERT_EQ(mgr.maj(d.fa, d.fb, d.fc), f)
                    << "n=" << n << " trial=" << trial << " iter=" << iter;
            }
        }
    }
}

TEST(Balancing, PaperExampleReachesLiterals) {
    // Fb = b+c, Fc = bc must rebalance to Fb = b, Fc = c (SIII-D example):
    // Maj(a, b, c) is recovered exactly.
    Manager mgr(3);
    const Bdd a = mgr.var_bdd(0), b = mgr.var_bdd(1), c = mgr.var_bdd(2);
    const Bdd f = mgr.maj(a, b, c);
    MajDecomposition d = construct_majority(mgr, f, a);
    while (balance_majority_once(mgr, f, d)) {
    }
    EXPECT_EQ(mgr.maj(d.fa, d.fb, d.fc), f);
    EXPECT_EQ(d.total_size(mgr), 3u) << "three literals";
    EXPECT_EQ(d.fa, a);
    EXPECT_TRUE((d.fb == b && d.fc == c) || (d.fb == c && d.fc == b));
}

TEST(Balancing, NeverIncreasesTotalSize) {
    std::mt19937_64 rng(1109);
    Manager mgr(6);
    for (int trial = 0; trial < 10; ++trial) {
        const Bdd f = mgr.from_truth_table(TruthTable::random(6, rng));
        const Bdd fa = mgr.from_truth_table(TruthTable::random(6, rng));
        MajDecomposition d = construct_majority(mgr, f, fa);
        std::size_t prev = d.total_size(mgr);
        for (int iter = 0; iter < 5; ++iter) {
            if (!balance_majority_once(mgr, f, d)) break;
            const std::size_t now = d.total_size(mgr);
            // Pairwise improvements may shuffle sizes between components
            // but each accepted move shrinks its pair, so the total over
            // a full sweep cannot grow.
            EXPECT_LE(now, prev + 0u);
            prev = now;
        }
    }
}

// Algorithm 1 end to end.
TEST(MajDecompose, MajorityOfLiteralsIsRecoveredExactly) {
    Manager mgr(3);
    const Bdd a = mgr.var_bdd(0), b = mgr.var_bdd(1), c = mgr.var_bdd(2);
    const Bdd f = mgr.maj(a, b, c);
    const auto d = maj_decompose(mgr, f);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(mgr.maj(d->fa, d->fb, d->fc), f);
    EXPECT_EQ(d->total_size(mgr), 3u) << "Maj(a,b,c) decomposes to literals";
    EXPECT_TRUE(maj_globally_advantageous(mgr, f, *d, 1.6))
        << "|F|=4, parts are literals: 1.6*1 <= 4";
}

TEST(MajDecompose, ValidOnRandomFunctionsWhenCandidatesExist) {
    std::mt19937_64 rng(1117);
    int found = 0;
    for (int n : {4, 5, 6, 8}) {
        Manager mgr(n);
        for (int trial = 0; trial < 15; ++trial) {
            const Bdd f = mgr.from_truth_table(TruthTable::random(n, rng));
            const auto d = maj_decompose(mgr, f);
            if (!d) continue;
            ++found;
            EXPECT_EQ(mgr.maj(d->fa, d->fb, d->fc), f) << "n=" << n;
        }
    }
    EXPECT_GT(found, 10) << "m-dominators should be common on random BDDs";
}

TEST(MajDecompose, ConstantsHaveNoDecomposition) {
    Manager mgr(2);
    EXPECT_FALSE(maj_decompose(mgr, mgr.one()).has_value());
    EXPECT_FALSE(maj_decompose(mgr, mgr.zero()).has_value());
}

TEST(MajDecompose, MajorityOfSubfunctionsIsFound) {
    // F = Maj(a&b, c^d, e|f): a datapath-ish shape; the decomposition
    // must exist and be valid, with all parts smaller than F.
    Manager mgr(6);
    const Bdd g1 = mgr.var_bdd(0) & mgr.var_bdd(1);
    const Bdd g2 = mgr.var_bdd(2) ^ mgr.var_bdd(3);
    const Bdd g3 = mgr.var_bdd(4) | mgr.var_bdd(5);
    const Bdd f = mgr.maj(g1, g2, g3);
    const auto d = maj_decompose(mgr, f);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(mgr.maj(d->fa, d->fb, d->fc), f);
    EXPECT_LT(d->size_fa(mgr), mgr.dag_size(f));
    EXPECT_LT(d->size_fb(mgr), mgr.dag_size(f));
    EXPECT_LT(d->size_fc(mgr), mgr.dag_size(f));
}

TEST(MajDecompose, IterationLimitIsHonored) {
    // With zero iterations the (γ) phase is skipped entirely; the result is
    // the raw (β) construction and still valid.
    Manager mgr(3);
    const Bdd f = mgr.maj(mgr.var_bdd(0), mgr.var_bdd(1), mgr.var_bdd(2));
    MajDecompParams params;
    params.max_iterations = 0;
    const auto d = maj_decompose(mgr, f, params);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(mgr.maj(d->fa, d->fb, d->fc), f);
}

TEST(MajDecompose, GlobalGateRejectsUnbalancedDecompositions) {
    Manager mgr(3);
    const Bdd f = mgr.maj(mgr.var_bdd(0), mgr.var_bdd(1), mgr.var_bdd(2));
    MajDecomposition d;
    d.fa = f;  // degenerate: one part as large as F itself
    d.fb = f;
    d.fc = f;
    EXPECT_FALSE(maj_globally_advantageous(mgr, f, d, 1.6));
}

TEST(MajDecompose, AdderCarryChainProducesCompactParts) {
    // The carry of a 2-bit ripple adder: c2 = Maj(a1,b1,Maj(a0,b0,cin)).
    Manager mgr(5);
    const Bdd a0 = mgr.var_bdd(0), b0 = mgr.var_bdd(1), cin = mgr.var_bdd(2);
    const Bdd a1 = mgr.var_bdd(3), b1 = mgr.var_bdd(4);
    const Bdd c1 = mgr.maj(a0, b0, cin);
    const Bdd c2 = mgr.maj(a1, b1, c1);
    const auto d = maj_decompose(mgr, c2);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(mgr.maj(d->fa, d->fb, d->fc), c2);
    EXPECT_TRUE(maj_globally_advantageous(mgr, c2, *d, 1.6))
        << "carry chains are the datapath pattern the paper targets";
}

}  // namespace
}  // namespace bdsmaj::decomp
