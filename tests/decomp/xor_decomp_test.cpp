#include "decomp/xor_decomp.hpp"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using bdd::Bdd;
using bdd::Manager;
using tt::TruthTable;

TEST(XorDecomp, PaperExampleSplitsBXorC) {
    // In the paper's balancing example Fx = b ^ c splits into M = c, K = b
    // (or the symmetric assignment).
    Manager mgr(3);
    const Bdd b = mgr.var_bdd(1), c = mgr.var_bdd(2);
    const Bdd fx = b ^ c;
    const XorSplit split = xor_decompose(mgr, fx);
    EXPECT_FALSE(split.trivial);
    EXPECT_EQ(mgr.apply_xor(split.m, split.k), fx);
    EXPECT_EQ(mgr.dag_size(split.m), 1u);
    EXPECT_EQ(mgr.dag_size(split.k), 1u);
    EXPECT_TRUE((split.m == b && split.k == c) || (split.m == c && split.k == b));
}

TEST(XorDecomp, ConstantIsTrivial) {
    Manager mgr(2);
    const XorSplit split = xor_decompose(mgr, mgr.zero());
    EXPECT_TRUE(split.trivial);
    EXPECT_TRUE(split.k.is_zero());
}

TEST(XorDecomp, ParityChainSplitsBalanced) {
    Manager mgr(8);
    Bdd f = mgr.zero();
    for (int v = 0; v < 8; ++v) f = f ^ mgr.var_bdd(v);
    const XorSplit split = xor_decompose(mgr, f);
    EXPECT_FALSE(split.trivial);
    EXPECT_EQ(mgr.apply_xor(split.m, split.k), f);
    // A balanced split of an 8-node chain keeps both parts well below 8.
    EXPECT_LT(mgr.dag_size(split.m), 8u);
    EXPECT_LT(mgr.dag_size(split.k), 8u);
}

TEST(XorDecomp, AlwaysValidOnRandomFunctions) {
    std::mt19937_64 rng(1001);
    for (int n : {3, 4, 5, 6, 8}) {
        Manager mgr(n);
        for (int trial = 0; trial < 20; ++trial) {
            const Bdd f = mgr.from_truth_table(TruthTable::random(n, rng));
            const XorSplit split = xor_decompose(mgr, f);
            EXPECT_EQ(mgr.apply_xor(split.m, split.k), f)
                << "n=" << n << " trial=" << trial;
        }
    }
}

TEST(XorDecomp, GrowthGuardFallsBackToTrivial) {
    // With max_growth below 1 no non-trivial split can qualify.
    Manager mgr(6);
    std::mt19937_64 rng(1003);
    const Bdd f = mgr.from_truth_table(TruthTable::random(6, rng));
    XorDecompParams params;
    params.max_growth = 0.0;
    const XorSplit split = xor_decompose(mgr, f, params);
    EXPECT_TRUE(split.trivial);
    EXPECT_EQ(split.m, f);
}

TEST(XorDecomp, AndOfXorsUsesDominatorSplit) {
    // F = (a^b) ^ (c&d): the (c&d) cone is an x-dominator giving a clean
    // split instead of a variable-based one.
    Manager mgr(4);
    const Bdd f = (mgr.var_bdd(0) ^ mgr.var_bdd(1)) ^
                  (mgr.var_bdd(2) & mgr.var_bdd(3));
    const XorSplit split = xor_decompose(mgr, f);
    EXPECT_FALSE(split.trivial);
    EXPECT_EQ(mgr.apply_xor(split.m, split.k), f);
    EXPECT_LE(mgr.dag_size(split.m) + mgr.dag_size(split.k), mgr.dag_size(f));
}

}  // namespace
}  // namespace bdsmaj::decomp
