// SAT-based exact synthesis of 5-6 input chains: encoding soundness
// (exhaustive at 3 vars), known-function gate counts, fence-mode
// completeness, budget-exhaustion behavior (clean kUnknown, nothing
// partial), determinism, the wide cone match/emit path against network
// simulation, and the wide class cache semantics.

#include "decomp/exact_sat.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/builder.hpp"
#include "network/network.hpp"
#include "network/simulate.hpp"
#include "tt/npn.hpp"

namespace bdsmaj::decomp {
namespace {

using bdd::Bdd;
using bdd::Manager;
using net::Signal;

std::uint64_t mask_of(int n) {
    return n >= 6 ? ~0ULL : ((1ULL << (1u << n)) - 1);
}

std::uint64_t parity_tt(int n) {
    std::uint64_t tt = 0;
    for (int m = 0; m < (1 << n); ++m) {
        if (std::popcount(static_cast<unsigned>(m)) & 1) tt |= 1ULL << m;
    }
    return tt;
}

std::uint64_t maj5_tt() {
    std::uint64_t tt = 0;
    for (int m = 0; m < 32; ++m) {
        if (std::popcount(static_cast<unsigned>(m)) >= 3) tt |= 1ULL << m;
    }
    return tt;
}

bool same_program(const WideStructure& a, const WideStructure& b) {
    if (a.gates.size() != b.gates.size()) return false;
    const auto same_ref = [](const WideRef& x, const WideRef& y) {
        return x.index == y.index && x.complemented == y.complemented;
    };
    for (std::size_t i = 0; i < a.gates.size(); ++i) {
        if (a.gates[i].op != b.gates[i].op) return false;
        if (!same_ref(a.gates[i].a, b.gates[i].a)) return false;
        if (!same_ref(a.gates[i].b, b.gates[i].b)) return false;
        if (!same_ref(a.gates[i].c, b.gates[i].c)) return false;
    }
    return same_ref(a.output, b.output);
}

TEST(ExactSat, OperatorAlphabetIsSubstantial) {
    // 15 fanin-2 projections + MAJ and MUX polarity variants; the exact
    // number is an implementation detail, but it must comfortably exceed
    // the bare 5-op alphabet and stay well under the 128 normal tables.
    const int count = exact_sat_operator_count();
    EXPECT_GE(count, 20);
    EXPECT_LT(count, 128);
}

TEST(ExactSat, ExhaustiveThreeVariableSoundnessAndCompleteness) {
    // Every 3-var function is realizable in a few steps; all 256 must
    // come back kFound with a validated program. This is the strongest
    // cheap probe of the encoding (selection, operator tables, CEGAR).
    for (int f = 0; f < 256; ++f) {
        const ExactSatResult res =
            exact_sat_synthesize(static_cast<std::uint64_t>(f), 3);
        ASSERT_EQ(res.status, ExactSatStatus::kFound) << "tt " << f;
        ASSERT_NE(res.structure, nullptr);
        EXPECT_EQ(res.structure->eval_tt(), static_cast<std::uint64_t>(f));
        EXPECT_LE(res.structure->gate_count(), 4) << "tt " << f;
    }
}

TEST(ExactSat, ZeroGateSpecialCases) {
    // Constants and (complemented) projections short-circuit the solver.
    for (const std::uint64_t tt :
         {std::uint64_t{0}, mask_of(5), std::uint64_t{0xaaaaaaaaULL},
          ~std::uint64_t{0xaaaaaaaaULL} & mask_of(5)}) {
        const ExactSatResult res = exact_sat_synthesize(tt, 5);
        ASSERT_EQ(res.status, ExactSatStatus::kFound);
        EXPECT_EQ(res.structure->gate_count(), 0);
        EXPECT_EQ(res.structure->eval_tt(), tt);
        EXPECT_EQ(res.conflicts, 0);
    }
}

TEST(ExactSat, KnownFiveVariableFunctions) {
    // MAJ-5: classically 4 MAJ-3 steps; our alphabet can only do better.
    ExactSatResult res = exact_sat_synthesize(maj5_tt(), 5);
    ASSERT_EQ(res.status, ExactSatStatus::kFound);
    EXPECT_EQ(res.structure->eval_tt(), maj5_tt());
    EXPECT_LE(res.structure->gate_count(), 4);
    EXPECT_GE(res.structure->gate_count(), 2) << "fanin bound: 2r+1 >= 5";

    // Parity-5: four fanin-2 XOR steps (XOR-3 is not a one-gate table).
    res = exact_sat_synthesize(parity_tt(5), 5);
    ASSERT_EQ(res.status, ExactSatStatus::kFound);
    EXPECT_EQ(res.structure->eval_tt(), parity_tt(5));
    EXPECT_EQ(res.structure->gate_count(), 4);
}

TEST(ExactSat, FenceModeFindsTheSamePrograms) {
    // Forcing fences from chain length 2 exercises the composition
    // enumeration and its per-fence solvers; results must stay correct
    // and minimal (parity-5 is 4 gates in any complete mode).
    ExactSatParams params;
    params.fence_min_steps = 2;
    const ExactSatResult res = exact_sat_synthesize(parity_tt(5), 5, params);
    ASSERT_EQ(res.status, ExactSatStatus::kFound);
    EXPECT_EQ(res.structure->eval_tt(), parity_tt(5));
    EXPECT_EQ(res.structure->gate_count(), 4);
}

TEST(ExactSat, UnsatWhenMaxStepsBelowMinimum) {
    // Parity-5 needs 4 steps; capping at 3 must prove impossibility, not
    // hang or hallucinate.
    ExactSatParams params;
    params.max_steps = 3;
    const ExactSatResult res = exact_sat_synthesize(parity_tt(5), 5, params);
    EXPECT_EQ(res.status, ExactSatStatus::kUnsat);
    EXPECT_EQ(res.structure, nullptr);
}

TEST(ExactSat, BudgetExhaustionIsACleanUnknown) {
    // A nonpositive budget refuses immediately; a tiny budget on a hard
    // 6-var function runs out mid-search. Either way: kUnknown, no
    // partial structure, conflicts within the budget.
    ExactSatParams params;
    params.conflict_budget = 0;
    ExactSatResult res = exact_sat_synthesize(parity_tt(6), 6, params);
    EXPECT_EQ(res.status, ExactSatStatus::kUnknown);
    EXPECT_EQ(res.structure, nullptr);
    EXPECT_EQ(res.conflicts, 0);

    params.conflict_budget = 3;
    res = exact_sat_synthesize(parity_tt(6) ^ maj5_tt(), 6, params);
    EXPECT_EQ(res.status, ExactSatStatus::kUnknown);
    EXPECT_EQ(res.structure, nullptr);
}

TEST(ExactSat, SynthesisIsDeterministic) {
    std::mt19937_64 rng(4242);
    for (int trial = 0; trial < 6; ++trial) {
        const std::uint64_t tt = rng() & mask_of(5);
        const ExactSatResult a = exact_sat_synthesize(tt, 5);
        const ExactSatResult b = exact_sat_synthesize(tt, 5);
        ASSERT_EQ(a.status, b.status);
        EXPECT_EQ(a.conflicts, b.conflicts);
        EXPECT_EQ(a.sat_calls, b.sat_calls);
        if (a.status == ExactSatStatus::kFound) {
            EXPECT_TRUE(same_program(*a.structure, *b.structure));
        }
    }
}

/// Build a BDD for an n-var function over the given manager variables.
Bdd bdd_of_tt_w(Manager& mgr, std::uint64_t tt, const std::vector<int>& vars) {
    Bdd f = mgr.zero();
    for (int m = 0; m < (1 << vars.size()); ++m) {
        if (!((tt >> m) & 1)) continue;
        Bdd minterm = mgr.one();
        for (std::size_t i = 0; i < vars.size(); ++i) {
            const Bdd lit = mgr.var_bdd(vars[i]);
            minterm = mgr.apply_and(minterm, ((m >> i) & 1) ? lit : !lit);
        }
        f = mgr.apply_or(f, minterm);
    }
    return f;
}

/// A random function guaranteed to be a short chain over the gate
/// alphabet AND to depend on all five variables: either two 3-operand
/// gates (MAJ/MUX) covering the shuffled literals, or a fanin-2
/// AND/OR/XOR fold over all five. Uniform random 5-var functions usually
/// need 5+ steps, where the intermediate UNSAT proofs exhaust any sane
/// budget — structured cones like the ones the strategy pipeline
/// actually extracts are the representative case. (Gates picking random
/// operands from a pool do NOT work here: the result covers all five
/// literals only ~0.1% of the time.)
std::uint64_t random_structured_tt(std::mt19937_64& rng) {
    const std::uint64_t mask = mask_of(5);
    const std::uint64_t lits[5] = {0xaaaaaaaaULL, 0xccccccccULL,
                                   0xf0f0f0f0ULL, 0xff00ff00ULL,
                                   0xffff0000ULL};
    for (int attempt = 0; attempt < 64; ++attempt) {
        int order[5] = {0, 1, 2, 3, 4};
        for (int i = 4; i > 0; --i) {
            std::swap(order[i], order[static_cast<int>(rng() % (i + 1))]);
        }
        std::uint64_t a[5];
        for (int i = 0; i < 5; ++i) {
            a[i] = lits[order[i]];
            if (rng() & 1) a[i] = ~a[i] & mask;
        }
        const auto op3 = [&](std::uint64_t x, std::uint64_t y,
                             std::uint64_t z) {
            return (rng() & 1) ? ((x & y) | (x & z) | (y & z))
                               : ((x & y) | (~x & z & mask));
        };
        std::uint64_t tt;
        if (rng() & 1) {
            std::uint64_t g1 = op3(a[0], a[1], a[2]);
            if (rng() & 1) g1 = ~g1 & mask;
            tt = op3(g1, a[3], a[4]);
        } else {
            tt = a[0];
            for (int i = 1; i < 5; ++i) {
                if (rng() & 1) tt = ~tt & mask;
                switch (rng() % 3) {
                    case 0: tt &= a[i]; break;
                    case 1: tt |= a[i]; break;
                    default: tt ^= a[i]; break;
                }
            }
        }
        // MAJ/MUX composition can still swallow a variable; verify.
        bool full_support = true;
        for (int i = 0; i < 5; ++i) {
            if ((((tt >> (1u << i)) ^ tt) & ~lits[i] & mask) == 0) {
                full_support = false;
                break;
            }
        }
        if (full_support) return tt;
    }
    return maj5_tt();  // effectively unreachable fallback
}

TEST(ExactSat, RandomFiveVarConesMatchSimulation) {
    // The full strategy-path contract: extract a 5-var cone truth table,
    // canonicalize, synthesize the canonical class, replay through the
    // inverse NPN transform into a real network, and simulate every
    // minterm against the BDD. Scattered support exercises the binding.
    // Ten structured cones must all synthesize; two uniform-random tts
    // ride along to exercise the clean budget-exhaustion path.
    std::mt19937_64 rng(20260809);
    const std::vector<int> vars = {0, 2, 3, 5, 6};
    ExactSatParams params;
    params.conflict_budget = 40000;
    int found = 0;
    for (int trial = 0; trial < 12; ++trial) {
        const bool structured = trial < 10;
        const std::uint64_t tt =
            structured ? random_structured_tt(rng) : (rng() & mask_of(5));
        Manager mgr(7);
        const Bdd f = bdd_of_tt_w(mgr, tt, vars);
        const auto match = match_cone_wide(mgr, f, 5, 6);
        if (!match.has_value()) continue;  // degenerate support; rare
        ASSERT_EQ(match->support_size, 5);
        EXPECT_EQ(tt::apply_npn_w(match->tt, 5, match->transform),
                  match->canonical);

        const ExactSatResult res =
            exact_sat_synthesize(match->canonical, 5, params);
        if (res.status != ExactSatStatus::kFound) {
            // Budget exhaustion is a legal, clean outcome on hard random
            // functions; it must never produce a partial structure.
            EXPECT_FALSE(structured)
                << "structured cone " << tt << " should be easy";
            EXPECT_EQ(res.status, ExactSatStatus::kUnknown);
            EXPECT_EQ(res.structure, nullptr);
            continue;
        }
        ++found;
        ASSERT_EQ(res.structure->eval_tt(), match->canonical);

        net::Network network;
        net::HashedNetworkBuilder builder(network);
        std::vector<Signal> leaves;
        for (int i = 0; i < 7; ++i) {
            leaves.push_back(
                Signal{network.add_input("x" + std::to_string(i)), false});
        }
        const Signal root =
            emit_exact_cone_wide(*match, *res.structure, builder, leaves);
        network.add_output("f", builder.realize(root));
        for (std::uint64_t m = 0; m < (1u << 7); ++m) {
            std::vector<bool> input;
            for (int i = 0; i < 7; ++i) input.push_back((m >> i) & 1);
            bool expected = false;
            int idx = 0;
            for (std::size_t i = 0; i < vars.size(); ++i) {
                if ((m >> vars[i]) & 1) idx |= 1 << i;
            }
            expected = ((tt >> idx) & 1) != 0;
            ASSERT_EQ(net::simulate(network, input)[0], expected)
                << "tt " << tt << " minterm " << m;
        }
    }
    EXPECT_GE(found, 10) << "every structured cone must synthesize";
}

TEST(ExactSat, WideCacheInsertLookupAndNegativeEntries) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::uint64_t cls = tt::npn_canonical_w(maj5_tt(), 5);
    EXPECT_EQ(cache.lookup_wide(5, cls), nullptr);

    // A failure record covers retries at equal-or-lower effort only.
    cache.record_wide_failure(5, cls, 1000, 6);
    EXPECT_TRUE(cache.wide_failure_covers(5, cls, 1000, 6));
    EXPECT_TRUE(cache.wide_failure_covers(5, cls, 500, 4));
    EXPECT_FALSE(cache.wide_failure_covers(5, cls, 2000, 6));
    EXPECT_FALSE(cache.wide_failure_covers(5, cls, 1000, 8));

    const ExactSatResult res = exact_sat_synthesize(cls, 5);
    ASSERT_EQ(res.status, ExactSatStatus::kFound);
    const auto published = cache.insert_wide(res.structure);
    EXPECT_EQ(published.get(), res.structure.get()) << "first insert wins";
    EXPECT_EQ(cache.lookup_wide(5, cls).get(), published.get());
    // Publishing a program clears the negative entry.
    EXPECT_FALSE(cache.wide_failure_covers(5, cls, 500, 4));

    // Second insert of a rival program loses to the first.
    const ExactSatResult again = exact_sat_synthesize(cls, 5);
    ASSERT_EQ(again.status, ExactSatStatus::kFound);
    EXPECT_EQ(cache.insert_wide(again.structure).get(), published.get());

    EXPECT_GE(cache.stats().wide_classes_cached, 1);
    EXPECT_GE(cache.stats().wide_hits, 1u);
}

}  // namespace
}  // namespace bdsmaj::decomp
