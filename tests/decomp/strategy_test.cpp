// The strategy framework contract: the `paper` preset is byte-identical
// to the pre-framework ladder (golden fingerprints captured from the
// monolithic engine before the refactor), every preset passes the BDD
// equivalence oracle on the MCNC suite, the exact-aggressive preset
// strictly reduces mapped gate count, the NPN cache hit path equals the
// enumeration path, and per-strategy step counts sum to total steps.

#include "decomp/strategy.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "decomp/flow.hpp"
#include "flows/flows.hpp"
#include "mapping/mapper.hpp"
#include "network/blif.hpp"
#include "network/builder.hpp"
#include "network/simulate.hpp"
#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using net::Network;

std::uint64_t fnv64(const std::string& s) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

DecompFlowResult run_preset(const Network& input, const std::string& preset,
                            int jobs = 1, bool use_majority = true) {
    DecompFlowParams params;
    params.engine.preset = preset;
    params.engine.use_majority = use_majority;
    params.jobs = jobs;
    return decompose_network(input, params);
}

TEST(Strategy, PresetCatalogAndResolution) {
    EXPECT_TRUE(is_known_preset("paper"));
    EXPECT_TRUE(is_known_preset("bds-pga"));
    EXPECT_TRUE(is_known_preset("exact-aggressive"));
    EXPECT_FALSE(is_known_preset("nope"));
    EXPECT_THROW((void)preset_pipeline("nope"), std::invalid_argument);
    for (const PresetInfo& p : preset_catalog()) {
        const StrategyPipelineConfig config = preset_pipeline(p.name);
        ASSERT_FALSE(config.order.empty()) << p.name;
        // Termination guarantee: Shannon is always present.
        EXPECT_NE(std::find(config.order.begin(), config.order.end(),
                            StrategyKind::kShannonMux),
                  config.order.end())
            << p.name;
    }
    // The paper preset is exactly the published ladder.
    const StrategyPipelineConfig paper = preset_pipeline("paper");
    ASSERT_EQ(paper.order.size(), 4u);
    EXPECT_EQ(paper.order[0], StrategyKind::kMajority);
    EXPECT_EQ(paper.order[1], StrategyKind::kSimpleDominator);
    EXPECT_EQ(paper.order[2], StrategyKind::kGeneralizedXor);
    EXPECT_EQ(paper.order[3], StrategyKind::kShannonMux);
    EXPECT_EQ(paper.selection, SelectionMode::kFirstFit);
}

TEST(Strategy, UnknownPresetThrowsAtDecomposerConstruction) {
    bdd::Manager mgr(2);
    net::Network network;
    net::HashedNetworkBuilder builder(network);
    EngineParams params;
    params.preset = "definitely-not-a-preset";
    EXPECT_THROW(BddDecomposer(mgr, builder, {}, params), std::invalid_argument);
}

// Golden fingerprints of the pre-refactor monolithic engine (captured at
// jobs=1 on the quick MCNC suite before the strategy framework landed):
// {circuit, use_majority, total gates, MAJ gates, FNV-1a of the BLIF}.
// The `paper` preset (and `bds-pga` via use_majority=false) must stay
// byte-for-byte on this table.
struct Golden {
    const char* name;
    bool use_majority;
    int total_gates;
    int maj_gates;
    std::uint64_t blif_fnv;
};
constexpr Golden kGolden[] = {
    {"alu2", true, 65, 4, 0x8ad2732e8caf97bdull},
    {"alu2", false, 73, 0, 0x77f30ed2b6b1c721ull},
    {"C6288", true, 224, 48, 0xa52394c7bb50f121ull},
    {"C6288", false, 568, 0, 0xf2ec24e07903c353ull},
    {"C1355", true, 169, 0, 0x3d5eb9fabeccf4ffull},
    {"C1355", false, 169, 0, 0x3d5eb9fabeccf4ffull},
    {"dalu", true, 329, 23, 0x0ec71c68c84217d1ull},
    {"dalu", false, 437, 0, 0x80155b169f01b7e8ull},
    {"apex6", true, 523, 2, 0x8727bebec75ed662ull},
    {"apex6", false, 523, 0, 0xd19d0daff007eac2ull},
    {"vda", true, 319, 7, 0x723394c318aa47ffull},
    {"vda", false, 329, 0, 0xe9564e24e563f648ull},
    {"f51m", true, 70, 12, 0x804dd2a44fdbf047ull},
    {"f51m", false, 141, 0, 0xadecec664f6c4b90ull},
    {"misex3", true, 361, 4, 0xbae70c97bfa6a89full},
    {"misex3", false, 387, 0, 0x336057250c98d641ull},
    {"seq", true, 1791, 37, 0x4634b971ffa297baull},
    {"seq", false, 1867, 0, 0xa6235bb93fb3d521ull},
    {"bigkey", true, 1040, 84, 0x2eb1a0a5d0ec71bdull},
    {"bigkey", false, 1571, 0, 0x555623a3c619d690ull},
};

TEST(Strategy, PaperPresetIsByteIdenticalToPreRefactorEngine) {
    for (const Golden& g : kGolden) {
        const Network input = benchgen::benchmark_by_name(g.name, /*quick=*/true);
        for (const int jobs : {1, 4}) {
            const DecompFlowResult r =
                run_preset(input, "paper", jobs, g.use_majority);
            const net::NetworkStats s = r.network.stats();
            EXPECT_EQ(s.total(), g.total_gates)
                << g.name << " maj=" << g.use_majority << " jobs=" << jobs;
            EXPECT_EQ(s.maj_nodes, g.maj_gates)
                << g.name << " maj=" << g.use_majority << " jobs=" << jobs;
            EXPECT_EQ(fnv64(net::write_blif(r.network)), g.blif_fnv)
                << g.name << " maj=" << g.use_majority << " jobs=" << jobs
                << ": BLIF drifted from the pre-refactor engine";
        }
    }
}

TEST(Strategy, EveryPresetPassesTheEquivalenceOracleOnMcnc) {
    for (const benchgen::BenchmarkCase& bc : benchgen::table_suite(/*quick=*/true)) {
        if (!bc.is_mcnc) continue;
        for (const PresetInfo& p : preset_catalog()) {
            const DecompFlowResult r = run_preset(bc.network, p.name);
            EXPECT_TRUE(net::check_equivalent(bc.network, r.network).equivalent)
                << bc.name << " preset " << p.name;
        }
    }
}

TEST(Strategy, PresetsAreDeterministicAcrossJobCounts) {
    // Determinism is a pipeline property, not a paper-ladder one: the new
    // presets must be byte-identical at any worker count too.
    const Network input = benchgen::benchmark_by_name("dalu", /*quick=*/true);
    for (const char* preset : {"exact-aggressive", "best-cost"}) {
        const DecompFlowResult serial = run_preset(input, preset, 1);
        const DecompFlowResult parallel = run_preset(input, preset, 8);
        EXPECT_EQ(net::write_blif(serial.network), net::write_blif(parallel.network))
            << preset;
    }
}

TEST(Strategy, ExactAggressiveStrictlyReducesMappedGates) {
    // The acceptance bar: summed over the MCNC suite, the exact-aggressive
    // preset must map to strictly fewer gates than the paper ladder.
    long paper_gates = 0;
    long exact_gates = 0;
    EngineStats exact_stats;
    for (const benchgen::BenchmarkCase& bc : benchgen::table_suite(/*quick=*/true)) {
        if (!bc.is_mcnc) continue;
        const DecompFlowResult paper = run_preset(bc.network, "paper");
        const DecompFlowResult exact = run_preset(bc.network, "exact-aggressive");
        paper_gates +=
            mapping::map_network(paper.network, flows::default_library()).gate_count;
        exact_gates +=
            mapping::map_network(exact.network, flows::default_library()).gate_count;
        exact_stats += exact.engine_stats;
    }
    EXPECT_LT(exact_gates, paper_gates);
    EXPECT_GT(exact_stats.exact_steps, 0);
    EXPECT_GT(exact_stats.npn_cache_hits + exact_stats.npn_cache_misses, 0)
        << "cache activity must be reported in EngineStats";
}

TEST(Strategy, NpnCacheHitPathEqualsEnumerationPath) {
    // Two identical runs: whatever mix of misses (first touch) and hits
    // (cache already warm) each run sees, the emitted networks must be
    // byte-identical — the cached program IS the enumerated program.
    // The cone cache must be off here: with it on, the second run would
    // replay cached tapes and never touch the NPN cache at all.
    const Network input = benchgen::benchmark_by_name("f51m", /*quick=*/true);
    const auto run_uncached = [&input](const std::string& preset) {
        DecompFlowParams params;
        params.engine.preset = preset;
        params.cone_cache = false;
        return decompose_network(input, params);
    };
    const DecompFlowResult first = run_uncached("exact-aggressive");
    const DecompFlowResult second = run_uncached("exact-aggressive");
    EXPECT_EQ(net::write_blif(first.network), net::write_blif(second.network));
    EXPECT_EQ(first.engine_stats.exact_steps, second.engine_stats.exact_steps);
    // The second run touches only classes the first already materialized.
    EXPECT_EQ(second.engine_stats.npn_cache_misses, 0);
    EXPECT_EQ(second.engine_stats.npn_cache_hits,
              first.engine_stats.npn_cache_hits +
                  first.engine_stats.npn_cache_misses);
}

TEST(Strategy, PerStrategyStepsSumToTotalSteps) {
    for (const PresetInfo& p : preset_catalog()) {
        const Network input = benchgen::benchmark_by_name("alu2", /*quick=*/true);
        const DecompFlowResult r = run_preset(input, p.name);
        const EngineStats& e = r.engine_stats;
        int summed = 0;
        for (const StrategyKind kind :
             {StrategyKind::kSymmetric, StrategyKind::kExactSmallCone,
              StrategyKind::kMajority, StrategyKind::kSimpleDominator,
              StrategyKind::kGeneralizedXor, StrategyKind::kShannonMux}) {
            const int steps = e.steps_for(kind);
            ASSERT_GE(steps, 0) << p.name;
            summed += steps;
        }
        EXPECT_EQ(summed, e.total_steps()) << p.name;
        EXPECT_GT(e.total_steps(), 0) << p.name;
    }
}

TEST(Strategy, PresetPlumbsThroughTheFlowLayer) {
    const Network input = benchgen::benchmark_by_name("f51m", /*quick=*/true);
    flows::FlowOptions options;
    options.preset = "exact-aggressive";
    const flows::SynthesisResult flow = flows::flow_bdsmaj(input, options);
    EXPECT_EQ(flow.flow_name, "BDS-MAJ(exact-aggressive)");
    EXPECT_GT(flow.engine_stats.exact_steps, 0);
    const DecompFlowResult direct = run_preset(input, "exact-aggressive");
    EXPECT_EQ(net::write_blif(flow.optimized), net::write_blif(direct.network));
    // Default options keep the historical name and the paper ladder.
    const flows::SynthesisResult paper = flows::flow_bdsmaj(input, 1);
    EXPECT_EQ(paper.flow_name, "BDS-MAJ");
    EXPECT_EQ(paper.engine_stats.exact_steps, 0);
}

TEST(Strategy, UseMajorityFalseStripsTheMajorityStage) {
    // use_majority=false on the paper preset IS the bds-pga preset.
    const Network input = benchgen::benchmark_by_name("alu2", /*quick=*/true);
    const DecompFlowResult stripped = run_preset(input, "paper", 1, false);
    const DecompFlowResult pga = run_preset(input, "bds-pga");
    EXPECT_EQ(net::write_blif(stripped.network), net::write_blif(pga.network));
    EXPECT_EQ(pga.engine_stats.maj_steps, 0);
    EXPECT_EQ(pga.engine_stats.maj_attempts, 0);
}

}  // namespace
}  // namespace bdsmaj::decomp
