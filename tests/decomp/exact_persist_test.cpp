// Disk persistence of the exact-synthesis NPN structure cache
// (ExactSynthesisCache::save_to_file / load_from_file): deterministic
// canonical-sorted bytes, atomic write-then-rename, and a load path that
// is tolerant of garbage (missing file, bad magic, wrong version,
// truncation) and — critically — re-validates every entry semantically,
// so a corrupted file can never poison synthesis results.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "decomp/exact.hpp"
#include "tt/npn.hpp"

namespace bdsmaj::decomp {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(out)) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
    put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
    put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

/// Truth table of canonical-space literal x_i over 4 variables.
std::uint16_t literal_tt(int i) {
    constexpr std::uint16_t kLits[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};
    return kLits[i];
}

/// A well-formed file claiming one zero-gate entry: class `canonical`
/// computed by output ref (index, complemented).
std::string one_entry_file(std::uint16_t canonical, std::uint8_t out_index,
                           bool out_compl) {
    std::string bytes("BMXC");
    put_u32(bytes, 1);  // version
    put_u32(bytes, 1);  // count
    put_u16(bytes, canonical);
    put_u16(bytes, 0);  // gate count
    bytes.push_back(static_cast<char>(out_index));
    bytes.push_back(static_cast<char>(out_compl ? 1 : 0));
    return bytes;
}

TEST(ExactPersist, SaveIsDeterministicAndAtomic) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    // Materialize a handful of classes in non-canonical discovery order.
    for (const std::uint16_t f : {0x6996, 0x8888, 0x1ee1, 0x0001, 0xcafe}) {
        ASSERT_NE(cache.lookup(tt::npn_canonical(f)), nullptr);
    }
    const int classes = cache.stats().classes_cached;
    ASSERT_GT(classes, 0);

    const std::string p1 = testing::TempDir() + "exact_persist_a.bin";
    const std::string p2 = testing::TempDir() + "exact_persist_b.bin";
    EXPECT_EQ(cache.save_to_file(p1), classes);
    EXPECT_EQ(cache.save_to_file(p2), classes);
    // Canonical-sorted serialization: byte-identical for the same set.
    EXPECT_EQ(read_file(p1), read_file(p2));
    // Atomic rename leaves no temp file behind.
    std::ifstream tmp(p1 + ".tmp", std::ios::binary);
    EXPECT_FALSE(static_cast<bool>(tmp));

    // Reloading into the same process inserts nothing (first insert wins,
    // every class is already materialized) and changes no count.
    EXPECT_EQ(cache.load_from_file(p1), 0);
    EXPECT_EQ(cache.stats().classes_cached, classes);
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(ExactPersist, LoadPrewarmsAndLookupReportsHit) {
    // Hand-craft a valid file for the literal class — this test must not
    // materialize it first, so the load really inserts. (ctest runs each
    // test in its own process, so the singleton starts cold here.)
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::uint16_t canonical = tt::npn_canonical(literal_tt(0));
    // The canonical representative of the literal class is itself a
    // (possibly complemented) literal; find which.
    int idx = -1;
    bool compl_out = false;
    for (int i = 0; i < 4 && idx < 0; ++i) {
        if (literal_tt(i) == canonical) { idx = i; }
        if (static_cast<std::uint16_t>(~literal_tt(i)) == canonical) {
            idx = i;
            compl_out = true;
        }
    }
    ASSERT_GE(idx, 0) << "literal class canonical is not a literal?";

    const std::string path = testing::TempDir() + "exact_persist_warm.bin";
    write_file(path, one_entry_file(canonical, static_cast<std::uint8_t>(idx),
                                    compl_out));
    const int before = cache.stats().classes_cached;
    EXPECT_EQ(cache.load_from_file(path), 1);
    EXPECT_EQ(cache.stats().classes_cached, before + 1);
    // Loading again: first insert wins.
    EXPECT_EQ(cache.load_from_file(path), 0);

    bool was_hit = false;
    const auto s = cache.lookup(canonical, &was_hit);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(was_hit) << "pre-warmed class should hit, not re-enumerate";
    EXPECT_EQ(s->gate_count(), 0);
    EXPECT_EQ(s->eval_tt(), canonical);
    std::remove(path.c_str());
}

TEST(ExactPersist, GarbageFilesLoadNothing) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::string path = testing::TempDir() + "exact_persist_garbage.bin";

    // Missing file.
    std::remove(path.c_str());
    EXPECT_EQ(cache.load_from_file(path), 0);

    // Bad magic.
    write_file(path, "NOPE\x01\x00\x00\x00\x00\x00\x00\x00");
    EXPECT_EQ(cache.load_from_file(path), 0);

    // Unknown version.
    {
        std::string bytes("BMXC");
        put_u32(bytes, 99);
        put_u32(bytes, 0);
        write_file(path, bytes);
        EXPECT_EQ(cache.load_from_file(path), 0);
    }

    // Truncated mid-entry: header promises one entry, payload ends early.
    {
        std::string bytes("BMXC");
        put_u32(bytes, 1);
        put_u32(bytes, 1);
        put_u16(bytes, 0x1234);  // canonical, then nothing else
        write_file(path, bytes);
        EXPECT_EQ(cache.load_from_file(path), 0);
    }
    std::remove(path.c_str());
}

TEST(ExactPersist, SemanticallyCorruptEntriesAreSkipped) {
    // A well-framed entry whose program does NOT compute its claimed
    // class: claim the parity class but supply a bare literal. The
    // eval_tt() re-validation must reject it — and a later lookup must
    // still produce a correct structure from enumeration.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::uint16_t parity = tt::npn_canonical(0x6996);
    ASSERT_NE(parity, literal_tt(0));
    const std::string path = testing::TempDir() + "exact_persist_corrupt.bin";
    write_file(path, one_entry_file(parity, /*out_index=*/0, /*out_compl=*/false));
    const int before = cache.stats().classes_cached;
    EXPECT_EQ(cache.load_from_file(path), 0) << "lying entry must be skipped";
    EXPECT_EQ(cache.stats().classes_cached, before);

    // Structurally invalid too: an output ref into a nonexistent gate.
    write_file(path, one_entry_file(parity, /*out_index=*/7, /*out_compl=*/false));
    EXPECT_EQ(cache.load_from_file(path), 0);

    const auto s = cache.lookup(parity);
    ASSERT_NE(s, nullptr);
    // The lying entry was a bare zero-gate literal; the genuine parity
    // structure needs real gates. Serving gates > 0 proves the rejected
    // entry never made it into the cache.
    EXPECT_GT(s->gate_count(), 0);
    EXPECT_EQ(s->eval_tt(), parity);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace bdsmaj::decomp
