// Disk persistence of the exact-synthesis NPN structure cache
// (ExactSynthesisCache::save_to_file / load_from_file): deterministic
// canonical-sorted bytes, atomic write-then-rename, and a load path that
// is tolerant of garbage (missing file, bad magic, wrong version,
// truncation) and — critically — re-validates every entry semantically,
// so a corrupted file can never poison synthesis results. Covers both
// the narrow (<= 4-var) section and the version-2 wide (5-6 input,
// SAT-synthesized) section, plus version-1 compatibility.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "decomp/exact.hpp"
#include "tt/npn.hpp"

namespace bdsmaj::decomp {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(out)) << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
    put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
    put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Truth table of canonical-space literal x_i over 4 variables.
std::uint16_t literal_tt(int i) {
    constexpr std::uint16_t kLits[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};
    return kLits[i];
}

/// The literal NPN class: its canonical representative is itself a
/// (possibly complemented) literal. Finds which, so a valid zero-gate
/// narrow entry can be crafted for it.
std::uint16_t narrow_literal_class(std::uint8_t* out_index, bool* out_compl) {
    const std::uint16_t canonical = tt::npn_canonical(literal_tt(0));
    for (int i = 0; i < 4; ++i) {
        if (literal_tt(i) == canonical) {
            *out_index = static_cast<std::uint8_t>(i);
            *out_compl = false;
            return canonical;
        }
        if (static_cast<std::uint16_t>(~literal_tt(i)) == canonical) {
            *out_index = static_cast<std::uint8_t>(i);
            *out_compl = true;
            return canonical;
        }
    }
    ADD_FAILURE() << "literal class canonical is not a literal?";
    return canonical;
}

/// Append a valid zero-gate narrow entry for the literal class; returns
/// the class it claims (for later lookup).
std::uint16_t append_narrow_literal_entry(std::string& bytes) {
    std::uint8_t idx = 0;
    bool compl_out = false;
    const std::uint16_t canonical = narrow_literal_class(&idx, &compl_out);
    put_u16(bytes, canonical);
    put_u16(bytes, 0);  // gate count
    bytes.push_back(static_cast<char>(idx));
    bytes.push_back(static_cast<char>(compl_out ? 1 : 0));
    return canonical;
}

/// Serialize a wide structure exactly as save_to_file lays it out:
/// u8 num_inputs, u64 canonical, u16 gate count, gates as (op, a, b, c)
/// with each ref an (index, complemented) byte pair, then the output ref.
void append_wide_structure(std::string& out, const WideStructure& s) {
    out.push_back(static_cast<char>(s.num_inputs));
    put_u64(out, s.canonical);
    put_u16(out, static_cast<std::uint16_t>(s.gates.size()));
    for (const WideGate& g : s.gates) {
        out.push_back(static_cast<char>(g.op));
        for (const WideRef r : {g.a, g.b, g.c}) {
            out.push_back(static_cast<char>(r.index));
            out.push_back(static_cast<char>(r.complemented ? 1 : 0));
        }
    }
    out.push_back(static_cast<char>(s.output.index));
    out.push_back(static_cast<char>(s.output.complemented ? 1 : 0));
}

/// 5-input wide program: g0 = AND(x0, x1), g1 = MAJ(g0, x2, x3).
WideStructure wide_maj_of_and() {
    WideStructure s;
    s.num_inputs = 5;
    WideGate g0;
    g0.op = ExactOp::kAnd;
    g0.a = WideRef::input(0, false);
    g0.b = WideRef::input(1, false);
    WideGate g1;
    g1.op = ExactOp::kMaj;
    g1.a = WideRef::gate(0, false);
    g1.b = WideRef::input(2, false);
    g1.c = WideRef::input(3, false);
    s.gates = {g0, g1};
    s.output = WideRef::gate(1, false);
    s.canonical = s.eval_tt();
    return s;
}

/// 6-input wide program: a single XOR(x4, x5).
WideStructure wide_xor_top() {
    WideStructure s;
    s.num_inputs = 6;
    WideGate g;
    g.op = ExactOp::kXor;
    g.a = WideRef::input(4, false);
    g.b = WideRef::input(5, false);
    s.gates = {g};
    s.output = WideRef::gate(0, false);
    s.canonical = s.eval_tt();
    return s;
}

/// A well-formed file claiming one zero-gate entry: class `canonical`
/// computed by output ref (index, complemented).
std::string one_entry_file(std::uint16_t canonical, std::uint8_t out_index,
                           bool out_compl) {
    std::string bytes("BMXC");
    put_u32(bytes, 1);  // version
    put_u32(bytes, 1);  // count
    put_u16(bytes, canonical);
    put_u16(bytes, 0);  // gate count
    bytes.push_back(static_cast<char>(out_index));
    bytes.push_back(static_cast<char>(out_compl ? 1 : 0));
    return bytes;
}

TEST(ExactPersist, SaveIsDeterministicAndAtomic) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    // Materialize a handful of classes in non-canonical discovery order.
    for (const std::uint16_t f : {0x6996, 0x8888, 0x1ee1, 0x0001, 0xcafe}) {
        ASSERT_NE(cache.lookup(tt::npn_canonical(f)), nullptr);
    }
    const int classes = cache.stats().classes_cached;
    ASSERT_GT(classes, 0);

    const std::string p1 = testing::TempDir() + "exact_persist_a.bin";
    const std::string p2 = testing::TempDir() + "exact_persist_b.bin";
    EXPECT_EQ(cache.save_to_file(p1), classes);
    EXPECT_EQ(cache.save_to_file(p2), classes);
    // Canonical-sorted serialization: byte-identical for the same set.
    EXPECT_EQ(read_file(p1), read_file(p2));
    // Atomic rename leaves no temp file behind.
    std::ifstream tmp(p1 + ".tmp", std::ios::binary);
    EXPECT_FALSE(static_cast<bool>(tmp));

    // Reloading into the same process inserts nothing (first insert wins,
    // every class is already materialized) and changes no count.
    EXPECT_EQ(cache.load_from_file(p1), 0);
    EXPECT_EQ(cache.stats().classes_cached, classes);
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(ExactPersist, LoadPrewarmsAndLookupReportsHit) {
    // Hand-craft a valid file for the literal class — this test must not
    // materialize it first, so the load really inserts. (ctest runs each
    // test in its own process, so the singleton starts cold here.)
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    std::uint8_t idx = 0;
    bool compl_out = false;
    const std::uint16_t canonical = narrow_literal_class(&idx, &compl_out);

    const std::string path = testing::TempDir() + "exact_persist_warm.bin";
    write_file(path, one_entry_file(canonical, idx, compl_out));
    const int before = cache.stats().classes_cached;
    EXPECT_EQ(cache.load_from_file(path), 1);
    EXPECT_EQ(cache.stats().classes_cached, before + 1);
    // Loading again: first insert wins.
    EXPECT_EQ(cache.load_from_file(path), 0);

    bool was_hit = false;
    const auto s = cache.lookup(canonical, &was_hit);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(was_hit) << "pre-warmed class should hit, not re-enumerate";
    EXPECT_EQ(s->gate_count(), 0);
    EXPECT_EQ(s->eval_tt(), canonical);
    std::remove(path.c_str());
}

TEST(ExactPersist, GarbageFilesLoadNothing) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::string path = testing::TempDir() + "exact_persist_garbage.bin";

    // Missing file.
    std::remove(path.c_str());
    EXPECT_EQ(cache.load_from_file(path), 0);

    // Bad magic.
    write_file(path, "NOPE\x01\x00\x00\x00\x00\x00\x00\x00");
    EXPECT_EQ(cache.load_from_file(path), 0);

    // Unknown version.
    {
        std::string bytes("BMXC");
        put_u32(bytes, 99);
        put_u32(bytes, 0);
        write_file(path, bytes);
        EXPECT_EQ(cache.load_from_file(path), 0);
    }

    // Truncated mid-entry: header promises one entry, payload ends early.
    {
        std::string bytes("BMXC");
        put_u32(bytes, 1);
        put_u32(bytes, 1);
        put_u16(bytes, 0x1234);  // canonical, then nothing else
        write_file(path, bytes);
        EXPECT_EQ(cache.load_from_file(path), 0);
    }
    std::remove(path.c_str());
}

TEST(ExactPersist, SemanticallyCorruptEntriesAreSkipped) {
    // A well-framed entry whose program does NOT compute its claimed
    // class: claim the parity class but supply a bare literal. The
    // eval_tt() re-validation must reject it — and a later lookup must
    // still produce a correct structure from enumeration.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::uint16_t parity = tt::npn_canonical(0x6996);
    ASSERT_NE(parity, literal_tt(0));
    const std::string path = testing::TempDir() + "exact_persist_corrupt.bin";
    write_file(path, one_entry_file(parity, /*out_index=*/0, /*out_compl=*/false));
    const int before = cache.stats().classes_cached;
    EXPECT_EQ(cache.load_from_file(path), 0) << "lying entry must be skipped";
    EXPECT_EQ(cache.stats().classes_cached, before);

    // Structurally invalid too: an output ref into a nonexistent gate.
    write_file(path, one_entry_file(parity, /*out_index=*/7, /*out_compl=*/false));
    EXPECT_EQ(cache.load_from_file(path), 0);

    const auto s = cache.lookup(parity);
    ASSERT_NE(s, nullptr);
    // The lying entry was a bare zero-gate literal; the genuine parity
    // structure needs real gates. Serving gates > 0 proves the rejected
    // entry never made it into the cache.
    EXPECT_GT(s->gate_count(), 0);
    EXPECT_EQ(s->eval_tt(), parity);
    std::remove(path.c_str());
}

TEST(ExactPersist, WideEntriesRoundTripThroughDisk) {
    // Hand-craft a version-2 file with an empty narrow section and one
    // wide entry, load it cold, and prove lookup_wide serves it. Then
    // save: the writer must reproduce the crafted bytes exactly (the
    // format is canonical — same class set, same bytes), which pins the
    // full load→save round trip in one process.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const WideStructure wide = wide_maj_of_and();

    std::string bytes("BMXC");
    put_u32(bytes, 2);  // version
    put_u32(bytes, 0);  // narrow count
    put_u32(bytes, 1);  // wide count
    append_wide_structure(bytes, wide);

    const std::string path = testing::TempDir() + "exact_persist_wide.bin";
    write_file(path, bytes);
    EXPECT_EQ(cache.load_from_file(path), 1);
    EXPECT_EQ(cache.stats().wide_classes_cached, 1);

    const auto s = cache.lookup_wide(5, wide.canonical);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->num_inputs, 5);
    EXPECT_EQ(s->gate_count(), 2);
    EXPECT_EQ(s->eval_tt(), wide.canonical);
    // Wide classes are keyed per input count: the 6-input map is empty.
    EXPECT_EQ(cache.lookup_wide(6, wide.canonical), nullptr);

    // First insert wins: reloading the same file inserts nothing.
    EXPECT_EQ(cache.load_from_file(path), 0);

    const std::string out = testing::TempDir() + "exact_persist_wide_out.bin";
    EXPECT_EQ(cache.save_to_file(out), 1);
    EXPECT_EQ(read_file(out), bytes);
    std::remove(path.c_str());
    std::remove(out.c_str());
}

TEST(ExactPersist, WideSaveIsSortedDeterministicAndSkipsFailures) {
    // Insert in deliberately unsorted order (6-input first); the saver
    // must write (num_inputs, canonical)-sorted bytes. Negative entries
    // (failure records) are in-memory only and must leave no trace.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const WideStructure six = wide_xor_top();
    const WideStructure five = wide_maj_of_and();
    ASSERT_NE(cache.insert_wide(std::make_shared<WideStructure>(six)), nullptr);
    ASSERT_NE(cache.insert_wide(std::make_shared<WideStructure>(five)), nullptr);

    // First insert wins: publishing a different program for an already
    // cached class returns the original copy.
    WideStructure rival = five;
    rival.gates.push_back(rival.gates.back());  // same function, one dead gate
    const auto kept = cache.insert_wide(std::make_shared<WideStructure>(rival));
    ASSERT_NE(kept, nullptr);
    EXPECT_EQ(kept->gate_count(), five.gate_count());

    cache.record_wide_failure(5, 0x123456789ULL & 0xffffffffULL, 10000, 8);
    ASSERT_EQ(cache.stats().wide_failures_recorded, 1);

    std::string expected("BMXC");
    put_u32(expected, 2);  // version
    put_u32(expected, 0);  // narrow count
    put_u32(expected, 2);  // wide count: 5-input entry sorts first
    append_wide_structure(expected, five);
    append_wide_structure(expected, six);

    const std::string p1 = testing::TempDir() + "exact_persist_wide_s1.bin";
    const std::string p2 = testing::TempDir() + "exact_persist_wide_s2.bin";
    EXPECT_EQ(cache.save_to_file(p1), 2);
    EXPECT_EQ(cache.save_to_file(p2), 2);
    EXPECT_EQ(read_file(p1), expected);
    EXPECT_EQ(read_file(p1), read_file(p2));
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(ExactPersist, CorruptWideEntriesAreSkippedNarrowStillLoads) {
    // A version-2 file whose narrow section is healthy but whose wide
    // section is a parade of well-framed lies. Every wide entry must be
    // rejected — semantically (claims a class its program does not
    // compute) or structurally — while the narrow entry loads fine.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();

    std::string bytes("BMXC");
    put_u32(bytes, 2);  // version
    put_u32(bytes, 1);  // narrow count
    const std::uint16_t narrow_class = append_narrow_literal_entry(bytes);
    put_u32(bytes, 4);  // wide count

    // (1) Lying canonical: program computes c, entry claims c ^ 1.
    WideStructure lying = wide_maj_of_and();
    lying.canonical ^= 1;
    append_wide_structure(bytes, lying);
    // (2) Bad input count (7 is not a wide arity).
    WideStructure bad_n = wide_maj_of_and();
    bad_n.num_inputs = 7;
    append_wide_structure(bytes, bad_n);
    // (3) Forward gate reference: gate 0 reading gate 0's own output.
    WideStructure fwd = wide_xor_top();
    fwd.gates[0].a = WideRef::gate(0, false);
    append_wide_structure(bytes, fwd);
    // (4) Canonical with bits above the 2^5-bit mask for a 5-input class.
    WideStructure high_bits = wide_maj_of_and();
    high_bits.canonical |= 1ULL << 40;
    append_wide_structure(bytes, high_bits);

    const std::string path = testing::TempDir() + "exact_persist_wide_bad.bin";
    write_file(path, bytes);
    EXPECT_EQ(cache.load_from_file(path), 1) << "narrow only";
    EXPECT_EQ(cache.stats().wide_classes_cached, 0);
    EXPECT_EQ(cache.lookup_wide(5, wide_maj_of_and().canonical), nullptr);

    bool was_hit = false;
    const auto narrow = cache.lookup(narrow_class, &was_hit);
    ASSERT_NE(narrow, nullptr);
    EXPECT_TRUE(was_hit);
    EXPECT_EQ(narrow->eval_tt(), narrow_class);
    std::remove(path.c_str());
}

TEST(ExactPersist, TruncatedWideSectionKeepsNarrowEntries) {
    // Wide-section truncation is not contagious: the narrow entries that
    // parsed before the cut still load.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::string path = testing::TempDir() + "exact_persist_wide_trunc.bin";

    // Version-2 file that ends before the wide count entirely.
    std::string no_count("BMXC");
    put_u32(no_count, 2);
    put_u32(no_count, 1);
    append_narrow_literal_entry(no_count);
    write_file(path, no_count);
    EXPECT_EQ(cache.load_from_file(path), 1);
    EXPECT_EQ(cache.stats().wide_classes_cached, 0);

    // Wide count promises an entry but the payload stops mid-header.
    std::string mid_entry = no_count;
    put_u32(mid_entry, 1);
    mid_entry.push_back(5);  // num_inputs, then nothing
    write_file(path, mid_entry);
    EXPECT_EQ(cache.load_from_file(path), 0) << "narrow already cached";
    EXPECT_EQ(cache.stats().wide_classes_cached, 0);
    std::remove(path.c_str());
}

TEST(ExactPersist, TruncationSweepNeverCrashesOrLies) {
    // Torn-file drill: every prefix of a valid version-2 file must load
    // without crashing, and anything it does accept must be semantically
    // valid (the zero-trust re-validation). ctest runs this test in its
    // own process, so the singleton starts cold and real inserts happen.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    std::string bytes("BMXC");
    put_u32(bytes, 2);  // version
    put_u32(bytes, 1);  // narrow count
    const std::uint16_t narrow_class = append_narrow_literal_entry(bytes);
    put_u32(bytes, 2);  // wide count
    const WideStructure five = wide_maj_of_and();
    const WideStructure six = wide_xor_top();
    append_wide_structure(bytes, five);
    append_wide_structure(bytes, six);

    const std::string path = testing::TempDir() + "exact_persist_cut.bin";
    for (std::size_t n = 0; n <= bytes.size(); ++n) {
        write_file(path, bytes.substr(0, n));
        const int loaded = cache.load_from_file(path);
        EXPECT_GE(loaded, 0) << "cut at " << n;
        EXPECT_LE(loaded, 3) << "cut at " << n;
    }
    // Whatever partial states loaded along the way, anything served must
    // compute its class.
    for (const WideStructure& w : {five, six}) {
        if (const auto s = cache.lookup_wide(w.num_inputs, w.canonical)) {
            EXPECT_EQ(s->eval_tt(), w.canonical);
        }
    }
    const auto narrow = cache.lookup(narrow_class);
    ASSERT_NE(narrow, nullptr);
    EXPECT_EQ(narrow->eval_tt(), narrow_class);
    std::remove(path.c_str());
}

TEST(ExactPersist, BitFlipSweepNeverServesWrongProgram) {
    // Corruption drill: flip every bit of a valid version-2 file, one at a
    // time, and load each mutant. No mutant may crash the loader, and no
    // mutant may plant a program that does not compute the class it is
    // filed under — a wrong cached program would silently corrupt every
    // later synthesis that hits it, the one unrecoverable failure mode.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    std::string bytes("BMXC");
    put_u32(bytes, 2);
    put_u32(bytes, 1);
    const std::uint16_t narrow_class = append_narrow_literal_entry(bytes);
    put_u32(bytes, 2);
    const WideStructure five = wide_maj_of_and();
    const WideStructure six = wide_xor_top();
    append_wide_structure(bytes, five);
    append_wide_structure(bytes, six);

    const std::string path = testing::TempDir() + "exact_persist_flip.bin";
    for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutant = bytes;
            mutant[byte] = static_cast<char>(mutant[byte] ^ (1 << bit));
            write_file(path, mutant);
            (void)cache.load_from_file(path);
        }
    }
    // A flipped canonical and a flipped program can never agree (the
    // loader re-evaluates), so every wide class now cached must be honest.
    for (int n = 5; n <= 6; ++n) {
        for (const WideStructure& w : {five, six}) {
            if (const auto s = cache.lookup_wide(n, w.canonical)) {
                EXPECT_EQ(s->num_inputs, n);
                EXPECT_EQ(s->eval_tt(), w.canonical);
            }
        }
    }
    bool was_hit = false;
    const auto narrow = cache.lookup(narrow_class, &was_hit);
    ASSERT_NE(narrow, nullptr);
    EXPECT_EQ(narrow->eval_tt(), narrow_class);
    std::remove(path.c_str());
}

TEST(ExactPersist, VersionOneFilesLoadNarrowOnly) {
    // Legacy narrow-only files keep loading, and nothing after the
    // narrow section is ever interpreted as wide data under version 1.
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    std::uint8_t idx = 0;
    bool compl_out = false;
    const std::uint16_t canonical = narrow_literal_class(&idx, &compl_out);

    std::string bytes = one_entry_file(canonical, idx, compl_out);
    // Trailing bytes that would be a plausible wide section — a v1
    // reader must ignore them.
    put_u32(bytes, 1);
    append_wide_structure(bytes, wide_maj_of_and());

    const std::string path = testing::TempDir() + "exact_persist_v1.bin";
    write_file(path, bytes);
    EXPECT_EQ(cache.load_from_file(path), 1);
    EXPECT_EQ(cache.stats().classes_cached, 1);
    EXPECT_EQ(cache.stats().wide_classes_cached, 0);
    EXPECT_EQ(cache.lookup_wide(5, wide_maj_of_and().canonical), nullptr);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace bdsmaj::decomp
