// End-to-end tests of the BDS-MAJ decomposition flow (Fig. 3): partition ->
// local BDDs -> decompose -> shared factoring -> cleanup, with functional
// equivalence as the sign-off on every case.

#include "decomp/flow.hpp"

#include <gtest/gtest.h>

#include <random>

#include "network/blif.hpp"
#include "network/simulate.hpp"
#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using net::Network;
using net::NodeId;

Network ripple_adder(int bits) {
    Network net("rca" + std::to_string(bits));
    std::vector<NodeId> a, b;
    for (int i = 0; i < bits; ++i) a.push_back(net.add_input("a" + std::to_string(i)));
    for (int i = 0; i < bits; ++i) b.push_back(net.add_input("b" + std::to_string(i)));
    NodeId carry = net.add_input("cin");
    for (int i = 0; i < bits; ++i) {
        const NodeId sum = net.add_xor(net.add_xor(a[i], b[i]), carry);
        const NodeId next = net.add_maj(a[i], b[i], carry);
        net.add_output("s" + std::to_string(i), sum);
        carry = next;
    }
    net.add_output("cout", carry);
    return net;
}

Network random_control(int inputs, int outputs, int gates, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    Network net("ctrl");
    std::vector<NodeId> pool;
    for (int i = 0; i < inputs; ++i) pool.push_back(net.add_input("i" + std::to_string(i)));
    for (int g = 0; g < gates; ++g) {
        const auto pick = [&] { return pool[rng() % pool.size()]; };
        switch (rng() % 5) {
            case 0: pool.push_back(net.add_and(pick(), pick())); break;
            case 1: pool.push_back(net.add_or(pick(), pick())); break;
            case 2: pool.push_back(net.add_xor(pick(), pick())); break;
            case 3: pool.push_back(net.add_not(pick())); break;
            default: pool.push_back(net.add_mux(pick(), pick(), pick())); break;
        }
    }
    for (int o = 0; o < outputs; ++o) {
        net.add_output("o" + std::to_string(o),
                       pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
    }
    return net;
}

TEST(Flow, RippleAdderBothModesAreEquivalent) {
    const Network input = ripple_adder(4);
    const DecompFlowResult maj = run_bdsmaj(input);
    const DecompFlowResult pga = run_bdspga(input);
    EXPECT_TRUE(net::check_equivalent(input, maj.network).equivalent);
    EXPECT_TRUE(net::check_equivalent(input, pga.network).equivalent);
    EXPECT_EQ(pga.network.stats().maj_nodes, 0) << "baseline must be MAJ-free";
    EXPECT_GT(maj.network.stats().maj_nodes, 0)
        << "carry chains must yield MAJ nodes in BDS-MAJ";
}

TEST(Flow, MajReducesNodeCountOnAdder) {
    // The headline Table I effect, on the canonical datapath circuit.
    const Network input = ripple_adder(8);
    const DecompFlowResult maj = run_bdsmaj(input);
    const DecompFlowResult pga = run_bdspga(input);
    EXPECT_TRUE(net::check_equivalent(input, maj.network).equivalent);
    EXPECT_TRUE(net::check_equivalent(input, pga.network).equivalent);
    EXPECT_LT(maj.network.stats().total(), pga.network.stats().total());
}

TEST(Flow, RandomControlNetworks) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const Network input = random_control(8, 4, 40, seed);
        const DecompFlowResult maj = run_bdsmaj(input);
        const DecompFlowResult pga = run_bdspga(input);
        ASSERT_TRUE(net::check_equivalent(input, maj.network).equivalent)
            << "seed " << seed;
        ASSERT_TRUE(net::check_equivalent(input, pga.network).equivalent)
            << "seed " << seed;
    }
}

TEST(Flow, SopNetworksFromBlif) {
    const Network input = net::parse_blif(
        ".model mixed\n"
        ".inputs a b c d\n"
        ".outputs f g\n"
        ".names a b c t\n11- 1\n--1 1\n"
        ".names t d f\n10 1\n01 1\n"
        ".names a d g\n11 1\n"
        ".end\n");
    const DecompFlowResult r = run_bdsmaj(input);
    EXPECT_TRUE(net::check_equivalent(input, r.network).equivalent);
    EXPECT_EQ(r.network.stats().sop_nodes, 0) << "flow output is structured gates";
}

TEST(Flow, WideNetworkRespectsPartitionBudget) {
    // 40 inputs force multiple supernodes under the default 16-leaf budget.
    std::mt19937_64 rng(42);
    Network net("wide");
    std::vector<NodeId> layer;
    for (int i = 0; i < 40; ++i) layer.push_back(net.add_input("i" + std::to_string(i)));
    while (layer.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            next.push_back((rng() & 1) ? net.add_xor(layer[i], layer[i + 1])
                                       : net.add_and(layer[i], layer[i + 1]));
        }
        if (layer.size() % 2 == 1) next.push_back(layer.back());
        layer = std::move(next);
    }
    net.add_output("y", layer[0]);
    const DecompFlowResult r = run_bdsmaj(net);
    EXPECT_GT(r.supernode_count, 1);
    // bdd_input_limit 0 forces the SAT engine: at 40 inputs this used to
    // silently fall back to random simulation; now it is an exact proof.
    const net::EquivalenceResult eq =
        net::check_equivalent(net, r.network, /*bdd_input_limit=*/0,
                              /*random_rounds=*/256);
    EXPECT_TRUE(eq.equivalent);
    EXPECT_TRUE(eq.exact);
    EXPECT_EQ(eq.engine, net::EquivEngine::kSat);
}

TEST(Flow, ReorderingOffStillCorrect) {
    DecompFlowParams params;
    params.reorder = false;
    const Network input = ripple_adder(3);
    const DecompFlowResult r = decompose_network(input, params);
    EXPECT_TRUE(net::check_equivalent(input, r.network).equivalent);
}

TEST(Flow, CleanupOffStillCorrect) {
    DecompFlowParams params;
    params.final_cleanup = false;
    const Network input = ripple_adder(3);
    const DecompFlowResult r = decompose_network(input, params);
    EXPECT_TRUE(net::check_equivalent(input, r.network).equivalent);
}

TEST(Flow, ConstantsAndWiresSurvive) {
    Network net("edge");
    const NodeId a = net.add_input("a");
    net.add_output("wire", a);
    net.add_output("const1", net.add_constant(true));
    net.add_output("notA", net.add_not(a));
    const DecompFlowResult r = run_bdsmaj(net);
    EXPECT_TRUE(net::check_equivalent(net, r.network).equivalent);
}

TEST(Flow, StatsAreConsistent) {
    const Network input = ripple_adder(6);
    const DecompFlowResult r = run_bdsmaj(input);
    const EngineStats& s = r.engine_stats;
    EXPECT_GE(s.maj_attempts, s.maj_steps);
    EXPECT_GT(r.supernode_count, 0);
    EXPECT_GE(r.seconds, 0.0);
}

TEST(Flow, XorIntensiveCircuitKeepsXorAlphabet) {
    Network net("parity16");
    std::vector<NodeId> xs;
    for (int i = 0; i < 16; ++i) xs.push_back(net.add_input("x" + std::to_string(i)));
    NodeId acc = xs[0];
    for (int i = 1; i < 16; ++i) acc = net.add_xor(acc, xs[i]);
    net.add_output("p", acc);
    const DecompFlowResult r = run_bdsmaj(net);
    EXPECT_TRUE(net::check_equivalent(net, r.network).equivalent);
    const auto s = r.network.stats();
    EXPECT_EQ(s.and_nodes + s.or_nodes, 0) << "parity stays XOR/XNOR-only";
    EXPECT_GE(s.xor_nodes + s.xnor_nodes, 15);
}

// ---------------------------------------------------------------------------
// ManagerParams plumbing: DecompFlowParams::manager must reach the
// per-supernode managers, and the flow must surface their reordering
// telemetry through EngineStats.
// ---------------------------------------------------------------------------

TEST(Flow, ManagerParamsReachTheSupernodeManagers) {
    const Network input = random_control(12, 4, 60, 0xf10e);
    DecompFlowParams defaults;
    const DecompFlowResult with_sift = decompose_network(input, defaults);
    EXPECT_GT(with_sift.engine_stats.sift_swaps +
                  with_sift.engine_stats.sift_fast_swaps,
              0ll)
        << "default flow should report reordering effort";
    EXPECT_GT(with_sift.engine_stats.peak_bdd_nodes, 0ll);

    // sift_max_vars = 0 empties every pass's schedule: the managers still
    // sift() but perform no swaps — observable only if the params actually
    // arrived.
    DecompFlowParams capped;
    capped.manager.sift_max_vars = 0;
    const DecompFlowResult no_swaps = decompose_network(input, capped);
    EXPECT_EQ(no_swaps.engine_stats.sift_swaps, 0ll);
    EXPECT_EQ(no_swaps.engine_stats.sift_fast_swaps, 0ll);
    EXPECT_TRUE(net::check_equivalent(input, no_swaps.network).equivalent);
    EXPECT_TRUE(net::check_equivalent(input, with_sift.network).equivalent);
}

TEST(Flow, ConvergingSiftFlowStaysEquivalent) {
    const Network input = ripple_adder(5);
    DecompFlowParams params;
    params.manager.sift_converge = true;
    const DecompFlowResult r = decompose_network(input, params);
    EXPECT_TRUE(net::check_equivalent(input, r.network).equivalent);
}

TEST(Flow, ReorderTelemetryIsDeterministicAcrossJobCounts) {
    const Network input = random_control(14, 5, 90, 0xabc);
    DecompFlowParams p1;
    p1.jobs = 1;
    DecompFlowParams p4;
    p4.jobs = 4;
    const DecompFlowResult r1 = decompose_network(input, p1);
    const DecompFlowResult r4 = decompose_network(input, p4);
    EXPECT_EQ(r1.engine_stats.sift_swaps, r4.engine_stats.sift_swaps);
    EXPECT_EQ(r1.engine_stats.sift_fast_swaps, r4.engine_stats.sift_fast_swaps);
    EXPECT_EQ(r1.engine_stats.sift_lb_aborts, r4.engine_stats.sift_lb_aborts);
    EXPECT_EQ(r1.engine_stats.peak_bdd_nodes, r4.engine_stats.peak_bdd_nodes);
}

}  // namespace
}  // namespace bdsmaj::decomp
