#include "decomp/partition.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bdsmaj::decomp {
namespace {

using net::Network;
using net::NodeId;

Network two_output_tree() {
    Network net("tree");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    const NodeId d = net.add_input("d");
    const NodeId ab = net.add_and(a, b);
    const NodeId cd = net.add_or(c, d);
    const NodeId shared = net.add_xor(ab, cd);  // fanout 2
    net.add_output("y1", net.add_and(shared, a));
    net.add_output("y2", net.add_or(shared, d));
    return net;
}

TEST(Partition, SingleConeCollapsesToOneSupernode) {
    Network net("cone");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const NodeId c = net.add_input("c");
    net.add_output("y", net.add_and(net.add_or(a, b), c));
    const auto sns = partition_network(net);
    ASSERT_EQ(sns.size(), 1u);
    EXPECT_EQ(sns[0].leaves.size(), 3u);
    EXPECT_EQ(sns[0].cone.size(), 2u);
}

TEST(Partition, SharedNodeBecomesCutPoint) {
    const Network net = two_output_tree();
    const auto sns = partition_network(net);
    // The shared XOR node roots its own supernode; each PO cone roots one.
    ASSERT_EQ(sns.size(), 3u);
    // Supernodes are topologically ordered: the shared node comes first.
    const auto is_leaf_of = [&](const Supernode& sn, NodeId id) {
        return std::find(sn.leaves.begin(), sn.leaves.end(), id) != sn.leaves.end();
    };
    const NodeId shared_root = sns[0].root;
    EXPECT_TRUE(is_leaf_of(sns[1], shared_root) || is_leaf_of(sns[2], shared_root));
}

TEST(Partition, EveryReachableGateIsCoveredExactlyOnce) {
    const Network net = two_output_tree();
    const auto sns = partition_network(net);
    std::unordered_set<NodeId> covered;
    for (const Supernode& sn : sns) {
        for (const NodeId id : sn.cone) {
            EXPECT_TRUE(covered.insert(id).second) << "node in two cones";
        }
    }
    for (const NodeId id : net.topo_order()) {
        if (net.node(id).kind == net::GateKind::kInput) continue;
        EXPECT_TRUE(covered.contains(id)) << "uncovered gate " << id;
    }
}

TEST(Partition, LeavesAreCutPointsOrInputs) {
    const Network net = two_output_tree();
    const auto sns = partition_network(net);
    std::unordered_set<NodeId> roots;
    for (const Supernode& sn : sns) roots.insert(sn.root);
    for (const Supernode& sn : sns) {
        for (const NodeId leaf : sn.leaves) {
            const bool is_input = net.node(leaf).kind == net::GateKind::kInput;
            EXPECT_TRUE(is_input || roots.contains(leaf))
                << "leaf " << leaf << " is neither PI nor a supernode root";
        }
    }
}

TEST(Partition, SupportLimitIsRespected) {
    // A wide AND tree over 32 inputs with a tight leaf budget must split.
    Network net("wide");
    std::vector<NodeId> layer;
    for (int i = 0; i < 32; ++i) layer.push_back(net.add_input("i" + std::to_string(i)));
    while (layer.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
            next.push_back(net.add_and(layer[i], layer[i + 1]));
        }
        if (layer.size() % 2 == 1) next.push_back(layer.back());
        layer = std::move(next);
    }
    net.add_output("y", layer[0]);
    PartitionParams params;
    params.max_leaves = 8;
    const auto sns = partition_network(net, params);
    EXPECT_GT(sns.size(), 1u);
    for (const Supernode& sn : sns) {
        EXPECT_LE(sn.leaves.size(), 8u);
    }
}

TEST(Partition, TopologicalOrderAcrossSupernodes) {
    const Network net = two_output_tree();
    const auto sns = partition_network(net);
    std::unordered_set<NodeId> seen_roots;
    for (const net::NodeId id : net.inputs()) seen_roots.insert(id);
    for (const Supernode& sn : sns) {
        for (const NodeId leaf : sn.leaves) {
            EXPECT_TRUE(seen_roots.contains(leaf))
                << "supernode uses a leaf whose supernode comes later";
        }
        seen_roots.insert(sn.root);
    }
}

TEST(Partition, PoDriverInputPassesThrough) {
    Network net("wire");
    const NodeId a = net.add_input("a");
    net.add_output("y", a);
    const auto sns = partition_network(net);
    EXPECT_TRUE(sns.empty()) << "no gates, no supernodes";
}

TEST(Partition, ConstantDriverFormsDegenerateSupernode) {
    Network net("const");
    (void)net.add_input("a");
    net.add_output("y", net.add_constant(true));
    const auto sns = partition_network(net);
    ASSERT_EQ(sns.size(), 1u);
    EXPECT_TRUE(sns[0].leaves.empty());
    EXPECT_EQ(sns[0].cone.size(), 1u);
}

}  // namespace
}  // namespace bdsmaj::decomp
