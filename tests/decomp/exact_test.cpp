// Exact small-cone synthesis backend: the one-time cost enumeration, the
// NPN-class structure cache, and the de-canonicalizing replay into a
// GateSink.

#include "decomp/exact.hpp"

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "network/builder.hpp"
#include "network/gate_tape.hpp"
#include "network/network.hpp"
#include "network/simulate.hpp"
#include "tt/npn.hpp"
#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using bdd::Bdd;
using bdd::Manager;
using net::Signal;

TEST(Exact, CostsAreSaneOverAllFunctions) {
    // Constants and literals are free; every 4-variable function fits in a
    // handful of gates in the {MAJ,AND,OR,XOR,MUX,NOT} alphabet.
    EXPECT_EQ(exact_gate_cost(0x0000), 0);
    EXPECT_EQ(exact_gate_cost(0xffff), 0);
    EXPECT_EQ(exact_gate_cost(0xaaaa), 0);  // x0
    EXPECT_EQ(exact_gate_cost(static_cast<std::uint16_t>(~0xaaaa)), 0);
    EXPECT_EQ(exact_gate_cost(0xaaaa & 0xcccc), 1);  // x0 & x1
    EXPECT_EQ(exact_gate_cost(0xaaaa ^ 0xcccc ^ 0xf0f0 ^ 0xff00), 3);  // parity
    int max_cost = 0;
    for (int f = 0; f < 0x10000; ++f) {
        const int c = exact_gate_cost(static_cast<std::uint16_t>(f));
        ASSERT_GE(c, 0);
        max_cost = std::max(max_cost, c);
        // NOT is free: complements always cost the same.
        ASSERT_EQ(c, exact_gate_cost(static_cast<std::uint16_t>(~f)));
    }
    EXPECT_LE(max_cost, 7);
}

TEST(Exact, EveryNpnClassStructureComputesItsClass) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    std::vector<bool> seen(65536, false);
    int classes = 0;
    for (int f = 0; f < 0x10000; ++f) {
        const std::uint16_t cls = tt::npn_canonical(static_cast<std::uint16_t>(f));
        if (seen[cls]) continue;
        seen[cls] = true;
        ++classes;
        const auto s = cache.lookup(cls);
        ASSERT_NE(s, nullptr);
        ASSERT_EQ(s->eval_tt(), cls) << "class " << cls;
        // Reconstruction dedups shared sub-functions into a DAG, so the
        // program never exceeds — and sometimes beats — the tree cost.
        ASSERT_LE(s->gate_count(), exact_gate_cost(cls));
    }
    EXPECT_EQ(classes, tt::npn_class_count());
    EXPECT_GE(cache.stats().classes_cached, classes);
}

TEST(Exact, CachedLookupsAreHitsAndReturnTheSameProgram) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    const std::uint16_t cls = tt::npn_canonical(0x1ee1);
    bool hit1 = false;
    const auto first = cache.lookup(cls, &hit1);
    bool hit2 = false;
    const auto second = cache.lookup(cls, &hit2);
    EXPECT_TRUE(hit2) << "second lookup must hit";
    EXPECT_EQ(first.get(), second.get()) << "hits share the published program";
}

TEST(Exact, ConcurrentLookupsShareOneCache) {
    ExactSynthesisCache& cache = ExactSynthesisCache::instance();
    std::vector<std::thread> threads;
    std::vector<const ExactStructure*> got(8, nullptr);
    const std::uint16_t cls = tt::npn_canonical(0x6996);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&cache, &got, t, cls] {
            got[static_cast<std::size_t>(t)] = cache.lookup(cls).get();
        });
    }
    for (std::thread& t : threads) t.join();
    for (int t = 1; t < 8; ++t) {
        EXPECT_EQ(got[0], got[static_cast<std::size_t>(t)]);
    }
}

/// Build a BDD for a 16-bit function over the given manager variables.
Bdd bdd_of_tt(Manager& mgr, std::uint16_t tt, const std::vector<int>& vars) {
    Bdd f = mgr.zero();
    for (int m = 0; m < 16; ++m) {
        if (!((tt >> m) & 1)) continue;
        Bdd minterm = mgr.one();
        for (std::size_t i = 0; i < vars.size(); ++i) {
            const Bdd lit = mgr.var_bdd(vars[i]);
            minterm = mgr.apply_and(minterm, ((m >> i) & 1) ? lit : !lit);
        }
        f = mgr.apply_or(f, minterm);
    }
    return f;
}

TEST(Exact, MatchAndEmitReproducesTheConeFunction) {
    // Random 4-var functions on scattered manager variables, emitted into
    // a real network and simulated against the truth table.
    std::mt19937_64 rng(77);
    const std::vector<int> vars = {1, 3, 4, 6};  // non-contiguous support
    for (int trial = 0; trial < 40; ++trial) {
        const auto tt16 = static_cast<std::uint16_t>(rng());
        Manager mgr(7);
        const Bdd f = bdd_of_tt(mgr, tt16, vars);
        const std::optional<ConeMatch> match = match_cone(mgr, f);
        ASSERT_TRUE(match.has_value());
        EXPECT_EQ(tt::npn_canonical(match->tt), match->canonical);

        net::Network network;
        net::HashedNetworkBuilder builder(network);
        std::vector<Signal> leaves;
        for (int i = 0; i < 7; ++i) {
            leaves.push_back(Signal{network.add_input("x" + std::to_string(i)), false});
        }
        const auto structure = ExactSynthesisCache::instance().lookup(match->canonical);
        const Signal root =
            emit_exact_cone(*match, *structure, builder, leaves);
        network.add_output("f", builder.realize(root));

        const tt::TruthTable expected = mgr.to_truth_table(f, 7);
        for (std::uint64_t m = 0; m < (1u << 7); ++m) {
            std::vector<bool> input;
            for (int i = 0; i < 7; ++i) input.push_back((m >> i) & 1);
            ASSERT_EQ(net::simulate(network, input)[0], expected.get_bit(m))
                << "tt " << tt16 << " minterm " << m;
        }
    }
}

TEST(Exact, SmallSupportFunctionsMatchToo) {
    // Degenerate supports (0..3 variables) pad to 4 canonical positions;
    // the padding inputs must never be referenced by a minimal structure.
    Manager mgr(5);
    const Bdd f = mgr.apply_xor(mgr.var_bdd(0), mgr.var_bdd(4));
    const std::optional<ConeMatch> match = match_cone(mgr, f);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->support_size, 2);
    EXPECT_EQ(match->support[0], 0);
    EXPECT_EQ(match->support[1], 4);

    net::Network network;
    net::HashedNetworkBuilder builder(network);
    std::vector<Signal> leaves;
    for (int i = 0; i < 5; ++i) {
        leaves.push_back(Signal{network.add_input("x" + std::to_string(i)), false});
    }
    const auto structure = ExactSynthesisCache::instance().lookup(match->canonical);
    EXPECT_EQ(structure->gate_count(), 1) << "a 2-input XOR is one gate";
    const Signal root = emit_exact_cone(*match, *structure, builder, leaves);
    network.add_output("f", builder.realize(root));
    for (std::uint64_t m = 0; m < 32; ++m) {
        std::vector<bool> input;
        for (int i = 0; i < 5; ++i) input.push_back((m >> i) & 1);
        EXPECT_EQ(net::simulate(network, input)[0],
                  ((m >> 0) & 1) != ((m >> 4) & 1));
    }
}

TEST(Exact, WideSupportIsRejected) {
    Manager mgr(6);
    Bdd f = mgr.zero();
    for (int v = 0; v < 5; ++v) f = mgr.apply_xor(f, mgr.var_bdd(v));
    EXPECT_FALSE(match_cone(mgr, f).has_value());
    EXPECT_FALSE(match_cone(mgr, f, 4).has_value());
}

TEST(Exact, TapeReplayEqualsDirectEmission) {
    // The replay program must compose with the parallel pipeline's tape
    // IR: recording emit_exact_cone into a GateTape and replaying it into
    // a builder must equal emitting into the builder directly.
    std::mt19937_64 rng(41);
    for (int trial = 0; trial < 10; ++trial) {
        const auto tt16 = static_cast<std::uint16_t>(rng());
        Manager mgr(4);
        const Bdd f = bdd_of_tt(mgr, tt16, {0, 1, 2, 3});
        const std::optional<ConeMatch> match = match_cone(mgr, f);
        ASSERT_TRUE(match.has_value());
        const auto structure = ExactSynthesisCache::instance().lookup(match->canonical);

        net::Network direct_net;
        net::HashedNetworkBuilder direct(direct_net);
        std::vector<Signal> direct_leaves;
        for (int i = 0; i < 4; ++i) {
            direct_leaves.push_back(
                Signal{direct_net.add_input("x" + std::to_string(i)), false});
        }
        direct_net.add_output("f", direct.realize(emit_exact_cone(
                                       *match, *structure, direct, direct_leaves)));

        net::GateTape tape(4);
        std::vector<Signal> tape_leaves;
        for (int i = 0; i < 4; ++i) tape_leaves.push_back(tape.leaf(i));
        tape.set_root(emit_exact_cone(*match, *structure, tape, tape_leaves));
        net::Network replay_net;
        net::HashedNetworkBuilder replay(replay_net);
        std::vector<Signal> replay_leaves;
        for (int i = 0; i < 4; ++i) {
            replay_leaves.push_back(
                Signal{replay_net.add_input("x" + std::to_string(i)), false});
        }
        replay_net.add_output("f", replay.realize(tape.replay(replay, replay_leaves)));

        for (std::uint64_t m = 0; m < 16; ++m) {
            std::vector<bool> input;
            for (int i = 0; i < 4; ++i) input.push_back((m >> i) & 1);
            ASSERT_EQ(net::simulate(direct_net, input)[0],
                      net::simulate(replay_net, input)[0]);
        }
        EXPECT_EQ(direct_net.stats().total(), replay_net.stats().total());
    }
}

}  // namespace
}  // namespace bdsmaj::decomp
