#include "decomp/dominators.hpp"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.hpp"

namespace bdsmaj::decomp {
namespace {

using bdd::Bdd;
using bdd::Manager;
using tt::TruthTable;

TEST(Dominators, ConjunctionHasOneDominator) {
    // F = x0 & (x1 | x2): the (x1|x2) node is a 1-dominator.
    Manager mgr(3);
    const Bdd inner = mgr.var_bdd(1) | mgr.var_bdd(2);
    const Bdd f = mgr.var_bdd(0) & inner;
    DominatorAnalysis analysis(mgr, f);
    EXPECT_TRUE(analysis.has_simple_dominator());
    bool found = false;
    for (const NodeDomInfo& info : analysis.nodes()) {
        if (info.node == bdd::edge_index(inner.edge())) {
            EXPECT_TRUE(info.is_one_dominator);
            found = true;
            SimpleDecomposition d =
                analysis.decompose_at(info, SimpleDecomposition::Op::kAnd);
            EXPECT_EQ(mgr.apply_and(d.quotient, d.divisor), f);
            EXPECT_EQ(d.quotient, mgr.var_bdd(0));
        }
    }
    EXPECT_TRUE(found);
}

TEST(Dominators, DisjunctionHasZeroDominator) {
    Manager mgr(3);
    const Bdd inner = mgr.var_bdd(1) & mgr.var_bdd(2);
    const Bdd f = mgr.var_bdd(0) | inner;
    DominatorAnalysis analysis(mgr, f);
    bool found = false;
    for (const NodeDomInfo& info : analysis.nodes()) {
        if (info.node == bdd::edge_index(inner.edge())) {
            EXPECT_TRUE(info.is_zero_dominator);
            found = true;
            SimpleDecomposition d =
                analysis.decompose_at(info, SimpleDecomposition::Op::kOr);
            EXPECT_EQ(mgr.apply_or(d.quotient, d.divisor), f);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Dominators, XorHasXDominator) {
    Manager mgr(4);
    const Bdd left = mgr.var_bdd(0) & mgr.var_bdd(1);
    const Bdd right = mgr.var_bdd(2) | mgr.var_bdd(3);
    const Bdd f = left ^ right;
    DominatorAnalysis analysis(mgr, f);
    bool found = false;
    for (const NodeDomInfo& info : analysis.nodes()) {
        if (info.node == bdd::edge_index(right.edge())) {
            EXPECT_TRUE(info.is_x_dominator);
            found = true;
            SimpleDecomposition d =
                analysis.decompose_at(info, SimpleDecomposition::Op::kXor);
            EXPECT_EQ(mgr.apply_xor(d.quotient, d.divisor), f);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Dominators, MajorityHasNoSimpleDominatorButAnMDominator) {
    // Fig. 1 of the paper: F = ab + bc + ac has no simple dominator; the
    // highly connected literal node is a non-trivial m-dominator.
    Manager mgr(3);
    const Bdd f = mgr.maj(mgr.var_bdd(0), mgr.var_bdd(1), mgr.var_bdd(2));
    DominatorAnalysis analysis(mgr, f);
    EXPECT_FALSE(analysis.has_simple_dominator());
    const auto mdoms = analysis.m_dominators(8);
    ASSERT_FALSE(mdoms.empty());
    // The m-dominator must be the bottom literal node: its function is the
    // variable at the lowest level of the order.
    const Bdd fa = mgr.node_function(mdoms.front());
    const int bottom_var = mgr.var_at_level(2);
    EXPECT_EQ(fa, mgr.var_bdd(bottom_var));
}

TEST(Dominators, ConstantsAndLiteralsAreQuiet) {
    Manager mgr(2);
    DominatorAnalysis on_const(mgr, mgr.one());
    EXPECT_TRUE(on_const.nodes().empty());
    DominatorAnalysis on_lit(mgr, mgr.var_bdd(0));
    EXPECT_EQ(on_lit.nodes().size(), 1u);
    EXPECT_FALSE(on_lit.has_simple_dominator()) << "root is excluded";
    EXPECT_TRUE(on_lit.m_dominators(8).empty()) << "root is excluded";
}

TEST(Dominators, FaninCountsOnSharedNode) {
    // Maj(a,b,c) with order a,b,c: the c-literal node is reached once as a
    // then-child (from b&c side) and once as an else-child (from b|c side).
    Manager mgr(3);
    const Bdd f = mgr.maj(mgr.var_bdd(0), mgr.var_bdd(1), mgr.var_bdd(2));
    DominatorAnalysis analysis(mgr, f);
    const Bdd c = mgr.var_bdd(2);
    for (const NodeDomInfo& info : analysis.nodes()) {
        if (info.node == bdd::edge_index(c.edge())) {
            EXPECT_GE(info.then_fanin, 1u);
            EXPECT_GE(info.else_fanin_reg, 1u);
        }
    }
}

TEST(Dominators, RandomFunctionsVerifiedDecompositionsHold) {
    // For every flagged dominator on random functions, the decomposition
    // identity must hold exactly (the flags are verified internally; this
    // re-checks through the public decompose_at API).
    std::mt19937_64 rng(901);
    for (int n : {4, 5, 6, 8}) {
        Manager mgr(n);
        for (int trial = 0; trial < 15; ++trial) {
            const Bdd f = mgr.from_truth_table(TruthTable::random(n, rng));
            DominatorAnalysis analysis(mgr, f);
            for (const NodeDomInfo& info : analysis.nodes()) {
                if (info.is_one_dominator) {
                    SimpleDecomposition d =
                        analysis.decompose_at(info, SimpleDecomposition::Op::kAnd);
                    EXPECT_EQ(mgr.apply_and(d.quotient, d.divisor), f);
                }
                if (info.is_zero_dominator) {
                    SimpleDecomposition d =
                        analysis.decompose_at(info, SimpleDecomposition::Op::kOr);
                    EXPECT_EQ(mgr.apply_or(d.quotient, d.divisor), f);
                }
                if (info.is_x_dominator) {
                    SimpleDecomposition d =
                        analysis.decompose_at(info, SimpleDecomposition::Op::kXor);
                    EXPECT_EQ(mgr.apply_xor(d.quotient, d.divisor), f);
                }
            }
        }
    }
}

TEST(Dominators, AndChainEveryNodeIsOneDominator) {
    Manager mgr(6);
    Bdd f = mgr.one();
    for (int v = 0; v < 6; ++v) f = f & mgr.var_bdd(v);
    DominatorAnalysis analysis(mgr, f);
    int one_doms = 0;
    for (const NodeDomInfo& info : analysis.nodes()) {
        if (info.is_one_dominator) ++one_doms;
    }
    // All 5 non-root nodes dominate the single 1-path.
    EXPECT_EQ(one_doms, 5);
    EXPECT_TRUE(analysis.m_dominators(8).empty()) << "condition (i) excludes them";
}

TEST(Dominators, ParityChainEveryNodeIsXDominator) {
    Manager mgr(5);
    Bdd f = mgr.zero();
    for (int v = 0; v < 5; ++v) f = f ^ mgr.var_bdd(v);
    DominatorAnalysis analysis(mgr, f);
    int x_doms = 0;
    for (const NodeDomInfo& info : analysis.nodes()) {
        if (info.is_x_dominator) ++x_doms;
    }
    EXPECT_EQ(x_doms, 4) << "every non-root level node lies on all paths";
}

TEST(Dominators, MDominatorFaninThresholdPrunes) {
    Manager mgr(3);
    const Bdd f = mgr.maj(mgr.var_bdd(0), mgr.var_bdd(1), mgr.var_bdd(2));
    DominatorAnalysis analysis(mgr, f);
    EXPECT_FALSE(analysis.m_dominators(8, 1, 1).empty());
    // Demanding two incoming edges of each kind prunes the candidate.
    EXPECT_TRUE(analysis.m_dominators(8, 2, 2).empty());
    // Max-count cap is respected.
    EXPECT_LE(analysis.m_dominators(1).size(), 1u);
}

TEST(Dominators, NodeSizesMatchPerNodeDagSize) {
    // The one-pass bottom-up size computation must agree exactly with a
    // dag_size traversal per node (the quantity the engine's candidate
    // scoring used to recompute per candidate).
    std::mt19937_64 rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        Manager mgr(9);
        const Bdd f = mgr.from_truth_table(TruthTable::random(9, rng));
        if (f.is_constant()) continue;
        DominatorAnalysis analysis(mgr, f);
        const std::vector<std::size_t>& sizes = analysis.node_sizes();
        ASSERT_EQ(sizes.size(), analysis.nodes().size());
        // Entry of the root equals |dag(f)|.
        EXPECT_EQ(sizes[0], mgr.dag_size(f));
        EXPECT_TRUE(analysis.nodes()[0].is_root);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const Bdd fv = mgr.node_function(analysis.nodes()[i].node);
            EXPECT_EQ(sizes[i], mgr.dag_size(fv)) << "node position " << i;
        }
    }
}

}  // namespace
}  // namespace bdsmaj::decomp
